//! Property-based contract tests for the storage layer: the volatile
//! `MemStore` and the persistent `LogStore` must be **observationally
//! equivalent** under any interleaving of `apply_batch`, single-op
//! writes, reads, scans, and executor-style rollbacks — and the
//! `LogStore` must additionally survive a kill at *any* byte offset of a
//! segment write, recovering to exactly the last committed batch.
//!
//! These are the tests `docs/STORES.md` points at from the "`ShardStore`
//! contract" section: a new backend that passes this file honors the
//! atomicity, visibility, and accounting invariants the migration
//! executor builds on.

use proptest::prelude::*;
use schism_migrate::{plan_migration, ExecutorConfig, MigrationExecutor, PlanConfig, StepOutcome};
use schism_router::{
    IndexBackend, LookupBackend, LookupScheme, MissPolicy, PartitionSet, Scheme, VersionedScheme,
};
use schism_store::{
    load_assignment, tempdir::TempDir, LogStore, LogStoreConfig, MemStore, ShardStats, ShardStore,
    StoreError, WriteOp,
};
use schism_workload::{MaterializedDb, TupleId};
use std::collections::HashMap;
use std::sync::Arc;

const TABLES: u16 = 3;
const ROWS: u64 = 20;
const SHARDS: u32 = 3;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn rand_tuple(state: &mut u64) -> TupleId {
    TupleId::new(
        (splitmix(state) % u64::from(TABLES)) as u16,
        splitmix(state) % ROWS,
    )
}

fn rand_value(state: &mut u64) -> Vec<u8> {
    let len = (splitmix(state) % 80) as usize;
    (0..len).map(|_| splitmix(state) as u8).collect()
}

fn rand_ops(state: &mut u64, max: u64) -> Vec<WriteOp> {
    let n = 1 + splitmix(state) % max;
    (0..n)
        .map(|_| {
            let t = rand_tuple(state);
            if splitmix(state).is_multiple_of(4) {
                WriteOp::Delete(t)
            } else {
                WriteOp::Put(t, rand_value(state))
            }
        })
        .collect()
}

/// Per-shard list of `(tuple, value)` rows — one inner vec per shard.
type ShardContents = Vec<Vec<(TupleId, Vec<u8>)>>;

/// Full observable contents of every shard, via the trait only (so it
/// works identically on both backends).
fn contents(store: &dyn ShardStore) -> ShardContents {
    (0..store.num_shards())
        .map(|s| {
            (0..TABLES)
                .flat_map(|tb| store.scan_range(s, tb, 0..10_000).unwrap())
                .collect()
        })
        .collect()
}

/// `stats()` must agree with what the scans actually return — this is the
/// accounting invariant (rows = live rows, bytes = live payload bytes),
/// and in particular the overwrite case: replaced values' bytes must be
/// subtracted, batch after batch.
fn assert_accounting_exact(store: &dyn ShardStore) {
    for (shard, rows) in contents(store).iter().enumerate() {
        let stats = store.stats(shard as u32).unwrap();
        let want = ShardStats {
            rows: rows.len() as u64,
            bytes: rows.iter().map(|(_, v)| v.len() as u64).sum(),
        };
        assert_eq!(stats, want, "shard {shard} accounting drifted");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random interleavings of batches, single ops, reads, scans, and
    /// rollback pairs observe identical results on both backends; the
    /// LogStore additionally reports the same observable state after a
    /// drop + reopen. Compaction is tuned aggressive so several rewrite
    /// cycles happen *mid-interleaving*.
    #[test]
    fn backends_observationally_equivalent(seed in 0u64..u64::MAX) {
        let mut st = seed;
        let dir = TempDir::new("schism-prop-diff").unwrap();
        let mem = MemStore::new(SHARDS);
        let log = LogStore::with_config(
            dir.path(),
            SHARDS,
            LogStoreConfig { compact_min_bytes: 2_048, compact_dead_ratio: 0.5, sync_commits: false },
        ).unwrap();
        for _ in 0..60 {
            let shard = (splitmix(&mut st) % u64::from(SHARDS + 1)) as u32; // sometimes out of range
            match splitmix(&mut st) % 6 {
                0 | 1 => {
                    let ops = rand_ops(&mut st, 8);
                    prop_assert_eq!(mem.apply_batch(shard, &ops), log.apply_batch(shard, &ops));
                }
                2 => {
                    let t = rand_tuple(&mut st);
                    let v = rand_value(&mut st);
                    prop_assert_eq!(mem.put(shard, t, v.clone()), log.put(shard, t, v));
                    let back = rand_tuple(&mut st);
                    prop_assert_eq!(mem.get(shard, back), log.get(shard, back));
                }
                3 => {
                    let t = rand_tuple(&mut st);
                    prop_assert_eq!(mem.delete(shard, t), log.delete(shard, t));
                }
                4 => {
                    let tb = (splitmix(&mut st) % u64::from(TABLES)) as u16;
                    let a = splitmix(&mut st) % (ROWS + 2);
                    let b = splitmix(&mut st) % (ROWS + 2);
                    prop_assert_eq!(
                        mem.scan_range(shard, tb, a..b),
                        log.scan_range(shard, tb, a..b)
                    );
                }
                _ => {
                    // Executor-style abort: copy a batch of previously
                    // absent keys, then roll it back with the inverse
                    // deletes. Both backends must return to the prior
                    // observable state (this is exactly what
                    // MigrationExecutor::rollback_batch issues).
                    if shard >= SHARDS { continue; }
                    let before_mem = contents(&mem);
                    let fresh: Vec<TupleId> = (0..4)
                        .map(|i| TupleId::new(TABLES - 1, ROWS + 10 + i)) // outside keyspace: absent
                        .collect();
                    let puts: Vec<WriteOp> = fresh.iter()
                        .map(|&t| WriteOp::Put(t, rand_value(&mut st)))
                        .collect();
                    mem.apply_batch(shard, &puts).unwrap();
                    log.apply_batch(shard, &puts).unwrap();
                    let dels: Vec<WriteOp> = fresh.iter().map(|&t| WriteOp::Delete(t)).collect();
                    mem.apply_batch(shard, &dels).unwrap();
                    log.apply_batch(shard, &dels).unwrap();
                    prop_assert_eq!(contents(&mem), before_mem.clone());
                    prop_assert_eq!(contents(&log), before_mem);
                }
            }
        }
        prop_assert_eq!(contents(&mem), contents(&log));
        assert_accounting_exact(&mem);
        assert_accounting_exact(&log);
        // Persistence: the log backend's observable state survives reopen.
        let final_state = contents(&log);
        drop(log);
        let reopened = LogStore::open(dir.path(), SHARDS).unwrap();
        prop_assert_eq!(contents(&reopened), final_state);
        assert_accounting_exact(&reopened);
    }

    /// Kill-at-any-write-offset: truncate the segment at **every** byte
    /// offset and reopen. The recovered state must be exactly the state
    /// after the last batch whose commit record fit under the cut — no
    /// torn batch ever half-applies, no committed batch is ever lost.
    #[test]
    fn logstore_recovers_exact_committed_prefix(seed in 0u64..u64::MAX) {
        let mut st = seed;
        let dir = TempDir::new("schism-prop-kill").unwrap();
        // Compaction off: rewrites would change offsets out from under
        // the boundary bookkeeping this test does.
        let cfg = LogStoreConfig { compact_min_bytes: u64::MAX, ..LogStoreConfig::default() };
        let mut snapshots: Vec<ShardContents> = Vec::new();
        let mut boundaries: Vec<u64> = Vec::new(); // committed end after snapshot i
        let seg = {
            let s = LogStore::with_config(dir.path(), 1, cfg).unwrap();
            snapshots.push(contents(&s));
            boundaries.push(0);
            let batches = 2 + splitmix(&mut st) % 4;
            for _ in 0..batches {
                s.apply_batch(0, &rand_ops(&mut st, 5)).unwrap();
                snapshots.push(contents(&s));
                boundaries.push(s.segment_bytes(0).unwrap());
            }
            s.segment_path(0)
        };
        let full = std::fs::read(&seg).unwrap();
        prop_assert_eq!(*boundaries.last().unwrap() as usize, full.len());
        for cut in 0..=full.len() {
            std::fs::write(&seg, &full[..cut]).unwrap();
            let s = LogStore::with_config(dir.path(), 1, cfg).unwrap();
            let expect = boundaries.iter().rposition(|&b| b <= cut as u64).unwrap();
            prop_assert_eq!(
                contents(&s),
                snapshots[expect].clone(),
                "cut at {} must recover snapshot {}", cut, expect
            );
            // And the truncated store still accepts writes.
            if cut == full.len() / 2 {
                s.put(0, TupleId::new(0, 999), vec![1, 2, 3]).unwrap();
                prop_assert_eq!(s.get(0, TupleId::new(0, 999)).unwrap(), Some(vec![1, 2, 3]));
            }
        }
    }

    /// Torn-write recovery under `sync_commits = true` (the ROADMAP
    /// durability item's missing test): with per-commit fdatasync, every
    /// batch whose commit record was fully appended is a *synced committed
    /// prefix* the store has promised to keep. Kill the process at every
    /// byte offset of the segment (simulated by truncation — the on-disk
    /// state an interrupted append leaves behind) and reopen: recovery
    /// must restore exactly the last synced commit at or under the cut —
    /// a torn tail batch never half-applies, and no synced batch is ever
    /// rolled back. The recovered store must also still accept (synced)
    /// writes.
    #[test]
    fn logstore_sync_commits_survive_torn_writes(seed in 0u64..u64::MAX) {
        let mut st = seed;
        let dir = TempDir::new("schism-prop-sync-kill").unwrap();
        // Per-commit fsync on; compaction off so offsets stay stable under
        // the boundary bookkeeping below.
        let cfg = LogStoreConfig {
            compact_min_bytes: u64::MAX,
            sync_commits: true,
            ..LogStoreConfig::default()
        };
        let mut snapshots: Vec<ShardContents> = Vec::new();
        let mut boundaries: Vec<u64> = Vec::new(); // synced committed end after batch i
        let seg = {
            let s = LogStore::with_config(dir.path(), 1, cfg).unwrap();
            snapshots.push(contents(&s));
            boundaries.push(0);
            let batches = 2 + splitmix(&mut st) % 4;
            for _ in 0..batches {
                s.apply_batch(0, &rand_ops(&mut st, 5)).unwrap();
                snapshots.push(contents(&s));
                boundaries.push(s.segment_bytes(0).unwrap());
            }
            s.segment_path(0)
        };
        let full = std::fs::read(&seg).unwrap();
        prop_assert_eq!(*boundaries.last().unwrap() as usize, full.len());
        for cut in 0..=full.len() {
            std::fs::write(&seg, &full[..cut]).unwrap();
            let s = LogStore::with_config(dir.path(), 1, cfg).unwrap();
            let expect = boundaries.iter().rposition(|&b| b <= cut as u64).unwrap();
            prop_assert_eq!(
                contents(&s),
                snapshots[expect].clone(),
                "sync_commits cut at {} must recover synced snapshot {}", cut, expect
            );
            // A cut at a synced boundary is a clean kill: nothing may be
            // missing. (Cuts between boundaries are torn tails; the
            // rposition check above already pins them to the prior commit.)
            if cut > 0 && boundaries.contains(&(cut as u64)) {
                prop_assert_eq!(
                    contents(&s),
                    snapshots[boundaries.iter().position(|&b| b == cut as u64).unwrap()].clone()
                );
            }
            // And the truncated store still accepts synced writes.
            if cut == full.len() / 2 {
                s.put(0, TupleId::new(0, 999), vec![4, 5, 6]).unwrap();
                prop_assert_eq!(s.get(0, TupleId::new(0, 999)).unwrap(), Some(vec![4, 5, 6]));
            }
        }
    }

    /// The full migration executor behaves identically on both backends:
    /// same step outcomes (including retries from injected corruption and
    /// the final abort-with-rollback), same batch reports, same final
    /// physical state.
    #[test]
    fn executor_runs_identically_on_both_backends(seed in 0u64..u64::MAX) {
        let mut st = seed;
        let db = MaterializedDb::new();
        let n_rows = 12 + splitmix(&mut st) % 20;
        let old: HashMap<TupleId, PartitionSet> = (0..n_rows)
            .map(|r| (TupleId::new(0, r), PartitionSet::single((splitmix(&mut st) % 3) as u32)))
            .collect();
        let new: HashMap<TupleId, PartitionSet> = old
            .keys()
            .map(|&t| (t, PartitionSet::single((splitmix(&mut st) % 3) as u32)))
            .collect();
        let plan = plan_migration(&old, &new, &db, &PlanConfig {
            max_rows_per_batch: 4,
            ..PlanConfig::default()
        });
        // Sometimes poison one batch persistently: both backends must
        // retry, fail verification, roll back, and abort identically.
        let cfg = if splitmix(&mut st).is_multiple_of(2) && !plan.batches.is_empty() {
            let victim = (splitmix(&mut st) % plan.batches.len() as u64) as usize;
            ExecutorConfig {
                max_retries: 1,
                corrupt_copies: vec![(victim, 0), (victim, 1)],
                ..ExecutorConfig::default()
            }
        } else {
            ExecutorConfig::default()
        };

        let dir = TempDir::new("schism-prop-exec").unwrap();
        let run = |store: &dyn ShardStore| {
            load_assignment(store, &old, &db).unwrap();
            let vs = VersionedScheme::new(lookup_scheme(&old), lookup_scheme(&new));
            let mut exec = MigrationExecutor::new(&plan, store, &vs, cfg.clone());
            let mut outcomes = Vec::new();
            loop {
                let o = exec.step();
                let done = matches!(o, StepOutcome::Done);
                outcomes.push(o);
                if done { break; }
            }
            (outcomes, exec.batch_reports().to_vec(), exec.report())
        };
        let mem = MemStore::new(SHARDS);
        let log = LogStore::open(dir.path(), SHARDS).unwrap();
        let (mo, mr, mtotal) = run(&mem);
        let (lo, lr, ltotal) = run(&log);
        prop_assert_eq!(mo, lo);
        prop_assert_eq!(mr, lr);
        prop_assert_eq!(mtotal, ltotal);
        prop_assert_eq!(contents(&mem), contents(&log));
        assert_accounting_exact(&log);
    }
}

fn lookup_scheme(asg: &HashMap<TupleId, PartitionSet>) -> Arc<dyn Scheme> {
    let entries: Vec<(u64, PartitionSet)> = asg.iter().map(|(t, &p)| (t.row, p)).collect();
    Arc::new(LookupScheme::new(
        SHARDS,
        vec![Some(
            Box::new(IndexBackend::new(entries)) as Box<dyn LookupBackend>
        )],
        vec![None],
        MissPolicy::HashRow,
    ))
}

/// Regression (ISSUE 3 satellite): overwrite-heavy batches must keep
/// rows/bytes accounting exact on *both* backends. The audit that came
/// with this test found `MemStore::put` already subtracts the replaced
/// value's bytes (since the executor PR); this pins the behavior so it
/// cannot regress silently, and holds `LogStore` to the same standard.
#[test]
fn overwrite_heavy_batches_keep_accounting_exact() {
    let dir = TempDir::new("schism-overwrite-acct").unwrap();
    let mem = MemStore::new(1);
    let log = LogStore::open(dir.path(), 1).unwrap();
    for store in [&mem as &dyn ShardStore, &log as &dyn ShardStore] {
        // 40 batches, each overwriting the same 5 keys with new sizes.
        for round in 0..40u64 {
            let ops: Vec<WriteOp> = (0..5u64)
                .map(|r| {
                    WriteOp::Put(
                        TupleId::new(0, r),
                        vec![round as u8; 10 + (round as usize * 7 + r as usize) % 90],
                    )
                })
                .collect();
            store.apply_batch(0, &ops).unwrap();
        }
        let stats = store.stats(0).unwrap();
        assert_eq!(stats.rows, 5, "live rows");
        let scanned: u64 = store
            .scan_range(0, 0, 0..10)
            .unwrap()
            .iter()
            .map(|(_, v)| v.len() as u64)
            .sum();
        assert_eq!(stats.bytes, scanned, "bytes drifted under overwrites");
    }
}

/// Both backends agree on error surfaces too: out-of-range shards fail
/// identically whatever the op.
#[test]
fn error_surface_matches_across_backends() {
    let dir = TempDir::new("schism-errors").unwrap();
    let mem = MemStore::new(2);
    let log = LogStore::open(dir.path(), 2).unwrap();
    let t = TupleId::new(0, 0);
    for store in [&mem as &dyn ShardStore, &log as &dyn ShardStore] {
        assert_eq!(store.get(5, t).unwrap_err(), StoreError::NoSuchShard(5));
        assert_eq!(
            store.put(5, t, vec![]).unwrap_err(),
            StoreError::NoSuchShard(5)
        );
        assert_eq!(store.delete(5, t).unwrap_err(), StoreError::NoSuchShard(5));
        assert_eq!(store.stats(5).unwrap_err(), StoreError::NoSuchShard(5));
        assert_eq!(
            store.apply_batch(5, &[]).unwrap_err(),
            StoreError::NoSuchShard(5)
        );
        assert_eq!(
            store.scan_range(5, 0, 0..1).unwrap_err(),
            StoreError::NoSuchShard(5)
        );
    }
}

/// Satellite of the fault-injection work: a stalled `fdatasync` at the
/// `log.sync` point must *delay* the batch ack, never let it race ahead —
/// the commit is acknowledged strictly after the stall elapses, and the
/// store then holds exactly what a fault-free `MemStore` holds for the
/// same batch (differential check).
#[test]
fn stalled_log_sync_never_acks_early() {
    use schism_serve::FaultPlan;
    use schism_store::{sync_points, FaultHook};
    use std::time::{Duration, Instant};

    const STALL: Duration = Duration::from_millis(200);
    let dir = TempDir::new("schism-stall").unwrap();
    let log = Arc::new(
        LogStore::with_config(
            dir.path(),
            SHARDS,
            LogStoreConfig {
                sync_commits: true,
                ..LogStoreConfig::default()
            },
        )
        .unwrap(),
    );
    let mem = MemStore::new(SHARDS);
    let mut state = 0xFEED_u64;
    let ops = rand_ops(&mut state, 12);
    let plan = Arc::new(FaultPlan::new(7).stall(sync_points::LOG_SYNC, Some(0), STALL, 1));
    log.set_fault_hook(Some(Arc::clone(&plan) as Arc<dyn FaultHook>));

    let (tx, rx) = std::sync::mpsc::channel();
    let flusher = {
        let (log, ops) = (Arc::clone(&log), ops.clone());
        std::thread::spawn(move || {
            let started = Instant::now();
            log.apply_batch(0, &ops).unwrap();
            tx.send(started.elapsed()).unwrap();
        })
    };
    // Mid-stall the ack must not have arrived.
    assert!(
        rx.recv_timeout(STALL / 2).is_err(),
        "batch acked while its commit sync was stalled"
    );
    let elapsed = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("a stalled flush must still ack once the stall lifts");
    assert!(
        elapsed >= STALL,
        "ack after {elapsed:?} outran the {STALL:?} sync stall"
    );
    flusher.join().unwrap();

    // Differential: once acked, the stalled LogStore batch is bit-for-bit
    // what the fault-free MemStore applied.
    mem.apply_batch(0, &ops).unwrap();
    assert_eq!(contents(&*log), contents(&mem));
    assert_accounting_exact(&*log);

    // The stall budget is spent: the next synced commit is not delayed.
    let started = Instant::now();
    log.put(0, TupleId::new(0, 999), b"post-stall".to_vec())
        .unwrap();
    assert!(
        started.elapsed() < STALL / 2,
        "stall with times=1 must not throttle later commits"
    );
}
