//! Serving-layer consistency across a live migration: statements executed
//! through a [`Server`] routing over a [`VersionedScheme`] while a
//! [`MigrationExecutor`] flips batches must (a) always resolve every key
//! to exactly one owner, (b) never lose an acknowledged write, and
//! (c) keep read-your-own-writes intact for every client.
//!
//! DELETEs of *out-of-plan* keys run inside the model proptest (they are
//! safe at any point of the migration); DELETE of an *in-plan* key — once
//! a documented limitation that aborted the migration — now passes
//! through: the executor propagates the vanished source as a tombstone,
//! pinned by [`delete_of_in_plan_key_passes_through_migration`].
//!
//! The replication model proptest
//! ([`acked_writes_survive_minority_crashes_and_rejoins`]) drives an rf=3
//! server through seeded crash / revive / catch-up interleavings: an
//! acked write must survive any minority subset of replica crashes, a
//! write must refuse cleanly when the majority is gone, and a rejoined
//! shard — whose store is deliberately poisoned before revival — must
//! never serve a read until its catch-up flips it Live.

use proptest::prelude::*;
use schism_migrate::{
    plan_migration, run_catch_up, ExecutorConfig, MigrationExecutor, PlanConfig, StepOutcome,
};
use schism_router::{
    HashScheme, IndexBackend, LookupBackend, LookupScheme, MissPolicy, PartitionSet,
    ReplicatedScheme, RowKey, Scheme, VersionedScheme,
};
use schism_serve::{encode_row, load_table, PkValues, ServeConfig, ServeError, Server};
use schism_sql::{ColumnType, Schema, Value};
use schism_store::{HealthMap, MemStore, ShardHealth, ShardStore};
use schism_workload::{TupleId, TupleValues};
use std::collections::HashMap;
use std::sync::Arc;

const K: u32 = 4;

fn schema() -> Arc<Schema> {
    let mut s = Schema::new();
    s.add_table(
        "account",
        &[("id", ColumnType::Int), ("bal", ColumnType::Int)],
        &["id"],
    );
    Arc::new(s)
}

struct Fixture {
    server: Server,
    vs: Arc<VersionedScheme>,
    new_scheme: Arc<dyn Scheme>,
    plan: schism_migrate::MigrationPlan,
    store: Arc<MemStore>,
}

/// `n_keys` accounts under a k=4 attribute-hash scheme, migrating to a
/// lookup scheme that rotates every key's owner to the next shard (every
/// key moves — the worst case for serving). A further `extras` accounts
/// (ids `n_keys..n_keys + extras`) are loaded but *out of plan*: the
/// lookup scheme maps them to their old placement, so they never move —
/// the keys DELETE is allowed to target mid-migration.
fn fixture(n_keys: u64, rows_per_batch: usize, extras: u64) -> Fixture {
    let schema = schema();
    let store = Arc::new(MemStore::new(K));
    let db: Arc<dyn TupleValues> = Arc::new(PkValues::from_schema(&schema));
    let old: Arc<dyn Scheme> = Arc::new(schism_router::HashScheme::by_attrs(K, vec![Some(0)]));
    let entries: Vec<(u64, PartitionSet)> = (0..n_keys + extras)
        .map(|r| {
            let t = TupleId::new(0, r);
            let from = old.locate_tuple(t, &*db).first().unwrap();
            let to = if r < n_keys { (from + 1) % K } else { from };
            (r, PartitionSet::single(to))
        })
        .collect();
    let new: Arc<dyn Scheme> = Arc::new(LookupScheme::new(
        K,
        vec![Some(
            Box::new(IndexBackend::new(entries)) as Box<dyn LookupBackend>
        )],
        vec![Some(RowKey { col: 0, offset: 0 })],
        MissPolicy::HashRow,
    ));
    load_table(
        &*store,
        &*old,
        &*db,
        &schema,
        0,
        (0..n_keys + extras).map(|i| vec![Value::Int(i as i64), Value::Int(0)]),
    )
    .unwrap();
    let old_asg: HashMap<TupleId, PartitionSet> = (0..n_keys)
        .map(|r| {
            (
                TupleId::new(0, r),
                old.locate_tuple(TupleId::new(0, r), &*db),
            )
        })
        .collect();
    let new_asg: HashMap<TupleId, PartitionSet> = (0..n_keys)
        .map(|r| {
            (
                TupleId::new(0, r),
                new.locate_tuple(TupleId::new(0, r), &*db),
            )
        })
        .collect();
    let plan = plan_migration(
        &old_asg,
        &new_asg,
        &*db,
        &PlanConfig {
            max_rows_per_batch: rows_per_batch,
            ..PlanConfig::default()
        },
    );
    let vs = Arc::new(VersionedScheme::new(old, Arc::clone(&new)));
    let server = Server::new(
        schema,
        Arc::clone(&store) as Arc<dyn ShardStore>,
        Arc::clone(&vs) as Arc<dyn Scheme>,
        db,
        ServeConfig::default(),
    );
    Fixture {
        server,
        vs,
        new_scheme: new,
        plan,
        store,
    }
}

#[derive(Clone, Debug)]
enum Op {
    Write(u64, i64),
    Read(u64),
    /// DELETE of an out-of-plan key — legal at any migration point.
    DeleteExtra(u64),
    Step,
}

/// Decodes a raw sample into an op: kinds are weighted 4/4/2/2
/// write/read/step/delete (the vendored proptest has no `prop_oneof`).
fn decode_op((kind, key, val): (u32, u64, i64)) -> Op {
    match kind {
        0..=3 => Op::Write(key, val),
        4..=7 => Op::Read(key),
        8..=9 => Op::Step,
        _ => Op::DeleteExtra(key),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Sequentially interleaved serving and migration steps: the served
    /// view must always match a simple key→value model, and every key
    /// must resolve to exactly one owner at every point.
    #[test]
    fn serving_matches_model_across_flips(
        raw_ops in prop::collection::vec((0..12u32, 0..24u64, -1000i64..1000), 1..60)
    ) {
        let n_keys = 24u64;
        let extras = 8u64;
        let f = fixture(n_keys, 4, extras);
        let db = PkValues::from_schema(f.server.schema());
        let mut exec =
            MigrationExecutor::new(&f.plan, &*f.store, &f.vs, ExecutorConfig::default());
        let mut model: HashMap<u64, i64> = (0..n_keys).map(|k| (k, 0)).collect();
        let mut extras_alive: HashMap<u64, bool> =
            (n_keys..n_keys + extras).map(|k| (k, true)).collect();
        for op in raw_ops.into_iter().map(decode_op) {
            match op {
                Op::Write(k, v) => {
                    let out = f
                        .server
                        .execute_sql(&format!("UPDATE account SET bal = {v} WHERE id = {k}"))
                        .unwrap();
                    prop_assert_eq!(out.affected, 1, "key {} must exist", k);
                    model.insert(k, v);
                }
                Op::Read(k) => {
                    let out = f
                        .server
                        .execute_sql(&format!("SELECT * FROM account WHERE id = {k}"))
                        .unwrap();
                    prop_assert_eq!(out.rows.len(), 1);
                    prop_assert_eq!(&out.rows[0].1[1], &Value::Int(model[&k]));
                }
                Op::DeleteExtra(k) => {
                    let id = n_keys + k % extras;
                    let was_alive = extras_alive[&id];
                    let out = f
                        .server
                        .execute_sql(&format!("DELETE FROM account WHERE id = {id}"))
                        .unwrap();
                    prop_assert_eq!(out.affected, u64::from(was_alive), "delete of key {}", id);
                    extras_alive.insert(id, false);
                    let out = f
                        .server
                        .execute_sql(&format!("SELECT * FROM account WHERE id = {id}"))
                        .unwrap();
                    prop_assert!(out.rows.is_empty(), "key {} readable after DELETE", id);
                }
                Op::Step => {
                    let outcome = exec.step();
                    prop_assert!(
                        !matches!(outcome, StepOutcome::Aborted { .. }),
                        "migration aborted: {:?}",
                        outcome
                    );
                }
            }
            for k in 0..n_keys {
                prop_assert!(
                    f.vs.locate_tuple(TupleId::new(0, k), &db).is_single(),
                    "key {} must have exactly one owner",
                    k
                );
            }
        }
        // Finish the migration, cut the server over, and re-verify all
        // acknowledged writes under the finalized scheme.
        prop_assert_eq!(exec.run_to_completion(), StepOutcome::Done);
        prop_assert_eq!(exec.report().batches_flipped, f.plan.batches.len());
        f.server.install_scheme(Arc::clone(&f.new_scheme));
        for (k, v) in model {
            let out = f
                .server
                .execute_sql(&format!("SELECT * FROM account WHERE id = {k}"))
                .unwrap();
            prop_assert_eq!(out.rows.len(), 1, "key {} lost after cutover", k);
            prop_assert_eq!(&out.rows[0].1[1], &Value::Int(v));
        }
        for (id, alive) in extras_alive {
            let out = f
                .server
                .execute_sql(&format!("SELECT * FROM account WHERE id = {id}"))
                .unwrap();
            prop_assert_eq!(
                out.rows.len(),
                usize::from(alive),
                "out-of-plan key {} wrong after cutover",
                id
            );
            if alive {
                prop_assert_eq!(&out.rows[0].1[1], &Value::Int(0));
            }
        }
    }
}

/// The old serving limitation, converted to a pass-through regression
/// test: DELETE of an *in-plan* key before its batch copies no longer
/// aborts the migration — the executor propagates the vanished source as
/// a tombstone, the migration completes, and the key stays deleted on
/// every shard through cutover.
#[test]
fn delete_of_in_plan_key_passes_through_migration() {
    let f = fixture(8, 2, 0);
    let out = f
        .server
        .execute_sql("DELETE FROM account WHERE id = 3")
        .unwrap();
    assert_eq!(out.affected, 1);
    let mut exec = MigrationExecutor::new(&f.plan, &*f.store, &f.vs, ExecutorConfig::default());
    assert_eq!(exec.run_to_completion(), StepOutcome::Done);
    assert_eq!(exec.report().batches_flipped, f.plan.batches.len());
    let out = f
        .server
        .execute_sql("SELECT * FROM account WHERE id = 3")
        .unwrap();
    assert!(out.rows.is_empty(), "deleted key visible mid-epoch");
    f.server.install_scheme(Arc::clone(&f.new_scheme));
    let out = f
        .server
        .execute_sql("SELECT * FROM account WHERE id = 3")
        .unwrap();
    assert!(out.rows.is_empty(), "deleted key resurrected by migration");
    for shard in 0..K {
        assert!(
            f.store.get(shard, TupleId::new(0, 3)).unwrap().is_none(),
            "shard {shard} still holds a copy of the deleted key"
        );
    }
    for k in (0..8u64).filter(|&k| k != 3) {
        let out = f
            .server
            .execute_sql(&format!("SELECT * FROM account WHERE id = {k}"))
            .unwrap();
        assert_eq!(out.rows.len(), 1, "surviving key {k} lost");
    }
}

/// An rf=3 server with no migration in flight, for the replication model
/// proptest: every key lives on three ring-successor shards of a k=4
/// cluster.
struct Rf3Fixture {
    server: Server,
    scheme: Arc<dyn Scheme>,
    store: Arc<MemStore>,
    health: Arc<HealthMap>,
}

fn rf3_fixture(n_keys: u64) -> Rf3Fixture {
    let schema = schema();
    let store = Arc::new(MemStore::new(K));
    let db: Arc<dyn TupleValues> = Arc::new(PkValues::from_schema(&schema));
    let scheme: Arc<dyn Scheme> = Arc::new(ReplicatedScheme::new(
        3,
        Arc::new(HashScheme::by_attrs(K, vec![Some(0)])),
    ));
    load_table(
        &*store,
        &*scheme,
        &*db,
        &schema,
        0,
        (0..n_keys).map(|i| vec![Value::Int(i as i64), Value::Int(0)]),
    )
    .unwrap();
    let health = Arc::new(HealthMap::new());
    let server = Server::new(
        schema,
        Arc::clone(&store) as Arc<dyn ShardStore>,
        Arc::clone(&scheme),
        db,
        ServeConfig {
            health: Some(Arc::clone(&health)),
            ..ServeConfig::default()
        },
    );
    Rf3Fixture {
        server,
        scheme,
        store,
        health,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Seeded crash / revive / catch-up interleavings over an rf=3 server,
    /// with a full oracle sweep after every op:
    ///
    /// - a write must succeed iff a majority of its key's full replica set
    ///   is Live (a catching-up member counts for nothing), and a refused
    ///   write must leave no trace;
    /// - every read must return the oracle's value — a revived shard's
    ///   store is poisoned with a sentinel before its worker respawns, so
    ///   this also proves a catching-up shard never serves a read until
    ///   its catch-up flips it Live;
    /// - after the final catch-up, every live copy of every key is
    ///   byte-identical across its replica set (no poison residue).
    #[test]
    fn acked_writes_survive_minority_crashes_and_rejoins(
        raw_ops in prop::collection::vec((0..12u32, 0..16u64, -1000i64..1000), 1..70)
    ) {
        let n_keys = 16u64;
        let f = rf3_fixture(n_keys);
        let db = PkValues::from_schema(f.server.schema());
        let mut model: HashMap<u64, i64> = (0..n_keys).map(|k| (k, 0)).collect();
        let poison = encode_row(&[Value::Int(-1), Value::Int(-999_999)]);
        let catch_up = |shard: u32| {
            run_catch_up(
                shard,
                &f.server.scheme(),
                &db,
                (0..n_keys).map(|r| TupleId::new(0, r)),
                &*f.store,
                &f.health,
                &PlanConfig::default(),
                8,
            )
            .unwrap_or_else(|e| panic!("catch-up of shard {shard} failed: {e}"));
        };
        for (kind, key, val) in raw_ops {
            match kind {
                0..=4 => {
                    let t = TupleId::new(0, key);
                    let group = f.scheme.locate_tuple(t, &db);
                    let live = group.difference(&f.health.not_live_set());
                    let res = f
                        .server
                        .execute_sql(&format!("UPDATE account SET bal = {val} WHERE id = {key}"));
                    if live.len() >= 2 {
                        let out = res.unwrap_or_else(|e| {
                            panic!("write to key {key} refused with a live majority: {e}")
                        });
                        prop_assert_eq!(out.affected, 1);
                        model.insert(key, val);
                    } else {
                        prop_assert!(
                            matches!(res, Err(ServeError::Unavailable { .. })),
                            "write to key {} must refuse without a majority: {:?}",
                            key,
                            res
                        );
                    }
                }
                5..=8 => {
                    let out = f
                        .server
                        .execute_sql(&format!("SELECT * FROM account WHERE id = {key}"))
                        .unwrap();
                    prop_assert_eq!(out.rows.len(), 1);
                    prop_assert_eq!(&out.rows[0].1[1], &Value::Int(model[&key]));
                }
                9..=10 => {
                    // Crash a live shard, capped at two non-live shards so
                    // every 3-member group keeps at least one live copy.
                    let victim = (key % u64::from(K)) as u32;
                    if f.health.is_live(victim) && f.health.not_live_set().len() < 2 {
                        f.health.mark_down(victim);
                    }
                }
                _ => {
                    // Finish one in-flight catch-up, else revive one down
                    // shard with a poisoned store.
                    if let Some(s) = f.health.catching_up_set().first() {
                        catch_up(s);
                    } else if let Some(s) = f.health.down_set().first() {
                        for r in 0..n_keys {
                            let t = TupleId::new(0, r);
                            if f.scheme.locate_tuple(t, &db).contains(s) {
                                f.store.put(s, t, poison.clone()).unwrap();
                            }
                        }
                        prop_assert!(f.server.revive_shard(s));
                    }
                }
            }
            // Oracle sweep: every key must read its model value — a
            // poisoned catching-up shard serving any read would fail here.
            for k in 0..n_keys {
                let out = f
                    .server
                    .execute_sql(&format!("SELECT * FROM account WHERE id = {k}"))
                    .unwrap();
                prop_assert_eq!(out.rows.len(), 1, "key {} unreadable", k);
                prop_assert_eq!(&out.rows[0].1[1], &Value::Int(model[&k]));
            }
        }
        // Heal everything and verify byte-identical replicas.
        for s in f.health.catching_up_set().iter() {
            catch_up(s);
        }
        for s in f.health.down_set().iter() {
            f.store.wipe_shard(s).unwrap();
            prop_assert!(f.server.revive_shard(s));
            catch_up(s);
        }
        prop_assert!(f.health.not_live_set().is_empty());
        for k in 0..n_keys {
            let t = TupleId::new(0, k);
            let copies: Vec<u32> = f.scheme.locate_tuple(t, &db).iter().collect();
            let want = f.store.get(copies[0], t).unwrap();
            prop_assert!(want.is_some());
            prop_assert!(
                want != Some(poison.clone()),
                "poison survived catch-up on key {}",
                k
            );
            for &s in &copies[1..] {
                prop_assert_eq!(
                    &f.store.get(s, t).unwrap(),
                    &want,
                    "key {} diverges between replicas {} and {}",
                    k,
                    copies[0],
                    s
                );
            }
        }
    }
}

/// Concurrent chaos: four closed-loop clients write and immediately read
/// their own keys while the migration executor flips every batch under
/// them. No acknowledged write may be lost and read-your-own-write must
/// hold throughout.
#[test]
fn concurrent_clients_survive_live_migration() {
    const N_KEYS: u64 = 64;
    const ITERS: i64 = 40;
    let f = fixture(N_KEYS, 8, 0);
    std::thread::scope(|s| {
        for client in 0..4u64 {
            let server = &f.server;
            s.spawn(move || {
                for iter in 0..ITERS {
                    for key in (client..N_KEYS).step_by(4) {
                        let v = iter * 1000 + key as i64;
                        let w = server
                            .execute_sql(&format!("UPDATE account SET bal = {v} WHERE id = {key}"))
                            .unwrap();
                        assert_eq!(w.affected, 1, "client {client} key {key}");
                        let r = server
                            .execute_sql(&format!("SELECT * FROM account WHERE id = {key}"))
                            .unwrap();
                        assert_eq!(r.rows.len(), 1, "client {client} lost key {key}");
                        assert_eq!(
                            r.rows[0].1[1],
                            Value::Int(v),
                            "client {client} read-your-own-write on key {key}"
                        );
                    }
                }
            });
        }
        let (plan, store, vs) = (&f.plan, &f.store, &f.vs);
        s.spawn(move || {
            // Generous verify retries: foreground writes racing a batch
            // copy fail its checksum verification and force a re-copy.
            let mut exec = MigrationExecutor::new(
                plan,
                &**store,
                vs,
                ExecutorConfig {
                    max_retries: 10_000,
                    ..ExecutorConfig::default()
                },
            );
            loop {
                match exec.step() {
                    StepOutcome::Flipped(_) => {
                        std::thread::sleep(std::time::Duration::from_micros(200))
                    }
                    StepOutcome::Done => break,
                    StepOutcome::Paused => {}
                    StepOutcome::Aborted { batch, error } => {
                        panic!("migration aborted at batch {batch}: {error}")
                    }
                }
            }
            assert_eq!(exec.report().batches_flipped, plan.batches.len());
        });
    });
    // Every key moved; cut over and verify the final value each client
    // acknowledged last.
    assert_eq!(f.vs.moved_count() as u64, N_KEYS);
    f.server.install_scheme(Arc::clone(&f.new_scheme));
    for key in 0..N_KEYS {
        let out = f
            .server
            .execute_sql(&format!("SELECT * FROM account WHERE id = {key}"))
            .unwrap();
        assert_eq!(out.rows.len(), 1, "key {key} lost after migration");
        assert_eq!(
            out.rows[0].1[1],
            Value::Int((ITERS - 1) * 1000 + key as i64)
        );
    }
}
