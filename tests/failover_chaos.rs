//! Chaos harness for the serve/migrate/store stack: seeded, replayable
//! interleavings of client sessions, migration-executor steps, and a
//! deterministic leader kill injected by a [`FaultPlan`].
//!
//! Invariants checked at every step:
//!
//! 1. **No lost acknowledged writes** — every value a session saw acked is
//!    returned by every later read, through the kill and after cutover.
//! 2. **Read-your-writes** — a session's reads of its own write set hold.
//! 3. **Single live leader per key** — `current_leader` is deterministic,
//!    names a live shard, and stays inside the key's replica set.
//!
//! The vendored proptest has no failure persistence, so the harness rolls
//! its own replayability: every case is driven by one u64 seed; a failing
//! case prints `replay with SCHISM_CHAOS_SEED=<seed>` and writes the seed
//! plus panic message under `target/chaos-failures/` (uploaded as a CI
//! artifact). `SCHISM_CHAOS_SEED=<seed> cargo test -p schism chaos` reruns
//! exactly that interleaving — all fault triggers are count-based, not
//! timer-based, so the replay is bit-identical.

use schism_migrate::{
    plan_migration, run_catch_up, ExecutorConfig, MigrationExecutor, PlanConfig, StepOutcome,
};
use schism_router::{
    HashScheme, IndexBackend, LookupBackend, LookupScheme, MissPolicy, PartitionSet,
    ReplicatedScheme, RowKey, Scheme, VersionedScheme,
};
use schism_serve::{load_table, FaultPlan, PkValues, ServeConfig, ServeError, Server};
use schism_sql::{ColumnType, Schema, Value};
use schism_store::{HealthMap, MemStore, ShardHealth, ShardStore};
use schism_workload::{TupleId, TupleValues};
use std::collections::HashMap;
use std::sync::Arc;

const K: u32 = 4;
const RF: u32 = 2;
const RF3: u32 = 3;
const N_KEYS: u64 = 32;

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(1);
        splitmix(self.0)
    }
}

fn schema() -> Arc<Schema> {
    let mut s = Schema::new();
    s.add_table(
        "account",
        &[("id", ColumnType::Int), ("bal", ColumnType::Int)],
        &["id"],
    );
    Arc::new(s)
}

struct Fixture {
    server: Server,
    vs: Arc<VersionedScheme>,
    new_scheme: Arc<dyn Scheme>,
    plan: schism_migrate::MigrationPlan,
    store: Arc<MemStore>,
    health: Arc<HealthMap>,
    faults: Arc<FaultPlan>,
}

/// `N_KEYS` accounts under an rf=2 replicated hash scheme, migrating to an
/// rf=2 replicated lookup scheme that rotates every key's primary to the
/// next shard. `victim`'s worker crashes on its `kill_after`-th dequeue;
/// the serve path and the executor share one [`HealthMap`].
fn fixture(victim: u32, kill_after: u64) -> Fixture {
    fixture_rf(
        RF,
        FaultPlan::new(victim as u64 ^ kill_after).crash_worker(victim, kill_after),
    )
}

/// The same topology at an arbitrary replication factor and fault plan —
/// rf=3 is where the majority-quorum write rule takes over from the rf=2
/// view-change rule.
fn fixture_rf(rf: u32, faults: FaultPlan) -> Fixture {
    let schema = schema();
    let store = Arc::new(MemStore::new(K));
    let db: Arc<dyn TupleValues> = Arc::new(PkValues::from_schema(&schema));
    let old_inner: Arc<dyn Scheme> = Arc::new(HashScheme::by_attrs(K, vec![Some(0)]));
    let entries: Vec<(u64, PartitionSet)> = (0..N_KEYS)
        .map(|r| {
            let t = TupleId::new(0, r);
            let from = old_inner.locate_tuple(t, &*db).first().unwrap();
            (r, PartitionSet::single((from + 1) % K))
        })
        .collect();
    let new_inner: Arc<dyn Scheme> = Arc::new(LookupScheme::new(
        K,
        vec![Some(
            Box::new(IndexBackend::new(entries)) as Box<dyn LookupBackend>
        )],
        vec![Some(RowKey { col: 0, offset: 0 })],
        MissPolicy::HashRow,
    ));
    let old: Arc<dyn Scheme> = Arc::new(ReplicatedScheme::new(rf, old_inner));
    let new: Arc<dyn Scheme> = Arc::new(ReplicatedScheme::new(rf, new_inner));
    load_table(
        &*store,
        &*old,
        &*db,
        &schema,
        0,
        (0..N_KEYS).map(|i| vec![Value::Int(i as i64), Value::Int(0)]),
    )
    .unwrap();
    let locate_all = |s: &Arc<dyn Scheme>| -> HashMap<TupleId, PartitionSet> {
        (0..N_KEYS)
            .map(|r| {
                let t = TupleId::new(0, r);
                (t, s.locate_tuple(t, &*db))
            })
            .collect()
    };
    let plan = plan_migration(
        &locate_all(&old),
        &locate_all(&new),
        &*db,
        &PlanConfig {
            max_rows_per_batch: 4,
            ..PlanConfig::default()
        },
    );
    let vs = Arc::new(VersionedScheme::new(old, Arc::clone(&new)));
    let health = Arc::new(HealthMap::new());
    let faults = Arc::new(faults);
    let server = Server::new(
        schema,
        Arc::clone(&store) as Arc<dyn ShardStore>,
        Arc::clone(&vs) as Arc<dyn Scheme>,
        db,
        ServeConfig {
            faults: Some(Arc::clone(&faults)),
            health: Some(Arc::clone(&health)),
            ..ServeConfig::default()
        },
    );
    Fixture {
        server,
        vs,
        new_scheme: new,
        plan,
        store,
        health,
        faults,
    }
}

/// One fully deterministic chaos case: three sessions, one executor, one
/// count-triggered leader kill, all interleaved by the seed's op stream.
fn chaos_case(seed: u64) {
    let mut rng = Rng(seed);
    let victim = (rng.next() % u64::from(K)) as u32;
    let kill_after = 1 + rng.next() % 60;
    let f = fixture(victim, kill_after);
    let db = PkValues::from_schema(f.server.schema());
    let mut exec = MigrationExecutor::new(
        &f.plan,
        &*f.store,
        &f.vs,
        ExecutorConfig {
            health: Some(Arc::clone(&f.health)),
            max_retries: 10_000,
            ..ExecutorConfig::default()
        },
    );
    let mut sessions: Vec<_> = (0..3).map(|i| f.server.session(seed ^ i)).collect();
    let mut model: HashMap<u64, i64> = (0..N_KEYS).map(|k| (k, 0)).collect();
    for step in 0..160 {
        let sid = (rng.next() % 3) as usize;
        let key = rng.next() % N_KEYS;
        match rng.next() % 10 {
            0..=3 => {
                let v = (rng.next() % 100_000) as i64;
                let out = sessions[sid]
                    .execute_sql(&format!("UPDATE account SET bal = {v} WHERE id = {key}"))
                    .unwrap_or_else(|e| panic!("step {step}: write to key {key} failed: {e}"));
                assert_eq!(out.affected, 1, "step {step}: key {key} must exist");
                model.insert(key, v);
            }
            4..=7 => {
                let out = sessions[sid]
                    .execute_sql(&format!("SELECT * FROM account WHERE id = {key}"))
                    .unwrap_or_else(|e| panic!("step {step}: read of key {key} failed: {e}"));
                assert_eq!(out.rows.len(), 1, "step {step}: key {key} must resolve");
                assert_eq!(
                    out.rows[0].1[1],
                    Value::Int(model[&key]),
                    "step {step}: key {key} lost an acked write"
                );
            }
            8 => {
                let k2 = rng.next() % N_KEYS;
                let out = sessions[sid]
                    .execute_sql(&format!("SELECT * FROM account WHERE id IN ({key}, {k2})"))
                    .unwrap_or_else(|e| panic!("step {step}: multi-read failed: {e}"));
                assert_eq!(out.rows.len(), if key == k2 { 1 } else { 2 });
                for (t, row) in &out.rows {
                    assert_eq!(
                        row[1],
                        Value::Int(model[&t.row]),
                        "step {step}: key {}",
                        t.row
                    );
                }
            }
            _ => {
                let outcome = exec.step();
                assert!(
                    !matches!(outcome, StepOutcome::Aborted { .. }),
                    "step {step}: migration aborted: {outcome:?}"
                );
            }
        }
        // Single live leader per key, at every step of the interleaving.
        for k in 0..N_KEYS {
            let t = TupleId::new(0, k);
            let leader = f
                .server
                .current_leader(t)
                .unwrap_or_else(|e| panic!("step {step}: key {k} has no live leader: {e}"));
            assert_eq!(
                leader,
                f.server.current_leader(t).unwrap(),
                "step {step}: leader of key {k} must be deterministic"
            );
            assert!(
                !f.health.is_down(leader),
                "step {step}: key {k} led by down shard {leader}"
            );
            assert!(
                f.vs.replica_set(t, &db).all().contains(leader),
                "step {step}: leader {leader} of key {k} outside its replica set"
            );
        }
    }
    // Drain the migration under whatever outage the seed produced, cut the
    // server over, and re-verify every acknowledged write.
    assert_eq!(exec.run_to_completion(), StepOutcome::Done);
    f.server.install_scheme(Arc::clone(&f.new_scheme));
    drop(sessions);
    let mut check = f.server.session(seed ^ 0xC0DE);
    for (&k, &v) in &model {
        let out = check
            .execute_sql(&format!("SELECT * FROM account WHERE id = {k}"))
            .unwrap_or_else(|e| panic!("post-cutover read of key {k} failed: {e}"));
        assert_eq!(out.rows.len(), 1, "key {k} lost after cutover");
        assert_eq!(out.rows[0].1[1], Value::Int(v), "key {k} value diverged");
    }
    if !f.faults.crashes_fired().is_empty() {
        assert_eq!(
            f.server.failovers(),
            1,
            "one fired kill must mean exactly one failed-over shard"
        );
    }
}

/// Runs one seed; on failure, prints the replay command and drops the seed
/// into `target/chaos-failures/` for CI to upload.
fn run_seed(seed: u64) {
    run_named(seed, chaos_case);
}

/// [`run_seed`] for an arbitrary seeded case function — the replay file and
/// command are per-seed, so every chaos family shares the machinery.
fn run_named(seed: u64, case: fn(u64)) {
    let result = std::panic::catch_unwind(|| case(seed));
    if let Err(payload) = result {
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string());
        eprintln!("chaos case failed; replay with SCHISM_CHAOS_SEED={seed}");
        let dir =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/chaos-failures");
        let _ = std::fs::create_dir_all(&dir);
        let _ = std::fs::write(
            dir.join(format!("seed-{seed}.txt")),
            format!("SCHISM_CHAOS_SEED={seed}\n{msg}\n"),
        );
        panic!("chaos seed {seed} failed: {msg}");
    }
}

/// Eight seeded interleavings (or exactly the one named by
/// `SCHISM_CHAOS_SEED`): sessions, executor steps, and a leader kill whose
/// victim, trigger count, and op stream all derive from the seed.
#[test]
fn chaos_seeded_interleavings() {
    if let Ok(s) = std::env::var("SCHISM_CHAOS_SEED") {
        run_seed(s.parse().expect("SCHISM_CHAOS_SEED must be a u64"));
        return;
    }
    for i in 0..8u64 {
        run_seed(0xC4A0_5EED ^ (i.wrapping_mul(0x9E37_79B9)));
    }
}

/// The fixed scenario the issue names: kill the leader of a hot key while
/// the migration is mid-flight. Every acknowledged write must survive the
/// promotion, and the promoted leader must be a live follower.
#[test]
fn leader_kill_mid_migration_keeps_acked_writes() {
    let db = PkValues::from_schema(&schema());
    let probe: Arc<dyn Scheme> = Arc::new(HashScheme::by_attrs(K, vec![Some(0)]));
    let victim = probe.locate_tuple(TupleId::new(0, 7), &db).first().unwrap();
    let f = fixture(victim, 30);
    let mut exec = MigrationExecutor::new(
        &f.plan,
        &*f.store,
        &f.vs,
        ExecutorConfig {
            health: Some(Arc::clone(&f.health)),
            max_retries: 10_000,
            ..ExecutorConfig::default()
        },
    );
    // Acknowledge a write to every key, then flip a few batches so the
    // kill lands mid-migration.
    let mut writer = f.server.session(1);
    for k in 0..N_KEYS {
        let out = writer
            .execute_sql(&format!(
                "UPDATE account SET bal = {} WHERE id = {k}",
                1000 + k
            ))
            .unwrap();
        assert_eq!(out.affected, 1);
    }
    for _ in 0..3 {
        assert!(!matches!(exec.step(), StepOutcome::Aborted { .. }));
    }
    // Hammer reads until the count-based crash fires; every read must keep
    // returning the acked value straight through the failover.
    let mut reader = f.server.session(2);
    for i in 0..400u64 {
        if !f.faults.crashes_fired().is_empty() {
            break;
        }
        let k = i % N_KEYS;
        let out = reader
            .execute_sql(&format!("SELECT * FROM account WHERE id = {k}"))
            .unwrap();
        assert_eq!(out.rows[0].1[1], Value::Int((1000 + k) as i64));
    }
    assert!(
        !f.faults.crashes_fired().is_empty(),
        "the leader kill must fire under this fixed load"
    );
    assert_eq!(f.server.failovers(), 1);
    assert!(f.health.is_down(victim));
    for k in 0..N_KEYS {
        let t = TupleId::new(0, k);
        let leader = f.server.current_leader(t).unwrap();
        assert_ne!(leader, victim, "key {k} still led by the dead shard");
        assert!(f.vs.replica_set(t, &db).all().contains(leader));
        let out = reader
            .execute_sql(&format!("SELECT * FROM account WHERE id = {k}"))
            .unwrap();
        assert_eq!(
            out.rows[0].1[1],
            Value::Int((1000 + k) as i64),
            "key {k} lost its acked write across the kill"
        );
    }
    // The migration itself must drain with the shard down (live-source
    // reads route around it), and the writes survive cutover.
    assert_eq!(exec.run_to_completion(), StepOutcome::Done);
    f.server.install_scheme(Arc::clone(&f.new_scheme));
    let mut check = f.server.session(3);
    for k in 0..N_KEYS {
        let out = check
            .execute_sql(&format!("SELECT * FROM account WHERE id = {k}"))
            .unwrap();
        assert_eq!(out.rows.len(), 1, "key {k} lost after cutover");
        assert_eq!(out.rows[0].1[1], Value::Int((1000 + k) as i64));
    }
}

/// Wipes a down shard's backend, respawns its worker, and streams it back
/// to the live members' state — the full crash-recovery path a real node
/// replacement would take. Panics if the shard was not strictly down.
fn rejoin(f: &Fixture, shard: u32) {
    f.store.wipe_shard(shard).unwrap();
    assert!(f.server.revive_shard(shard), "shard {shard} must be down");
    run_catch_up(
        shard,
        &f.server.scheme(),
        &**f.server.routing_db(),
        (0..N_KEYS).map(|r| TupleId::new(0, r)),
        &*f.store,
        &f.health,
        &PlanConfig::default(),
        8,
    )
    .unwrap_or_else(|e| panic!("catch-up of shard {shard} failed: {e}"));
}

/// One seeded kill → rejoin → kill-again interleaving at rf=3: the victim
/// crashes mid-traffic, is revived on the fault plan's schedule (wiped
/// disk, catch-up copy, Live flip), then crashes a second time — and with
/// at most one member of any group dead at a time, every write stays
/// available under the majority quorum and no acked write is ever lost.
fn chaos_rejoin_case(seed: u64) {
    let mut rng = Rng(seed ^ 0x5E_ED0F_2E10);
    let victim = (rng.next() % u64::from(K)) as u32;
    let kill1 = 1 + rng.next() % 30;
    let revive_total = 60 + rng.next() % 60;
    let kill2 = kill1 + 40 + rng.next() % 40;
    let faults = FaultPlan::new(seed)
        .crash_worker(victim, kill1)
        .crash_worker(victim, kill2)
        .revive_worker(victim, revive_total);
    let f = fixture_rf(RF3, faults);
    let mut exec = MigrationExecutor::new(
        &f.plan,
        &*f.store,
        &f.vs,
        ExecutorConfig {
            health: Some(Arc::clone(&f.health)),
            max_retries: 10_000,
            ..ExecutorConfig::default()
        },
    );
    let mut sessions: Vec<_> = (0..3).map(|i| f.server.session(seed ^ i)).collect();
    let mut model: HashMap<u64, i64> = (0..N_KEYS).map(|k| (k, 0)).collect();
    for step in 0..240 {
        for shard in f.faults.due_revivals() {
            if f.health.is_down(shard) {
                rejoin(&f, shard);
            }
        }
        let sid = (rng.next() % 3) as usize;
        let key = rng.next() % N_KEYS;
        match rng.next() % 10 {
            0..=3 => {
                let v = (rng.next() % 100_000) as i64;
                let out = sessions[sid]
                    .execute_sql(&format!("UPDATE account SET bal = {v} WHERE id = {key}"))
                    .unwrap_or_else(|e| {
                        panic!("step {step}: write under single failure refused: {e}")
                    });
                assert_eq!(out.affected, 1, "step {step}: key {key} must exist");
                model.insert(key, v);
            }
            4..=8 => {
                let out = sessions[sid]
                    .execute_sql(&format!("SELECT * FROM account WHERE id = {key}"))
                    .unwrap_or_else(|e| panic!("step {step}: read of key {key} failed: {e}"));
                assert_eq!(out.rows.len(), 1, "step {step}: key {key} must resolve");
                assert_eq!(
                    out.rows[0].1[1],
                    Value::Int(model[&key]),
                    "step {step}: key {key} lost an acked write"
                );
            }
            _ => {
                let outcome = exec.step();
                assert!(
                    !matches!(outcome, StepOutcome::Aborted { .. }),
                    "step {step}: migration aborted: {outcome:?}"
                );
            }
        }
    }
    // Whatever the seed produced is replayable; the bookkeeping must agree
    // with it exactly: each fired kill is one failover, each consumed
    // revival one rejoin.
    let fired = f.faults.crashes_fired().len() as u64;
    assert_eq!(f.server.failovers(), fired);
    assert_eq!(f.server.rejoins(), f.health.rejoins());
    if fired == 2 {
        assert_eq!(
            f.server.rejoins(),
            1,
            "a second kill of the same shard requires it to have rejoined"
        );
    }
    assert_eq!(exec.run_to_completion(), StepOutcome::Done);
    f.server.install_scheme(Arc::clone(&f.new_scheme));
    drop(sessions);
    let mut check = f.server.session(seed ^ 0xCA7C);
    for (&k, &v) in &model {
        let out = check
            .execute_sql(&format!("SELECT * FROM account WHERE id = {k}"))
            .unwrap_or_else(|e| panic!("post-cutover read of key {k} failed: {e}"));
        assert_eq!(out.rows.len(), 1, "key {k} lost after cutover");
        assert_eq!(out.rows[0].1[1], Value::Int(v), "key {k} value diverged");
    }
}

/// Six seeded kill → rejoin → kill-again schedules (or exactly the one
/// named by `SCHISM_CHAOS_SEED`, offset to stay disjoint from the base
/// harness's seed space).
#[test]
fn chaos_seeded_kill_rejoin_kill_again() {
    if let Ok(s) = std::env::var("SCHISM_CHAOS_SEED") {
        let seed: u64 = s.parse().expect("SCHISM_CHAOS_SEED must be a u64");
        run_named(seed, chaos_rejoin_case);
        return;
    }
    for i in 0..6u64 {
        run_named(
            0x2E_1015_5EED ^ (i.wrapping_mul(0x9E37_79B9)),
            chaos_rejoin_case,
        );
    }
}

/// The fixed two-failures-in-one-rf=3-group scenario: writes stay
/// available while any majority of the group is live, are refused the
/// moment it is not (without partial application), and a rejoined shard
/// restores both write availability and read service — with no acked
/// write lost across kill → rejoin → kill-again.
#[test]
fn rf3_two_failures_in_one_group_gate_writes_on_majority() {
    let f = fixture_rf(RF3, FaultPlan::new(0xBEEF));
    let db = PkValues::from_schema(f.server.schema());
    let t = TupleId::new(0, 0);
    let rs = f.vs.replica_set(t, &db);
    let leader = rs.leader;
    let followers: Vec<u32> = rs.followers.iter().collect();
    assert_eq!(followers.len(), 2);
    let mut s = f.server.session(11);
    let mut write = |v: i64| {
        s.execute_sql(&format!("UPDATE account SET bal = {v} WHERE id = 0"))
            .map(|out| assert_eq!(out.affected, 1))
    };
    write(111).unwrap();
    // One of three down: quorum (2 of 3) still reachable.
    f.health.mark_down(leader);
    write(222).unwrap();
    // Two of three down: the majority is gone — writes must refuse
    // up front, with nothing partially applied.
    f.health.mark_down(followers[0]);
    assert!(matches!(write(333), Err(ServeError::Unavailable { .. })));
    // A revived-but-catching-up shard counts toward no quorum yet.
    f.store.wipe_shard(leader).unwrap();
    assert!(f.server.revive_shard(leader));
    assert!(matches!(write(444), Err(ServeError::Unavailable { .. })));
    // The lone live member still serves reads, and the refused writes
    // left no trace.
    let mut reader = f.server.session(12);
    let out = reader
        .execute_sql("SELECT * FROM account WHERE id = 0")
        .unwrap();
    assert_eq!(out.rows[0].1[1], Value::Int(222));
    // Catch-up completes from the one live source and restores quorum.
    run_catch_up(
        leader,
        &f.server.scheme(),
        &db,
        (0..N_KEYS).map(|r| TupleId::new(0, r)),
        &*f.store,
        &f.health,
        &PlanConfig::default(),
        8,
    )
    .unwrap();
    let mut s2 = f.server.session(13);
    let mut write = |v: i64| {
        s2.execute_sql(&format!("UPDATE account SET bal = {v} WHERE id = 0"))
            .map(|out| assert_eq!(out.affected, 1))
    };
    write(555).unwrap();
    // Kill-again, this time the member that never failed: the rejoined
    // shard alone is a minority, so writes refuse — but it serves reads
    // with the caught-up (not pre-crash) state.
    f.health.mark_down(followers[1]);
    assert!(matches!(write(666), Err(ServeError::Unavailable { .. })));
    let mut reader2 = f.server.session(14);
    let out = reader2
        .execute_sql("SELECT * FROM account WHERE id = 0")
        .unwrap();
    assert_eq!(
        out.rows[0].1[1],
        Value::Int(555),
        "the rejoined shard must serve the caught-up value"
    );
    // A second rejoin restores the majority once more.
    rejoin(&f, followers[0]);
    let mut s3 = f.server.session(15);
    let out = s3
        .execute_sql("UPDATE account SET bal = 777 WHERE id = 0")
        .unwrap();
    assert_eq!(out.affected, 1);
    let out = s3
        .execute_sql("SELECT * FROM account WHERE id = 0")
        .unwrap();
    assert_eq!(out.rows[0].1[1], Value::Int(777));
    assert_eq!(f.server.failovers(), 3);
    assert_eq!(f.server.rejoins(), 2);
}

/// Read-your-writes across a leader kill: a session that wrote a key keeps
/// reading its own value while the key's leader crashes under it and a
/// follower is promoted.
#[test]
fn session_reads_its_writes_across_leader_kill() {
    let db = PkValues::from_schema(&schema());
    let probe: Arc<dyn Scheme> = Arc::new(HashScheme::by_attrs(K, vec![Some(0)]));
    let victim = probe.locate_tuple(TupleId::new(0, 3), &db).first().unwrap();
    let f = fixture(victim, 4);
    let mut session = f.server.session(9);
    session
        .execute_sql("UPDATE account SET bal = 777 WHERE id = 3")
        .unwrap();
    // The session pins key 3's reads to its leader (the victim), so a few
    // reads are enough to hit the crash threshold; the read that trips it
    // must already be answered by the promoted follower.
    for _ in 0..20 {
        let out = session
            .execute_sql("SELECT * FROM account WHERE id = 3")
            .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].1[1], Value::Int(777));
    }
    assert!(!f.faults.crashes_fired().is_empty());
    assert_eq!(f.server.failovers(), 1);
    let promoted = f.server.current_leader(TupleId::new(0, 3)).unwrap();
    assert_ne!(promoted, victim);
    assert!(f
        .vs
        .replica_set(TupleId::new(0, 3), &db)
        .all()
        .contains(promoted));
}
