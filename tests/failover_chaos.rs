//! Chaos harness for the serve/migrate/store stack: seeded, replayable
//! interleavings of client sessions, migration-executor steps, and a
//! deterministic leader kill injected by a [`FaultPlan`].
//!
//! Invariants checked at every step:
//!
//! 1. **No lost acknowledged writes** — every value a session saw acked is
//!    returned by every later read, through the kill and after cutover.
//! 2. **Read-your-writes** — a session's reads of its own write set hold.
//! 3. **Single live leader per key** — `current_leader` is deterministic,
//!    names a live shard, and stays inside the key's replica set.
//!
//! The vendored proptest has no failure persistence, so the harness rolls
//! its own replayability: every case is driven by one u64 seed; a failing
//! case prints `replay with SCHISM_CHAOS_SEED=<seed>` and writes the seed
//! plus panic message under `target/chaos-failures/` (uploaded as a CI
//! artifact). `SCHISM_CHAOS_SEED=<seed> cargo test -p schism chaos` reruns
//! exactly that interleaving — all fault triggers are count-based, not
//! timer-based, so the replay is bit-identical.

use schism_migrate::{plan_migration, ExecutorConfig, MigrationExecutor, PlanConfig, StepOutcome};
use schism_router::{
    HashScheme, IndexBackend, LookupBackend, LookupScheme, MissPolicy, PartitionSet,
    ReplicatedScheme, RowKey, Scheme, VersionedScheme,
};
use schism_serve::{load_table, FaultPlan, PkValues, ServeConfig, Server};
use schism_sql::{ColumnType, Schema, Value};
use schism_store::{HealthMap, MemStore, ShardHealth, ShardStore};
use schism_workload::{TupleId, TupleValues};
use std::collections::HashMap;
use std::sync::Arc;

const K: u32 = 4;
const RF: u32 = 2;
const N_KEYS: u64 = 32;

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(1);
        splitmix(self.0)
    }
}

fn schema() -> Arc<Schema> {
    let mut s = Schema::new();
    s.add_table(
        "account",
        &[("id", ColumnType::Int), ("bal", ColumnType::Int)],
        &["id"],
    );
    Arc::new(s)
}

struct Fixture {
    server: Server,
    vs: Arc<VersionedScheme>,
    new_scheme: Arc<dyn Scheme>,
    plan: schism_migrate::MigrationPlan,
    store: Arc<MemStore>,
    health: Arc<HealthMap>,
    faults: Arc<FaultPlan>,
}

/// `N_KEYS` accounts under an rf=2 replicated hash scheme, migrating to an
/// rf=2 replicated lookup scheme that rotates every key's primary to the
/// next shard. `victim`'s worker crashes on its `kill_after`-th dequeue;
/// the serve path and the executor share one [`HealthMap`].
fn fixture(victim: u32, kill_after: u64) -> Fixture {
    let schema = schema();
    let store = Arc::new(MemStore::new(K));
    let db: Arc<dyn TupleValues> = Arc::new(PkValues::from_schema(&schema));
    let old_inner: Arc<dyn Scheme> = Arc::new(HashScheme::by_attrs(K, vec![Some(0)]));
    let entries: Vec<(u64, PartitionSet)> = (0..N_KEYS)
        .map(|r| {
            let t = TupleId::new(0, r);
            let from = old_inner.locate_tuple(t, &*db).first().unwrap();
            (r, PartitionSet::single((from + 1) % K))
        })
        .collect();
    let new_inner: Arc<dyn Scheme> = Arc::new(LookupScheme::new(
        K,
        vec![Some(
            Box::new(IndexBackend::new(entries)) as Box<dyn LookupBackend>
        )],
        vec![Some(RowKey { col: 0, offset: 0 })],
        MissPolicy::HashRow,
    ));
    let old: Arc<dyn Scheme> = Arc::new(ReplicatedScheme::new(RF, old_inner));
    let new: Arc<dyn Scheme> = Arc::new(ReplicatedScheme::new(RF, new_inner));
    load_table(
        &*store,
        &*old,
        &*db,
        &schema,
        0,
        (0..N_KEYS).map(|i| vec![Value::Int(i as i64), Value::Int(0)]),
    )
    .unwrap();
    let locate_all = |s: &Arc<dyn Scheme>| -> HashMap<TupleId, PartitionSet> {
        (0..N_KEYS)
            .map(|r| {
                let t = TupleId::new(0, r);
                (t, s.locate_tuple(t, &*db))
            })
            .collect()
    };
    let plan = plan_migration(
        &locate_all(&old),
        &locate_all(&new),
        &*db,
        &PlanConfig {
            max_rows_per_batch: 4,
            ..PlanConfig::default()
        },
    );
    let vs = Arc::new(VersionedScheme::new(old, Arc::clone(&new)));
    let health = Arc::new(HealthMap::new());
    let faults =
        Arc::new(FaultPlan::new(victim as u64 ^ kill_after).crash_worker(victim, kill_after));
    let server = Server::new(
        schema,
        Arc::clone(&store) as Arc<dyn ShardStore>,
        Arc::clone(&vs) as Arc<dyn Scheme>,
        db,
        ServeConfig {
            faults: Some(Arc::clone(&faults)),
            health: Some(Arc::clone(&health)),
            ..ServeConfig::default()
        },
    );
    Fixture {
        server,
        vs,
        new_scheme: new,
        plan,
        store,
        health,
        faults,
    }
}

/// One fully deterministic chaos case: three sessions, one executor, one
/// count-triggered leader kill, all interleaved by the seed's op stream.
fn chaos_case(seed: u64) {
    let mut rng = Rng(seed);
    let victim = (rng.next() % u64::from(K)) as u32;
    let kill_after = 1 + rng.next() % 60;
    let f = fixture(victim, kill_after);
    let db = PkValues::from_schema(f.server.schema());
    let mut exec = MigrationExecutor::new(
        &f.plan,
        &*f.store,
        &f.vs,
        ExecutorConfig {
            health: Some(Arc::clone(&f.health)),
            max_retries: 10_000,
            ..ExecutorConfig::default()
        },
    );
    let mut sessions: Vec<_> = (0..3).map(|i| f.server.session(seed ^ i)).collect();
    let mut model: HashMap<u64, i64> = (0..N_KEYS).map(|k| (k, 0)).collect();
    for step in 0..160 {
        let sid = (rng.next() % 3) as usize;
        let key = rng.next() % N_KEYS;
        match rng.next() % 10 {
            0..=3 => {
                let v = (rng.next() % 100_000) as i64;
                let out = sessions[sid]
                    .execute_sql(&format!("UPDATE account SET bal = {v} WHERE id = {key}"))
                    .unwrap_or_else(|e| panic!("step {step}: write to key {key} failed: {e}"));
                assert_eq!(out.affected, 1, "step {step}: key {key} must exist");
                model.insert(key, v);
            }
            4..=7 => {
                let out = sessions[sid]
                    .execute_sql(&format!("SELECT * FROM account WHERE id = {key}"))
                    .unwrap_or_else(|e| panic!("step {step}: read of key {key} failed: {e}"));
                assert_eq!(out.rows.len(), 1, "step {step}: key {key} must resolve");
                assert_eq!(
                    out.rows[0].1[1],
                    Value::Int(model[&key]),
                    "step {step}: key {key} lost an acked write"
                );
            }
            8 => {
                let k2 = rng.next() % N_KEYS;
                let out = sessions[sid]
                    .execute_sql(&format!("SELECT * FROM account WHERE id IN ({key}, {k2})"))
                    .unwrap_or_else(|e| panic!("step {step}: multi-read failed: {e}"));
                assert_eq!(out.rows.len(), if key == k2 { 1 } else { 2 });
                for (t, row) in &out.rows {
                    assert_eq!(
                        row[1],
                        Value::Int(model[&t.row]),
                        "step {step}: key {}",
                        t.row
                    );
                }
            }
            _ => {
                let outcome = exec.step();
                assert!(
                    !matches!(outcome, StepOutcome::Aborted { .. }),
                    "step {step}: migration aborted: {outcome:?}"
                );
            }
        }
        // Single live leader per key, at every step of the interleaving.
        for k in 0..N_KEYS {
            let t = TupleId::new(0, k);
            let leader = f
                .server
                .current_leader(t)
                .unwrap_or_else(|e| panic!("step {step}: key {k} has no live leader: {e}"));
            assert_eq!(
                leader,
                f.server.current_leader(t).unwrap(),
                "step {step}: leader of key {k} must be deterministic"
            );
            assert!(
                !f.health.is_down(leader),
                "step {step}: key {k} led by down shard {leader}"
            );
            assert!(
                f.vs.replica_set(t, &db).all().contains(leader),
                "step {step}: leader {leader} of key {k} outside its replica set"
            );
        }
    }
    // Drain the migration under whatever outage the seed produced, cut the
    // server over, and re-verify every acknowledged write.
    assert_eq!(exec.run_to_completion(), StepOutcome::Done);
    f.server.install_scheme(Arc::clone(&f.new_scheme));
    drop(sessions);
    let mut check = f.server.session(seed ^ 0xC0DE);
    for (&k, &v) in &model {
        let out = check
            .execute_sql(&format!("SELECT * FROM account WHERE id = {k}"))
            .unwrap_or_else(|e| panic!("post-cutover read of key {k} failed: {e}"));
        assert_eq!(out.rows.len(), 1, "key {k} lost after cutover");
        assert_eq!(out.rows[0].1[1], Value::Int(v), "key {k} value diverged");
    }
    if !f.faults.crashes_fired().is_empty() {
        assert_eq!(
            f.server.failovers(),
            1,
            "one fired kill must mean exactly one failed-over shard"
        );
    }
}

/// Runs one seed; on failure, prints the replay command and drops the seed
/// into `target/chaos-failures/` for CI to upload.
fn run_seed(seed: u64) {
    let result = std::panic::catch_unwind(|| chaos_case(seed));
    if let Err(payload) = result {
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string());
        eprintln!("chaos case failed; replay with SCHISM_CHAOS_SEED={seed}");
        let dir =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/chaos-failures");
        let _ = std::fs::create_dir_all(&dir);
        let _ = std::fs::write(
            dir.join(format!("seed-{seed}.txt")),
            format!("SCHISM_CHAOS_SEED={seed}\n{msg}\n"),
        );
        panic!("chaos seed {seed} failed: {msg}");
    }
}

/// Eight seeded interleavings (or exactly the one named by
/// `SCHISM_CHAOS_SEED`): sessions, executor steps, and a leader kill whose
/// victim, trigger count, and op stream all derive from the seed.
#[test]
fn chaos_seeded_interleavings() {
    if let Ok(s) = std::env::var("SCHISM_CHAOS_SEED") {
        run_seed(s.parse().expect("SCHISM_CHAOS_SEED must be a u64"));
        return;
    }
    for i in 0..8u64 {
        run_seed(0xC4A0_5EED ^ (i.wrapping_mul(0x9E37_79B9)));
    }
}

/// The fixed scenario the issue names: kill the leader of a hot key while
/// the migration is mid-flight. Every acknowledged write must survive the
/// promotion, and the promoted leader must be a live follower.
#[test]
fn leader_kill_mid_migration_keeps_acked_writes() {
    let db = PkValues::from_schema(&schema());
    let probe: Arc<dyn Scheme> = Arc::new(HashScheme::by_attrs(K, vec![Some(0)]));
    let victim = probe.locate_tuple(TupleId::new(0, 7), &db).first().unwrap();
    let f = fixture(victim, 30);
    let mut exec = MigrationExecutor::new(
        &f.plan,
        &*f.store,
        &f.vs,
        ExecutorConfig {
            health: Some(Arc::clone(&f.health)),
            max_retries: 10_000,
            ..ExecutorConfig::default()
        },
    );
    // Acknowledge a write to every key, then flip a few batches so the
    // kill lands mid-migration.
    let mut writer = f.server.session(1);
    for k in 0..N_KEYS {
        let out = writer
            .execute_sql(&format!(
                "UPDATE account SET bal = {} WHERE id = {k}",
                1000 + k
            ))
            .unwrap();
        assert_eq!(out.affected, 1);
    }
    for _ in 0..3 {
        assert!(!matches!(exec.step(), StepOutcome::Aborted { .. }));
    }
    // Hammer reads until the count-based crash fires; every read must keep
    // returning the acked value straight through the failover.
    let mut reader = f.server.session(2);
    for i in 0..400u64 {
        if !f.faults.crashes_fired().is_empty() {
            break;
        }
        let k = i % N_KEYS;
        let out = reader
            .execute_sql(&format!("SELECT * FROM account WHERE id = {k}"))
            .unwrap();
        assert_eq!(out.rows[0].1[1], Value::Int((1000 + k) as i64));
    }
    assert!(
        !f.faults.crashes_fired().is_empty(),
        "the leader kill must fire under this fixed load"
    );
    assert_eq!(f.server.failovers(), 1);
    assert!(f.health.is_down(victim));
    for k in 0..N_KEYS {
        let t = TupleId::new(0, k);
        let leader = f.server.current_leader(t).unwrap();
        assert_ne!(leader, victim, "key {k} still led by the dead shard");
        assert!(f.vs.replica_set(t, &db).all().contains(leader));
        let out = reader
            .execute_sql(&format!("SELECT * FROM account WHERE id = {k}"))
            .unwrap();
        assert_eq!(
            out.rows[0].1[1],
            Value::Int((1000 + k) as i64),
            "key {k} lost its acked write across the kill"
        );
    }
    // The migration itself must drain with the shard down (live-source
    // reads route around it), and the writes survive cutover.
    assert_eq!(exec.run_to_completion(), StepOutcome::Done);
    f.server.install_scheme(Arc::clone(&f.new_scheme));
    let mut check = f.server.session(3);
    for k in 0..N_KEYS {
        let out = check
            .execute_sql(&format!("SELECT * FROM account WHERE id = {k}"))
            .unwrap();
        assert_eq!(out.rows.len(), 1, "key {k} lost after cutover");
        assert_eq!(out.rows[0].1[1], Value::Int((1000 + k) as i64));
    }
}

/// Read-your-writes across a leader kill: a session that wrote a key keeps
/// reading its own value while the key's leader crashes under it and a
/// follower is promoted.
#[test]
fn session_reads_its_writes_across_leader_kill() {
    let db = PkValues::from_schema(&schema());
    let probe: Arc<dyn Scheme> = Arc::new(HashScheme::by_attrs(K, vec![Some(0)]));
    let victim = probe.locate_tuple(TupleId::new(0, 3), &db).first().unwrap();
    let f = fixture(victim, 4);
    let mut session = f.server.session(9);
    session
        .execute_sql("UPDATE account SET bal = 777 WHERE id = 3")
        .unwrap();
    // The session pins key 3's reads to its leader (the victim), so a few
    // reads are enough to hit the crash threshold; the read that trips it
    // must already be answered by the promoted follower.
    for _ in 0..20 {
        let out = session
            .execute_sql("SELECT * FROM account WHERE id = 3")
            .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].1[1], Value::Int(777));
    }
    assert!(!f.faults.crashes_fired().is_empty());
    assert_eq!(f.server.failovers(), 1);
    let promoted = f.server.current_leader(TupleId::new(0, 3)).unwrap();
    assert_ne!(promoted, victim);
    assert!(f
        .vs
        .replica_set(TupleId::new(0, 3), &db)
        .all()
        .contains(promoted));
}
