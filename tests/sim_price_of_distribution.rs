//! Integration: the §3 result must emerge from the simulator + workload +
//! router stack — distributed transactions cost ~2x in throughput and
//! latency versus single-partition execution of the same work.

use schism_router::{PartitionSet, RangeRule, RangeScheme, TablePolicy};
use schism_sim::{run, PoolSource, SimConfig, SimTxn};
use schism_workload::simplecount::{self, AccessMode, SimpleCountConfig};

fn stripes(rows: u64, servers: u32) -> RangeScheme {
    let stripe = rows / servers as u64;
    let rules: Vec<RangeRule> = (0..servers)
        .map(|p| RangeRule {
            conds: vec![(
                0,
                (p as u64 * stripe) as i64,
                if p == servers - 1 {
                    i64::MAX
                } else {
                    ((p as u64 + 1) * stripe - 1) as i64
                },
            )],
            partitions: PartitionSet::single(p),
        })
        .collect();
    RangeScheme::new(
        servers,
        vec![TablePolicy::Rules {
            rules,
            default: PartitionSet::single(0),
        }],
    )
}

#[test]
fn distributed_transactions_halve_throughput() {
    let servers = 3u32;
    let mut results = Vec::new();
    for mode in [AccessMode::SinglePartition, AccessMode::Distributed] {
        let w = simplecount::generate(&SimpleCountConfig {
            servers,
            mode,
            num_txns: 3_000,
            ..Default::default()
        });
        let scheme = stripes(w.total_tuples(), servers);
        let pool = SimTxn::from_trace(&w.trace, &scheme, &*w.db);
        // Shorter run than the figure binary keeps the test fast.
        let cfg = SimConfig {
            num_clients: 90,
            warmup: 1_000_000,
            duration: 6_000_000,
            ..SimConfig::figure1(servers)
        };
        results.push(run(&cfg, &mut PoolSource::new(pool)));
    }
    let (single, dist) = (&results[0], &results[1]);
    assert!(
        single.completed > 1_000,
        "single completed {}",
        single.completed
    );
    let ratio = single.throughput / dist.throughput;
    assert!(
        (1.6..=2.8).contains(&ratio),
        "throughput ratio {ratio:.2} outside the ~2x band ({} vs {})",
        single.throughput,
        dist.throughput
    );
    assert!(
        dist.mean_latency_ms > 1.5 * single.mean_latency_ms,
        "latency {} vs {}",
        dist.mean_latency_ms,
        single.mean_latency_ms
    );
    // The router marked the right transactions distributed.
    assert!(single.distributed_fraction < 0.01);
    assert!(dist.distributed_fraction > 0.99);
}
