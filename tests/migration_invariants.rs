//! Property-based invariants of the migration subsystem: plan completeness,
//! single-owner resolution mid-migration through the versioned router, and
//! the relabeling never-worse-than-identity guarantee.

use proptest::prelude::*;
use schism_migrate::{plan_migration, relabel, PlanConfig};
use schism_router::{
    IndexBackend, LookupBackend, LookupScheme, MissPolicy, PartitionSet, Scheme, VersionedScheme,
};
use schism_workload::{MaterializedDb, TupleId};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

fn assignment(pairs: &[(u64, u32)]) -> HashMap<TupleId, PartitionSet> {
    pairs
        .iter()
        .map(|&(r, p)| (TupleId::new(0, r), PartitionSet::single(p)))
        .collect()
}

/// Single-owner lookup scheme over an explicit row→partition map.
fn lookup_scheme(pairs: &[(u64, u32)], k: u32) -> Arc<dyn Scheme> {
    let entries: Vec<(u64, PartitionSet)> = pairs
        .iter()
        .map(|&(r, p)| (r, PartitionSet::single(p)))
        .collect();
    Arc::new(LookupScheme::new(
        k,
        vec![Some(
            Box::new(IndexBackend::new(entries)) as Box<dyn LookupBackend>
        )],
        vec![None],
        MissPolicy::HashRow,
    ))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every tuple whose placement changed appears in the plan exactly
    /// once; tuples with unchanged placement never appear; batch budgets
    /// hold.
    #[test]
    fn plan_moves_every_changed_tuple_exactly_once(
        rows in prop::collection::vec((0..200u64, 0..6u32, 0..6u32), 1..120),
        max_rows in 1..10usize,
    ) {
        // Dedup rows: the last write wins, as in a HashMap.
        let mut old_pairs: Vec<(u64, u32)> = Vec::new();
        let mut new_pairs: Vec<(u64, u32)> = Vec::new();
        for &(r, po, pn) in &rows {
            old_pairs.push((r, po));
            new_pairs.push((r, pn));
        }
        let old = assignment(&old_pairs);
        let new = assignment(&new_pairs);
        let cfg = PlanConfig { max_rows_per_batch: max_rows, ..Default::default() };
        let plan = plan_migration(&old, &new, &MaterializedDb::new(), &cfg);

        let changed: HashSet<TupleId> = new
            .iter()
            .filter(|(t, ps)| old.get(t).is_some_and(|o| o != *ps))
            .map(|(&t, _)| t)
            .collect();
        let mut seen: HashSet<TupleId> = HashSet::new();
        for m in plan.moves() {
            prop_assert!(seen.insert(m.tuple), "tuple {} moved twice", m.tuple);
            prop_assert!(changed.contains(&m.tuple), "tuple {} did not change", m.tuple);
            prop_assert_eq!(m.from, old[&m.tuple]);
            prop_assert_eq!(m.to, new[&m.tuple]);
        }
        prop_assert_eq!(seen.len(), changed.len(), "some changed tuple was never planned");
        prop_assert_eq!(plan.total_moves, changed.len());
        for b in &plan.batches {
            prop_assert!(!b.moves.is_empty());
            prop_assert!(b.moves.len() <= max_rows);
        }
    }

    /// Mid-migration the versioned scheme resolves every key to exactly
    /// one live partition at every step: the old owner before its move,
    /// the new owner after, never both and never none.
    #[test]
    fn versioned_router_single_owner_at_every_step(
        rows in prop::collection::vec((0..80u64, 0..5u32, 0..5u32), 1..60),
        k in 5..8u32,
    ) {
        let mut old_pairs: Vec<(u64, u32)> = Vec::new();
        let mut new_pairs: Vec<(u64, u32)> = Vec::new();
        for &(r, po, pn) in &rows {
            old_pairs.push((r, po));
            new_pairs.push((r, pn));
        }
        let old_map = assignment(&old_pairs);
        let new_map = assignment(&new_pairs);
        let db = MaterializedDb::new();
        let old = lookup_scheme(&old_pairs, k);
        let new = lookup_scheme(&new_pairs, k);
        let vs = VersionedScheme::new(old.clone(), new.clone());

        let plan = plan_migration(&old_map, &new_map, &db, &PlanConfig::default());
        let keys: Vec<TupleId> = old_map.keys().copied().collect();
        let mut moved: HashSet<TupleId> = HashSet::new();

        let check_all = |moved: &HashSet<TupleId>| {
            for &t in &keys {
                let loc = vs.locate_tuple(t, &db);
                assert_eq!(loc.len(), 1, "tuple {} has {} owners", t, loc.len());
                let expect = if moved.contains(&t) {
                    new.locate_tuple(t, &db)
                } else {
                    old.locate_tuple(t, &db)
                };
                assert_eq!(loc, expect, "tuple {t} resolved to the wrong epoch");
            }
        };

        check_all(&moved); // before the first batch
        for batch in &plan.batches {
            for m in &batch.moves {
                vs.mark_moved(m.tuple);
                moved.insert(m.tuple);
                check_all(&moved); // after every single move
            }
        }
        prop_assert_eq!(vs.moved_count(), plan.total_moves);
    }

    /// Relabeling never moves more tuples than the identity mapping, and
    /// its mapping is always a permutation.
    #[test]
    fn relabeling_never_worse_than_identity(
        rows in prop::collection::vec((0..300u64, 0..7u32, 0..7u32), 1..200),
        k in 1..8u32,
    ) {
        let old = assignment(
            &rows.iter().map(|&(r, p, _)| (r, p % k)).collect::<Vec<_>>(),
        );
        let new = assignment(
            &rows.iter().map(|&(r, _, p)| (r, p % k)).collect::<Vec<_>>(),
        );
        let r = relabel(&old, &new, k);
        prop_assert!(r.moved <= r.identity_moved);
        prop_assert!(r.moved <= r.common);
        let mut sorted = r.mapping.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..k).collect::<Vec<_>>(), "not a permutation");
    }
}
