//! Cross-crate integration: the full Schism pipeline on every workload
//! family, asserting the paper's headline outcomes at test-friendly scale.

use schism_core::{Schism, SchismConfig};
use schism_workload::epinions::{self, EpinionsConfig};
use schism_workload::random::{self, RandomConfig};
use schism_workload::tpcc::{self, TpccConfig};
use schism_workload::tpce::{self, TpceConfig};
use schism_workload::ycsb::{self, YcsbConfig};

#[test]
fn ycsb_a_chooses_hashing_at_zero_cost() {
    let w = ycsb::generate(&YcsbConfig {
        records: 2_000,
        num_txns: 4_000,
        ..YcsbConfig::workload_a()
    });
    let rec = Schism::new(SchismConfig::new(2)).run(&w);
    assert_eq!(rec.chosen(), "hashing");
    assert!(rec.chosen_fraction() < 0.01, "{}", rec.chosen_fraction());
}

#[test]
fn ycsb_e_scans_defeat_hashing() {
    let w = ycsb::generate(&YcsbConfig {
        records: 5_000,
        num_txns: 6_000,
        ..YcsbConfig::workload_e()
    });
    let rec = Schism::new(SchismConfig::new(2)).run(&w);
    // Ranges (or lookup) near zero; hashing pays for almost every scan.
    assert!(rec.chosen_fraction() < 0.05, "{}", rec.chosen_fraction());
    let hash = rec.fraction_of("hashing").unwrap();
    assert!(hash > 0.4, "hashing should be bad: {hash}");
    assert_ne!(rec.chosen(), "hashing");
}

#[test]
fn tpcc_derives_warehouse_partitioning() {
    let w = tpcc::generate(&TpccConfig {
        num_txns: 12_000,
        ..TpccConfig::small(2)
    });
    let rec = Schism::new(SchismConfig::new(2)).run(&w);
    assert_eq!(
        rec.chosen(),
        "range-predicates",
        "candidates: {:?}",
        rec.validation
            .candidates
            .iter()
            .map(|c| (c.name.clone(), c.fraction()))
            .collect::<Vec<_>>()
    );
    // Cost ~= the multi-warehouse fraction (10.7%), far below hashing.
    assert!(
        (0.06..=0.2).contains(&rec.chosen_fraction()),
        "{}",
        rec.chosen_fraction()
    );
    // The item table must be replicated in the explanation.
    let item = rec
        .explanation
        .per_table
        .iter()
        .find(|e| e.table_name == "item")
        .expect("item table explained");
    assert!(
        matches!(item.policy, schism_router::TablePolicy::Replicate),
        "item policy: {:?}",
        item.rules_rendered
    );
}

#[test]
fn epinions_lookup_beats_all_simple_schemes() {
    let w = epinions::generate(&EpinionsConfig {
        users: 1_000,
        items: 2_000,
        reviews: 10_000,
        trust_edges: 5_000,
        num_txns: 15_000,
        ..Default::default()
    });
    let mut cfg = SchismConfig::new(2);
    cfg.partitioner.epsilon = 0.1;
    let rec = Schism::new(cfg).run(&w);
    assert_eq!(
        rec.chosen(),
        "lookup-table",
        "candidates: {:?}",
        rec.validation
            .candidates
            .iter()
            .map(|c| (c.name.clone(), c.fraction()))
            .collect::<Vec<_>>()
    );
    let lookup = rec.fraction_of("lookup-table").unwrap();
    let replication = rec.fraction_of("replication").unwrap();
    assert!(
        lookup < replication,
        "lookup {lookup} vs replication {replication}"
    );
}

#[test]
fn random_falls_back_to_hash() {
    let w = random::generate(&RandomConfig {
        records: 20_000,
        num_txns: 8_000,
        ..Default::default()
    });
    let rec = Schism::new(SchismConfig::new(2)).run(&w);
    assert_eq!(rec.chosen(), "hashing");
    assert!((0.4..=0.6).contains(&rec.chosen_fraction()));
}

#[test]
fn tpce_runs_end_to_end() {
    // TPC-E is the stress test for schema complexity (17 tables, 10 txn
    // types). The join-based explanation of §5.2 is not implemented, so we
    // only assert the pipeline completes and beats hashing soundly.
    let w = tpce::generate(&TpceConfig {
        num_txns: 8_000,
        ..TpceConfig::small()
    });
    let rec = Schism::new(SchismConfig::new(2)).run(&w);
    let chosen = rec.chosen_fraction();
    let hash = schism_router::evaluate(&schism_router::HashScheme::by_row_id(2), &w.trace, &*w.db)
        .distributed_fraction();
    assert!(chosen < hash * 0.6, "chosen {chosen} vs hash {hash}");
}

#[test]
fn deterministic_recommendations() {
    let w = ycsb::generate(&YcsbConfig {
        records: 1_000,
        num_txns: 2_000,
        ..YcsbConfig::workload_e()
    });
    let a = Schism::new(SchismConfig::new(2)).run(&w);
    let b = Schism::new(SchismConfig::new(2)).run(&w);
    assert_eq!(a.chosen(), b.chosen());
    assert_eq!(a.chosen_fraction(), b.chosen_fraction());
    assert_eq!(a.edge_cut, b.edge_cut);
}
