//! Property-based invariants across the workspace's core data structures:
//! the graph partitioner, partition sets, Bloom-backed lookup tables, the
//! replication-aware router, and the decision tree.

use proptest::prelude::*;
use schism_graph::{partition, GraphBuilder, PartitionerConfig};
use schism_ml::{extract_rules, DatasetBuilder, DecisionTree, TreeConfig};
use schism_router::{
    route_transaction, BloomBackend, IndexBackend, LookupBackend, LookupScheme, MissPolicy,
    PartitionSet,
};
use schism_workload::{MaterializedDb, TupleId, TxnBuilder};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every vertex is assigned a partition in range, and the balance
    /// constraint holds (up to one max-weight vertex of slack).
    #[test]
    fn partitioner_assignment_is_valid(
        edges in prop::collection::vec((0..60u32, 0..60u32, 1..5u32), 1..300),
        k in 1..6u32,
        seed in 0..50u64,
    ) {
        let mut b = GraphBuilder::new(60);
        for (u, v, w) in edges {
            b.add_edge(u, v, w);
        }
        let g = b.build();
        let cfg = PartitionerConfig { k, seed, ..Default::default() };
        let p = partition(&g, &cfg);
        prop_assert_eq!(p.assignment.len(), g.num_vertices());
        prop_assert!(p.assignment.iter().all(|&a| a < k));
        // Reported cut must equal a recount.
        prop_assert_eq!(p.edge_cut, schism_graph::edge_cut(&g, &p.assignment));
        // Balance: within (1+eps)*total/k plus one vertex of slack.
        let cap = ((g.total_vertex_weight() as f64) * 1.05 / k as f64).ceil() as u64 + 1;
        for &w in &p.part_weights {
            prop_assert!(w <= cap, "weight {} > cap {}", w, cap);
        }
    }

    /// PartitionSet behaves like a set of u32 under insert/union/intersect.
    #[test]
    fn partition_set_is_a_set(
        a in prop::collection::btree_set(0..256u32, 0..40),
        b in prop::collection::btree_set(0..256u32, 0..40),
    ) {
        let pa: PartitionSet = a.iter().copied().collect();
        let pb: PartitionSet = b.iter().copied().collect();
        prop_assert_eq!(pa.len() as usize, a.len());
        let union: Vec<u32> = pa.union(&pb).iter().collect();
        let expect: Vec<u32> = a.union(&b).copied().collect();
        prop_assert_eq!(union, expect);
        let inter: Vec<u32> = pa.intersect(&pb).iter().collect();
        let expect: Vec<u32> = a.intersection(&b).copied().collect();
        prop_assert_eq!(inter, expect);
        for x in &a {
            prop_assert!(pa.contains(*x));
        }
    }

    /// A Bloom-backed lookup table may add partitions (false positives) but
    /// never loses a tuple's true home relative to the exact index.
    #[test]
    fn bloom_lookup_is_superset_of_index(
        rows in prop::collection::vec(0..10_000u64, 1..200),
        k in 2..8u32,
    ) {
        let entries: Vec<(u64, PartitionSet)> = rows
            .iter()
            .map(|&r| (r, PartitionSet::single((r % k as u64) as u32)))
            .collect();
        let index = IndexBackend::new(entries.clone());
        let bloom = BloomBackend::new(k, entries.len(), 0.05, entries);
        for &r in &rows {
            let exact = index.get(r).expect("present in index");
            let fuzzy = bloom.get(r).expect("present in bloom");
            prop_assert_eq!(fuzzy.union(&exact), fuzzy, "bloom lost home of {}", r);
        }
    }

    /// The router never returns an empty participant set, and includes
    /// every write's full copy set.
    #[test]
    fn router_covers_all_writes(
        reads in prop::collection::vec(0..500u64, 0..10),
        writes in prop::collection::vec(0..500u64, 0..10),
        k in 1..6u32,
    ) {
        let entries: Vec<(u64, PartitionSet)> = (0..500u64)
            .map(|r| {
                if r % 7 == 0 {
                    (r, PartitionSet::all(k))
                } else {
                    (r, PartitionSet::single((r % k as u64) as u32))
                }
            })
            .collect();
        let scheme = LookupScheme::new(
            k,
            vec![Some(Box::new(IndexBackend::new(entries)) as Box<dyn LookupBackend>)],
            vec![None],
            MissPolicy::HashRow,
        );
        let db = MaterializedDb::new();
        let mut tb = TxnBuilder::new(false);
        for &r in &reads {
            tb.read(TupleId::new(0, r));
        }
        for &w in &writes {
            tb.write(TupleId::new(0, w));
        }
        let txn = tb.finish();
        let participants = route_transaction(&txn, &scheme, &db);
        prop_assert!(!participants.set.is_empty());
        use schism_router::Scheme;
        for &w in &writes {
            let home = scheme.locate_tuple(TupleId::new(0, w), &db);
            prop_assert_eq!(
                participants.set.union(&home),
                participants.set,
                "write {} copies not covered", w
            );
        }
    }

    /// Decision-tree rules and tree predictions agree on every training
    /// row, and the rules tile the space (exactly one matches).
    #[test]
    fn tree_rules_agree_with_predictions(
        rows in prop::collection::vec((0..100i64, 0..100i64, 0..4u32), 5..150),
    ) {
        let mut b = DatasetBuilder::new().numeric("x").numeric("y");
        for &(x, y, label) in &rows {
            b.row(&[x, y], label);
        }
        let ds = b.build();
        let tree = DecisionTree::train(&ds, &TreeConfig { prune_cf: 1.0, ..Default::default() });
        let rules = extract_rules(&tree, &ds);
        for &(x, y, _) in &rows {
            let matched: Vec<_> = rules.iter().filter(|r| r.matches(&[x, y])).collect();
            prop_assert_eq!(matched.len(), 1, "row ({},{}) matched {} rules", x, y, matched.len());
            prop_assert_eq!(matched[0].label, tree.predict(&[x, y]));
        }
    }
}
