//! Property pins for the streaming graph builder's sampling heuristics
//! (§5.1) and its ingestion contract:
//!
//! - transaction/tuple sampling may only *shrink* the node set — every
//!   tuple surviving a sampled build exists in the full build;
//! - `BuildStats` bookkeeping (`sampled_txns`, `dropped_scans`) and the
//!   whole graph are identical between chunked (streaming-source) and
//!   whole-trace ingestion, for any sampling rate and seed;
//! - the sharded pass-1 merge (`SchismConfig::merge_shards`) is invisible
//!   in the output: every shard count × thread count × ingestion path
//!   digests identically to the single-map merge.

use proptest::prelude::*;
use schism_core::{build_graph, build_graph_source, GraphBackend, SchismConfig};
use schism_workload::drifting::{self, DriftingConfig};
use schism_workload::ycsb::{self, YcsbConfig};
use schism_workload::TraceSource;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// A sampled build's node set is a subset of the full build's, and the
    /// sampled transaction count never exceeds the trace.
    #[test]
    fn sampling_yields_a_subset_of_the_full_node_set(
        txn_pct in 20..=100u32,
        tuple_pct in 20..=100u32,
        seed in 0..20u64,
    ) {
        let w = ycsb::generate(&YcsbConfig {
            records: 600,
            num_txns: 800,
            seed,
            ..YcsbConfig::workload_e()
        });
        let mut full_cfg = SchismConfig::new(2);
        full_cfg.seed = seed;
        let full = build_graph(&w, &w.trace, &full_cfg);

        let mut sampled_cfg = full_cfg.clone();
        sampled_cfg.txn_sample = f64::from(txn_pct) / 100.0;
        sampled_cfg.tuple_sample = f64::from(tuple_pct) / 100.0;
        let sampled = build_graph(&w, &w.trace, &sampled_cfg);

        let full_set: HashSet<_> = full.tuples().iter().copied().collect();
        for t in sampled.tuples() {
            prop_assert!(
                full_set.contains(t),
                "sampled build invented tuple {t:?} absent from the full build"
            );
        }
        prop_assert!(sampled.stats.sampled_txns <= w.trace.len());
        prop_assert!(sampled.stats.distinct_tuples <= full.stats.distinct_tuples);
    }

    /// Chunked (streaming-source) and whole-trace ingestion agree on the
    /// graph and on `BuildStats` — including under transaction sampling and
    /// a blanket filter tight enough to drop scans.
    #[test]
    fn chunked_and_whole_trace_stats_are_consistent(
        txn_pct in 30..=100u32,
        seed in 0..20u64,
        threads in 1..=4usize,
    ) {
        let dcfg = DriftingConfig {
            num_txns: 600,
            seed,
            ..Default::default()
        };
        let w = drifting::generate(&dcfg);
        let src = drifting::stream(&dcfg);

        let mut cfg = SchismConfig::new(2);
        cfg.seed = seed;
        cfg.threads = threads;
        cfg.txn_sample = f64::from(txn_pct) / 100.0;

        let chunked = build_graph_source(&w, &src, &cfg);
        let whole = build_graph(&w, &src.materialize(), &cfg);
        prop_assert_eq!(chunked.stats.sampled_txns, whole.stats.sampled_txns);
        prop_assert_eq!(chunked.stats.dropped_scans, whole.stats.dropped_scans);
        prop_assert_eq!(chunked.stats, whole.stats);
        prop_assert_eq!(chunked.digest(), whole.digest());
    }

    /// Scan-dropping accounting survives chunking too: a strict blanket
    /// threshold drops the same scans on both ingestion paths.
    #[test]
    fn blanket_filter_consistent_across_ingestion(
        seed in 0..10u64,
        threads in 1..=4usize,
    ) {
        let ycfg = YcsbConfig {
            records: 400,
            num_txns: 500,
            seed,
            scan_max: 9,
            ..YcsbConfig::workload_e()
        };
        let w = ycsb::generate(&ycfg);
        let src = ycsb::stream(&ycfg);
        let mut cfg = SchismConfig::new(2);
        cfg.seed = seed;
        cfg.threads = threads;
        cfg.blanket_threshold = 4;

        let chunked = build_graph_source(&w, &src, &cfg);
        let whole = build_graph(&w, &src.materialize(), &cfg);
        prop_assert!(chunked.stats.dropped_scans > 0, "threshold too lax for the pin");
        prop_assert_eq!(chunked.stats, whole.stats);
        prop_assert_eq!(chunked.digest(), whole.digest());
    }

    /// The clique and hypergraph backends are two views of the same sampled
    /// workload: identical tuple set, node count, per-vertex (and hence
    /// total) access weights, and bookkeeping — only the co-access
    /// representation (clique edges vs transaction nets) differs.
    #[test]
    fn backends_agree_on_vertices_and_weights(
        txn_pct in 40..=100u32,
        seed in 0..20u64,
        threads in 1..=4usize,
    ) {
        let ycfg = YcsbConfig {
            records: 500,
            num_txns: 700,
            seed,
            scan_max: 9,
            ..YcsbConfig::workload_e()
        };
        let w = ycsb::generate(&ycfg);
        let mut cfg = SchismConfig::new(2);
        cfg.seed = seed;
        cfg.threads = threads;
        cfg.txn_sample = f64::from(txn_pct) / 100.0;
        let clique = build_graph(&w, &w.trace, &cfg);
        let mut hcfg = cfg.clone();
        hcfg.graph_backend = GraphBackend::Hypergraph;
        let hyper = build_graph(&w, &w.trace, &hcfg);

        prop_assert_eq!(clique.tuples(), hyper.tuples());
        prop_assert_eq!(clique.num_nodes(), hyper.num_nodes());
        let hg = hyper.hgraph.as_ref().expect("hypergraph built");
        prop_assert!(hg.validate().is_ok());
        let total_clique: u64 = (0..clique.num_nodes() as u32)
            .map(|v| u64::from(clique.graph.vertex_weight(v)))
            .sum();
        prop_assert_eq!(total_clique, hg.total_vertex_weight());
        for v in 0..clique.num_nodes() as u32 {
            prop_assert_eq!(
                clique.graph.vertex_weight(v),
                hg.vertex_weight(v),
                "vertex {} weight diverged between backends",
                v
            );
        }
        // Bookkeeping agrees modulo the representation counters.
        let mut cs = clique.stats;
        let mut hs = hyper.stats;
        cs.edges = 0;
        hs.hyperedges = 0;
        hs.pins = 0;
        prop_assert_eq!(cs, hs);
    }

    /// The sharded pass-1 merge is a pure wall-clock knob: for any shard
    /// count (including the auto default) and any thread count, both
    /// ingestion paths build the bit-identical graph the single-map merge
    /// (`merge_shards = 1`) builds — with sampling and coalescing on, so
    /// the merge is exercised on every `TupleStats` field it folds.
    #[test]
    fn sharded_merge_is_bit_identical_to_single_map(
        shards_idx in 0..4usize,
        threads in 1..=4usize,
        txn_pct in 50..=100u32,
        seed in 0..20u64,
    ) {
        // 0 = the auto default (4x threads); the rest stress uneven counts.
        let merge_shards = [0usize, 2, 3, 16][shards_idx];
        let dcfg = DriftingConfig {
            num_txns: 600,
            seed,
            ..Default::default()
        };
        let w = drifting::generate(&dcfg);
        let src = drifting::stream(&dcfg);

        let mut single = SchismConfig::new(2);
        single.seed = seed;
        single.threads = 1;
        single.merge_shards = 1;
        single.txn_sample = f64::from(txn_pct) / 100.0;
        let reference = build_graph_source(&w, &src, &single);

        let mut sharded = single.clone();
        sharded.threads = threads;
        sharded.merge_shards = merge_shards;
        let chunked = build_graph_source(&w, &src, &sharded);
        let whole = build_graph(&w, &src.materialize(), &sharded);
        prop_assert_eq!(chunked.stats, reference.stats);
        prop_assert_eq!(
            chunked.digest(),
            reference.digest(),
            "merge_shards={} threads={} changed the graph vs the single-map merge",
            merge_shards,
            threads
        );
        prop_assert_eq!(whole.digest(), reference.digest());
    }
}
