//! Property-based invariants of the migration *executor*: stopping a
//! migration at any batch boundary — or having a batch fail its copy
//! verification — must leave the system consistent: every key routable to
//! exactly one owner whose shard physically holds the row, and the stores
//! bit-identical to the pre-migration state for every unflipped batch.

use proptest::prelude::*;
use schism_migrate::{
    plan_migration, BatchState, ExecutorConfig, MigrationExecutor, PlanConfig, StepOutcome,
};
use schism_router::{
    IndexBackend, LookupBackend, LookupScheme, MissPolicy, PartitionSet, Scheme, VersionedScheme,
};
use schism_store::{load_assignment, seed_row, MemStore, ShardStore};
use schism_workload::{MaterializedDb, TupleId};
use std::collections::HashMap;
use std::sync::Arc;

fn assignment(pairs: &[(u64, u32)]) -> HashMap<TupleId, PartitionSet> {
    pairs
        .iter()
        .map(|&(r, p)| (TupleId::new(0, r), PartitionSet::single(p)))
        .collect()
}

/// Single-owner lookup scheme over an explicit row→partition map.
fn lookup_scheme(asg: &HashMap<TupleId, PartitionSet>, k: u32) -> Arc<dyn Scheme> {
    let entries: Vec<(u64, PartitionSet)> = asg.iter().map(|(t, &p)| (t.row, p)).collect();
    Arc::new(LookupScheme::new(
        k,
        vec![Some(
            Box::new(IndexBackend::new(entries)) as Box<dyn LookupBackend>
        )],
        vec![None],
        MissPolicy::HashRow,
    ))
}

/// Asserts the global single-owner + bytes-match-routing invariant, plus
/// pre-migration store state for every batch that did not flip.
fn check_consistency(
    store: &MemStore,
    vs: &VersionedScheme,
    exec: &MigrationExecutor<'_>,
    plan: &schism_migrate::MigrationPlan,
    old: &HashMap<TupleId, PartitionSet>,
    k: u32,
) {
    let db = MaterializedDb::new();
    // Which tuples flipped is decided batch-wise by the executor.
    let mut flipped_tuples = std::collections::HashSet::new();
    for (i, b) in plan.batches.iter().enumerate() {
        if exec.batch_state(i) == BatchState::Flipped {
            flipped_tuples.extend(b.moves.iter().map(|m| m.tuple));
        }
    }
    for (&t, &old_owner) in old {
        let loc = vs.locate_tuple(t, &db);
        assert_eq!(loc.len(), 1, "tuple {t} has {} owners", loc.len());
        // The routed owner physically holds the row…
        let owner = loc.first().unwrap();
        assert!(
            store.get(owner, t).unwrap().is_some(),
            "tuple {t} routed to shard {owner} which does not hold it"
        );
        if !flipped_tuples.contains(&t) {
            // …and an unflipped tuple is exactly where it started, with
            // its original bytes, on its original shards only.
            assert_eq!(loc, old_owner, "unflipped tuple {t} routed off its owner");
            for shard in 0..k {
                let row = store.get(shard, t).unwrap();
                if old_owner.contains(shard) {
                    assert_eq!(
                        row,
                        Some(seed_row(t, 64)),
                        "unflipped tuple {t} altered on shard {shard}"
                    );
                } else {
                    assert_eq!(row, None, "unflipped tuple {t} leaked to shard {shard}");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Abort after an arbitrary number of flipped batches: the moved-set
    /// equals the flipped prefix, every key has exactly one owner backed
    /// by real bytes, and unflipped batches left no trace in the stores.
    #[test]
    fn abort_at_any_batch_boundary_is_consistent(
        rows in prop::collection::vec((0..120u64, 0..5u32, 0..5u32), 1..80),
        max_rows in 1..8usize,
        stop_pick in 0..1000usize,
    ) {
        let k = 5u32;
        let mut old_pairs: Vec<(u64, u32)> = Vec::new();
        let mut new_pairs: Vec<(u64, u32)> = Vec::new();
        for &(r, po, pn) in &rows {
            old_pairs.push((r, po));
            new_pairs.push((r, pn));
        }
        let old = assignment(&old_pairs);
        let new = assignment(&new_pairs);
        let db = MaterializedDb::new();
        let store = MemStore::new(k);
        load_assignment(&store, &old, &db).unwrap();
        let vs = VersionedScheme::new(lookup_scheme(&old, k), lookup_scheme(&new, k));
        let plan = plan_migration(&old, &new, &db, &PlanConfig {
            max_rows_per_batch: max_rows,
            ..Default::default()
        });

        let mut exec = MigrationExecutor::new(&plan, &store, &vs, ExecutorConfig::default());
        let stop_after = stop_pick % (plan.batches.len() + 1);
        for _ in 0..stop_after {
            prop_assert!(matches!(exec.step(), StepOutcome::Flipped(_)));
        }
        exec.abort();
        prop_assert_eq!(exec.step(), StepOutcome::Done);
        prop_assert!(exec.is_aborted());
        prop_assert_eq!(vs.flipped_batches(), stop_after as u64);

        check_consistency(&store, &vs, &exec, &plan, &old, k);
        // Flipped tuples route (and live) on their new placement.
        for (i, b) in plan.batches.iter().enumerate() {
            if i < stop_after {
                for m in &b.moves {
                    prop_assert_eq!(vs.locate_tuple(m.tuple, &db), m.to);
                }
            }
        }
    }

    /// A batch whose copies never verify aborts the migration mid-plan;
    /// the failed batch rolls back and the same invariants hold.
    #[test]
    fn verify_failure_rolls_back_and_stays_consistent(
        rows in prop::collection::vec((0..80u64, 0..4u32, 0..4u32), 4..60),
        max_rows in 1..6usize,
        bad_pick in 0..1000usize,
    ) {
        let k = 4u32;
        let mut old_pairs: Vec<(u64, u32)> = Vec::new();
        let mut new_pairs: Vec<(u64, u32)> = Vec::new();
        for &(r, po, pn) in &rows {
            old_pairs.push((r, po));
            new_pairs.push((r, pn));
        }
        let old = assignment(&old_pairs);
        let new = assignment(&new_pairs);
        let db = MaterializedDb::new();
        let store = MemStore::new(k);
        load_assignment(&store, &old, &db).unwrap();
        let vs = VersionedScheme::new(lookup_scheme(&old, k), lookup_scheme(&new, k));
        let plan = plan_migration(&old, &new, &db, &PlanConfig {
            max_rows_per_batch: max_rows,
            ..Default::default()
        });
        if plan.batches.is_empty() {
            return; // nothing changed placement; nothing to corrupt
        }

        // Corrupt one batch on both its attempts: it can never verify.
        let bad = bad_pick % plan.batches.len();
        let cfg = ExecutorConfig {
            max_retries: 1,
            corrupt_copies: vec![(bad, 0), (bad, 1)],
            ..ExecutorConfig::default()
        };
        let mut exec = MigrationExecutor::new(&plan, &store, &vs, cfg);
        // A corrupt copy on a batch with no copied bytes (all drop-only
        // moves) cannot fail verification — the executor then completes.
        let outcome = exec.run_to_completion();
        let copies_in_bad: u32 =
            plan.batches[bad].moves.iter().map(|m| m.copies_added().len()).sum();
        if copies_in_bad == 0 {
            prop_assert_eq!(outcome, StepOutcome::Done);
            prop_assert!(exec.is_complete());
        } else {
            prop_assert_eq!(outcome, StepOutcome::Aborted {
                batch: bad,
                error: schism_migrate::ExecError::VerifyFailed { batch: bad, attempts: 2 },
            });
            prop_assert_eq!(vs.flipped_batches(), bad as u64);
            check_consistency(&store, &vs, &exec, &plan, &old, k);
        }
    }
}
