//! The parallel partitioner's determinism pin: partition labels and edge
//! cut must be **bit-identical for every thread count** — on seeded
//! generated graphs, on the TPC-C workload-builder graph, cold and warm,
//! and through the full `schism-core` partition phase (per-tuple partition
//! sets included). `SCHISM_THREADS` only trades wall-clock, never output;
//! CI runs the whole suite at 1 and at 4 threads on top of these explicit
//! pins.

use schism_core::{build_graph, run_partition_phase, run_partition_phase_warm, SchismConfig};
use schism_graph::{gen, partition, partition_warm, PartitionerConfig, Partitioning};
use schism_workload::tpcc::{self, TpccConfig};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn cold(g: &schism_graph::CsrGraph, k: u32, seed: u64, threads: usize) -> Partitioning {
    partition(
        g,
        &PartitionerConfig {
            k,
            seed,
            threads,
            ..Default::default()
        },
    )
}

fn assert_identical(name: &str, runs: &[Partitioning]) {
    let base = &runs[0];
    for (i, p) in runs.iter().enumerate().skip(1) {
        assert_eq!(
            p.assignment, base.assignment,
            "{name}: threads={} changed partition labels",
            THREAD_COUNTS[i]
        );
        assert_eq!(
            p.edge_cut, base.edge_cut,
            "{name}: threads={} changed the cut",
            THREAD_COUNTS[i]
        );
        assert_eq!(p.part_weights, base.part_weights);
    }
}

#[test]
fn generated_graphs_cold_and_warm() {
    let graphs = [
        ("planted", gen::planted_partition(4, 150, 1200, 90, 21)),
        ("grid", gen::grid(24, 24)),
        ("two_cliques", gen::two_cliques(24, 1)),
    ];
    for (name, g) in &graphs {
        let cold_runs: Vec<Partitioning> =
            THREAD_COUNTS.iter().map(|&t| cold(g, 4, 9, t)).collect();
        assert_identical(&format!("{name} (cold)"), &cold_runs);

        // Warm-start from the cold result, as the incremental path does.
        let seed_labels = &cold_runs[0].assignment;
        let warm_runs: Vec<Partitioning> = THREAD_COUNTS
            .iter()
            .map(|&t| {
                partition_warm(
                    g,
                    seed_labels,
                    &PartitionerConfig {
                        k: 4,
                        seed: 9,
                        threads: t,
                        ..Default::default()
                    },
                )
            })
            .collect();
        assert_identical(&format!("{name} (warm)"), &warm_runs);
    }
}

#[test]
fn tpcc_builder_graph() {
    // The real thing: the workload graph the pipeline builds from a TPC-C
    // trace (clique edges, replication stars, coalesced groups) — exactly
    // the graph family `fig5_partitioner_scaling` times.
    let w = tpcc::generate(&TpccConfig {
        num_txns: 4_000,
        ..TpccConfig::small(2)
    });
    let cfg = SchismConfig::new(4);
    let wg = build_graph(&w, &w.trace, &cfg);
    let runs: Vec<Partitioning> = THREAD_COUNTS
        .iter()
        .map(|&t| cold(&wg.graph, 4, 3, t))
        .collect();
    assert_identical("tpcc builder graph", &runs);
    assert!(runs[0].edge_cut > 0, "sanity: non-trivial graph");
}

#[test]
fn partition_phase_and_warm_rerun() {
    // Through schism-core: the resolved per-tuple partition sets (including
    // replication resolution) must match, cold and warm, for any
    // `SchismConfig::threads`.
    let w = tpcc::generate(&TpccConfig {
        num_txns: 3_000,
        ..TpccConfig::small(2)
    });
    let mk = |threads: usize| {
        let mut c = SchismConfig::new(4);
        c.seed = 7;
        c.threads = threads;
        c
    };
    let wg = build_graph(&w, &w.trace, &mk(1));

    let base = run_partition_phase(&wg, &mk(1));
    for t in [2usize, 4] {
        let p = run_partition_phase(&wg, &mk(t));
        assert_eq!(p.edge_cut, base.edge_cut, "threads={t} changed the cut");
        assert_eq!(
            p.assignment, base.assignment,
            "threads={t} changed per-tuple partition sets"
        );
    }

    let initial = wg.seed_assignment(&base.assignment, 4);
    let warm_base = run_partition_phase_warm(&wg, &mk(1), &initial);
    for t in [2usize, 4] {
        let p = run_partition_phase_warm(&wg, &mk(t), &initial);
        assert_eq!(p.edge_cut, warm_base.edge_cut, "warm threads={t} cut");
        assert_eq!(
            p.assignment, warm_base.assignment,
            "warm threads={t} changed per-tuple partition sets"
        );
    }
}
