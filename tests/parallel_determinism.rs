//! The parallel determinism pins: partition labels and edge cut — and, as
//! of the streaming graph builder, the **entire workload graph** (tuples,
//! groups, CSR edges, weights, `BuildStats`) — must be **bit-identical for
//! every thread count and for chunked vs. whole-trace ingestion** — on
//! seeded generated graphs, on the TPC-C workload-builder graph, cold and
//! warm, and through the full `schism-core` partition phase (per-tuple
//! partition sets included). `SCHISM_THREADS` only trades wall-clock,
//! never output; CI runs the whole suite at 1 and at 4 threads on top of
//! these explicit pins.

use schism_core::{
    build_graph, build_graph_source, run_partition_phase, run_partition_phase_warm, GraphBackend,
    SchismConfig,
};
use schism_graph::{gen, partition, partition_warm, PartitionerConfig, Partitioning};
use schism_workload::drifting::{self, DriftingConfig};
use schism_workload::tpcc::{self, TpccConfig};
use schism_workload::ycsb::{self, YcsbConfig};
use schism_workload::TraceSource;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn cold(g: &schism_graph::CsrGraph, k: u32, seed: u64, threads: usize) -> Partitioning {
    partition(
        g,
        &PartitionerConfig {
            k,
            seed,
            threads,
            ..Default::default()
        },
    )
}

fn assert_identical(name: &str, runs: &[Partitioning]) {
    let base = &runs[0];
    for (i, p) in runs.iter().enumerate().skip(1) {
        assert_eq!(
            p.assignment, base.assignment,
            "{name}: threads={} changed partition labels",
            THREAD_COUNTS[i]
        );
        assert_eq!(
            p.edge_cut, base.edge_cut,
            "{name}: threads={} changed the cut",
            THREAD_COUNTS[i]
        );
        assert_eq!(p.part_weights, base.part_weights);
    }
}

#[test]
fn generated_graphs_cold_and_warm() {
    let graphs = [
        ("planted", gen::planted_partition(4, 150, 1200, 90, 21)),
        ("grid", gen::grid(24, 24)),
        ("two_cliques", gen::two_cliques(24, 1)),
    ];
    for (name, g) in &graphs {
        let cold_runs: Vec<Partitioning> =
            THREAD_COUNTS.iter().map(|&t| cold(g, 4, 9, t)).collect();
        assert_identical(&format!("{name} (cold)"), &cold_runs);

        // Warm-start from the cold result, as the incremental path does.
        let seed_labels = &cold_runs[0].assignment;
        let warm_runs: Vec<Partitioning> = THREAD_COUNTS
            .iter()
            .map(|&t| {
                partition_warm(
                    g,
                    seed_labels,
                    &PartitionerConfig {
                        k: 4,
                        seed: 9,
                        threads: t,
                        ..Default::default()
                    },
                )
            })
            .collect();
        assert_identical(&format!("{name} (warm)"), &warm_runs);
    }
}

#[test]
fn tpcc_builder_graph() {
    // The real thing: the workload graph the pipeline builds from a TPC-C
    // trace (clique edges, replication stars, coalesced groups) — exactly
    // the graph family `fig5_partitioner_scaling` times.
    let w = tpcc::generate(&TpccConfig {
        num_txns: 4_000,
        ..TpccConfig::small(2)
    });
    let cfg = SchismConfig::new(4);
    let wg = build_graph(&w, &w.trace, &cfg);
    let runs: Vec<Partitioning> = THREAD_COUNTS
        .iter()
        .map(|&t| cold(&wg.graph, 4, 3, t))
        .collect();
    assert_identical("tpcc builder graph", &runs);
    assert!(runs[0].edge_cut > 0, "sanity: non-trivial graph");
}

/// Graph-build half of the contract, mirroring the partitioner's: the
/// workload graph is bit-identical at threads 1/2/4, and streaming a
/// generator source chunk by chunk equals building from its materialized
/// whole trace.
#[test]
fn build_graph_identical_across_threads_and_ingestion() {
    let mk = |threads: usize| {
        let mut c = SchismConfig::new(4);
        c.seed = 11;
        c.threads = threads;
        c
    };

    // Generated (YCSB-E: scans exercise the blanket filter), TPC-C (cliques,
    // stars, coalesced groups), and drifting (hot-block clusters) traces.
    let ycsb_w = ycsb::generate(&YcsbConfig {
        records: 2_000,
        num_txns: 3_000,
        ..YcsbConfig::workload_e()
    });
    let tpcc_w = tpcc::generate(&TpccConfig {
        num_txns: 4_000,
        ..TpccConfig::small(2)
    });
    let drift_cfg = DriftingConfig {
        num_txns: 3_000,
        ..Default::default()
    };
    let drift_w = drifting::generate(&drift_cfg);

    for (name, w) in [
        ("ycsb-e", &ycsb_w),
        ("tpcc", &tpcc_w),
        ("drifting", &drift_w),
    ] {
        let base = build_graph(w, &w.trace, &mk(1));
        base.graph.validate().unwrap();
        for t in THREAD_COUNTS.into_iter().skip(1) {
            let g = build_graph(w, &w.trace, &mk(t));
            assert_eq!(
                g.stats, base.stats,
                "{name}: threads={t} changed BuildStats"
            );
            assert_eq!(
                g.digest(),
                base.digest(),
                "{name}: threads={t} changed the workload graph"
            );
            assert_eq!(g.graph, base.graph, "{name}: threads={t} changed the CSR");
        }
    }

    // Chunked (streaming source) vs whole-trace ingestion, at every thread
    // count: TPC-C's scripted source and the drifting per-index source.
    let tpcc_cfg = TpccConfig {
        num_txns: 4_000,
        ..TpccConfig::small(2)
    };
    let tpcc_src = tpcc::stream(&tpcc_cfg);
    let drift_src = drifting::stream(&drift_cfg);
    for t in THREAD_COUNTS {
        let chunked = build_graph_source(&tpcc_w, &tpcc_src, &mk(t));
        let whole = build_graph(&tpcc_w, &tpcc_src.materialize(), &mk(t));
        assert_eq!(chunked.stats, whole.stats, "tpcc chunked vs whole stats");
        assert_eq!(chunked.digest(), whole.digest(), "tpcc chunked vs whole");

        let chunked = build_graph_source(&drift_w, &drift_src, &mk(t));
        let whole = build_graph(&drift_w, &drift_src.materialize(), &mk(t));
        assert_eq!(chunked.stats, whole.stats, "drift chunked vs whole stats");
        assert_eq!(chunked.digest(), whole.digest(), "drift chunked vs whole");
    }
}

/// The hypergraph backend carries the identical contract: the built
/// hypergraph (one net per transaction), its digest and `BuildStats`, the
/// (λ−1) partition cold and warm, and the resolved per-tuple partition
/// sets are bit-identical at threads 1/2/4 and for chunked vs whole-trace
/// ingestion.
#[test]
fn hypergraph_backend_identical_across_threads_and_ingestion() {
    let mk = |threads: usize| {
        let mut c = SchismConfig::new(4);
        c.seed = 11;
        c.threads = threads;
        c.graph_backend = GraphBackend::Hypergraph;
        c
    };

    let ycsb_w = ycsb::generate(&YcsbConfig {
        records: 2_000,
        num_txns: 3_000,
        ..YcsbConfig::workload_e()
    });
    let tpcc_cfg = TpccConfig {
        num_txns: 4_000,
        ..TpccConfig::small(2)
    };
    let tpcc_w = tpcc::generate(&tpcc_cfg);
    let drift_cfg = DriftingConfig {
        num_txns: 3_000,
        ..Default::default()
    };
    let drift_w = drifting::generate(&drift_cfg);

    for (name, w) in [
        ("ycsb-e", &ycsb_w),
        ("tpcc", &tpcc_w),
        ("drifting", &drift_w),
    ] {
        let base = build_graph(w, &w.trace, &mk(1));
        let hg = base.hgraph.as_ref().expect("hypergraph built");
        hg.validate().unwrap();
        assert!(base.stats.hyperedges > 0, "{name}: no nets emitted");
        for t in THREAD_COUNTS.into_iter().skip(1) {
            let g = build_graph(w, &w.trace, &mk(t));
            assert_eq!(
                g.stats, base.stats,
                "{name}: threads={t} changed BuildStats"
            );
            assert_eq!(
                g.digest(),
                base.digest(),
                "{name}: threads={t} changed the hypergraph"
            );
            assert_eq!(g.hgraph, base.hgraph);
        }
    }

    // Chunked (streaming source) vs whole-trace ingestion, at every thread
    // count.
    let tpcc_src = tpcc::stream(&tpcc_cfg);
    let drift_src = drifting::stream(&drift_cfg);
    for t in THREAD_COUNTS {
        let chunked = build_graph_source(&tpcc_w, &tpcc_src, &mk(t));
        let whole = build_graph(&tpcc_w, &tpcc_src.materialize(), &mk(t));
        assert_eq!(chunked.stats, whole.stats, "tpcc chunked vs whole stats");
        assert_eq!(chunked.digest(), whole.digest(), "tpcc chunked vs whole");

        let chunked = build_graph_source(&drift_w, &drift_src, &mk(t));
        let whole = build_graph(&drift_w, &drift_src.materialize(), &mk(t));
        assert_eq!(chunked.stats, whole.stats, "drift chunked vs whole stats");
        assert_eq!(chunked.digest(), whole.digest(), "drift chunked vs whole");
    }

    // The (λ−1) partition through schism-core, cold and warm.
    let wg = build_graph(&tpcc_w, &tpcc_w.trace, &mk(1));
    let base = run_partition_phase(&wg, &mk(1));
    for t in [2usize, 4] {
        let p = run_partition_phase(&wg, &mk(t));
        assert_eq!(
            p.edge_cut, base.edge_cut,
            "threads={t} changed the connectivity cost"
        );
        assert_eq!(
            p.assignment, base.assignment,
            "threads={t} changed per-tuple partition sets"
        );
    }
    let initial = wg.seed_assignment(&base.assignment, 4);
    let warm_base = run_partition_phase_warm(&wg, &mk(1), &initial);
    for t in [2usize, 4] {
        let p = run_partition_phase_warm(&wg, &mk(t), &initial);
        assert_eq!(p.edge_cut, warm_base.edge_cut, "warm threads={t} cut");
        assert_eq!(
            p.assignment, warm_base.assignment,
            "warm threads={t} changed per-tuple partition sets"
        );
    }
}

#[test]
fn partition_phase_and_warm_rerun() {
    // Through schism-core: the resolved per-tuple partition sets (including
    // replication resolution) must match, cold and warm, for any
    // `SchismConfig::threads`.
    let w = tpcc::generate(&TpccConfig {
        num_txns: 3_000,
        ..TpccConfig::small(2)
    });
    let mk = |threads: usize| {
        let mut c = SchismConfig::new(4);
        c.seed = 7;
        c.threads = threads;
        c
    };
    let wg = build_graph(&w, &w.trace, &mk(1));

    let base = run_partition_phase(&wg, &mk(1));
    for t in [2usize, 4] {
        let p = run_partition_phase(&wg, &mk(t));
        assert_eq!(p.edge_cut, base.edge_cut, "threads={t} changed the cut");
        assert_eq!(
            p.assignment, base.assignment,
            "threads={t} changed per-tuple partition sets"
        );
    }

    let initial = wg.seed_assignment(&base.assignment, 4);
    let warm_base = run_partition_phase_warm(&wg, &mk(1), &initial);
    for t in [2usize, 4] {
        let p = run_partition_phase_warm(&wg, &mk(t), &initial);
        assert_eq!(p.edge_cut, warm_base.edge_cut, "warm threads={t} cut");
        assert_eq!(
            p.assignment, warm_base.assignment,
            "warm threads={t} changed per-tuple partition sets"
        );
    }
}
