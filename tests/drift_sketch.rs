//! Pins for the fixed-memory drift path (`schism_migrate::sketch`)
//! against the exact detector:
//!
//! - the sketched TV distance stays within the error bound
//!   [`SketchHistogram::distance_with_bound`] reports, on real drifting
//!   traces across seeds, rotations, and sketch sizes;
//! - with an exact-capacity sketch (reservoir covering the whole keyspace,
//!   collision-free width) the sketched and exact distances coincide;
//! - both detectors agree on the trigger decision for the drifting
//!   workload the migration controller monitors — quiet windows stay
//!   quiet, rotated hot spots fire;
//! - histograms fed incrementally from a streamed `TraceSource` match
//!   batch construction from the materialized trace.

use proptest::prelude::*;
use schism_migrate::drift::{AccessHistogram, DistanceMetric, DriftConfig, DriftDetector};
use schism_migrate::sketch::{SketchConfig, SketchDriftDetector, SketchHistogram};
use schism_workload::drifting::{self, DriftingConfig};
use schism_workload::TraceSource;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// |sketched TV - exact TV| <= reported bound, for every window pair
    /// and sketch size tried.
    #[test]
    fn sketched_tv_stays_within_reported_bound(
        seed in 0..20u64,
        rotation in 0..4u64,
        width_pow in 9..=13u32,
        heavy_idx in 0..3usize,
    ) {
        let heavy = [64usize, 256, 2048][heavy_idx];
        let cfg = DriftingConfig {
            num_txns: 1_000,
            seed,
            ..Default::default()
        };
        let a = drifting::window(&cfg, 0);
        let b = drifting::window(&cfg, rotation);
        let exact = AccessHistogram::from_trace(&a.trace)
            .distance(&AccessHistogram::from_trace(&b.trace), DistanceMetric::TotalVariation);

        let scfg = SketchConfig {
            width: 1 << width_pow,
            depth: 4,
            heavy_hitters: heavy,
        };
        let sa = SketchHistogram::from_source(scfg, &a.trace);
        let sb = SketchHistogram::from_source(scfg, &b.trace);
        let (tv, bound) = sa.distance_with_bound(&sb, DistanceMetric::TotalVariation);
        prop_assert!(
            (tv - exact).abs() <= bound,
            "sketched TV {tv:.4} vs exact {exact:.4} exceeds bound {bound:.4} \
             (width {}, heavy {heavy})",
            1 << width_pow
        );
    }

    /// An exact-capacity sketch (reservoir >= keyspace, wide rows) agrees
    /// with the exact histogram to within count-min collision noise — and
    /// that noise is itself inside the bound.
    #[test]
    fn exact_capacity_sketch_matches_exact_distance(
        seed in 0..20u64,
        rotation in 1..4u64,
    ) {
        let cfg = DriftingConfig {
            num_txns: 1_000,
            seed,
            ..Default::default()
        };
        let a = drifting::window(&cfg, 0);
        let b = drifting::window(&cfg, rotation);
        let exact = AccessHistogram::from_trace(&a.trace)
            .distance(&AccessHistogram::from_trace(&b.trace), DistanceMetric::TotalVariation);
        // 1600 keys into 64k counters x 4 rows: collisions are negligible,
        // and the 1600-slot reservoir holds every key exactly.
        let scfg = SketchConfig {
            width: 1 << 16,
            depth: 4,
            heavy_hitters: cfg.records as usize,
        };
        let sa = SketchHistogram::from_source(scfg, &a.trace);
        let sb = SketchHistogram::from_source(scfg, &b.trace);
        let tv = sa.distance(&sb, DistanceMetric::TotalVariation);
        prop_assert!(
            (tv - exact).abs() < 0.02,
            "lossless-regime sketch drifted from exact: {tv:.4} vs {exact:.4}"
        );
    }

    /// Trigger agreement on the controller's workload: the sketched and
    /// exact detectors see the same quiet resample and the same rotated
    /// hot spot.
    #[test]
    fn sketched_and_exact_detectors_agree_on_triggers(seed in 0..10u64) {
        let cfg = DriftingConfig {
            num_txns: 2_000,
            seed,
            ..Default::default()
        };
        let reference = drifting::window(&cfg, 0);
        let quiet = drifting::generate(&DriftingConfig {
            seed: seed ^ 0x5EED,
            ..cfg.clone()
        });
        let loud = drifting::window(&cfg, 3);

        // The detector default (Jensen-Shannon) — total variation over
        // per-tuple histograms reads resampling noise as ~0.24 at this
        // window size, which is exactly why JS is the default.
        let dcfg = DriftConfig::default();
        let exact = DriftDetector::new(dcfg.clone(), &reference.trace);
        let sketched =
            SketchDriftDetector::new(dcfg, SketchConfig::default(), &reference.trace);

        let (eq, sq) = (exact.observe(&quiet.trace), sketched.observe(&quiet.trace));
        prop_assert!(!eq.drifted && !sq.drifted,
            "noise misread as drift: exact {:.3} sketched {:.3}", eq.distance, sq.distance);
        let (el, sl) = (exact.observe(&loud.trace), sketched.observe(&loud.trace));
        prop_assert!(el.drifted && sl.drifted,
            "drift missed: exact {:.3} sketched {:.3}", el.distance, sl.distance);
    }
}

/// Streamed (incremental, chunk-fed) and batch histogram construction are
/// indistinguishable, for both the exact and the sketched histogram.
#[test]
fn streamed_and_batch_histograms_agree() {
    let cfg = DriftingConfig {
        num_txns: 800,
        ..Default::default()
    };
    let src = drifting::stream(&cfg);
    let trace = src.materialize();

    let batch_exact = AccessHistogram::from_trace(&trace);
    let streamed_exact = AccessHistogram::from_source(&src);
    assert_eq!(
        batch_exact.total_accesses(),
        streamed_exact.total_accesses()
    );
    assert!(
        batch_exact
            .distance(&streamed_exact, DistanceMetric::TotalVariation)
            .abs()
            < 1e-12
    );

    let scfg = SketchConfig::default();
    let batch_sketch = SketchHistogram::from_source(scfg, &trace);
    let streamed_sketch = SketchHistogram::from_source(scfg, &src);
    assert_eq!(
        batch_sketch.total_accesses(),
        streamed_sketch.total_accesses()
    );
    assert!(
        batch_sketch
            .distance(&streamed_sketch, DistanceMetric::TotalVariation)
            .abs()
            < 1e-12
    );
}
