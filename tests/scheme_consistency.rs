//! Consistency between the two routing paths every scheme exposes:
//! statement routing (predicates) must always cover tuple placement —
//! a statement that pins a key must be routed to (at least) wherever
//! `locate_tuple` puts the matching tuple, or correctness breaks at
//! runtime.

use schism_router::{
    BitArrayBackend, HashScheme, IndexBackend, LookupBackend, LookupScheme, MissPolicy,
    PartitionSet, RangeRule, RangeScheme, ReplicationScheme, RowKey, Scheme, TablePolicy,
};
use schism_sql::{Predicate, Statement, Value};
use schism_workload::{MaterializedDb, TupleId};

fn db_with_ids(rows: u64) -> MaterializedDb {
    let mut db = MaterializedDb::new();
    let t = db.add_table(1);
    db.set_column(t, 0, (0..rows as i64).collect());
    db
}

fn check_coverage(scheme: &dyn Scheme, db: &MaterializedDb, rows: u64) {
    for row in 0..rows {
        let home = scheme.locate_tuple(TupleId::new(0, row), db);
        let stmt = Statement::select(0, Predicate::Eq(0, Value::Int(row as i64)));
        let route = scheme.route_statement(&stmt);
        assert!(
            !route.targets.intersect(&home).is_empty(),
            "{}: statement for row {row} routed to {:?} but tuple lives on {:?}",
            scheme.name(),
            route.targets,
            home
        );
        // Writes must reach every copy.
        let w = Statement::update(0, Predicate::Eq(0, Value::Int(row as i64)));
        let wroute = scheme.route_statement(&w);
        assert_eq!(
            wroute.targets.union(&home),
            wroute.targets,
            "{}: write route {:?} misses copies {:?}",
            scheme.name(),
            wroute.targets,
            home
        );
    }
}

#[test]
fn hash_scheme_routes_cover_placement() {
    let rows = 500;
    let db = db_with_ids(rows);
    check_coverage(&HashScheme::by_attrs(7, vec![Some(0)]), &db, rows);
}

#[test]
fn replication_scheme_routes_cover_placement() {
    let rows = 100;
    let db = db_with_ids(rows);
    check_coverage(&ReplicationScheme::new(5), &db, rows);
}

#[test]
fn range_scheme_routes_cover_placement() {
    let rows = 600;
    let db = db_with_ids(rows);
    let scheme = RangeScheme::new(
        3,
        vec![TablePolicy::Rules {
            rules: vec![
                RangeRule {
                    conds: vec![(0, i64::MIN, 199)],
                    partitions: PartitionSet::single(0),
                },
                RangeRule {
                    conds: vec![(0, 200, 399)],
                    partitions: PartitionSet::single(1),
                },
                RangeRule {
                    conds: vec![(0, 400, i64::MAX)],
                    partitions: PartitionSet::single(2),
                },
            ],
            default: PartitionSet::single(0),
        }],
    );
    check_coverage(&scheme, &db, rows);
}

#[test]
fn lookup_scheme_routes_cover_placement() {
    let rows = 400u64;
    let db = db_with_ids(rows);
    let entries: Vec<(u64, PartitionSet)> = (0..rows)
        .map(|r| {
            if r % 10 == 0 {
                (r, PartitionSet::all(4)) // some replicated tuples
            } else {
                (r, PartitionSet::single((r % 4) as u32))
            }
        })
        .collect();
    for backend in ["index", "bits"] {
        let b: Box<dyn LookupBackend> = match backend {
            "index" => Box::new(IndexBackend::new(entries.clone())),
            _ => Box::new(BitArrayBackend::new(rows, entries.clone())),
        };
        let scheme = LookupScheme::new(
            4,
            vec![Some(b)],
            vec![Some(RowKey { col: 0, offset: 0 })],
            MissPolicy::Replicate,
        );
        check_coverage(&scheme, &db, rows);
    }
}
