//! The §5.2 worked example: for TPC-C with two warehouses and two
//! partitions, the explanation phase must produce warehouse-range rules
//! for the `stock` table (`s_w_id <= 1 -> one partition, s_w_id > 1 -> the
//! other`) and select `s_w_id` over `s_i_id` during attribute selection.

use schism_core::{Schism, SchismConfig};
use schism_router::TablePolicy;
use schism_workload::tpcc::{self, TpccConfig, T_STOCK};

#[test]
fn stock_rules_split_on_warehouse_id() {
    let w = tpcc::generate(&TpccConfig {
        num_txns: 12_000,
        ..TpccConfig::small(2)
    });
    let rec = Schism::new(SchismConfig::new(2)).run(&w);

    let stock = rec
        .explanation
        .per_table
        .iter()
        .find(|e| e.table == T_STOCK)
        .expect("stock explained");

    // Attribute selection: s_w_id (col 0) must be chosen; the item id must
    // not be the (only) split attribute.
    assert!(
        stock.attrs.contains(&0),
        "s_w_id must be selected, got {:?}",
        stock.attrs
    );

    match &stock.policy {
        TablePolicy::Rules { rules, .. } => {
            assert_eq!(
                rules.len(),
                2,
                "two warehouses -> two rules: {:?}",
                stock.rules_rendered
            );
            // Both rules must condition on s_w_id (col 0) and map to
            // different single partitions.
            let mut targets = Vec::new();
            for r in rules {
                assert!(
                    r.conds.iter().any(|&(c, _, _)| c == 0),
                    "{:?}",
                    stock.rules_rendered
                );
                assert!(r.partitions.is_single());
                targets.push(r.partitions.first().unwrap());
            }
            targets.sort_unstable();
            assert_eq!(targets, vec![0, 1]);
            // The boundary must sit between warehouse 1 and 2.
            let lo_rule = rules.iter().find(|r| {
                r.conds
                    .iter()
                    .any(|&(c, lo, hi)| c == 0 && lo <= 1 && hi == 1)
            });
            assert!(
                lo_rule.is_some(),
                "expected `s_w_id <= 1` rule: {:?}",
                stock.rules_rendered
            );
        }
        other => panic!(
            "expected rules for stock, got {other:?} ({:?})",
            stock.rules_rendered
        ),
    }
    // Paper-style rendering shows up in the report too.
    let text = rec.to_string();
    assert!(text.contains("s_w_id"), "report: {text}");
}

#[test]
fn whole_database_policy_is_warehouse_aligned() {
    let tcfg = TpccConfig {
        num_txns: 12_000,
        ..TpccConfig::small(2)
    };
    let w = tpcc::generate(&tcfg);
    let rec = Schism::new(SchismConfig::new(2)).run(&w);
    // Every warehouse-keyed table must have produced range rules (not a
    // broadcast policy); item is the replicated exception.
    for e in &rec.explanation.per_table {
        if e.training_tuples == 0 {
            continue;
        }
        match e.table_name.as_str() {
            "item" => assert!(
                matches!(e.policy, TablePolicy::Replicate),
                "item should replicate: {:?}",
                e.rules_rendered
            ),
            _ => assert!(
                matches!(e.policy, TablePolicy::Rules { .. } | TablePolicy::Single(_)),
                "{} should be ruled: {:?}",
                e.table_name,
                e.rules_rendered
            ),
        }
    }
}
