//! **Live-migration executor benchmark** — the full `drift → detect →
//! plan → execute → flip` loop against real shard stores, reporting
//! *executed* migration throughput (rows/bytes actually copied and
//! verified, per tick) and the foreground latency tax while batches are in
//! flight (mid-migration p99).
//!
//! Three measurements:
//!
//! 1. **standalone executor** — the plan runs back to back (one tick = one
//!    batch lifecycle: copy, verify, flip); per-batch wall-clock gives copy
//!    throughput in rows/s and MiB/s.
//! 2. **in-simulation** — the same plan's copy traffic is injected into
//!    the discrete-event cluster, gated on executor acknowledgements, and
//!    compared against a quiet run of the same foreground workload.
//! 3. **calibration** (`--calibrate`) — the timed batches from (1) are fit
//!    into a [`MigrationCostModel`]; the fit is validated on held-out
//!    batches (predicted vs measured must stay within 2×), mapped back
//!    onto planner budgets via `PlanConfig::for_target_batch_duration`,
//!    and recorded in `crates/bench/BENCH_store.json`.
//!
//! ```text
//! cargo run --release -p schism-bench --bin live_migration \
//!     [--full] [--backend mem|log] [--calibrate] [--inject-every N]
//! ```
//!
//! `--inject-every N` paces the copy stream at one move per `N` foreground
//! transactions (the `PlanConfig::inject_every` QoS knob; default 1).
//!
//! `--backend log` runs every store in this benchmark on the persistent
//! [`LogStore`](schism_store::LogStore) (segment files under a temp dir,
//! honoring `TMPDIR`), so
//! the measured copy rates include real record framing, checksums, and
//! file appends — those are the numbers worth calibrating against.

use schism_bench::table::Table;
use schism_core::{build_graph, build_lookup_scheme, run_partition_phase, SchismConfig};
use schism_migrate::{ControllerConfig, MigrationController, PlanConfig, StepOutcome, Tick};
use schism_router::{Scheme, VersionedScheme};
use schism_sim::{
    run, CostSample, MigrationCostModel, MigrationSource, PoolSource, SimConfig, SimTxn,
};
use schism_store::{load_assignment, tempdir::TempDir};
use schism_workload::drifting::{self, DriftingConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let full = schism_bench::full_scale();
    let backend = schism_bench::backend_kind();
    let calibrate = schism_bench::flag("--calibrate");
    let store_dir = TempDir::new("schism-live-migration").expect("temp dir for stores");
    let k = 8u32;
    let dcfg = DriftingConfig {
        records: if full { 16_000 } else { 3_200 },
        num_txns: if full { 20_000 } else { 5_000 },
        drift_blocks_per_window: if full { 80 } else { 16 },
        ..Default::default()
    };

    // Bootstrap placement + physical shards from window 0.
    let w0 = drifting::window(&dcfg, 0);
    let cfg = SchismConfig::new(k);
    let wg = build_graph(&w0, &w0.trace, &cfg);
    let placement = run_partition_phase(&wg, &cfg).assignment;
    println!(
        "bootstrap on {}: {} tuples over {k} shards, backend {backend}",
        w0.name,
        placement.len()
    );

    // Drift to window 3 → plan. Batch budget sized so the plan spans many
    // ticks (one tick = one copy/verify/flip lifecycle).
    let mut ccfg = ControllerConfig::new(k);
    ccfg.plan.max_rows_per_batch = if full { 256 } else { 64 };
    // Copy-stream pacing: one move per foreground txn (the aggressive end
    // of the throttle — worst-case mid-migration tax). Overridable now
    // that it is a PlanConfig knob instead of a constant in the source.
    ccfg.plan.inject_every = schism_bench::arg_value("--inject-every")
        .map(|v| v.parse().expect("--inject-every takes a positive integer"))
        .unwrap_or(1);
    let mut ctl = MigrationController::with_assignment(&w0, placement.clone(), ccfg);
    let w3 = drifting::window(&dcfg, 3);
    let outcome = match ctl.observe(&w3) {
        Tick::Migrate(m) => m,
        Tick::Stable(r) => panic!("drift missed: {}", r.distance),
    };
    println!(
        "drift {:.3} → plan: {} moves, {} batches, {:.1} KiB\n",
        outcome.report.distance,
        outcome.plan.total_moves,
        outcome.plan.batches.len(),
        outcome.plan.total_bytes as f64 / 1024.0
    );

    let old_scheme =
        || -> Arc<dyn Scheme> { Arc::new(build_lookup_scheme(&w0, &w0.trace, &placement, k)) };
    let new_scheme = || -> Arc<dyn Scheme> {
        Arc::new(build_lookup_scheme(&w3, &w3.trace, ctl.assignment(), k))
    };

    // ---- 1. Standalone executor throughput (one tick = one batch). ----
    let store = schism_bench::open_backend(backend, k, &store_dir, "standalone");
    load_assignment(&*store, &placement, &*w3.db).expect("seed shards");
    let vs = VersionedScheme::new(old_scheme(), new_scheme());
    let mut exec = outcome.executor(&*store, &vs);
    let mut samples: Vec<CostSample> = Vec::new();
    let t0 = Instant::now();
    loop {
        let b0 = Instant::now();
        match exec.step() {
            StepOutcome::Flipped(b) => samples.push(CostSample {
                rows: b.rows_copied,
                bytes: b.bytes_copied,
                wall_us: b0.elapsed().as_secs_f64() * 1e6,
            }),
            StepOutcome::Done => break,
            other => panic!("unexpected executor outcome: {other:?}"),
        }
    }
    let wall = t0.elapsed();
    let report = exec.report();

    let mut ticks = Table::new(&["tick", "tuples", "rows", "KiB", "drops", "retries", "ms"]);
    let shown = exec.batch_reports().len().min(12);
    for (b, s) in exec.batch_reports()[..shown].iter().zip(&samples) {
        ticks.row(vec![
            format!("{}", b.batch),
            format!("{}", b.tuples),
            format!("{}", b.rows_copied),
            format!("{:.1}", b.bytes_copied as f64 / 1024.0),
            format!("{}", b.rows_dropped),
            format!("{}", b.retries),
            format!("{:.3}", s.wall_us / 1e3),
        ]);
    }
    println!(
        "per-tick executed batches (first {shown} of {}):",
        report.batches_flipped
    );
    println!("{}", ticks.render());
    let secs = wall.as_secs_f64().max(1e-9);
    let rows_per_sec = report.rows_copied as f64 / secs;
    let mib_per_sec = report.bytes_copied as f64 / (1 << 20) as f64 / secs;
    println!(
        "executor[{backend}]: {} rows / {:.1} KiB copied+verified in {:.1} ms → {:.0} rows/s, {:.1} MiB/s\n",
        report.rows_copied,
        report.bytes_copied as f64 / 1024.0,
        wall.as_secs_f64() * 1e3,
        rows_per_sec,
        mib_per_sec,
    );

    // ---- 2. Mid-migration QoS in the simulator. ----
    let inject_every = outcome.inject_every;
    let sim_cfg = SimConfig {
        num_servers: k,
        num_clients: if full { 160 } else { 80 },
        duration: if full { 8_000_000 } else { 4_000_000 },
        warmup: 1_000_000,
        ..SimConfig::default()
    };
    let fg_scheme = new_scheme();
    let pool = SimTxn::from_trace(&w3.trace, &*fg_scheme, &*w3.db);
    let quiet = run(&sim_cfg, &mut PoolSource::new(pool.clone()));

    // Mid-migration window: sized (from quiet throughput) so the
    // acknowledged-batch copy stream is in flight for the whole measured
    // interval — these percentiles are *mid-migration*, not diluted by a
    // long post-drain tail.
    let copy_txns: usize = outcome.plan.sim_txn_batches().iter().map(Vec::len).sum();
    let span_us = (copy_txns as f64 * (1.0 + inject_every as f64) / quiet.throughput.max(1.0)
        * 1_000_000.0) as u64;
    let mid_cfg = SimConfig {
        warmup: (span_us / 4).max(50_000),
        duration: (span_us * 3 / 4).max(100_000),
        ..sim_cfg.clone()
    };
    // Same short window without the migration: the fair p99 baseline.
    let quiet_mid = run(&mid_cfg, &mut PoolSource::new(pool.clone()));
    let run_migrating = |cfg: &SimConfig, run_name: &str| {
        // Fresh store/scheme pair per run: the executor re-runs inside the
        // sim, its acknowledgements gating each batch's copy traffic.
        let store = schism_bench::open_backend(backend, k, &store_dir, run_name);
        load_assignment(&*store, &placement, &*w3.db).expect("seed shards");
        let vs = VersionedScheme::new(old_scheme(), new_scheme());
        let mut exec = outcome.executor(&*store, &vs);
        let mut source = MigrationSource::batched(
            PoolSource::new(pool.clone()),
            outcome.plan.sim_txn_batches(),
            inject_every,
            Some(Box::new(|_| matches!(exec.step(), StepOutcome::Flipped(_)))),
        );
        let report = run(cfg, &mut source);
        let issued = source.batches_issued();
        drop(source);
        assert_eq!(
            vs.flipped_batches(),
            issued as u64,
            "moved-set must track acknowledged batches exactly"
        );
        (report, issued)
    };
    let (mid, mid_issued) = run_migrating(&mid_cfg, "sim-mid");
    let (drained, drained_issued) = run_migrating(&sim_cfg, "sim-full");

    let mut qos = Table::new(&["run", "thr (txn/s)", "mean ms", "p95 ms", "p99 ms", "acked"]);
    let total = outcome.plan.batches.len();
    for (name, r, acked) in [
        ("quiet (mid window)", &quiet_mid, None),
        ("mid-migration", &mid, Some(mid_issued)),
        ("quiet (full window)", &quiet, None),
        ("full-run", &drained, Some(drained_issued)),
    ] {
        qos.row(vec![
            name.to_string(),
            format!("{:.0}", r.throughput),
            format!("{:.2}", r.mean_latency_ms),
            format!("{:.2}", r.p95_latency_ms),
            format!("{:.2}", r.p99_latency_ms),
            match acked {
                Some(a) => format!("{a}/{total}"),
                None => "-".to_string(),
            },
        ]);
    }
    println!("{}", qos.render());
    println!(
        "mid-migration p99 {:.2} ms vs same-window quiet {:.2} ms ({:+.0}%); full run recovers to {:.0} txn/s with {drained_issued}/{total} batches acknowledged",
        mid.p99_latency_ms,
        quiet_mid.p99_latency_ms,
        100.0 * (mid.p99_latency_ms / quiet_mid.p99_latency_ms.max(1e-9) - 1.0),
        drained.throughput,
    );

    // ---- 3. Calibration: measured batches → cost model → planner. ----
    if !calibrate {
        return;
    }
    // Fit on even-indexed batches, judge on all: the 2× gate below is not
    // allowed to lean on in-sample flattery alone.
    let train: Vec<CostSample> = if samples.len() >= 4 {
        samples.iter().copied().step_by(2).collect()
    } else {
        samples.clone()
    };
    let model = MigrationCostModel::fit(&train).expect("at least one timed batch");
    let max_ratio = model.max_ratio(&samples);
    let avg_row_bytes = (report.bytes_copied / report.rows_copied.max(1)).max(1) as u32;

    println!(
        "\ncalibration[{backend}] over {} timed batches ({} train):",
        samples.len(),
        train.len()
    );
    println!(
        "  model: batch_fixed {:.1} us + {:.3} us/row + {:.5} us/byte",
        model.batch_fixed_us, model.row_us, model.byte_us
    );
    let mut cal = Table::new(&[
        "batch",
        "rows",
        "KiB",
        "measured ms",
        "predicted ms",
        "ratio",
    ]);
    for (i, s) in samples.iter().enumerate().take(10) {
        let pred = model.predict_batch_us(s.rows, s.bytes);
        cal.row(vec![
            format!("{i}"),
            format!("{}", s.rows),
            format!("{:.1}", s.bytes as f64 / 1024.0),
            format!("{:.3}", s.wall_us / 1e3),
            format!("{:.3}", pred / 1e3),
            format!(
                "{:.2}",
                (pred / s.wall_us.max(1e-9)).max(s.wall_us / pred.max(1e-9))
            ),
        ]);
    }
    println!("{}", cal.render());
    let plan_pred_us = model.predict_plan_us(samples.iter().map(|s| (s.rows, s.bytes)));
    println!(
        "  plan total: predicted {:.1} ms vs measured {:.1} ms; worst per-batch ratio {max_ratio:.2}x ({})",
        plan_pred_us / 1e3,
        wall.as_secs_f64() * 1e3,
        if max_ratio <= 2.0 { "within 2x gate" } else { "EXCEEDS 2x gate" },
    );
    assert!(
        max_ratio <= 2.0,
        "calibrated model drifted {max_ratio:.2}x from measurement"
    );

    // Feedback edge: budgets for a 2 ms batch target under this backend.
    let target_us = 2_000.0;
    let fed = PlanConfig::for_target_batch_duration(&model, target_us, avg_row_bytes);
    println!(
        "  feedback: target {:.1} ms/batch → PlanConfig {{ max_rows_per_batch: {}, max_bytes_per_batch: {} }} at {} B/row",
        target_us / 1e3,
        fed.max_rows_per_batch,
        fed.max_bytes_per_batch,
        avg_row_bytes,
    );

    let json = format!(
        "{{\n  \"bench\": \"live_migration --calibrate\",\n  \"backend\": \"{backend}\",\n  \"full\": {full},\n  \"shards\": {k},\n  \"batches\": {batches},\n  \"rows_copied\": {rows},\n  \"bytes_copied\": {bytes},\n  \"wall_ms\": {wall_ms:.3},\n  \"rows_per_sec\": {rps:.0},\n  \"mib_per_sec\": {mibs:.2},\n  \"model\": {{\n    \"batch_fixed_us\": {fixed:.3},\n    \"row_us\": {row:.5},\n    \"byte_us\": {byte:.7}\n  }},\n  \"worst_batch_ratio\": {ratio:.3},\n  \"target_batch_us\": {target:.0},\n  \"fed_back_plan_config\": {{\n    \"max_rows_per_batch\": {fr},\n    \"max_bytes_per_batch\": {fb}\n  }}\n}}\n",
        batches = report.batches_flipped,
        rows = report.rows_copied,
        bytes = report.bytes_copied,
        wall_ms = wall.as_secs_f64() * 1e3,
        rps = rows_per_sec,
        mibs = mib_per_sec,
        fixed = model.batch_fixed_us,
        row = model.row_us,
        byte = model.byte_us,
        ratio = max_ratio,
        target = target_us,
        fr = fed.max_rows_per_batch,
        fb = fed.max_bytes_per_batch,
    );
    let out = if std::path::Path::new("crates/bench").is_dir() {
        "crates/bench/BENCH_store.json"
    } else {
        "BENCH_store.json"
    };
    std::fs::write(out, &json).expect("write BENCH_store.json");
    println!("  wrote {out}");
}
