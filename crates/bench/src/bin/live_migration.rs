//! **Live-migration executor benchmark** — the full `drift → detect →
//! plan → execute → flip` loop against in-memory shard stores, reporting
//! *executed* migration throughput (rows/bytes actually copied and
//! verified, per tick) and the foreground latency tax while batches are in
//! flight (mid-migration p99).
//!
//! Two measurements:
//!
//! 1. **standalone executor** — the plan runs back to back (one tick = one
//!    batch lifecycle: copy, verify, flip); wall-clock gives copy
//!    throughput in rows/s and MiB/s.
//! 2. **in-simulation** — the same plan's copy traffic is injected into
//!    the discrete-event cluster, gated on executor acknowledgements, and
//!    compared against a quiet run of the same foreground workload.
//!
//! ```text
//! cargo run --release -p schism-bench --bin live_migration [--full]
//! ```

use schism_bench::table::Table;
use schism_core::{build_graph, build_lookup_scheme, run_partition_phase, SchismConfig};
use schism_migrate::{ControllerConfig, MigrationController, StepOutcome, Tick};
use schism_router::{Scheme, VersionedScheme};
use schism_sim::{run, MigrationSource, PoolSource, SimConfig, SimTxn};
use schism_store::{load_assignment, MemStore};
use schism_workload::drifting::{self, DriftingConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let full = schism_bench::full_scale();
    let k = 8u32;
    let dcfg = DriftingConfig {
        records: if full { 16_000 } else { 3_200 },
        num_txns: if full { 20_000 } else { 5_000 },
        drift_blocks_per_window: if full { 80 } else { 16 },
        ..Default::default()
    };

    // Bootstrap placement + physical shards from window 0.
    let w0 = drifting::window(&dcfg, 0);
    let cfg = SchismConfig::new(k);
    let wg = build_graph(&w0, &w0.trace, &cfg);
    let placement = run_partition_phase(&wg, &cfg).assignment;
    println!(
        "bootstrap on {}: {} tuples over {k} shards",
        w0.name,
        placement.len()
    );

    // Drift to window 3 → plan. Batch budget sized so the plan spans many
    // ticks (one tick = one copy/verify/flip lifecycle).
    let mut ccfg = ControllerConfig::new(k);
    ccfg.plan.max_rows_per_batch = if full { 256 } else { 64 };
    let mut ctl = MigrationController::with_assignment(&w0, placement.clone(), ccfg);
    let w3 = drifting::window(&dcfg, 3);
    let outcome = match ctl.observe(&w3) {
        Tick::Migrate(m) => m,
        Tick::Stable(r) => panic!("drift missed: {}", r.distance),
    };
    println!(
        "drift {:.3} → plan: {} moves, {} batches, {:.1} KiB\n",
        outcome.report.distance,
        outcome.plan.total_moves,
        outcome.plan.batches.len(),
        outcome.plan.total_bytes as f64 / 1024.0
    );

    let old_scheme =
        || -> Arc<dyn Scheme> { Arc::new(build_lookup_scheme(&w0, &w0.trace, &placement, k)) };
    let new_scheme = || -> Arc<dyn Scheme> {
        Arc::new(build_lookup_scheme(&w3, &w3.trace, ctl.assignment(), k))
    };

    // ---- 1. Standalone executor throughput (one tick = one batch). ----
    let store = MemStore::new(k);
    load_assignment(&store, &placement, &*w3.db).expect("seed shards");
    let vs = VersionedScheme::new(old_scheme(), new_scheme());
    let mut exec = outcome.executor(&store, &vs);
    let t0 = Instant::now();
    assert_eq!(exec.run_to_completion(), StepOutcome::Done);
    let wall = t0.elapsed();
    let report = exec.report();

    let mut ticks = Table::new(&["tick", "tuples", "rows", "KiB", "drops", "retries"]);
    let shown = exec.batch_reports().len().min(12);
    for b in &exec.batch_reports()[..shown] {
        ticks.row(vec![
            format!("{}", b.batch),
            format!("{}", b.tuples),
            format!("{}", b.rows_copied),
            format!("{:.1}", b.bytes_copied as f64 / 1024.0),
            format!("{}", b.rows_dropped),
            format!("{}", b.retries),
        ]);
    }
    println!(
        "per-tick executed batches (first {shown} of {}):",
        report.batches_flipped
    );
    println!("{}", ticks.render());
    let secs = wall.as_secs_f64().max(1e-9);
    println!(
        "executor: {} rows / {:.1} KiB copied+verified in {:.1} ms → {:.0} rows/s, {:.1} MiB/s\n",
        report.rows_copied,
        report.bytes_copied as f64 / 1024.0,
        wall.as_secs_f64() * 1e3,
        report.rows_copied as f64 / secs,
        report.bytes_copied as f64 / (1 << 20) as f64 / secs,
    );

    // ---- 2. Mid-migration QoS in the simulator. ----
    let inject_every = 1u32;
    let sim_cfg = SimConfig {
        num_servers: k,
        num_clients: if full { 160 } else { 80 },
        duration: if full { 8_000_000 } else { 4_000_000 },
        warmup: 1_000_000,
        ..SimConfig::default()
    };
    let fg_scheme = new_scheme();
    let pool = SimTxn::from_trace(&w3.trace, &*fg_scheme, &*w3.db);
    let quiet = run(&sim_cfg, &mut PoolSource::new(pool.clone()));

    // Mid-migration window: sized (from quiet throughput) so the
    // acknowledged-batch copy stream is in flight for the whole measured
    // interval — these percentiles are *mid-migration*, not diluted by a
    // long post-drain tail.
    let copy_txns: usize = outcome.plan.sim_txn_batches().iter().map(Vec::len).sum();
    let span_us = (copy_txns as f64 * (1.0 + inject_every as f64) / quiet.throughput.max(1.0)
        * 1_000_000.0) as u64;
    let mid_cfg = SimConfig {
        warmup: (span_us / 4).max(50_000),
        duration: (span_us * 3 / 4).max(100_000),
        ..sim_cfg.clone()
    };
    // Same short window without the migration: the fair p99 baseline.
    let quiet_mid = run(&mid_cfg, &mut PoolSource::new(pool.clone()));
    let run_migrating = |cfg: &SimConfig| {
        // Fresh store/scheme pair per run: the executor re-runs inside the
        // sim, its acknowledgements gating each batch's copy traffic.
        let store = MemStore::new(k);
        load_assignment(&store, &placement, &*w3.db).expect("seed shards");
        let vs = VersionedScheme::new(old_scheme(), new_scheme());
        let mut exec = outcome.executor(&store, &vs);
        let mut source = MigrationSource::batched(
            PoolSource::new(pool.clone()),
            outcome.plan.sim_txn_batches(),
            inject_every,
            Some(Box::new(|_| matches!(exec.step(), StepOutcome::Flipped(_)))),
        );
        let report = run(cfg, &mut source);
        let issued = source.batches_issued();
        drop(source);
        assert_eq!(
            vs.flipped_batches(),
            issued as u64,
            "moved-set must track acknowledged batches exactly"
        );
        (report, issued)
    };
    let (mid, mid_issued) = run_migrating(&mid_cfg);
    let (drained, drained_issued) = run_migrating(&sim_cfg);

    let mut qos = Table::new(&["run", "thr (txn/s)", "mean ms", "p95 ms", "p99 ms", "acked"]);
    let total = outcome.plan.batches.len();
    for (name, r, acked) in [
        ("quiet (mid window)", &quiet_mid, None),
        ("mid-migration", &mid, Some(mid_issued)),
        ("quiet (full window)", &quiet, None),
        ("full-run", &drained, Some(drained_issued)),
    ] {
        qos.row(vec![
            name.to_string(),
            format!("{:.0}", r.throughput),
            format!("{:.2}", r.mean_latency_ms),
            format!("{:.2}", r.p95_latency_ms),
            format!("{:.2}", r.p99_latency_ms),
            match acked {
                Some(a) => format!("{a}/{total}"),
                None => "-".to_string(),
            },
        ]);
    }
    println!("{}", qos.render());
    println!(
        "mid-migration p99 {:.2} ms vs same-window quiet {:.2} ms ({:+.0}%); full run recovers to {:.0} txn/s with {drained_issued}/{total} batches acknowledged",
        mid.p99_latency_ms,
        quiet_mid.p99_latency_ms,
        100.0 * (mid.p99_latency_ms / quiet_mid.p99_latency_ms.max(1e-9) - 1.0),
        drained.throughput,
    );
}
