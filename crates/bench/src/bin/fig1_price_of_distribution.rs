//! **Figure 1 + §3** — "The Price of Distribution".
//!
//! The `simplecount` micro-benchmark: 150 closed-loop clients issue
//! two-point-read transactions against 1..=5 servers, either entirely
//! within one server's range stripe (single partition) or forced across
//! two servers (two-phase commit). The paper reports distributed
//! transactions costing ~2x in throughput and ~2x in latency (3.5 ms vs
//! 6.7 ms at 5 servers).
//!
//! ```text
//! cargo run --release -p schism-bench --bin fig1_price_of_distribution
//! ```

use schism_bench::table::Table;
use schism_router::{PartitionSet, RangeRule, RangeScheme, TablePolicy};
use schism_sim::{run, PoolSource, SimConfig, SimTxn};
use schism_workload::simplecount::{self, AccessMode, SimpleCountConfig};

fn main() {
    let full = schism_bench::full_scale();
    let num_txn_pool = if full { 20_000 } else { 5_000 };

    println!("=== Figure 1: throughput of single-partition vs distributed transactions ===");
    println!("(simplecount: 150 clients, two point reads per transaction)\n");

    let mut table = Table::new(&[
        "servers",
        "single-part (txn/s)",
        "distributed (txn/s)",
        "ratio",
        "lat single (ms)",
        "lat dist (ms)",
    ]);

    for servers in 1..=5u32 {
        let mut per_mode = Vec::new();
        for mode in [AccessMode::SinglePartition, AccessMode::Distributed] {
            let wcfg = SimpleCountConfig {
                servers,
                mode,
                num_txns: num_txn_pool,
                ..Default::default()
            };
            let w = simplecount::generate(&wcfg);
            // Ground-truth range striping: stripe s -> partition s.
            let rows = w.total_tuples();
            let stripe = rows / servers as u64;
            let rules: Vec<RangeRule> = (0..servers)
                .map(|p| RangeRule {
                    conds: vec![(
                        0,
                        (p as u64 * stripe) as i64,
                        if p == servers - 1 {
                            i64::MAX
                        } else {
                            ((p as u64 + 1) * stripe - 1) as i64
                        },
                    )],
                    partitions: PartitionSet::single(p),
                })
                .collect();
            let scheme = RangeScheme::new(
                servers,
                vec![TablePolicy::Rules {
                    rules,
                    default: PartitionSet::single(0),
                }],
            );
            let pool = SimTxn::from_trace(&w.trace, &scheme, &*w.db);
            let cfg = SimConfig::figure1(servers);
            let report = run(&cfg, &mut PoolSource::new(pool));
            per_mode.push(report);
        }
        let (single, dist) = (&per_mode[0], &per_mode[1]);
        table.row(vec![
            servers.to_string(),
            format!("{:.0}", single.throughput),
            format!("{:.0}", dist.throughput),
            format!("{:.2}x", single.throughput / dist.throughput.max(1e-9)),
            format!("{:.2}", single.mean_latency_ms),
            format!("{:.2}", dist.mean_latency_ms),
        ]);
    }
    println!("{}", table.render());
    println!("paper: distributed throughput ~0.5x of single-partition at every cluster size;");
    println!("       latency ~2x (3.5 ms single vs 6.7 ms distributed at 5 servers).");
    println!("note:  servers=1 has no distributed mode; both columns coincide there.");
}
