//! **Drift benchmark** — incremental (warm-started) repartitioning vs. a
//! from-scratch re-run on a drifting hot-key workload, window by window:
//! tuples moved, edge-cut retained, distributed-transaction fraction, and
//! wall-clock.
//!
//! The from-scratch baseline is relabeled as favorably as possible
//! (Hungarian matching of new→old partition ids), so the comparison is
//! against the *best case* of periodic cold repartitioning — the gap shown
//! here is purely the warm start keeping data pinned.
//!
//! ```text
//! cargo run --release -p schism-bench --bin drift_migration \
//!     [--full] [--threads N] [--inject-every N]
//! ```
//!
//! `--full` uses more windows and a bigger trace (slower; same shapes).
//! `--threads N` sizes the partitioner's worker pool for both the warm and
//! cold re-runs (0/absent = auto via `SCHISM_THREADS` or hardware); the
//! partitions are bit-identical whatever the value. `--inject-every N`
//! sets the plan's copy-stream pacing (`PlanConfig::inject_every`).

use schism_bench::table::Table;
use schism_core::{build_graph, run_partition_phase, Schism, SchismConfig};
use schism_migrate::incremental::{distributed_fraction, rerun_incremental, rerun_scratch};
use schism_migrate::{plan_migration, DriftConfig, DriftDetector, PlanConfig};
use schism_workload::drifting::{self, DriftingConfig};

fn main() {
    let full = schism_bench::full_scale();
    let k = 8u32;
    let windows = if full { 8u64 } else { 4 };
    let dcfg = DriftingConfig {
        records: if full { 16_000 } else { 3_200 },
        num_txns: if full { 20_000 } else { 5_000 },
        drift_blocks_per_window: if full { 80 } else { 16 },
        ..Default::default()
    };

    let mut cfg = SchismConfig::new(k);
    cfg.seed = 1;
    cfg.threads = schism_bench::arg_value("--threads")
        .map(|v| v.parse().expect("--threads takes a non-negative integer"))
        .unwrap_or(0);
    let plan_cfg = PlanConfig {
        inject_every: schism_bench::arg_value("--inject-every")
            .map(|v| v.parse().expect("--inject-every takes a positive integer"))
            .unwrap_or(1),
        ..PlanConfig::default()
    };
    let schism = Schism::new(cfg.clone());

    let w0 = drifting::window(&dcfg, 0);
    let wg = build_graph(&w0, &w0.trace, &cfg);
    let phase = run_partition_phase(&wg, &cfg);
    println!(
        "bootstrap on {}: {} tuples, edge cut {}, imbalance {:.3}\n",
        w0.name,
        phase.assignment.len(),
        phase.edge_cut,
        phase.imbalance
    );

    let mut detector = DetectorShim::new(&w0);
    let mut prev = phase.assignment;
    let mut table = Table::new(&[
        "window",
        "drift",
        "moved(inc)",
        "moved(scr)",
        "ratio",
        "cut(inc)",
        "cut(scr)",
        "dist(inc)",
        "dist(scr)",
        "batches",
        "ms(inc)",
        "ms(scr)",
    ]);

    for w in 1..=windows {
        let wl = drifting::window(&dcfg, w);
        let report = detector.observe(&wl);

        let inc = rerun_incremental(&schism, &wl, &wl.trace, &prev);
        let scratch_cfg = Schism::new(SchismConfig {
            seed: 1000 + w,
            ..cfg.clone()
        });
        let scr = rerun_scratch(&scratch_cfg, &wl, &wl.trace, &prev);

        let (train, test) = wl.trace.split(0.8, w ^ 42);
        let dist_inc = distributed_fraction(&wl, &train, &test, &inc.assignment, k);
        let dist_scr = distributed_fraction(&wl, &train, &test, &scr.assignment, k);
        let plan = plan_migration(&prev, &inc.assignment, &*wl.db, &plan_cfg);

        let ratio = if scr.relabeling.moved > 0 {
            inc.relabeling.moved as f64 / scr.relabeling.moved as f64
        } else {
            0.0
        };
        table.row(vec![
            format!("{w}"),
            format!("{:.3}", report),
            format!("{}", inc.relabeling.moved),
            format!("{}", scr.relabeling.moved),
            format!("{:.2}", ratio),
            format!("{}", inc.edge_cut),
            format!("{}", scr.edge_cut),
            format!("{:.3}", dist_inc),
            format!("{:.3}", dist_scr),
            format!("{}", plan.batches.len()),
            format!("{}", inc.wall_time.as_millis()),
            format!("{}", scr.wall_time.as_millis()),
        ]);

        detector.rebase(&wl);
        prev = inc.assignment;
    }

    println!("{}", table.render());
    println!(
        "partitioner threads: {} ({}); plan throttle: 1 move per {} foreground txns",
        schism_par::resolve_threads(cfg.threads),
        if cfg.threads == 0 { "auto" } else { "explicit" },
        plan_cfg.inject_every
    );
    println!("moved(x): tuples whose primary partition changes, after relabeling");
    println!("ratio   : moved(inc) / moved(scr) — the acceptance bar is < 0.50");
    println!("dist(x) : distributed-txn fraction on a held-out slice of the window");
}

/// Tiny wrapper so the main loop reads as the production loop would.
struct DetectorShim {
    inner: DriftDetector,
}

impl DetectorShim {
    fn new(w: &schism_workload::Workload) -> Self {
        Self {
            inner: DriftDetector::new(DriftConfig::default(), &w.trace),
        }
    }

    fn observe(&self, w: &schism_workload::Workload) -> f64 {
        self.inner.observe(&w.trace).distance
    }

    fn rebase(&mut self, w: &schism_workload::Workload) {
        self.inner.rebase(&w.trace);
    }
}
