//! **Figure 5 + §6.2** — graph partitioner scalability: running time for a
//! growing number of partitions (2..=512) on the three evaluation graphs
//! of Table 1 (Epinions, TPC-C 50W, TPC-E).
//!
//! The paper's observations to reproduce: partitioning time grows only
//! mildly with k but roughly linearly with the number of edges.
//!
//! ```text
//! cargo run --release -p schism-bench --bin fig5_partitioner_scaling [--full]
//! ```

use schism_bench::table::Table;
use schism_core::{build_graph, SchismConfig};
use schism_graph::{partition, CsrGraph, PartitionerConfig};
use schism_workload::epinions::{self, EpinionsConfig};
use schism_workload::tpcc::{self, TpccConfig};
use schism_workload::tpce::{self, TpceConfig};
use std::time::Instant;

fn build(name: &str, full: bool) -> (String, CsrGraph) {
    let scale = |small: usize, paper: usize| if full { paper } else { small };
    let mut cfg = SchismConfig::new(2);
    let (label, workload) = match name {
        "epinions" => {
            let w = epinions::generate(&EpinionsConfig {
                num_txns: scale(30_000, 100_000),
                ..Default::default()
            });
            ("epinions".to_string(), w)
        }
        "tpcc-50w" => {
            cfg.tuple_sample = 0.05;
            let w = tpcc::generate(&TpccConfig {
                num_txns: scale(40_000, 100_000),
                ..TpccConfig::full(50)
            });
            ("tpcc-50w (1% tuples)".to_string(), w)
        }
        "tpce" => {
            let w = tpce::generate(&TpceConfig {
                num_txns: scale(30_000, 100_000),
                ..TpceConfig::with_customers(1_000)
            });
            ("tpce".to_string(), w)
        }
        other => panic!("unknown graph {other}"),
    };
    let wg = build_graph(&workload, &workload.trace, &cfg);
    (
        format!(
            "{label}: {} nodes, {} edges",
            wg.graph.num_vertices(),
            wg.graph.num_edges()
        ),
        wg.graph,
    )
}

fn main() {
    let full = schism_bench::full_scale();
    println!("=== Figure 5: partitioning time vs number of partitions ===\n");
    let ks = [2u32, 4, 8, 16, 32, 64, 128, 256, 512];

    let mut table = Table::new(&["k", "epinions (s)", "tpcc-50w (s)", "tpce (s)"]);
    let graphs: Vec<(String, CsrGraph)> = ["epinions", "tpcc-50w", "tpce"]
        .iter()
        .map(|n| build(n, full))
        .collect();
    for (label, _) in &graphs {
        println!("graph {label}");
    }
    println!();

    let mut rows: Vec<Vec<String>> = ks.iter().map(|k| vec![k.to_string()]).collect();
    for (_, graph) in &graphs {
        for (i, &k) in ks.iter().enumerate() {
            let cfg = PartitionerConfig::with_k(k);
            let t0 = Instant::now();
            let p = partition(graph, &cfg);
            let dt = t0.elapsed().as_secs_f64();
            rows[i].push(format!("{dt:.2}"));
            eprintln!(
                "[fig5] k={k}: {dt:.2}s cut={} imbalance={:.3}",
                p.edge_cut,
                p.imbalance()
            );
        }
    }
    for r in rows {
        table.row(r);
    }
    println!("{}", table.render());
    println!("paper: time grows slightly with k (2..512 spans ~2-4x) and roughly");
    println!("       linearly with graph size; largest graph partitions in tens of seconds.");
}
