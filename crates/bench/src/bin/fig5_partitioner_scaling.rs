//! **Figure 5 + §6.2** — graph partitioner scalability: running time for a
//! growing number of partitions (2..=512) on the three evaluation graphs
//! of Table 1 (Epinions, TPC-C 50W, TPC-E), plus thread-scaling of the
//! parallel multilevel pipeline.
//!
//! The paper's observations to reproduce: partitioning time grows only
//! mildly with k but roughly linearly with the number of edges.
//!
//! ```text
//! cargo run --release -p schism-bench --bin fig5_partitioner_scaling \
//!     [--full] [--threads N] [--speedup-only] [--backend clique|hypergraph]
//! ```
//!
//! `--backend` selects the co-access representation the sweep partitions:
//! the default clique graph (edge-cut objective) or the one-net-per-
//! transaction hypergraph ((λ−1) connectivity objective). Each backend
//! records its thread-scaling run under its own section of
//! `crates/bench/BENCH_partition.json`, so the two can be compared
//! head-to-head; a run refreshes its own section and carries the other
//! over.
//!
//! `--threads N` sizes the partitioner's worker pool for the k sweep
//! (0/absent = auto via `SCHISM_THREADS` or hardware) **and** enables the
//! thread-scaling measurement: the largest graph is partitioned at every
//! power-of-two thread count up to `N`, wall-clocks and speedup ratios are
//! printed, and the result is recorded together with the host's core count
//! (speedups are only meaningful when the host actually has that many
//! cores). Partitions are asserted bit-identical across thread counts
//! while measuring — the determinism contract, enforced where the speedup
//! is claimed.
//!
//! `--speedup-only` skips the k sweep (CI smoke).

use schism_bench::table::Table;
use schism_core::{build_graph, GraphBackend, SchismConfig};
use schism_graph::{hpartition, partition, HyperGraph, PartitionerConfig, Partitioning};
use schism_workload::epinions::{self, EpinionsConfig};
use schism_workload::tpcc::{self, TpccConfig};
use schism_workload::tpce::{self, TpceConfig};
use std::time::Instant;

/// The co-access representation under the partitioner: both variants carry
/// the same vertices and weights (the build invariant); only the structure
/// being cut — pairwise edges vs transaction nets — differs.
enum Repr {
    Clique(schism_graph::CsrGraph),
    Hyper(HyperGraph),
}

impl Repr {
    fn num_nodes(&self) -> usize {
        match self {
            Repr::Clique(g) => g.num_vertices(),
            Repr::Hyper(h) => h.num_vertices(),
        }
    }

    /// Structure size: edges for the clique graph, pins for the hypergraph
    /// — the quantity partitioning time actually scales with.
    fn structure_size(&self) -> usize {
        match self {
            Repr::Clique(g) => g.num_edges(),
            Repr::Hyper(h) => h.num_pins(),
        }
    }

    fn partition(&self, cfg: &PartitionerConfig) -> Partitioning {
        match self {
            Repr::Clique(g) => partition(g, cfg),
            Repr::Hyper(h) => hpartition(h, cfg),
        }
    }

    fn cut_metric(&self) -> &'static str {
        match self {
            Repr::Clique(_) => "edge-cut",
            Repr::Hyper(_) => "connectivity(lambda-1)",
        }
    }
}

fn backend_name(b: GraphBackend) -> &'static str {
    match b {
        GraphBackend::Clique => "clique",
        GraphBackend::Hypergraph => "hypergraph",
    }
}

fn build(name: &str, full: bool, backend: GraphBackend) -> (String, Repr) {
    let scale = |small: usize, paper: usize| if full { paper } else { small };
    let mut cfg = SchismConfig::new(2);
    cfg.graph_backend = backend;
    let (label, workload) = match name {
        "epinions" => {
            let w = epinions::generate(&EpinionsConfig {
                num_txns: scale(30_000, 100_000),
                ..Default::default()
            });
            ("epinions".to_string(), w)
        }
        "tpcc-50w" => {
            cfg.tuple_sample = 0.05;
            let w = tpcc::generate(&TpccConfig {
                num_txns: scale(40_000, 100_000),
                ..TpccConfig::full(50)
            });
            ("tpcc-50w (1% tuples)".to_string(), w)
        }
        "tpce" => {
            let w = tpce::generate(&TpceConfig {
                num_txns: scale(30_000, 100_000),
                ..TpceConfig::with_customers(1_000)
            });
            ("tpce".to_string(), w)
        }
        other => panic!("unknown graph {other}"),
    };
    let wg = build_graph(&workload, &workload.trace, &cfg);
    let repr = match wg.hgraph {
        Some(h) => Repr::Hyper(h),
        None => Repr::Clique(wg.graph),
    };
    let structure = match &repr {
        Repr::Clique(g) => format!("{} edges", g.num_edges()),
        Repr::Hyper(h) => format!("{} nets / {} pins", h.num_nets(), h.num_pins()),
    };
    (
        format!("{label}: {} nodes, {structure}", repr.num_nodes()),
        repr,
    )
}

/// Partition the largest graph at 1, 2, ..., `max_threads` (powers of two)
/// and record wall-clocks + speedups. Panics if any thread count changes
/// the labels or cut — thread scaling is only worth reporting if the
/// determinism contract holds on the graph being timed. Returns this
/// backend's one-line section for BENCH_partition.json.
fn thread_scaling(repr: &Repr, label: &str, k: u32, max_threads: usize, full: bool) -> String {
    let mut counts = vec![1usize];
    while counts.last().unwrap() * 2 <= max_threads {
        counts.push(counts.last().unwrap() * 2);
    }
    let host_cores = schism_par::available_parallelism();
    println!("=== thread scaling on the largest graph ({label}), k={k} ===");
    println!("host cores: {host_cores}\n");

    let mut baseline: Option<(f64, Vec<u32>, u64)> = None;
    let mut rows: Vec<(usize, f64, f64)> = Vec::new(); // (threads, secs, speedup)
    let mut table = Table::new(&["threads", "wall (s)", "speedup", "cut"]);
    for &t in &counts {
        let cfg = PartitionerConfig {
            k,
            threads: t,
            ..PartitionerConfig::with_k(k)
        };
        let t0 = Instant::now();
        let p = repr.partition(&cfg);
        let dt = t0.elapsed().as_secs_f64();
        match &baseline {
            None => baseline = Some((dt, p.assignment.clone(), p.edge_cut)),
            Some((_, labels, cut)) => {
                assert_eq!(
                    &p.assignment, labels,
                    "threads={t} changed partition labels — determinism contract broken"
                );
                assert_eq!(p.edge_cut, *cut, "threads={t} changed the cut");
            }
        }
        let speedup = baseline.as_ref().unwrap().0 / dt.max(1e-9);
        rows.push((t, dt, speedup));
        table.row(vec![
            format!("{t}"),
            format!("{dt:.2}"),
            format!("{speedup:.2}x"),
            format!("{}", p.edge_cut),
        ]);
    }
    println!("{}", table.render());
    if host_cores < max_threads {
        println!(
            "note: host has only {host_cores} core(s); speedups at > {host_cores} threads \
             measure scheduling overhead, not scaling. Re-run on a {max_threads}-core host \
             for the real curve."
        );
    }

    let entries: Vec<String> = rows
        .iter()
        .map(|(t, dt, sp)| {
            format!("{{ \"threads\": {t}, \"wall_s\": {dt:.3}, \"speedup_vs_1\": {sp:.3} }}")
        })
        .collect();
    let note = if host_cores < max_threads {
        format!(
            "host has {host_cores} core(s) for {max_threads} threads: ratios measure \
             oversubscription overhead, not scaling; re-measure on a >= {max_threads}-core host"
        )
    } else {
        "speedups measured with dedicated cores per thread".to_string()
    };
    format!(
        "{{ \"graph\": \"{label}\", \"nodes\": {nodes}, \"structure_size\": {size}, \
         \"cut_metric\": \"{metric}\", \"cut\": {cut}, \"k\": {k}, \"full\": {full}, \
         \"threads\": {max_threads}, \"note\": \"{note}\", \
         \"deterministic_across_threads\": true, \"runs\": [{runs}] }}",
        nodes = repr.num_nodes(),
        size = repr.structure_size(),
        metric = repr.cut_metric(),
        cut = baseline.as_ref().unwrap().2,
        runs = entries.join(", "),
    )
}

fn bench_json_path() -> &'static str {
    if std::path::Path::new("crates/bench").is_dir() {
        "crates/bench/BENCH_partition.json"
    } else {
        "BENCH_partition.json"
    }
}

/// Writes BENCH_partition.json: one line per backend section, honest host
/// core count. The backend not measured this run is carried over from the
/// existing file.
fn write_bench_json(backend: GraphBackend, section: String) {
    let path = bench_json_path();
    let mut sections: Vec<(&str, String)> = Vec::new();
    for b in [GraphBackend::Clique, GraphBackend::Hypergraph] {
        let name = backend_name(b);
        let body = if b == backend {
            section.clone()
        } else {
            schism_bench::existing_section(path, name).unwrap_or_else(|| "null".into())
        };
        sections.push((name, body));
    }
    let body = sections
        .iter()
        .map(|(name, s)| format!("  \"{name}\": {s}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"fig5_partitioner_scaling\",\n  \"host_cores\": {},\n{body}\n}}\n",
        schism_par::available_parallelism(),
    );
    std::fs::write(path, &json).expect("write BENCH_partition.json");
    println!("wrote {path}");
}

fn main() {
    let full = schism_bench::full_scale();
    let threads: usize = schism_bench::arg_value("--threads")
        .map(|v| v.parse().expect("--threads takes a non-negative integer"))
        .unwrap_or(0);
    let speedup_only = schism_bench::flag("--speedup-only");
    let backend = schism_bench::graph_backend_arg();

    // The k sweep needs all three evaluation graphs; the thread-scaling
    // measurement only times the largest (tpce), so the smoke path skips
    // the other two builds.
    let names: &[&str] = if speedup_only {
        &["tpce"]
    } else {
        &["epinions", "tpcc-50w", "tpce"]
    };
    let graphs: Vec<(String, Repr)> = names.iter().map(|n| build(n, full, backend)).collect();
    println!("backend: {}", backend_name(backend));
    for (label, _) in &graphs {
        println!("graph {label}");
    }
    println!();

    if !speedup_only {
        println!("=== Figure 5: partitioning time vs number of partitions ===\n");
        let ks = [2u32, 4, 8, 16, 32, 64, 128, 256, 512];
        let mut table = Table::new(&["k", "epinions (s)", "tpcc-50w (s)", "tpce (s)"]);
        let mut rows: Vec<Vec<String>> = ks.iter().map(|k| vec![k.to_string()]).collect();
        for (_, repr) in &graphs {
            for (i, &k) in ks.iter().enumerate() {
                let cfg = PartitionerConfig {
                    threads,
                    ..PartitionerConfig::with_k(k)
                };
                let t0 = Instant::now();
                let p = repr.partition(&cfg);
                let dt = t0.elapsed().as_secs_f64();
                rows[i].push(format!("{dt:.2}"));
                eprintln!(
                    "[fig5] k={k}: {dt:.2}s {}={} imbalance={:.3}",
                    repr.cut_metric(),
                    p.edge_cut,
                    p.imbalance()
                );
            }
        }
        for r in rows {
            table.row(r);
        }
        println!("{}", table.render());
        println!("paper: time grows slightly with k (2..512 spans ~2-4x) and roughly");
        println!("       linearly with graph size; largest graph partitions in tens of seconds.");
        println!();
    }

    // Thread scaling on the largest graph (by structure size), recorded to
    // BENCH_partition.json. Opt-in via `--threads N` (or `--speedup-only`)
    // so a plain Figure-5 reproduction never overwrites the committed
    // record as a side effect.
    if threads > 1 || speedup_only {
        let max_threads = if threads > 0 {
            threads
        } else {
            schism_par::resolve_threads(0)
        };
        let (label, repr) = graphs
            .iter()
            .max_by_key(|(_, r)| r.structure_size())
            .expect("at least one graph");
        let section = thread_scaling(repr, label, 8, max_threads.max(2), full);
        write_bench_json(backend, section);
    }
}
