//! **Figure 6 + §6.3** — end-to-end TPC-C throughput scaling on the
//! simulated cluster, with the Schism-derived partitioning (by warehouse,
//! item replicated).
//!
//! Two configurations, as in the paper:
//! - **16 warehouses total**, spread over 1/2/4/8 servers (scale-out):
//!   contention on the 2 warehouses/server at 8 servers caps the speedup
//!   (paper: 4.7x).
//! - **16 warehouses per machine** (scale-up with data growth): near-linear
//!   (paper: 7.7x, coefficient 0.96).
//!
//! ```text
//! cargo run --release -p schism-bench --bin fig6_tpcc_scaling [--full]
//! ```

use schism_bench::manual::ManualTpcc;
use schism_bench::table::Table;
use schism_sim::{run, PoolSource, SimConfig, SimTxn};
use schism_workload::tpcc::{self, TpccConfig};

fn tpcc_pool(warehouses: u32, servers: u32, num_txns: usize) -> Vec<SimTxn> {
    let tcfg = TpccConfig {
        num_txns,
        ..TpccConfig::full(warehouses)
    };
    let w = tpcc::generate(&tcfg);
    // The Schism result for TPC-C: partition by warehouse, replicate item
    // (identical rules to the validated fig4 output; coded directly here so
    // the throughput runs don't depend on a partitioning run).
    let scheme = ManualTpcc::new(tcfg, servers);
    SimTxn::from_trace(&w.trace, &scheme, &*w.db)
}

fn main() {
    let full = schism_bench::full_scale();
    let pool_txns = if full { 20_000 } else { 6_000 };
    let servers_list = [1u32, 2, 4, 8];

    println!("=== Figure 6: TPC-C throughput scaling (simulated cluster) ===\n");
    let mut table = Table::new(&[
        "servers",
        "16 wh total (tps)",
        "speedup",
        "16 wh/machine (tps)",
        "speedup",
    ]);

    let mut base_fixed = 0.0f64;
    let mut base_grow = 0.0f64;
    for &servers in &servers_list {
        // Scale-out: constant 16 warehouses.
        let pool = tpcc_pool(16, servers, pool_txns);
        let cfg = SimConfig::figure6(servers, 22 * servers);
        let fixed = run(&cfg, &mut PoolSource::new(pool));

        // Scale-up: 16 warehouses per machine.
        let pool = tpcc_pool(16 * servers, servers, pool_txns);
        let cfg = SimConfig::figure6(servers, 22 * servers);
        let grow = run(&cfg, &mut PoolSource::new(pool));

        if servers == 1 {
            base_fixed = fixed.throughput;
            base_grow = grow.throughput;
        }
        table.row(vec![
            servers.to_string(),
            format!("{:.0}", fixed.throughput),
            format!("{:.2}x", fixed.throughput / base_fixed.max(1e-9)),
            format!("{:.0}", grow.throughput),
            format!("{:.2}x", grow.throughput / base_grow.max(1e-9)),
        ]);
        eprintln!(
            "[fig6] servers={servers}: fixed {:.0} tps (aborts {}), grow {:.0} tps (aborts {})",
            fixed.throughput, fixed.aborts, grow.throughput, grow.aborts
        );
    }
    println!("{}", table.render());
    println!("paper: single server ~131 tps; 16-warehouse scale-out reaches only ~4.7x at");
    println!("       8 servers (warehouse-row contention), while 16 warehouses/machine");
    println!("       scales ~7.7x (coefficient 0.96).");
}
