//! **Closed-loop serving benchmark** — N concurrent clients issue SQL
//! text at a [`Server`] front door, each waiting for
//! its result before sending the next statement (closed loop), while the
//! driver measures per-statement latency percentiles and steady-state
//! throughput. Three scenarios:
//!
//! 1. **steady** — a static hash scheme; the baseline serving cost of
//!    parse → route → shard-queue → execute → gather.
//! 2. **mid-migration** — the same workload over a
//!    [`VersionedScheme`] while a
//!    [`MigrationExecutor`] copies,
//!    verifies, and flips every key to a new placement under the clients;
//!    the run must finish with zero routing/serving errors.
//!
//! 3. **failover** (`--faults`) — the mix runs over a replication-factor-2
//!    scheme while a seeded [`FaultPlan`] crashes one shard worker
//!    mid-run; the driver records availability (served / attempted),
//!    the longest client-observed success gap, and p99 inside the
//!    one-second window after the kill.
//!
//! 4. **kill-rejoin** (`--faults`) — the mix over a replication-factor-3
//!    scheme, where writes are acked by a majority quorum of the full
//!    replica set. A seeded kill takes one shard down mid-run; after a
//!    short outage the driver revives it (`Down → CatchingUp`) and runs
//!    the catch-up copy ([`run_catch_up`]) under live traffic, recording
//!    availability across the whole outage, the wall-clock catch-up
//!    duration, and p99 of ops issued while the shard was catching up.
//!
//! The op mix is point-heavy OLTP: 70% point SELECT, 25% point UPDATE, 5%
//! three-key IN SELECT (no DELETEs in the mix; mid-plan DELETEs now pass
//! through the executor as tombstones, so that is a mix choice, not a
//! limitation).
//! Every client runs a [`schism_serve::Session`], so repeated hot statements spread
//! across replicas instead of re-picking the same salted replica.
//!
//! ```text
//! cargo run --release -p schism-bench --bin bench_serve \
//!     [--smoke] [--full] [--faults] [--clients N] [--seconds S] [--backend mem|log]
//! ```
//!
//! `--smoke` runs a short CI-sized pass and skips the JSON report;
//! otherwise results land in `crates/bench/BENCH_serve.json`. Latency
//! percentiles exclude a 10% warm-up ramp. `host_cores` is recorded
//! honestly: on a 1-core container the client count measures
//! oversubscribed queueing, not parallel speedup, and the JSON says so.

use schism_migrate::{
    plan_migration, run_catch_up, ExecutorConfig, MigrationExecutor, PlanConfig, StepOutcome,
};
use schism_router::{
    HashScheme, IndexBackend, LookupBackend, LookupScheme, MissPolicy, PartitionSet,
    ReplicatedScheme, RowKey, Scheme, VersionedScheme,
};
use schism_serve::{load_table, FaultPlan, PkValues, RouteKind, ServeConfig, Server};
use schism_sql::{ColumnType, Schema, Value};
use schism_store::{tempdir::TempDir, ShardStore};
use schism_workload::{TupleId, TupleValues};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: u32 = 8;
/// The shard `--faults` kills, and after how many of its dequeues.
const VICTIM: u32 = 3;

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Minimal deterministic per-client RNG (no external crates in bins).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(1);
        splitmix(self.0)
    }
}

fn schema() -> Arc<Schema> {
    let mut s = Schema::new();
    s.add_table(
        "account",
        &[
            ("id", ColumnType::Int),
            ("name", ColumnType::Str),
            ("bal", ColumnType::Int),
        ],
        &["id"],
    );
    Arc::new(s)
}

/// Per-run aggregate a client thread hands back.
#[derive(Default)]
struct ClientStats {
    latencies_us: Vec<u64>,
    ops: u64,
    /// Every success, including ramp-up (the availability denominator).
    ok_all: u64,
    errors: u64,
    point: u64,
    multi: u64,
    broadcast: u64,
    /// Longest wall-clock gap between two consecutive successes.
    max_gap_us: u64,
    /// `(start offset from run start, latency)` per measured op;
    /// only filled on fault runs, where the kill window needs it.
    timeline: Vec<(u64, u64)>,
}

/// Wall-clock context shared by the clients of a fault run.
struct FaultCtx {
    start: Instant,
    /// Micros after `start` when the watcher saw the crash fire;
    /// `u64::MAX` until then.
    kill_at_us: AtomicU64,
    /// Micros after `start` when the rejoin's catch-up copy began;
    /// `u64::MAX` on runs that never rejoin.
    catch_up_start_us: AtomicU64,
    /// Wall-clock duration of the catch-up copy in micros; `u64::MAX`
    /// until it completes.
    catch_up_us: AtomicU64,
}

/// One closed-loop client: issue, wait, record, repeat until `deadline`.
fn run_client(
    server: &Server,
    seed: u64,
    rows: u64,
    rampup_until: Instant,
    deadline: Instant,
    live_ops: &AtomicU64,
    faults: Option<&FaultCtx>,
) -> ClientStats {
    let mut rng = Rng(seed);
    let mut stats = ClientStats::default();
    // A session per client: its per-statement salts spread repeated reads
    // across replicas, and its write set keeps reads-after-writes on the
    // leader. A bare `execute_sql` would re-pick one salted replica forever.
    let mut session = server.session(seed);
    let mut last_ok: Option<Instant> = None;
    while Instant::now() < deadline {
        let key = rng.next() % rows;
        let roll = rng.next() % 100;
        let sql = if roll < 70 {
            format!("SELECT * FROM account WHERE id = {key}")
        } else if roll < 95 {
            format!(
                "UPDATE account SET bal = {} WHERE id = {key}",
                (rng.next() % 100_000) as i64
            )
        } else {
            let k2 = rng.next() % rows;
            let k3 = rng.next() % rows;
            format!("SELECT * FROM account WHERE id IN ({key}, {k2}, {k3})")
        };
        let started = Instant::now();
        match session.execute_sql(&sql) {
            Ok(out) => {
                stats.ok_all += 1;
                match out.metrics.route {
                    RouteKind::Point => stats.point += 1,
                    RouteKind::Multi => stats.multi += 1,
                    RouteKind::Broadcast => stats.broadcast += 1,
                }
                let lat = started.elapsed().as_micros() as u64;
                if started >= rampup_until {
                    stats.latencies_us.push(lat);
                    stats.ops += 1;
                    live_ops.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(ctx) = faults {
                    let done = started + Duration::from_micros(lat);
                    if let Some(prev) = last_ok {
                        let gap = done.saturating_duration_since(prev).as_micros() as u64;
                        stats.max_gap_us = stats.max_gap_us.max(gap);
                    }
                    last_ok = Some(done);
                    if started >= rampup_until {
                        let off = started.duration_since(ctx.start).as_micros() as u64;
                        stats.timeline.push((off, lat));
                    }
                }
            }
            Err(e) => {
                // Fault runs expect a handful of Unavailable errors around
                // the kill; anything else is still worth shouting about.
                if faults.is_none() {
                    eprintln!("serve error: {e} (statement: {sql})");
                }
                stats.errors += 1;
            }
        }
    }
    stats
}

struct RunResult {
    name: &'static str,
    ops: u64,
    errors: u64,
    throughput: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    point: u64,
    multi: u64,
    broadcast: u64,
    batches_flipped: usize,
    rows_migrated: usize,
    /// successes / attempts over the whole run (1.0 on fault-free runs).
    availability: f64,
    /// Longest client-observed gap between consecutive successes.
    max_gap_us: u64,
    /// p99 of ops started within one second after the shard kill.
    p99_kill_us: u64,
    /// Shards the server marked down and failed over from.
    failovers: u64,
    /// Shards that completed a catch-up copy and rejoined as live.
    rejoins: u64,
    /// Wall-clock duration of the rejoin's catch-up copy.
    catch_up_us: u64,
    /// p99 of ops started while the rejoined shard was catching up.
    p99_catchup_us: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

#[allow(clippy::too_many_arguments)]
fn run_scenario(
    name: &'static str,
    store: Arc<dyn ShardStore>,
    serve_scheme: Arc<dyn Scheme>,
    migration: Option<(&VersionedScheme, Arc<dyn Scheme>)>,
    schema: &Arc<Schema>,
    rows: u64,
    clients: u32,
    seconds: f64,
    faults: Option<Arc<FaultPlan>>,
    rejoin_delay: Option<Duration>,
) -> RunResult {
    let db: Arc<dyn TupleValues> = Arc::new(PkValues::from_schema(schema));
    let exec_store = Arc::clone(&store);
    let server = Server::new(
        Arc::clone(schema),
        store,
        serve_scheme,
        Arc::clone(&db),
        ServeConfig {
            faults: faults.clone(),
            ..ServeConfig::default()
        },
    );
    let start = Instant::now();
    let rampup_until = start + Duration::from_secs_f64(seconds * 0.1);
    let deadline = start + Duration::from_secs_f64(seconds);
    let live_ops = AtomicU64::new(0);
    let mut batches_flipped = 0usize;
    let mut rows_migrated = 0usize;
    let fault_ctx = faults.as_ref().map(|_| FaultCtx {
        start,
        kill_at_us: AtomicU64::new(u64::MAX),
        catch_up_start_us: AtomicU64::new(u64::MAX),
        catch_up_us: AtomicU64::new(u64::MAX),
    });

    let mut per_client: Vec<ClientStats> = Vec::new();
    std::thread::scope(|s| {
        // The crash trigger is count-based (deterministic); a watcher
        // timestamps when it fired so the kill-window p99 can be cut out,
        // and on kill-rejoin runs it also drives the rejoin: after
        // `rejoin_delay` of outage it revives the victim (Down →
        // CatchingUp) and runs the catch-up copy under live traffic.
        if let (Some(plan), Some(ctx)) = (&faults, &fault_ctx) {
            let server = &server;
            let store = &exec_store;
            s.spawn(move || {
                let killed = loop {
                    if !plan.crashes_fired().is_empty() {
                        let off = ctx.start.elapsed().as_micros() as u64;
                        ctx.kill_at_us.store(off, Ordering::Relaxed);
                        break true;
                    }
                    if Instant::now() >= deadline {
                        break false;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                };
                let Some(delay) = rejoin_delay else { return };
                if !killed {
                    return;
                }
                std::thread::sleep(delay);
                let (victim, _) = plan.crashes_fired()[0];
                assert!(
                    server.revive_shard(victim),
                    "shard {victim} must be down before the rejoin"
                );
                let t0 = Instant::now();
                ctx.catch_up_start_us
                    .store(ctx.start.elapsed().as_micros() as u64, Ordering::Relaxed);
                run_catch_up(
                    victim,
                    &server.scheme(),
                    &**server.routing_db(),
                    (0..rows).map(|r| TupleId::new(0, r)),
                    &**store,
                    server.health(),
                    &PlanConfig {
                        max_rows_per_batch: 256,
                        ..PlanConfig::default()
                    },
                    // Foreground writes racing a batch copy fail its
                    // verification; each failure re-copies that batch.
                    1_000_000,
                )
                .unwrap_or_else(|e| panic!("catch-up of shard {victim} failed: {e}"));
                ctx.catch_up_us
                    .store(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
            });
        }
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let (server, live_ops) = (&server, &live_ops);
                let fault_ctx = fault_ctx.as_ref();
                s.spawn(move || {
                    run_client(
                        server,
                        0xC0FFEE ^ (u64::from(c) << 32),
                        rows,
                        rampup_until,
                        deadline,
                        live_ops,
                        fault_ctx,
                    )
                })
            })
            .collect();
        // The migration scenario flips every batch while the clients run,
        // then cuts the server over to the finalized scheme.
        let mig = migration.map(|(vs, new_scheme)| {
            let (server, exec_store) = (&server, &exec_store);
            s.spawn(move || {
                let plan = build_plan(vs, &*db, rows);
                let mut exec = MigrationExecutor::new(
                    &plan,
                    &**exec_store,
                    vs,
                    ExecutorConfig {
                        // Foreground writes racing a batch copy fail its
                        // checksum verification; each failure re-copies.
                        max_retries: 1_000_000,
                        ..ExecutorConfig::default()
                    },
                );
                loop {
                    match exec.step() {
                        StepOutcome::Flipped(_) => {}
                        StepOutcome::Paused => {}
                        StepOutcome::Done => break,
                        StepOutcome::Aborted { batch, error } => {
                            panic!("migration aborted at batch {batch}: {error}")
                        }
                    }
                }
                server.install_scheme(new_scheme);
                let r = exec.report();
                (r.batches_flipped, r.tuples_moved)
            })
        });
        per_client = handles.into_iter().map(|h| h.join().unwrap()).collect();
        if let Some(h) = mig {
            let (b, t) = h.join().unwrap();
            batches_flipped = b;
            rows_migrated = t;
        }
    });
    let measured_s = seconds * 0.9;
    let mut latencies: Vec<u64> = Vec::new();
    let mut ok_all = 0u64;
    let mut timeline: Vec<(u64, u64)> = Vec::new();
    let mut result = RunResult {
        name,
        ops: 0,
        errors: 0,
        throughput: 0.0,
        p50_us: 0,
        p95_us: 0,
        p99_us: 0,
        point: 0,
        multi: 0,
        broadcast: 0,
        batches_flipped,
        rows_migrated,
        availability: 1.0,
        max_gap_us: 0,
        p99_kill_us: 0,
        failovers: server.failovers(),
        rejoins: server.rejoins(),
        catch_up_us: 0,
        p99_catchup_us: 0,
    };
    for c in per_client {
        latencies.extend(c.latencies_us);
        timeline.extend(c.timeline);
        ok_all += c.ok_all;
        result.ops += c.ops;
        result.errors += c.errors;
        result.point += c.point;
        result.multi += c.multi;
        result.broadcast += c.broadcast;
        result.max_gap_us = result.max_gap_us.max(c.max_gap_us);
    }
    latencies.sort_unstable();
    result.throughput = result.ops as f64 / measured_s;
    result.p50_us = percentile(&latencies, 0.50);
    result.p95_us = percentile(&latencies, 0.95);
    result.p99_us = percentile(&latencies, 0.99);
    if ok_all + result.errors > 0 {
        result.availability = ok_all as f64 / (ok_all + result.errors) as f64;
    }
    if let Some(ctx) = &fault_ctx {
        let kill_at = ctx.kill_at_us.load(Ordering::Relaxed);
        if kill_at != u64::MAX {
            let mut window: Vec<u64> = timeline
                .iter()
                .filter(|(off, _)| (kill_at..kill_at + 1_000_000).contains(off))
                .map(|&(_, lat)| lat)
                .collect();
            window.sort_unstable();
            result.p99_kill_us = percentile(&window, 0.99);
        }
        let cu_start = ctx.catch_up_start_us.load(Ordering::Relaxed);
        let cu_us = ctx.catch_up_us.load(Ordering::Relaxed);
        if cu_start != u64::MAX && cu_us != u64::MAX {
            result.catch_up_us = cu_us;
            let mut window: Vec<u64> = timeline
                .iter()
                .filter(|(off, _)| (cu_start..cu_start + cu_us.max(1)).contains(off))
                .map(|&(_, lat)| lat)
                .collect();
            window.sort_unstable();
            result.p99_catchup_us = percentile(&window, 0.99);
        }
    }
    assert_eq!(live_ops.load(Ordering::Relaxed), result.ops);
    println!(
        "{name}: {} ops in {measured_s:.1}s ({:.0} ops/s), p50 {}us p95 {}us p99 {}us, \
         {} point / {} multi / {} broadcast, {} errors",
        result.ops,
        result.throughput,
        result.p50_us,
        result.p95_us,
        result.p99_us,
        result.point,
        result.multi,
        result.broadcast,
        result.errors
    );
    if batches_flipped > 0 {
        println!("{name}: migration flipped {batches_flipped} batches, {rows_migrated} rows moved");
    }
    if faults.is_some() {
        println!(
            "{name}: availability {:.4}, max success gap {}us, p99 in kill window {}us, \
             {} shard(s) failed over",
            result.availability, result.max_gap_us, result.p99_kill_us, result.failovers
        );
    }
    if result.rejoins > 0 {
        println!(
            "{name}: {} shard(s) rejoined, catch-up copy took {}us, p99 during catch-up {}us",
            result.rejoins, result.catch_up_us, result.p99_catchup_us
        );
    }
    result
}

/// A migration plan rotating every key's owner to the next shard.
fn build_plan(
    vs: &VersionedScheme,
    db: &dyn TupleValues,
    rows: u64,
) -> schism_migrate::MigrationPlan {
    let old_asg: HashMap<TupleId, PartitionSet> = (0..rows)
        .map(|r| {
            let t = TupleId::new(0, r);
            (t, vs.old_scheme().locate_tuple(t, db))
        })
        .collect();
    let new_asg: HashMap<TupleId, PartitionSet> = (0..rows)
        .map(|r| {
            let t = TupleId::new(0, r);
            (t, vs.new_scheme().locate_tuple(t, db))
        })
        .collect();
    plan_migration(
        &old_asg,
        &new_asg,
        db,
        &PlanConfig {
            max_rows_per_batch: 256,
            ..PlanConfig::default()
        },
    )
}

/// The rotate-by-one lookup scheme every key migrates to.
fn rotated_scheme(old: &dyn Scheme, db: &dyn TupleValues, rows: u64) -> Arc<dyn Scheme> {
    let entries: Vec<(u64, PartitionSet)> = (0..rows)
        .map(|r| {
            let from = old.locate_tuple(TupleId::new(0, r), db).first().unwrap();
            (r, PartitionSet::single((from + 1) % SHARDS))
        })
        .collect();
    Arc::new(LookupScheme::new(
        SHARDS,
        vec![Some(
            Box::new(IndexBackend::new(entries)) as Box<dyn LookupBackend>
        )],
        vec![Some(RowKey { col: 0, offset: 0 })],
        MissPolicy::HashRow,
    ))
}

fn main() {
    let smoke = schism_bench::flag("--smoke");
    let faults_on = schism_bench::flag("--faults");
    let full = schism_bench::full_scale();
    let backend = schism_bench::backend_kind();
    let clients: u32 = schism_bench::arg_value("--clients")
        .map(|v| v.parse().expect("--clients takes a positive integer"))
        .unwrap_or(if smoke { 4 } else { 8 });
    let seconds: f64 = schism_bench::arg_value("--seconds")
        .map(|v| v.parse().expect("--seconds takes a float"))
        .unwrap_or(if smoke { 1.0 } else { 5.0 });
    let rows: u64 = if full {
        100_000
    } else if smoke {
        2_000
    } else {
        20_000
    };
    let schema = schema();
    let db = PkValues::from_schema(&schema);
    let dir = TempDir::new("schism-bench-serve").expect("temp dir for stores");
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "bench_serve: {rows} rows over {SHARDS} shards, {clients} closed-loop clients, \
         {seconds:.1}s per run, backend {backend}, {host_cores} host core(s)"
    );

    let old: Arc<dyn Scheme> = Arc::new(HashScheme::by_attrs(SHARDS, vec![Some(0)]));
    let table_rows =
        |n: u64| (0..n).map(|i| vec![Value::Int(i as i64), Value::Null, Value::Int(0)]);

    // Run 1: steady state under the static hash scheme.
    let store1: Arc<dyn ShardStore> =
        Arc::from(schism_bench::open_backend(backend, SHARDS, &dir, "steady"));
    load_table(&*store1, &*old, &db, &schema, 0, table_rows(rows)).expect("load steady store");
    let steady = run_scenario(
        "steady",
        store1,
        Arc::clone(&old),
        None,
        &schema,
        rows,
        clients,
        seconds,
        None,
        None,
    );

    // Run 2: the same closed loop while every key migrates to a rotated
    // placement; the server starts on the versioned scheme and is cut over
    // to the finalized scheme when the executor finishes.
    let store2: Arc<dyn ShardStore> = Arc::from(schism_bench::open_backend(
        backend,
        SHARDS,
        &dir,
        "migration",
    ));
    load_table(&*store2, &*old, &db, &schema, 0, table_rows(rows)).expect("load migration store");
    let new = rotated_scheme(&*old, &db, rows);
    let vs = Arc::new(VersionedScheme::new(Arc::clone(&old), Arc::clone(&new)));
    let migration = run_scenario(
        "mid-migration",
        store2,
        Arc::clone(&vs) as Arc<dyn Scheme>,
        Some((&vs, new)),
        &schema,
        rows,
        clients,
        seconds,
        None,
        None,
    );

    // Run 3 (--faults): the mix over a replication-factor-2 scheme while a
    // seeded plan crashes one shard worker; the clients ride the failover.
    let failover = faults_on.then(|| {
        let store3: Arc<dyn ShardStore> = Arc::from(schism_bench::open_backend(
            backend, SHARDS, &dir, "failover",
        ));
        let rep: Arc<dyn Scheme> = Arc::new(ReplicatedScheme::new(2, Arc::clone(&old)));
        load_table(&*store3, &*rep, &db, &schema, 0, table_rows(rows))
            .expect("load failover store");
        let after = if smoke { 200 } else { 2_000 };
        let plan = Arc::new(FaultPlan::new(0xFA11).crash_worker(VICTIM, after));
        let r = run_scenario(
            "failover",
            store3,
            rep,
            None,
            &schema,
            rows,
            clients,
            seconds,
            Some(plan),
            None,
        );
        assert_eq!(
            r.failovers, 1,
            "the failover run must kill exactly one shard and fail over from it"
        );
        assert!(
            r.availability > 0.9,
            "availability must stay high across a single-shard kill (got {:.4})",
            r.availability
        );
        r
    });

    // Run 4 (--faults): the mix over a replication-factor-3 scheme with
    // quorum-acked writes. The seeded kill takes one shard down; after a
    // short outage the watcher revives it and runs the catch-up copy under
    // the live clients, so the run measures the whole down → catching-up →
    // live arc, not just the failover.
    let rejoin = faults_on.then(|| {
        let store4: Arc<dyn ShardStore> =
            Arc::from(schism_bench::open_backend(backend, SHARDS, &dir, "rejoin"));
        let rep3: Arc<dyn Scheme> = Arc::new(ReplicatedScheme::new(3, Arc::clone(&old)));
        load_table(&*store4, &*rep3, &db, &schema, 0, table_rows(rows)).expect("load rejoin store");
        let after = if smoke { 200 } else { 2_000 };
        let plan = Arc::new(FaultPlan::new(0x2E10).crash_worker(VICTIM, after));
        let outage = Duration::from_secs_f64(seconds * 0.15);
        let r = run_scenario(
            "kill-rejoin",
            store4,
            rep3,
            None,
            &schema,
            rows,
            clients,
            seconds,
            Some(plan),
            Some(outage),
        );
        assert_eq!(
            r.failovers, 1,
            "the kill-rejoin run must kill exactly one shard"
        );
        assert_eq!(
            r.rejoins, 1,
            "the killed shard must finish its catch-up and rejoin as live"
        );
        assert!(
            r.catch_up_us > 0,
            "the catch-up copy must take measurable wall-clock time"
        );
        assert!(
            r.availability > 0.9,
            "majority quorums must keep writes available across the kill (got {:.4})",
            r.availability
        );
        r
    });

    let total_errors = steady.errors + migration.errors;
    assert_eq!(total_errors, 0, "a serving run must complete error-free");
    assert!(
        steady.ops > 0 && migration.ops > 0,
        "clients must make progress"
    );
    assert!(
        migration.batches_flipped > 0,
        "the migration scenario must flip at least one batch under load"
    );

    if smoke {
        match (&failover, &rejoin) {
            (Some(f), Some(r)) => println!(
                "smoke OK: all scenarios served; failover availability {:.4}, \
                 kill-rejoin availability {:.4} (catch-up {}us)",
                f.availability, r.availability, r.catch_up_us
            ),
            (Some(f), None) => println!(
                "smoke OK: all scenarios served; failover availability {:.4}",
                f.availability
            ),
            _ => println!("smoke OK: both scenarios served with zero errors"),
        }
        return;
    }

    let note = if host_cores < clients as usize {
        format!(
            "host has {host_cores} core(s) for {clients} clients: latencies measure \
             oversubscribed closed-loop queueing, not parallel scaling; re-measure on a \
             >= {clients}-core host"
        )
    } else {
        "clients measured with dedicated cores".to_string()
    };
    let mut run_refs = vec![&steady, &migration];
    if let Some(f) = &failover {
        run_refs.push(f);
    }
    if let Some(r) = &rejoin {
        run_refs.push(r);
    }
    let runs = run_refs
        .iter()
        .map(|r| {
            let mig = if r.batches_flipped > 0 {
                format!(
                    ", \"batches_flipped\": {}, \"rows_migrated\": {}",
                    r.batches_flipped, r.rows_migrated
                )
            } else {
                String::new()
            };
            let fo = if r.failovers > 0 {
                format!(
                    ", \"availability\": {:.4}, \"max_gap_us\": {}, \"p99_kill_us\": {}, \
                     \"failovers\": {}, \"errors\": {}",
                    r.availability, r.max_gap_us, r.p99_kill_us, r.failovers, r.errors
                )
            } else {
                String::new()
            };
            let rj = if r.rejoins > 0 {
                format!(
                    ", \"rejoins\": {}, \"catch_up_us\": {}, \"p99_catchup_us\": {}",
                    r.rejoins, r.catch_up_us, r.p99_catchup_us
                )
            } else {
                String::new()
            };
            format!(
                "    {{ \"run\": \"{}\", \"ops\": {}, \"throughput_ops_s\": {:.0}, \
                 \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"point\": {}, \
                 \"multi\": {}, \"broadcast\": {}{mig}{fo}{rj} }}",
                r.name,
                r.ops,
                r.throughput,
                r.p50_us,
                r.p95_us,
                r.p99_us,
                r.point,
                r.multi,
                r.broadcast
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let fault_arg = if faults_on { " --faults" } else { "" };
    let json = format!(
        "{{\n  \"bench\": \"bench_serve --clients {clients} --seconds {seconds}{fault_arg}\",\n  \
         \"workload\": \"point-heavy SQL (70% point SELECT, 25% point UPDATE, 5% 3-key IN)\",\n  \
         \"rows\": {rows},\n  \"shards\": {SHARDS},\n  \"clients\": {clients},\n  \
         \"backend\": \"{backend}\",\n  \"full\": {full},\n  \"host_cores\": {host_cores},\n  \
         \"note\": \"{note}\",\n  \"errors\": {total_errors},\n  \"runs\": [\n{runs}\n  ]\n}}\n"
    );
    let out = if std::path::Path::new("crates/bench").is_dir() {
        "crates/bench/BENCH_serve.json"
    } else {
        "BENCH_serve.json"
    };
    std::fs::write(out, &json).expect("write BENCH_serve.json");
    println!("wrote {out}");
}
