//! **Table 1 + §6.2** — graph sizes for the three largest evaluation
//! datasets: tuples in the database, transactions in the trace, and
//! resulting graph nodes/edges (after the §5.1 heuristics) — plus
//! thread-scaling of the streaming parallel graph build.
//!
//! ```text
//! cargo run --release -p schism-bench --bin table1_graph_sizes \
//!     [--full] [--threads N] [--scaling-only] \
//!     [--huge [--smoke] [--backend clique|hypergraph]] \
//!     [--backends [--smoke]]
//! ```
//!
//! `--threads N` (any `N >= 1`) sizes the builder's worker pool for the
//! size table **and** enables the thread-scaling measurement: the largest
//! trace (TPC-C 50W) is ingested at every power-of-two thread count up to
//! `N`, plus `N` itself when it is not one — asserting the built graphs
//! bit-identical via [`schism_core::WorkloadGraph::digest`] while timing —
//! plus once more through the chunked streaming source (`tpcc::stream`).
//!
//! `--scaling-only` skips the other two dataset builds (CI smoke).
//!
//! `--huge` runs the fixed-memory stress: a **1e8-access** drifting trace
//! is streamed end to end — graph build (`build_graph_source`, never a
//! materialized `Trace`), partition phase, and a sketched drift check —
//! while peak RSS (`VmHWM`) is asserted under a hard ceiling. `--smoke`
//! scales it down 100x (~1e6 accesses, CI-sized) and additionally
//! round-trips a statement-retaining trace through `render_log` →
//! `SqlLogSource`, asserting the streamed-SQL graph digest matches the
//! in-memory build. `--backend hypergraph` runs the same stress through
//! the net-per-transaction hypergraph backend (recorded as its own
//! `"huge_hyper"` section, so the clique record survives).
//!
//! `--backends` is the head-to-head backend comparison: for each of
//! tpcc-wide / ycsb-e / drifting, a **fresh subprocess per (workload,
//! backend) pair** builds the graph and partitions it with per-phase peak
//! RSS isolated via `clear_refs` resets, then scores the placement's
//! distributed-transaction fraction on the full trace. Both backends run
//! blanket-filter-free (`blanket_threshold = MAX`) so coverage is equal:
//! the clique pays O(width²) edges for every wide transaction, the
//! hypergraph O(width) pins. On tpcc-wide the run *asserts* the hypergraph
//! build peaks strictly lower than the clique build and that its
//! distributed fraction is no worse. `--smoke` scales the traces down
//! (CI-sized).
//!
//! Results land in `crates/bench/BENCH_graph.json` as independent
//! `"scaling"` / `"huge"` / `"huge_hyper"` / `"backends"` sections (a run
//! refreshes its own section and carries the others over), together with
//! the host's core count — speedups are only meaningful when the host
//! actually has that many cores; a 1-core container measures
//! oversubscription, not scaling, and the JSON says so.

use schism_bench::table::Table;
use schism_core::{GraphBackend, SchismConfig};
use schism_migrate::{
    distributed_fraction, DistanceMetric, DriftConfig, SketchConfig, SketchDriftDetector,
};
use schism_workload::drifting::{self, DriftingConfig};
use schism_workload::epinions::{self, EpinionsConfig};
use schism_workload::tpcc::{self, TpccConfig};
use schism_workload::tpce::{self, TpceConfig};
use schism_workload::ycsb::{self, YcsbConfig};
use schism_workload::{render_log, SqlLogSource, TraceSource, Workload};
use std::sync::Arc;
use std::time::Instant;

struct Row<'a> {
    name: &'static str,
    paper: (&'static str, &'static str, &'static str, &'static str),
    workload: &'a Workload,
    cfg: SchismConfig,
}

/// The TPC-C 50W configuration (the largest trace; what the thread-scaling
/// measurement ingests).
fn tpcc_cfg(full: bool) -> TpccConfig {
    TpccConfig {
        num_txns: if full { 100_000 } else { 40_000 },
        ..TpccConfig::full(50)
    }
}

/// Ingest the largest trace at 1, 2, 4, ..., `max_threads` (powers of two,
/// plus `max_threads` itself when it is not one) and through the chunked
/// streaming source, asserting every build digests identically. Returns
/// the `"scaling"` section for BENCH_graph.json.
fn thread_scaling(w: &Workload, wcfg: &TpccConfig, full: bool, max_threads: usize) -> String {
    let mut counts = vec![1usize];
    while counts.last().unwrap() * 2 <= max_threads {
        counts.push(counts.last().unwrap() * 2);
    }
    if *counts.last().unwrap() != max_threads {
        counts.push(max_threads); // non-power-of-two budgets are measured too
    }
    let host_cores = schism_par::available_parallelism();

    let mut cfg = SchismConfig::new(10);
    cfg.tuple_sample = 0.05;
    println!(
        "=== graph-build thread scaling on the largest trace (tpcc-50w, {} txns) ===",
        w.trace.len()
    );
    println!("host cores: {host_cores}\n");

    let mut baseline: Option<(f64, u64)> = None;
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    let mut table = Table::new(&[
        "ingestion",
        "threads",
        "wall (s)",
        "speedup",
        "nodes",
        "edges",
    ]);
    let mut stats = None;
    for &t in &counts {
        cfg.threads = t;
        let t0 = Instant::now();
        let wg = schism_core::build_graph(w, &w.trace, &cfg);
        let dt = t0.elapsed().as_secs_f64();
        match &baseline {
            None => baseline = Some((dt, wg.digest())),
            Some((_, digest)) => assert_eq!(
                wg.digest(),
                *digest,
                "threads={t} changed the workload graph — determinism contract broken"
            ),
        }
        let speedup = baseline.as_ref().unwrap().0 / dt.max(1e-9);
        rows.push((format!("whole/{t}"), dt, speedup));
        table.row(vec![
            "whole-trace".into(),
            t.to_string(),
            format!("{dt:.2}"),
            format!("{speedup:.2}x"),
            wg.stats.nodes.to_string(),
            wg.stats.edges.to_string(),
        ]);
        stats = Some(wg.stats);
    }

    // Chunked ingestion through the scripted streaming source, at the full
    // budget: same graph, no materialized trace.
    cfg.threads = max_threads;
    let src = tpcc::stream(wcfg);
    let t0 = Instant::now();
    let wg = schism_core::build_graph_source(w, &src, &cfg);
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(
        wg.digest(),
        baseline.as_ref().unwrap().1,
        "chunked streaming ingestion changed the workload graph"
    );
    let speedup = baseline.as_ref().unwrap().0 / dt.max(1e-9);
    rows.push((format!("streamed/{max_threads}"), dt, speedup));
    table.row(vec![
        "streamed".into(),
        max_threads.to_string(),
        format!("{dt:.2}"),
        format!("{speedup:.2}x"),
        wg.stats.nodes.to_string(),
        wg.stats.edges.to_string(),
    ]);
    println!("{}", table.render());
    if host_cores < max_threads {
        println!(
            "note: host has only {host_cores} core(s); speedups at > {host_cores} threads \
             measure scheduling overhead, not scaling. Re-run on a {max_threads}-core host \
             for the real curve."
        );
    }

    let entries: Vec<String> = rows
        .iter()
        .map(|(label, dt, sp)| {
            format!("{{ \"run\": \"{label}\", \"wall_s\": {dt:.3}, \"speedup_vs_1\": {sp:.3} }}")
        })
        .collect();
    let note = if host_cores < max_threads {
        format!(
            "host has {host_cores} core(s) for {max_threads} threads: ratios measure \
             oversubscription overhead, not scaling; re-measure on a >= {max_threads}-core host"
        )
    } else {
        "speedups measured with dedicated cores per thread".to_string()
    };
    let stats = stats.expect("at least one build ran");
    format!(
        "{{ \"threads\": {max_threads}, \"workload\": \"tpcc-50w (5% tuples)\", \
         \"txns\": {txns}, \"nodes\": {nodes}, \"edges\": {edges}, \"full\": {full}, \
         \"note\": \"{note}\", \"deterministic_across_threads\": true, \
         \"chunked_equals_whole\": true, \"runs\": [{runs}] }}",
        txns = w.trace.len(),
        nodes = stats.nodes,
        edges = stats.edges,
        runs = entries.join(", "),
    )
}

/// The `--huge` drifting configuration: ~3 accesses per transaction, so
/// `num_txns` of 33.34M yields ~1e8 accesses over a 1.6M-key space (100k
/// co-access blocks). `--smoke` scales both down 100x (~1e6 accesses).
fn huge_cfg(smoke: bool) -> DriftingConfig {
    let scale: u64 = if smoke { 1 } else { 100 };
    let records = 16_000 * scale;
    let block_span = 16;
    DriftingConfig {
        records,
        block_span,
        num_txns: (333_400 * scale) as usize,
        theta: 0.9,
        write_fraction: 0.3,
        // One window of drift rotates the hot spot by 10% of the keyspace.
        drift_blocks_per_window: records / block_span / 10,
        hot_offset: 0,
        seed: 42,
        keep_statements: false,
    }
}

/// End-to-end fixed-memory stress: streamed build → partition → sketched
/// drift window, with peak RSS asserted under `ceiling_mib`. Returns the
/// `"huge"` (clique) or `"huge_hyper"` (hypergraph) section for
/// BENCH_graph.json.
fn huge(smoke: bool, threads: usize, backend: GraphBackend) -> String {
    let wcfg = huge_cfg(smoke);
    // The peak-RSS ceiling the run must stay under: ~2x the measured
    // high-water mark (788 MiB full, 18 MiB smoke — the smoke floor is
    // dominated by what a materialized 1e6-access trace would cost), so a
    // real memory regression (an accidentally materialized trace, replica
    // star explosion sneaking back in) trips the assert while allocator
    // jitter does not.
    let ceiling_mib: u64 = if smoke { 128 } else { 2_048 };

    let meta = drifting::workload_meta(&wcfg);
    let src = drifting::stream(&wcfg);
    let mut cfg = SchismConfig::new(8);
    cfg.threads = threads;
    cfg.graph_backend = backend;
    // Replication's star explosion allocates replica nodes proportional to
    // each hot group's *access count* — O(accesses) memory on a Zipfian
    // trace, exactly what a fixed-memory run must exclude. The paper's
    // levers for this scale (§5.1) are sampling/filtering, not replication.
    cfg.replication = false;

    println!(
        "=== --huge{}: streamed drifting trace, {} txns over {} keys, {} thread(s), {} backend ===",
        if smoke { " --smoke" } else { "" },
        wcfg.num_txns,
        wcfg.records,
        threads,
        match backend {
            GraphBackend::Clique => "clique",
            GraphBackend::Hypergraph => "hypergraph",
        },
    );
    let t0 = Instant::now();
    let wg = schism_core::build_graph_source(&meta, &src, &cfg);
    let build_s = t0.elapsed().as_secs_f64();
    let accesses: u64 = wg.tuple_access_counts().map(|(_, c)| c as u64).sum();
    let structure = match backend {
        GraphBackend::Clique => format!("{} edges", wg.stats.edges),
        GraphBackend::Hypergraph => format!(
            "{} nets / {} pins (widest txn {})",
            wg.stats.hyperedges, wg.stats.pins, wg.stats.widest_txn
        ),
    };
    println!(
        "build: {build_s:.1}s, {accesses} accesses -> {} nodes / {structure}",
        wg.stats.nodes
    );

    let t0 = Instant::now();
    let phase = schism_core::run_partition_phase(&wg, &cfg);
    let partition_s = t0.elapsed().as_secs_f64();
    println!(
        "partition: {partition_s:.1}s, edge cut {} (imbalance {:.3})",
        phase.edge_cut, phase.imbalance
    );

    // Drift check on sketched (fixed-memory) histograms: a fresh window
    // with the hot spot rotated one drift step must trigger against a
    // reference window of the built distribution.
    let window_txns = wcfg.num_txns / 33;
    let reference = drifting::stream(&DriftingConfig {
        num_txns: window_txns,
        ..wcfg.clone()
    });
    let observed = drifting::stream(&DriftingConfig {
        num_txns: window_txns,
        hot_offset: wcfg.drift_blocks_per_window,
        seed: wcfg.seed ^ 0xD1F7,
        ..wcfg.clone()
    });
    // At full scale the theta=0.9 Zipfian over 100k blocks is flat enough
    // that the default 1024-entry reservoir covers only ~16% of the access
    // mass — a fully rotated hot set then scores barely over threshold.
    // 8192 heavy hitters (~top-512 blocks, ~40% of mass) keep the trigger
    // margin comfortable at a still-fixed ~1 MiB of sketch.
    let scfg = if smoke {
        SketchConfig::default()
    } else {
        SketchConfig {
            width: 1 << 15,
            depth: 4,
            heavy_hitters: 8192,
        }
    };
    let t0 = Instant::now();
    let detector = SketchDriftDetector::new(
        DriftConfig {
            metric: DistanceMetric::TotalVariation,
            ..DriftConfig::default()
        },
        scfg,
        &reference,
    );
    let report = detector.observe(&observed);
    let drift_s = t0.elapsed().as_secs_f64();
    println!(
        "drift window ({window_txns} txns): {drift_s:.1}s, TV distance {:.3} -> drifted={}",
        report.distance, report.drifted
    );
    assert!(
        report.drifted,
        "rotated hot spot must trigger the sketched detector (TV {:.3})",
        report.distance
    );

    if smoke {
        sqllog_round_trip(threads);
    }

    let peak = schism_bench::peak_rss_bytes().expect("VmHWM in /proc/self/status");
    let peak_mib = peak / (1 << 20);
    println!("peak RSS: {peak_mib} MiB (ceiling {ceiling_mib} MiB)");
    assert!(
        peak_mib <= ceiling_mib,
        "peak RSS {peak_mib} MiB exceeds the fixed-memory ceiling {ceiling_mib} MiB"
    );

    let (backend_name, cut_metric) = match backend {
        GraphBackend::Clique => ("clique", "edge-cut"),
        GraphBackend::Hypergraph => ("hypergraph", "connectivity(lambda-1)"),
    };
    format!(
        "{{ \"workload\": \"ycsb-drift streamed\", \"smoke\": {smoke}, \
         \"backend\": \"{backend_name}\", \
         \"records\": {records}, \"txns\": {txns}, \"accesses\": {accesses}, \
         \"threads\": {threads}, \"replication\": false, \
         \"nodes\": {nodes}, \"edges\": {edges}, \"hyperedges\": {hyperedges}, \
         \"pins\": {pins}, \"widest_txn\": {widest}, \
         \"build_wall_s\": {build_s:.1}, \"partition_wall_s\": {partition_s:.1}, \
         \"drift_wall_s\": {drift_s:.1}, \"cut_metric\": \"{cut_metric}\", \
         \"cut\": {cut}, \
         \"drift_tv\": {tv:.3}, \"drifted\": true, \"window_txns\": {window_txns}, \
         \"peak_rss_mib\": {peak_mib}, \"rss_ceiling_mib\": {ceiling_mib} }}",
        records = wcfg.records,
        txns = wcfg.num_txns,
        nodes = wg.stats.nodes,
        edges = wg.stats.edges,
        hyperedges = wg.stats.hyperedges,
        pins = wg.stats.pins,
        widest = wg.stats.widest_txn,
        cut = phase.edge_cut,
        tv = report.distance,
    )
}

/// Streams a statement-retaining drifting trace through `render_log` →
/// [`SqlLogSource`] and asserts the SQL-text path builds the bit-identical
/// graph (same digest) as the in-memory trace.
fn sqllog_round_trip(threads: usize) {
    let w = drifting::generate(&DriftingConfig {
        num_txns: 2_000,
        keep_statements: true,
        ..DriftingConfig::default()
    });
    let log = render_log(&w.schema, &w.trace);
    let src = SqlLogSource::from_string(Arc::clone(&w.schema), log).expect("rendered log parses");
    assert_eq!(src.len(), w.trace.len());
    let mut cfg = SchismConfig::new(4);
    cfg.threads = threads;
    let from_trace = schism_core::build_graph(&w, &w.trace, &cfg);
    let from_sql = schism_core::build_graph_source(&w, &src, &cfg);
    assert_eq!(
        from_sql.digest(),
        from_trace.digest(),
        "SQL-log streaming ingestion changed the workload graph"
    );
    println!(
        "sql-log round trip: {} txns re-ingested from SQL text, digests match",
        src.len()
    );
}

fn bench_json_path() -> &'static str {
    if std::path::Path::new("crates/bench").is_dir() {
        "crates/bench/BENCH_graph.json"
    } else {
        "BENCH_graph.json"
    }
}

const SECTIONS: [&str; 4] = ["scaling", "huge", "huge_hyper", "backends"];

/// Writes BENCH_graph.json: one line per section (`"scaling"`, `"huge"`,
/// `"huge_hyper"`, `"backends"`), honest host core count. `fresh` holds the
/// section this run measured; every other section is carried over from the
/// existing file.
fn write_bench_json(fresh: Option<(&str, String)>) {
    let path = bench_json_path();
    let body = SECTIONS
        .iter()
        .map(|&name| {
            let section = match &fresh {
                Some((n, s)) if *n == name => Some(s.clone()),
                _ => schism_bench::existing_section(path, name),
            };
            format!("  \"{name}\": {}", section.unwrap_or_else(|| "null".into()))
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"table1_graph_sizes\",\n  \"host_cores\": {},\n{body}\n}}\n",
        schism_par::available_parallelism(),
    );
    std::fs::write(path, &json).expect("write BENCH_graph.json");
    println!("wrote {path}");
}

/// One `--probe` subprocess: build + partition + placement scoring for a
/// single (workload, backend) pair, with per-phase peak RSS isolated by
/// resetting the `VmHWM` high-water mark between phases. A fresh process
/// per pair keeps the high-water mark honest — nothing a previous build
/// allocated can mask this one's peak. Emits one `PROBE_JSON {...}` line
/// on stdout for the `--backends` parent to collect.
fn probe(name: &str, backend: GraphBackend, smoke: bool, threads: usize) {
    let k = 8u32;
    let w = match name {
        // TPC-C with its wide stock-level scans (several hundred tuples per
        // transaction): the clique's quadratic case.
        "tpcc-wide" => tpcc::generate(&TpccConfig {
            num_txns: if smoke { 8_000 } else { 20_000 },
            ..TpccConfig::full(50)
        }),
        // YCSB-E with long range scans — mid-width transactions.
        "ycsb-e" => ycsb::generate(&YcsbConfig {
            records: if smoke { 5_000 } else { 50_000 },
            num_txns: if smoke { 10_000 } else { 50_000 },
            scan_max: 64,
            ..YcsbConfig::workload_e()
        }),
        // Drifting point-access trace (~3 tuples per transaction): the
        // parity case where the two representations nearly coincide.
        "drifting" => drifting::generate(&DriftingConfig {
            num_txns: if smoke { 20_000 } else { 200_000 },
            ..Default::default()
        }),
        other => panic!("unknown probe workload {other}"),
    };
    let mut cfg = SchismConfig::new(k);
    cfg.threads = threads;
    cfg.graph_backend = backend;
    // Equal, blanket-filter-free coverage on both backends: no scan is
    // dropped, so the clique pays the full O(width^2) edges for every wide
    // transaction while the hypergraph pays O(width) pins for the same
    // transactions.
    cfg.blanket_threshold = usize::MAX;
    // Keep the peak-RSS attribution on the co-access structure itself;
    // replica stars would add identical 2-pin structure on both backends.
    cfg.replication = false;

    let peak_reset = schism_bench::reset_peak_rss();
    let t0 = Instant::now();
    let wg = schism_core::build_graph(&w, &w.trace, &cfg);
    let build_s = t0.elapsed().as_secs_f64();
    let build_peak_mib = peak_mib_now();

    schism_bench::reset_peak_rss();
    let t0 = Instant::now();
    let phase = schism_core::run_partition_phase(&wg, &cfg);
    let partition_s = t0.elapsed().as_secs_f64();
    let partition_peak_mib = peak_mib_now();

    // Score the placement the way the paper does (§6.1): fraction of the
    // trace's transactions that span more than one partition under the
    // resulting routing scheme.
    let frac = distributed_fraction(&w, &w.trace, &w.trace, &phase.assignment, k);

    let (backend_name, cut_metric) = match backend {
        GraphBackend::Clique => ("clique", "edge-cut"),
        GraphBackend::Hypergraph => ("hypergraph", "connectivity(lambda-1)"),
    };
    println!(
        "PROBE_JSON {{ \"workload\": \"{name}\", \"backend\": \"{backend_name}\", \
         \"txns\": {txns}, \"nodes\": {nodes}, \"edges\": {edges}, \
         \"hyperedges\": {hyperedges}, \"pins\": {pins}, \"widest_txn\": {widest}, \
         \"build_s\": {build_s:.2}, \"partition_s\": {partition_s:.2}, \
         \"build_peak_mib\": {build_peak_mib:.1}, \
         \"partition_peak_mib\": {partition_peak_mib:.1}, \"peak_reset\": {peak_reset}, \
         \"cut_metric\": \"{cut_metric}\", \"cut\": {cut}, \"imbalance\": {imb:.3}, \
         \"distributed_fraction\": {frac:.4} }}",
        txns = w.trace.len(),
        nodes = wg.stats.nodes,
        edges = wg.stats.edges,
        hyperedges = wg.stats.hyperedges,
        pins = wg.stats.pins,
        widest = wg.stats.widest_txn,
        cut = phase.edge_cut,
        imb = phase.imbalance,
    );
}

/// Current `VmHWM` in MiB (fractional), or -1.0 where procfs is missing.
fn peak_mib_now() -> f64 {
    schism_bench::peak_rss_bytes().map_or(-1.0, |b| b as f64 / f64::from(1u32 << 20))
}

/// The `--backends` head-to-head: spawn one probe subprocess per
/// (workload, backend) pair, collect the `PROBE_JSON` rows, assert the
/// acceptance criteria on the wide-transaction TPC-C pair, and return the
/// `"backends"` section for BENCH_graph.json.
fn backends_compare(smoke: bool, threads: usize) -> String {
    let exe = std::env::current_exe().expect("current exe");
    let mut rows: Vec<String> = Vec::new();
    println!(
        "=== backend head-to-head{}: clique vs hypergraph, k=8, blanket-free ===\n",
        if smoke { " --smoke" } else { "" }
    );
    for wname in ["tpcc-wide", "ycsb-e", "drifting"] {
        let mut pair: Vec<String> = Vec::new();
        for b in ["clique", "hypergraph"] {
            let mut cmd = std::process::Command::new(&exe);
            cmd.args(["--probe", wname, "--backend", b, "--threads"])
                .arg(threads.to_string());
            if smoke {
                cmd.arg("--smoke");
            }
            let out = cmd.output().expect("spawn probe subprocess");
            let stdout = String::from_utf8_lossy(&out.stdout);
            print!("{stdout}");
            assert!(
                out.status.success(),
                "probe {wname}/{b} failed:\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
            let frag = stdout
                .lines()
                .find_map(|l| l.strip_prefix("PROBE_JSON "))
                .unwrap_or_else(|| panic!("probe {wname}/{b} emitted no PROBE_JSON line"))
                .to_string();
            pair.push(frag);
        }
        let (clique, hyper) = (&pair[0], &pair[1]);
        let num = |frag: &str, key: &str| {
            schism_bench::json_num(frag, key)
                .unwrap_or_else(|| panic!("probe row missing \"{key}\": {frag}"))
        };
        let (c_peak, h_peak) = (num(clique, "build_peak_mib"), num(hyper, "build_peak_mib"));
        let (c_frac, h_frac) = (
            num(clique, "distributed_fraction"),
            num(hyper, "distributed_fraction"),
        );
        println!(
            "{wname}: build peak {c_peak:.1} MiB (clique) vs {h_peak:.1} MiB (hypergraph); \
             distributed {:.2}% vs {:.2}%\n",
            c_frac * 100.0,
            h_frac * 100.0
        );
        if wname == "tpcc-wide" {
            let reset_ok =
                clique.contains("\"peak_reset\": true") && hyper.contains("\"peak_reset\": true");
            assert!(
                reset_ok,
                "VmHWM reset unavailable: per-phase peaks are whole-process bounds, \
                 the strict comparison would be meaningless"
            );
            assert!(
                h_peak < c_peak,
                "hypergraph build peak {h_peak:.1} MiB must be strictly below the clique's \
                 {c_peak:.1} MiB on wide-transaction TPC-C"
            );
            assert!(
                h_frac <= c_frac + 1e-9,
                "hypergraph distributed fraction {h_frac:.4} must be no worse than the \
                 clique's {c_frac:.4} at the same k"
            );
        }
        rows.extend(pair);
    }
    format!(
        "{{ \"smoke\": {smoke}, \"threads\": {threads}, \"k\": 8, \"replication\": false, \
         \"blanket_free\": true, \"rows\": [{}] }}",
        rows.join(", ")
    )
}

fn main() {
    let full = schism_bench::full_scale();
    let threads: usize = schism_bench::arg_value("--threads")
        .map(|v| v.parse().expect("--threads takes a non-negative integer"))
        .unwrap_or(0);
    let scaling_only = schism_bench::flag("--scaling-only");
    let scale = |small: usize, paper: usize| if full { paper } else { small };
    let resolved = |threads: usize| {
        if threads > 0 {
            threads
        } else {
            schism_par::resolve_threads(0)
        }
    };

    // A `--probe` child of the `--backends` comparison: one (workload,
    // backend) measurement in a fresh process, then exit.
    if let Some(wname) = schism_bench::arg_value("--probe") {
        probe(
            &wname,
            schism_bench::graph_backend_arg(),
            schism_bench::flag("--smoke"),
            resolved(threads),
        );
        return;
    }

    // The backend head-to-head, recorded as the `"backends"` section. The
    // smoke run still *asserts* (the criteria hold at CI scale too) but
    // must not overwrite a full-scale record with smoke-sized numbers.
    if schism_bench::flag("--backends") {
        let smoke = schism_bench::flag("--smoke");
        let section = backends_compare(smoke, resolved(threads));
        write_bench_json(if smoke {
            None
        } else {
            Some(("backends", section))
        });
        return;
    }

    // The fixed-memory stress replaces the Table-1 / scaling runs: it is a
    // different measurement with its own BENCH_graph.json section (one per
    // backend, so the records can sit side by side).
    if schism_bench::flag("--huge") {
        let smoke = schism_bench::flag("--smoke");
        let backend = schism_bench::graph_backend_arg();
        let section = huge(smoke, resolved(threads), backend);
        let name = match backend {
            GraphBackend::Clique => "huge",
            GraphBackend::Hypergraph => "huge_hyper",
        };
        // A smoke run validates the path but must not overwrite the real
        // 1e8 record with 1e6-sized numbers.
        write_bench_json(if smoke { None } else { Some((name, section)) });
        return;
    }

    // The largest trace; shared by the Table-1 row and the thread-scaling
    // measurement so the most expensive generation runs once.
    let tpcc_wcfg = tpcc_cfg(full);
    let tpcc_w = tpcc::generate(&tpcc_wcfg);

    if !scaling_only {
        println!("=== Table 1: graph sizes ===");
        println!("(paper columns in parentheses; our datasets are scaled-down substitutions,");
        println!(" so absolute sizes differ while node/edge-per-transaction ratios match)\n");

        let epinions_w = epinions::generate(&EpinionsConfig {
            num_txns: scale(30_000, 100_000),
            ..Default::default()
        });
        let tpce_w = tpce::generate(&TpceConfig {
            num_txns: scale(30_000, 100_000),
            ..TpceConfig::with_customers(1_000)
        });
        let tpcc_row_cfg = {
            let mut cfg = SchismConfig::new(10);
            cfg.tuple_sample = 0.05;
            cfg
        };
        let rows = vec![
            Row {
                name: "epinions",
                paper: ("2.5M", "100k", "0.6M", "5M"),
                workload: &epinions_w,
                cfg: SchismConfig::new(2),
            },
            Row {
                name: "tpcc-50w",
                paper: ("25.0M", "100k", "2.5M", "65M"),
                workload: &tpcc_w,
                cfg: tpcc_row_cfg,
            },
            Row {
                name: "tpce",
                paper: ("2.0M", "100k", "3.0M", "100M"),
                workload: &tpce_w,
                cfg: SchismConfig::new(2),
            },
        ];

        let mut table = Table::new(&[
            "dataset", "tuples", "(paper)", "txns", "(paper)", "nodes", "(paper)", "edges",
            "(paper)",
        ]);
        for row in rows {
            let mut cfg = row.cfg;
            cfg.threads = threads;
            let wg = schism_core::build_graph(row.workload, &row.workload.trace, &cfg);
            table.row(vec![
                row.name.to_string(),
                human(row.workload.total_tuples()),
                row.paper.0.to_string(),
                human(row.workload.trace.len() as u64),
                row.paper.1.to_string(),
                human(wg.stats.nodes as u64),
                row.paper.2.to_string(),
                human(wg.stats.edges as u64),
                row.paper.3.to_string(),
            ]);
        }
        println!("{}", table.render());
    }

    // Thread scaling on the largest trace, recorded to BENCH_graph.json.
    // Opt-in via `--threads N` (any N >= 1; a 1-thread record is a valid
    // single-run baseline) or `--scaling-only`, so a plain Table-1
    // reproduction never overwrites the committed record as a side effect.
    if threads > 0 || scaling_only {
        let max_threads = if threads > 0 {
            threads
        } else {
            schism_par::resolve_threads(0)
        };
        let section = thread_scaling(&tpcc_w, &tpcc_wcfg, full, max_threads);
        write_bench_json(Some(("scaling", section)));
    }
}

fn human(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}
