//! **Table 1 + §6.2** — graph sizes for the three largest evaluation
//! datasets: tuples in the database, transactions in the trace, and
//! resulting graph nodes/edges (after the §5.1 heuristics).
//!
//! ```text
//! cargo run --release -p schism-bench --bin table1_graph_sizes [--full]
//! ```

use schism_bench::table::Table;
use schism_core::SchismConfig;
use schism_workload::epinions::{self, EpinionsConfig};
use schism_workload::tpcc::{self, TpccConfig};
use schism_workload::tpce::{self, TpceConfig};
use schism_workload::Workload;

struct Row {
    name: &'static str,
    paper: (&'static str, &'static str, &'static str, &'static str),
    workload: Workload,
    cfg: SchismConfig,
}

fn main() {
    let full = schism_bench::full_scale();
    let scale = |small: usize, paper: usize| if full { paper } else { small };

    println!("=== Table 1: graph sizes ===");
    println!("(paper columns in parentheses; our datasets are scaled-down substitutions,");
    println!(" so absolute sizes differ while node/edge-per-transaction ratios match)\n");

    let mut rows = Vec::new();
    {
        let w = epinions::generate(&EpinionsConfig {
            num_txns: scale(30_000, 100_000),
            ..Default::default()
        });
        rows.push(Row {
            name: "epinions",
            paper: ("2.5M", "100k", "0.6M", "5M"),
            workload: w,
            cfg: SchismConfig::new(2),
        });
    }
    {
        let mut cfg = SchismConfig::new(10);
        cfg.tuple_sample = 0.05;
        let w = tpcc::generate(&TpccConfig {
            num_txns: scale(40_000, 100_000),
            ..TpccConfig::full(50)
        });
        rows.push(Row {
            name: "tpcc-50w",
            paper: ("25.0M", "100k", "2.5M", "65M"),
            workload: w,
            cfg,
        });
    }
    {
        let w = tpce::generate(&TpceConfig {
            num_txns: scale(30_000, 100_000),
            ..TpceConfig::with_customers(1_000)
        });
        rows.push(Row {
            name: "tpce",
            paper: ("2.0M", "100k", "3.0M", "100M"),
            workload: w,
            cfg: SchismConfig::new(2),
        });
    }

    let mut table = Table::new(&[
        "dataset", "tuples", "(paper)", "txns", "(paper)", "nodes", "(paper)", "edges", "(paper)",
    ]);
    for row in rows {
        let wg = schism_core::build_graph(&row.workload, &row.workload.trace, &row.cfg);
        table.row(vec![
            row.name.to_string(),
            human(row.workload.total_tuples()),
            row.paper.0.to_string(),
            human(row.workload.trace.len() as u64),
            row.paper.1.to_string(),
            human(wg.stats.nodes as u64),
            row.paper.2.to_string(),
            human(wg.stats.edges as u64),
            row.paper.3.to_string(),
        ]);
    }
    println!("{}", table.render());
}

fn human(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}
