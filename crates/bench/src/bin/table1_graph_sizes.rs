//! **Table 1 + §6.2** — graph sizes for the three largest evaluation
//! datasets: tuples in the database, transactions in the trace, and
//! resulting graph nodes/edges (after the §5.1 heuristics) — plus
//! thread-scaling of the streaming parallel graph build.
//!
//! ```text
//! cargo run --release -p schism-bench --bin table1_graph_sizes \
//!     [--full] [--threads N] [--scaling-only]
//! ```
//!
//! `--threads N` (any `N >= 1`) sizes the builder's worker pool for the
//! size table **and** enables the thread-scaling measurement: the largest
//! trace (TPC-C 50W) is ingested at every power-of-two thread count up to
//! `N`, plus `N` itself when it is not one — asserting the built graphs
//! bit-identical via [`schism_core::WorkloadGraph::digest`] while timing —
//! plus once more through the chunked streaming source (`tpcc::stream`),
//! and the result is recorded in
//! `crates/bench/BENCH_graph.json` together with the host's core count
//! (speedups are only meaningful when the host actually has that many
//! cores; a 1-core container measures oversubscription, not scaling, and
//! the JSON says so).
//!
//! `--scaling-only` skips the other two dataset builds (CI smoke).

use schism_bench::table::Table;
use schism_core::SchismConfig;
use schism_workload::epinions::{self, EpinionsConfig};
use schism_workload::tpcc::{self, TpccConfig};
use schism_workload::tpce::{self, TpceConfig};
use schism_workload::Workload;
use std::time::Instant;

struct Row<'a> {
    name: &'static str,
    paper: (&'static str, &'static str, &'static str, &'static str),
    workload: &'a Workload,
    cfg: SchismConfig,
}

/// The TPC-C 50W configuration (the largest trace; what the thread-scaling
/// measurement ingests).
fn tpcc_cfg(full: bool) -> TpccConfig {
    TpccConfig {
        num_txns: if full { 100_000 } else { 40_000 },
        ..TpccConfig::full(50)
    }
}

/// Ingest the largest trace at 1, 2, 4, ..., `max_threads` (powers of two,
/// plus `max_threads` itself when it is not one) and through the chunked
/// streaming source, asserting every build digests identically, and record
/// wall-clocks + speedups in BENCH_graph.json.
fn thread_scaling(w: &Workload, wcfg: &TpccConfig, full: bool, max_threads: usize) {
    let mut counts = vec![1usize];
    while counts.last().unwrap() * 2 <= max_threads {
        counts.push(counts.last().unwrap() * 2);
    }
    if *counts.last().unwrap() != max_threads {
        counts.push(max_threads); // non-power-of-two budgets are measured too
    }
    let host_cores = schism_par::available_parallelism();

    let mut cfg = SchismConfig::new(10);
    cfg.tuple_sample = 0.05;
    println!(
        "=== graph-build thread scaling on the largest trace (tpcc-50w, {} txns) ===",
        w.trace.len()
    );
    println!("host cores: {host_cores}\n");

    let mut baseline: Option<(f64, u64)> = None;
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    let mut table = Table::new(&[
        "ingestion",
        "threads",
        "wall (s)",
        "speedup",
        "nodes",
        "edges",
    ]);
    let mut stats = None;
    for &t in &counts {
        cfg.threads = t;
        let t0 = Instant::now();
        let wg = schism_core::build_graph(w, &w.trace, &cfg);
        let dt = t0.elapsed().as_secs_f64();
        match &baseline {
            None => baseline = Some((dt, wg.digest())),
            Some((_, digest)) => assert_eq!(
                wg.digest(),
                *digest,
                "threads={t} changed the workload graph — determinism contract broken"
            ),
        }
        let speedup = baseline.as_ref().unwrap().0 / dt.max(1e-9);
        rows.push((format!("whole/{t}"), dt, speedup));
        table.row(vec![
            "whole-trace".into(),
            t.to_string(),
            format!("{dt:.2}"),
            format!("{speedup:.2}x"),
            wg.stats.nodes.to_string(),
            wg.stats.edges.to_string(),
        ]);
        stats = Some(wg.stats);
    }

    // Chunked ingestion through the scripted streaming source, at the full
    // budget: same graph, no materialized trace.
    cfg.threads = max_threads;
    let src = tpcc::stream(wcfg);
    let t0 = Instant::now();
    let wg = schism_core::build_graph_source(w, &src, &cfg);
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(
        wg.digest(),
        baseline.as_ref().unwrap().1,
        "chunked streaming ingestion changed the workload graph"
    );
    let speedup = baseline.as_ref().unwrap().0 / dt.max(1e-9);
    rows.push((format!("streamed/{max_threads}"), dt, speedup));
    table.row(vec![
        "streamed".into(),
        max_threads.to_string(),
        format!("{dt:.2}"),
        format!("{speedup:.2}x"),
        wg.stats.nodes.to_string(),
        wg.stats.edges.to_string(),
    ]);
    println!("{}", table.render());
    if host_cores < max_threads {
        println!(
            "note: host has only {host_cores} core(s); speedups at > {host_cores} threads \
             measure scheduling overhead, not scaling. Re-run on a {max_threads}-core host \
             for the real curve."
        );
    }

    let entries: Vec<String> = rows
        .iter()
        .map(|(label, dt, sp)| {
            format!(
                "    {{ \"run\": \"{label}\", \"wall_s\": {dt:.3}, \"speedup_vs_1\": {sp:.3} }}"
            )
        })
        .collect();
    let note = if host_cores < max_threads {
        format!(
            "host has {host_cores} core(s) for {max_threads} threads: ratios measure \
             oversubscription overhead, not scaling; re-measure on a >= {max_threads}-core host"
        )
    } else {
        "speedups measured with dedicated cores per thread".to_string()
    };
    let stats = stats.expect("at least one build ran");
    let json = format!(
        "{{\n  \"bench\": \"table1_graph_sizes --threads {max_threads}\",\n  \
         \"workload\": \"tpcc-50w (5% tuples)\",\n  \"txns\": {txns},\n  \
         \"nodes\": {nodes},\n  \"edges\": {edges},\n  \"full\": {full},\n  \
         \"host_cores\": {host_cores},\n  \"note\": \"{note}\",\n  \
         \"deterministic_across_threads\": true,\n  \
         \"chunked_equals_whole\": true,\n  \"runs\": [\n{runs}\n  ]\n}}\n",
        txns = w.trace.len(),
        nodes = stats.nodes,
        edges = stats.edges,
        runs = entries.join(",\n"),
    );
    let out = if std::path::Path::new("crates/bench").is_dir() {
        "crates/bench/BENCH_graph.json"
    } else {
        "BENCH_graph.json"
    };
    std::fs::write(out, &json).expect("write BENCH_graph.json");
    println!("wrote {out}");
}

fn main() {
    let full = schism_bench::full_scale();
    let threads: usize = schism_bench::arg_value("--threads")
        .map(|v| v.parse().expect("--threads takes a non-negative integer"))
        .unwrap_or(0);
    let scaling_only = schism_bench::flag("--scaling-only");
    let scale = |small: usize, paper: usize| if full { paper } else { small };

    // The largest trace; shared by the Table-1 row and the thread-scaling
    // measurement so the most expensive generation runs once.
    let tpcc_wcfg = tpcc_cfg(full);
    let tpcc_w = tpcc::generate(&tpcc_wcfg);

    if !scaling_only {
        println!("=== Table 1: graph sizes ===");
        println!("(paper columns in parentheses; our datasets are scaled-down substitutions,");
        println!(" so absolute sizes differ while node/edge-per-transaction ratios match)\n");

        let epinions_w = epinions::generate(&EpinionsConfig {
            num_txns: scale(30_000, 100_000),
            ..Default::default()
        });
        let tpce_w = tpce::generate(&TpceConfig {
            num_txns: scale(30_000, 100_000),
            ..TpceConfig::with_customers(1_000)
        });
        let tpcc_row_cfg = {
            let mut cfg = SchismConfig::new(10);
            cfg.tuple_sample = 0.05;
            cfg
        };
        let rows = vec![
            Row {
                name: "epinions",
                paper: ("2.5M", "100k", "0.6M", "5M"),
                workload: &epinions_w,
                cfg: SchismConfig::new(2),
            },
            Row {
                name: "tpcc-50w",
                paper: ("25.0M", "100k", "2.5M", "65M"),
                workload: &tpcc_w,
                cfg: tpcc_row_cfg,
            },
            Row {
                name: "tpce",
                paper: ("2.0M", "100k", "3.0M", "100M"),
                workload: &tpce_w,
                cfg: SchismConfig::new(2),
            },
        ];

        let mut table = Table::new(&[
            "dataset", "tuples", "(paper)", "txns", "(paper)", "nodes", "(paper)", "edges",
            "(paper)",
        ]);
        for row in rows {
            let mut cfg = row.cfg;
            cfg.threads = threads;
            let wg = schism_core::build_graph(row.workload, &row.workload.trace, &cfg);
            table.row(vec![
                row.name.to_string(),
                human(row.workload.total_tuples()),
                row.paper.0.to_string(),
                human(row.workload.trace.len() as u64),
                row.paper.1.to_string(),
                human(wg.stats.nodes as u64),
                row.paper.2.to_string(),
                human(wg.stats.edges as u64),
                row.paper.3.to_string(),
            ]);
        }
        println!("{}", table.render());
    }

    // Thread scaling on the largest trace, recorded to BENCH_graph.json.
    // Opt-in via `--threads N` (any N >= 1; a 1-thread record is a valid
    // single-run baseline) or `--scaling-only`, so a plain Table-1
    // reproduction never overwrites the committed record as a side effect.
    if threads > 0 || scaling_only {
        let max_threads = if threads > 0 {
            threads
        } else {
            schism_par::resolve_threads(0)
        };
        thread_scaling(&tpcc_w, &tpcc_wcfg, full, max_threads);
    }
}

fn human(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}
