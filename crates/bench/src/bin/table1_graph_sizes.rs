//! **Table 1 + §6.2** — graph sizes for the three largest evaluation
//! datasets: tuples in the database, transactions in the trace, and
//! resulting graph nodes/edges (after the §5.1 heuristics) — plus
//! thread-scaling of the streaming parallel graph build.
//!
//! ```text
//! cargo run --release -p schism-bench --bin table1_graph_sizes \
//!     [--full] [--threads N] [--scaling-only] [--huge [--smoke]]
//! ```
//!
//! `--threads N` (any `N >= 1`) sizes the builder's worker pool for the
//! size table **and** enables the thread-scaling measurement: the largest
//! trace (TPC-C 50W) is ingested at every power-of-two thread count up to
//! `N`, plus `N` itself when it is not one — asserting the built graphs
//! bit-identical via [`schism_core::WorkloadGraph::digest`] while timing —
//! plus once more through the chunked streaming source (`tpcc::stream`).
//!
//! `--scaling-only` skips the other two dataset builds (CI smoke).
//!
//! `--huge` runs the fixed-memory stress: a **1e8-access** drifting trace
//! is streamed end to end — graph build (`build_graph_source`, never a
//! materialized `Trace`), partition phase, and a sketched drift check —
//! while peak RSS (`VmHWM`) is asserted under a hard ceiling. `--smoke`
//! scales it down 100x (~1e6 accesses, CI-sized) and additionally
//! round-trips a statement-retaining trace through `render_log` →
//! `SqlLogSource`, asserting the streamed-SQL graph digest matches the
//! in-memory build.
//!
//! Results land in `crates/bench/BENCH_graph.json` as independent
//! `"scaling"` / `"huge"` sections (a run refreshes its own section and
//! carries the other over), together with the host's core count —
//! speedups are only meaningful when the host actually has that many
//! cores; a 1-core container measures oversubscription, not scaling, and
//! the JSON says so.

use schism_bench::table::Table;
use schism_core::SchismConfig;
use schism_migrate::{DistanceMetric, DriftConfig, SketchConfig, SketchDriftDetector};
use schism_workload::drifting::{self, DriftingConfig};
use schism_workload::epinions::{self, EpinionsConfig};
use schism_workload::tpcc::{self, TpccConfig};
use schism_workload::tpce::{self, TpceConfig};
use schism_workload::{render_log, SqlLogSource, TraceSource, Workload};
use std::sync::Arc;
use std::time::Instant;

struct Row<'a> {
    name: &'static str,
    paper: (&'static str, &'static str, &'static str, &'static str),
    workload: &'a Workload,
    cfg: SchismConfig,
}

/// The TPC-C 50W configuration (the largest trace; what the thread-scaling
/// measurement ingests).
fn tpcc_cfg(full: bool) -> TpccConfig {
    TpccConfig {
        num_txns: if full { 100_000 } else { 40_000 },
        ..TpccConfig::full(50)
    }
}

/// Ingest the largest trace at 1, 2, 4, ..., `max_threads` (powers of two,
/// plus `max_threads` itself when it is not one) and through the chunked
/// streaming source, asserting every build digests identically. Returns
/// the `"scaling"` section for BENCH_graph.json.
fn thread_scaling(w: &Workload, wcfg: &TpccConfig, full: bool, max_threads: usize) -> String {
    let mut counts = vec![1usize];
    while counts.last().unwrap() * 2 <= max_threads {
        counts.push(counts.last().unwrap() * 2);
    }
    if *counts.last().unwrap() != max_threads {
        counts.push(max_threads); // non-power-of-two budgets are measured too
    }
    let host_cores = schism_par::available_parallelism();

    let mut cfg = SchismConfig::new(10);
    cfg.tuple_sample = 0.05;
    println!(
        "=== graph-build thread scaling on the largest trace (tpcc-50w, {} txns) ===",
        w.trace.len()
    );
    println!("host cores: {host_cores}\n");

    let mut baseline: Option<(f64, u64)> = None;
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    let mut table = Table::new(&[
        "ingestion",
        "threads",
        "wall (s)",
        "speedup",
        "nodes",
        "edges",
    ]);
    let mut stats = None;
    for &t in &counts {
        cfg.threads = t;
        let t0 = Instant::now();
        let wg = schism_core::build_graph(w, &w.trace, &cfg);
        let dt = t0.elapsed().as_secs_f64();
        match &baseline {
            None => baseline = Some((dt, wg.digest())),
            Some((_, digest)) => assert_eq!(
                wg.digest(),
                *digest,
                "threads={t} changed the workload graph — determinism contract broken"
            ),
        }
        let speedup = baseline.as_ref().unwrap().0 / dt.max(1e-9);
        rows.push((format!("whole/{t}"), dt, speedup));
        table.row(vec![
            "whole-trace".into(),
            t.to_string(),
            format!("{dt:.2}"),
            format!("{speedup:.2}x"),
            wg.stats.nodes.to_string(),
            wg.stats.edges.to_string(),
        ]);
        stats = Some(wg.stats);
    }

    // Chunked ingestion through the scripted streaming source, at the full
    // budget: same graph, no materialized trace.
    cfg.threads = max_threads;
    let src = tpcc::stream(wcfg);
    let t0 = Instant::now();
    let wg = schism_core::build_graph_source(w, &src, &cfg);
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(
        wg.digest(),
        baseline.as_ref().unwrap().1,
        "chunked streaming ingestion changed the workload graph"
    );
    let speedup = baseline.as_ref().unwrap().0 / dt.max(1e-9);
    rows.push((format!("streamed/{max_threads}"), dt, speedup));
    table.row(vec![
        "streamed".into(),
        max_threads.to_string(),
        format!("{dt:.2}"),
        format!("{speedup:.2}x"),
        wg.stats.nodes.to_string(),
        wg.stats.edges.to_string(),
    ]);
    println!("{}", table.render());
    if host_cores < max_threads {
        println!(
            "note: host has only {host_cores} core(s); speedups at > {host_cores} threads \
             measure scheduling overhead, not scaling. Re-run on a {max_threads}-core host \
             for the real curve."
        );
    }

    let entries: Vec<String> = rows
        .iter()
        .map(|(label, dt, sp)| {
            format!("{{ \"run\": \"{label}\", \"wall_s\": {dt:.3}, \"speedup_vs_1\": {sp:.3} }}")
        })
        .collect();
    let note = if host_cores < max_threads {
        format!(
            "host has {host_cores} core(s) for {max_threads} threads: ratios measure \
             oversubscription overhead, not scaling; re-measure on a >= {max_threads}-core host"
        )
    } else {
        "speedups measured with dedicated cores per thread".to_string()
    };
    let stats = stats.expect("at least one build ran");
    format!(
        "{{ \"threads\": {max_threads}, \"workload\": \"tpcc-50w (5% tuples)\", \
         \"txns\": {txns}, \"nodes\": {nodes}, \"edges\": {edges}, \"full\": {full}, \
         \"note\": \"{note}\", \"deterministic_across_threads\": true, \
         \"chunked_equals_whole\": true, \"runs\": [{runs}] }}",
        txns = w.trace.len(),
        nodes = stats.nodes,
        edges = stats.edges,
        runs = entries.join(", "),
    )
}

/// The `--huge` drifting configuration: ~3 accesses per transaction, so
/// `num_txns` of 33.34M yields ~1e8 accesses over a 1.6M-key space (100k
/// co-access blocks). `--smoke` scales both down 100x (~1e6 accesses).
fn huge_cfg(smoke: bool) -> DriftingConfig {
    let scale: u64 = if smoke { 1 } else { 100 };
    let records = 16_000 * scale;
    let block_span = 16;
    DriftingConfig {
        records,
        block_span,
        num_txns: (333_400 * scale) as usize,
        theta: 0.9,
        write_fraction: 0.3,
        // One window of drift rotates the hot spot by 10% of the keyspace.
        drift_blocks_per_window: records / block_span / 10,
        hot_offset: 0,
        seed: 42,
        keep_statements: false,
    }
}

/// End-to-end fixed-memory stress: streamed build → partition → sketched
/// drift window, with peak RSS asserted under `ceiling_mib`. Returns the
/// `"huge"` section for BENCH_graph.json.
fn huge(smoke: bool, threads: usize) -> String {
    let wcfg = huge_cfg(smoke);
    // The peak-RSS ceiling the run must stay under: ~2x the measured
    // high-water mark (788 MiB full, 18 MiB smoke — the smoke floor is
    // dominated by what a materialized 1e6-access trace would cost), so a
    // real memory regression (an accidentally materialized trace, replica
    // star explosion sneaking back in) trips the assert while allocator
    // jitter does not.
    let ceiling_mib: u64 = if smoke { 128 } else { 2_048 };

    let meta = drifting::workload_meta(&wcfg);
    let src = drifting::stream(&wcfg);
    let mut cfg = SchismConfig::new(8);
    cfg.threads = threads;
    // Replication's star explosion allocates replica nodes proportional to
    // each hot group's *access count* — O(accesses) memory on a Zipfian
    // trace, exactly what a fixed-memory run must exclude. The paper's
    // levers for this scale (§5.1) are sampling/filtering, not replication.
    cfg.replication = false;

    println!(
        "=== --huge{}: streamed drifting trace, {} txns over {} keys, {} thread(s) ===",
        if smoke { " --smoke" } else { "" },
        wcfg.num_txns,
        wcfg.records,
        threads,
    );
    let t0 = Instant::now();
    let wg = schism_core::build_graph_source(&meta, &src, &cfg);
    let build_s = t0.elapsed().as_secs_f64();
    let accesses: u64 = wg.tuple_access_counts().map(|(_, c)| c as u64).sum();
    println!(
        "build: {build_s:.1}s, {accesses} accesses -> {} nodes / {} edges",
        wg.stats.nodes, wg.stats.edges
    );

    let t0 = Instant::now();
    let phase = schism_core::run_partition_phase(&wg, &cfg);
    let partition_s = t0.elapsed().as_secs_f64();
    println!(
        "partition: {partition_s:.1}s, edge cut {} (imbalance {:.3})",
        phase.edge_cut, phase.imbalance
    );

    // Drift check on sketched (fixed-memory) histograms: a fresh window
    // with the hot spot rotated one drift step must trigger against a
    // reference window of the built distribution.
    let window_txns = wcfg.num_txns / 33;
    let reference = drifting::stream(&DriftingConfig {
        num_txns: window_txns,
        ..wcfg.clone()
    });
    let observed = drifting::stream(&DriftingConfig {
        num_txns: window_txns,
        hot_offset: wcfg.drift_blocks_per_window,
        seed: wcfg.seed ^ 0xD1F7,
        ..wcfg.clone()
    });
    // At full scale the theta=0.9 Zipfian over 100k blocks is flat enough
    // that the default 1024-entry reservoir covers only ~16% of the access
    // mass — a fully rotated hot set then scores barely over threshold.
    // 8192 heavy hitters (~top-512 blocks, ~40% of mass) keep the trigger
    // margin comfortable at a still-fixed ~1 MiB of sketch.
    let scfg = if smoke {
        SketchConfig::default()
    } else {
        SketchConfig {
            width: 1 << 15,
            depth: 4,
            heavy_hitters: 8192,
        }
    };
    let t0 = Instant::now();
    let detector = SketchDriftDetector::new(
        DriftConfig {
            metric: DistanceMetric::TotalVariation,
            ..DriftConfig::default()
        },
        scfg,
        &reference,
    );
    let report = detector.observe(&observed);
    let drift_s = t0.elapsed().as_secs_f64();
    println!(
        "drift window ({window_txns} txns): {drift_s:.1}s, TV distance {:.3} -> drifted={}",
        report.distance, report.drifted
    );
    assert!(
        report.drifted,
        "rotated hot spot must trigger the sketched detector (TV {:.3})",
        report.distance
    );

    if smoke {
        sqllog_round_trip(threads);
    }

    let peak = schism_bench::peak_rss_bytes().expect("VmHWM in /proc/self/status");
    let peak_mib = peak / (1 << 20);
    println!("peak RSS: {peak_mib} MiB (ceiling {ceiling_mib} MiB)");
    assert!(
        peak_mib <= ceiling_mib,
        "peak RSS {peak_mib} MiB exceeds the fixed-memory ceiling {ceiling_mib} MiB"
    );

    format!(
        "{{ \"workload\": \"ycsb-drift streamed\", \"smoke\": {smoke}, \
         \"records\": {records}, \"txns\": {txns}, \"accesses\": {accesses}, \
         \"threads\": {threads}, \"replication\": false, \
         \"nodes\": {nodes}, \"edges\": {edges}, \
         \"build_wall_s\": {build_s:.1}, \"partition_wall_s\": {partition_s:.1}, \
         \"drift_wall_s\": {drift_s:.1}, \"edge_cut\": {cut}, \
         \"drift_tv\": {tv:.3}, \"drifted\": true, \"window_txns\": {window_txns}, \
         \"peak_rss_mib\": {peak_mib}, \"rss_ceiling_mib\": {ceiling_mib} }}",
        records = wcfg.records,
        txns = wcfg.num_txns,
        nodes = wg.stats.nodes,
        edges = wg.stats.edges,
        cut = phase.edge_cut,
        tv = report.distance,
    )
}

/// Streams a statement-retaining drifting trace through `render_log` →
/// [`SqlLogSource`] and asserts the SQL-text path builds the bit-identical
/// graph (same digest) as the in-memory trace.
fn sqllog_round_trip(threads: usize) {
    let w = drifting::generate(&DriftingConfig {
        num_txns: 2_000,
        keep_statements: true,
        ..DriftingConfig::default()
    });
    let log = render_log(&w.schema, &w.trace);
    let src = SqlLogSource::from_string(Arc::clone(&w.schema), log).expect("rendered log parses");
    assert_eq!(src.len(), w.trace.len());
    let mut cfg = SchismConfig::new(4);
    cfg.threads = threads;
    let from_trace = schism_core::build_graph(&w, &w.trace, &cfg);
    let from_sql = schism_core::build_graph_source(&w, &src, &cfg);
    assert_eq!(
        from_sql.digest(),
        from_trace.digest(),
        "SQL-log streaming ingestion changed the workload graph"
    );
    println!(
        "sql-log round trip: {} txns re-ingested from SQL text, digests match",
        src.len()
    );
}

fn bench_json_path() -> &'static str {
    if std::path::Path::new("crates/bench").is_dir() {
        "crates/bench/BENCH_graph.json"
    } else {
        "BENCH_graph.json"
    }
}

/// Pulls one single-line section (`"scaling"` or `"huge"`) out of the
/// existing BENCH_graph.json, so a run that measures only the other
/// section carries it over instead of clobbering it.
fn existing_section(name: &str) -> Option<String> {
    let text = std::fs::read_to_string(bench_json_path()).ok()?;
    let prefix = format!("\"{name}\": ");
    for line in text.lines() {
        if let Some(rest) = line.trim_start().strip_prefix(&prefix) {
            let rest = rest.trim_end().trim_end_matches(',');
            if rest != "null" {
                return Some(rest.to_string());
            }
        }
    }
    None
}

/// Writes BENCH_graph.json: one line per section, honest host core count.
fn write_bench_json(scaling: Option<String>, huge: Option<String>) {
    let scaling = scaling
        .or_else(|| existing_section("scaling"))
        .unwrap_or_else(|| "null".into());
    let huge = huge
        .or_else(|| existing_section("huge"))
        .unwrap_or_else(|| "null".into());
    let json = format!(
        "{{\n  \"bench\": \"table1_graph_sizes\",\n  \"host_cores\": {},\n  \
         \"scaling\": {scaling},\n  \"huge\": {huge}\n}}\n",
        schism_par::available_parallelism(),
    );
    let out = bench_json_path();
    std::fs::write(out, &json).expect("write BENCH_graph.json");
    println!("wrote {out}");
}

fn main() {
    let full = schism_bench::full_scale();
    let threads: usize = schism_bench::arg_value("--threads")
        .map(|v| v.parse().expect("--threads takes a non-negative integer"))
        .unwrap_or(0);
    let scaling_only = schism_bench::flag("--scaling-only");
    let scale = |small: usize, paper: usize| if full { paper } else { small };

    // The fixed-memory stress replaces the Table-1 / scaling runs: it is a
    // different measurement with its own BENCH_graph.json section.
    if schism_bench::flag("--huge") {
        let smoke = schism_bench::flag("--smoke");
        let t = if threads > 0 {
            threads
        } else {
            schism_par::resolve_threads(0)
        };
        let section = huge(smoke, t);
        // A smoke run validates the path but must not overwrite the real
        // 1e8 record with 1e6-sized numbers.
        write_bench_json(None, if smoke { None } else { Some(section) });
        return;
    }

    // The largest trace; shared by the Table-1 row and the thread-scaling
    // measurement so the most expensive generation runs once.
    let tpcc_wcfg = tpcc_cfg(full);
    let tpcc_w = tpcc::generate(&tpcc_wcfg);

    if !scaling_only {
        println!("=== Table 1: graph sizes ===");
        println!("(paper columns in parentheses; our datasets are scaled-down substitutions,");
        println!(" so absolute sizes differ while node/edge-per-transaction ratios match)\n");

        let epinions_w = epinions::generate(&EpinionsConfig {
            num_txns: scale(30_000, 100_000),
            ..Default::default()
        });
        let tpce_w = tpce::generate(&TpceConfig {
            num_txns: scale(30_000, 100_000),
            ..TpceConfig::with_customers(1_000)
        });
        let tpcc_row_cfg = {
            let mut cfg = SchismConfig::new(10);
            cfg.tuple_sample = 0.05;
            cfg
        };
        let rows = vec![
            Row {
                name: "epinions",
                paper: ("2.5M", "100k", "0.6M", "5M"),
                workload: &epinions_w,
                cfg: SchismConfig::new(2),
            },
            Row {
                name: "tpcc-50w",
                paper: ("25.0M", "100k", "2.5M", "65M"),
                workload: &tpcc_w,
                cfg: tpcc_row_cfg,
            },
            Row {
                name: "tpce",
                paper: ("2.0M", "100k", "3.0M", "100M"),
                workload: &tpce_w,
                cfg: SchismConfig::new(2),
            },
        ];

        let mut table = Table::new(&[
            "dataset", "tuples", "(paper)", "txns", "(paper)", "nodes", "(paper)", "edges",
            "(paper)",
        ]);
        for row in rows {
            let mut cfg = row.cfg;
            cfg.threads = threads;
            let wg = schism_core::build_graph(row.workload, &row.workload.trace, &cfg);
            table.row(vec![
                row.name.to_string(),
                human(row.workload.total_tuples()),
                row.paper.0.to_string(),
                human(row.workload.trace.len() as u64),
                row.paper.1.to_string(),
                human(wg.stats.nodes as u64),
                row.paper.2.to_string(),
                human(wg.stats.edges as u64),
                row.paper.3.to_string(),
            ]);
        }
        println!("{}", table.render());
    }

    // Thread scaling on the largest trace, recorded to BENCH_graph.json.
    // Opt-in via `--threads N` (any N >= 1; a 1-thread record is a valid
    // single-run baseline) or `--scaling-only`, so a plain Table-1
    // reproduction never overwrites the committed record as a side effect.
    if threads > 0 || scaling_only {
        let max_threads = if threads > 0 {
            threads
        } else {
            schism_par::resolve_threads(0)
        };
        let section = thread_scaling(&tpcc_w, &tpcc_wcfg, full, max_threads);
        write_bench_json(Some(section), None);
    }
}

fn human(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}
