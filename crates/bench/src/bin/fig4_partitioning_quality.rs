//! **Figure 4 + §6.1** — Schism partitioning performance on the nine
//! evaluation workloads, against the manual, full-replication, and
//! hash-partitioning baselines, measured as % distributed transactions on
//! a held-out test trace.
//!
//! ```text
//! cargo run --release -p schism-bench --bin fig4_partitioning_quality [--full]
//! ```
//!
//! `--full` uses paper-scale trace sizes (slower; same shapes).

use schism_bench::manual::{ManualEpinions, ManualTpcc};
use schism_bench::table::Table;
use schism_bench::{paper_row, PAPER_FIG4};
use schism_core::{Schism, SchismConfig};
use schism_router::{evaluate, HashScheme, Scheme};
use schism_workload::epinions::{self, EpinionsConfig};
use schism_workload::random::{self, RandomConfig};
use schism_workload::tpcc::{self, TpccConfig};
use schism_workload::tpce::{self, TpceConfig};
use schism_workload::ycsb::{self, YcsbConfig};
use schism_workload::Workload;

struct Experiment {
    name: &'static str,
    workload: Workload,
    cfg: SchismConfig,
    manual: Option<Box<dyn Scheme>>,
}

fn experiments(full: bool) -> Vec<Experiment> {
    let mut out = Vec::new();
    let scale = |small: usize, paper: usize| if full { paper } else { small };

    // --- YCSB-A: 100k tuples, 10k transactions (paper-scale already). ---
    {
        let w = ycsb::generate(&YcsbConfig::workload_a());
        let cfg = SchismConfig::new(2);
        out.push(Experiment {
            name: "ycsb-a",
            manual: Some(Box::new(HashScheme::by_row_id(2))),
            workload: w,
            cfg,
        });
    }
    // --- YCSB-E: scans defeat hashing; manual = equal range stripes. ---
    {
        let w = ycsb::generate(&YcsbConfig::workload_e());
        let cfg = SchismConfig::new(2);
        let records = w.rows(0);
        out.push(Experiment {
            name: "ycsb-e",
            manual: Some(Box::new(stripes_scheme(records, 2))),
            workload: w,
            cfg,
        });
    }
    // --- TPC-C 2W. ---
    {
        let tcfg = TpccConfig {
            num_txns: scale(30_000, 100_000),
            ..TpccConfig::full(2)
        };
        let w = tpcc::generate(&tcfg);
        let cfg = SchismConfig::new(2);
        out.push(Experiment {
            name: "tpcc-2w",
            manual: Some(Box::new(ManualTpcc::new(tcfg, 2))),
            workload: w,
            cfg,
        });
    }
    // --- TPC-C 2W, stress-tested sampling (§6.1: 20k txns, ~3% of
    //     tuples, <=250 training tuples per table). ---
    {
        let tcfg = TpccConfig {
            num_txns: 20_000,
            ..TpccConfig::full(2)
        };
        let w = tpcc::generate(&tcfg);
        let mut cfg = SchismConfig::new(2);
        cfg.tuple_sample = 0.03;
        cfg.explain_sample_per_table = 250;
        out.push(Experiment {
            name: "tpcc-2w-sampled",
            manual: Some(Box::new(ManualTpcc::new(tcfg, 2))),
            workload: w,
            cfg,
        });
    }
    // --- TPC-C 50W / 10 partitions, 1% tuple sampling. ---
    {
        let tcfg = TpccConfig {
            num_txns: scale(60_000, 150_000),
            ..TpccConfig::full(50)
        };
        let w = tpcc::generate(&tcfg);
        let mut cfg = SchismConfig::new(10);
        // Our tuple sampling is access-weighted (see DESIGN.md), so 5%
        // here corresponds to a coverage in the ballpark of the paper's 1%
        // uniform sample.
        cfg.tuple_sample = 0.05;
        cfg.partitioner.ncuts = 4;
        out.push(Experiment {
            name: "tpcc-50w",
            manual: Some(Box::new(ManualTpcc::new(tcfg, 10))),
            workload: w,
            cfg,
        });
    }
    // --- TPC-E, 1000 customers. ---
    {
        let ecfg = TpceConfig {
            num_txns: scale(30_000, 100_000),
            ..TpceConfig::with_customers(1_000)
        };
        let w = tpce::generate(&ecfg);
        let cfg = SchismConfig::new(2);
        out.push(Experiment {
            name: "tpce",
            manual: None,
            workload: w,
            cfg,
        });
    }
    // --- Epinions, 2 and 10 partitions. ---
    for (name, k) in [("epinions-2", 2u32), ("epinions-10", 10)] {
        let ecfg = EpinionsConfig {
            num_txns: scale(30_000, 100_000),
            reviews: 20_000,
            trust_edges: 10_000,
            ..Default::default()
        };
        let w = epinions::generate(&ecfg);
        let mut cfg = SchismConfig::new(k);
        cfg.partitioner.epsilon = 0.1;
        out.push(Experiment {
            name,
            manual: Some(Box::new(ManualEpinions::new(k))),
            workload: w,
            cfg,
        });
    }
    // --- Random: impossible to partition. ---
    {
        let w = random::generate(&RandomConfig {
            num_txns: scale(10_000, 10_000),
            ..Default::default()
        });
        let cfg = SchismConfig::new(2);
        out.push(Experiment {
            name: "random",
            manual: Some(Box::new(HashScheme::by_row_id(2))),
            workload: w,
            cfg,
        });
    }
    out
}

/// Equal range stripes over a single-table key space (the "manual" scheme
/// for YCSB-E).
fn stripes_scheme(records: u64, k: u32) -> schism_router::RangeScheme {
    use schism_router::{PartitionSet, RangeRule, RangeScheme, TablePolicy};
    let stripe = records / k as u64;
    let rules: Vec<RangeRule> = (0..k)
        .map(|p| RangeRule {
            conds: vec![(
                0,
                (p as u64 * stripe) as i64,
                if p == k - 1 {
                    i64::MAX
                } else {
                    ((p as u64 + 1) * stripe - 1) as i64
                },
            )],
            partitions: PartitionSet::single(p),
        })
        .collect();
    RangeScheme::new(
        k,
        vec![TablePolicy::Rules {
            rules,
            default: PartitionSet::single(0),
        }],
    )
}

fn main() {
    let full = schism_bench::full_scale();
    println!(
        "=== Figure 4: % distributed transactions per workload and strategy ({}) ===\n",
        if full {
            "paper-scale traces"
        } else {
            "reduced traces; pass --full for paper scale"
        }
    );

    let mut table = Table::new(&[
        "workload",
        "SCHISM",
        "(paper)",
        "manual",
        "(paper)",
        "replication",
        "(paper)",
        "hashing",
        "(paper)",
        "chosen",
        "(paper chose)",
    ]);
    let mut details = String::new();

    for exp in experiments(full) {
        let t0 = std::time::Instant::now();
        let (train, test) = exp
            .workload
            .trace
            .split(exp.cfg.train_fraction, exp.cfg.seed ^ 0x7E57);
        let schism = Schism::new(exp.cfg.clone());
        let rec = schism.run_split(&exp.workload, &train, &test);

        let manual_frac = exp
            .manual
            .as_ref()
            .map(|m| evaluate(&**m, &test, &*exp.workload.db).distributed_fraction());
        let replication = rec.fraction_of("replication").unwrap_or(1.0);
        // Figure 4's "hashing" baseline: hash on primary key / tuple id.
        let hash_id = evaluate(&HashScheme::by_row_id(exp.cfg.k), &test, &*exp.workload.db)
            .distributed_fraction();
        let paper = paper_row(exp.name).expect("paper row");

        table.row(vec![
            exp.name.to_string(),
            format!("{:.1}%", rec.chosen_fraction() * 100.0),
            format!("{:.1}%", paper.schism),
            manual_frac.map_or("-".into(), |f| format!("{:.1}%", f * 100.0)),
            paper.manual.map_or("-".into(), |f| format!("{f:.1}%")),
            format!("{:.1}%", replication * 100.0),
            format!("{:.1}%", paper.replication),
            format!("{:.1}%", hash_id * 100.0),
            format!("{:.1}%", paper.hashing),
            rec.chosen().to_string(),
            paper.chosen.to_string(),
        ]);

        let s = &rec.build_stats;
        details.push_str(&format!(
            "{}: k={} | graph {} nodes / {} edges ({} tuples, {} exploded groups) | cut {} | \
             partition {:.2?} | total {:.2?} | lookup {} | range {} | hash(freq-attr) {}\n",
            exp.name,
            exp.cfg.k,
            s.nodes,
            s.edges,
            s.distinct_tuples,
            s.exploded_groups,
            rec.edge_cut,
            rec.partition_time,
            rec.total_time,
            rec.fraction_of("lookup-table")
                .map_or("-".into(), |f| format!("{:.1}%", f * 100.0)),
            rec.fraction_of("range-predicates")
                .map_or("untrusted".into(), |f| format!("{:.1}%", f * 100.0)),
            rec.fraction_of("hashing")
                .map_or("-".into(), |f| format!("{:.1}%", f * 100.0)),
        ));
        eprintln!("[fig4] {} done in {:.1?}", exp.name, t0.elapsed());
    }

    println!("{}", table.render());
    println!("per-run details:\n{details}");
    println!(
        "paper reference rows decoded from Figure 4 ({} workloads); \
         'SCHISM' is the strategy picked by final validation.",
        PAPER_FIG4.len()
    );
}
