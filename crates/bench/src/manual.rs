//! Manual-partitioning baselines — the "best manual partitioning we could
//! devise" column of Figure 4, coded from the paper's descriptions.

use schism_router::{Complexity, PartitionSet, Route, Scheme};
use schism_sql::Statement;
use schism_workload::tpcc::{self, TpccConfig};
use schism_workload::{TupleId, TupleValues};

fn splitmix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The expert TPC-C strategy (\[21\], §5.2): partition every table by
/// warehouse (warehouses spread evenly over partitions) and replicate the
/// `item` table.
pub struct ManualTpcc {
    cfg: TpccConfig,
    k: u32,
}

impl ManualTpcc {
    pub fn new(cfg: TpccConfig, k: u32) -> Self {
        Self { cfg, k }
    }

    fn partition_of_warehouse(&self, w: u64) -> u32 {
        // Contiguous blocks of warehouses per partition, like a range
        // partitioning on w_id.
        let per = (self.cfg.warehouses as u64).div_ceil(self.k as u64);
        (w / per) as u32
    }
}

impl Scheme for ManualTpcc {
    fn name(&self) -> String {
        format!("manual(tpcc by warehouse) k={}", self.k)
    }

    fn k(&self) -> u32 {
        self.k
    }

    fn complexity(&self) -> Complexity {
        Complexity::Range
    }

    fn locate_tuple(&self, t: TupleId, _db: &dyn TupleValues) -> PartitionSet {
        match tpcc::warehouse_of(&self.cfg, t) {
            Some(w) => PartitionSet::single(self.partition_of_warehouse(w)),
            None => PartitionSet::all(self.k), // item table replicated
        }
    }

    fn route_statement(&self, stmt: &Statement) -> Route {
        // The fig4 experiments evaluate via tuple placement; statement
        // routing conservatively broadcasts.
        if stmt.kind.is_write() {
            Route::must(PartitionSet::all(self.k))
        } else {
            Route::any(PartitionSet::all(self.k))
        }
    }
}

/// The MIT students' Epinions strategy (§6.1): "partition item and review
/// via the same hash function, and replicate users and trust on every
/// node."
pub struct ManualEpinions {
    k: u32,
}

impl ManualEpinions {
    pub fn new(k: u32) -> Self {
        Self { k }
    }

    fn item_partition(&self, item: u64) -> u32 {
        (splitmix(item) % self.k as u64) as u32
    }
}

impl Scheme for ManualEpinions {
    fn name(&self) -> String {
        format!("manual(epinions item-hash) k={}", self.k)
    }

    fn k(&self) -> u32 {
        self.k
    }

    fn complexity(&self) -> Complexity {
        Complexity::Hash
    }

    fn locate_tuple(&self, t: TupleId, db: &dyn TupleValues) -> PartitionSet {
        use schism_workload::epinions::{T_ITEMS, T_REVIEWS};
        match t.table {
            T_ITEMS => PartitionSet::single(self.item_partition(t.row)),
            T_REVIEWS => match db.value(t, 2) {
                // ri_id column: co-locate the review with its item.
                Some(item) => PartitionSet::single(self.item_partition(item as u64)),
                None => PartitionSet::all(self.k),
            },
            // users and trust replicated everywhere.
            _ => PartitionSet::all(self.k),
        }
    }

    fn route_statement(&self, stmt: &Statement) -> Route {
        if stmt.kind.is_write() {
            Route::must(PartitionSet::all(self.k))
        } else {
            Route::any(PartitionSet::all(self.k))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schism_router::evaluate;
    use schism_workload::epinions::{self, EpinionsConfig};

    #[test]
    fn manual_tpcc_matches_multiwarehouse_fraction() {
        // The manual scheme's distributed fraction equals the fraction of
        // multi-warehouse transactions (~10.7%).
        let cfg = TpccConfig {
            num_txns: 10_000,
            ..TpccConfig::small(4)
        };
        let w = tpcc::generate(&cfg);
        let scheme = ManualTpcc::new(cfg, 4);
        let r = evaluate(&scheme, &w.trace, &*w.db);
        let f = r.distributed_fraction();
        assert!((0.05..=0.16).contains(&f), "manual tpcc fraction {f}");
    }

    #[test]
    fn manual_epinions_in_paper_ballpark() {
        let cfg = EpinionsConfig {
            num_txns: 10_000,
            ..Default::default()
        };
        let w = epinions::generate(&cfg);
        let scheme = ManualEpinions::new(2);
        let r = evaluate(&scheme, &w.trace, &*w.db);
        let f = r.distributed_fraction();
        // Paper: ~6%. Distributed txns = user/trust updates (replica
        // writes) + cross-item review reads by one user.
        assert!((0.02..=0.12).contains(&f), "manual epinions fraction {f}");
    }
}
