//! Plain-text table rendering for the experiment binaries.

/// A simple left-padded column table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", c, w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// `12.3%` or `-` for absent values.
pub fn pct(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{:.1}%", x * 100.0),
        None => "-".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(Some(0.1234)), "12.3%");
        assert_eq!(pct(None), "-");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
