//! Shared experiment infrastructure: manual-partitioning baselines, the
//! paper's reference numbers, and table rendering for the figure binaries.
//!
//! Run the experiments with, e.g.:
//!
//! ```text
//! cargo run --release -p schism-bench --bin fig4_partitioning_quality
//! cargo run --release -p schism-bench --bin fig1_price_of_distribution
//! ```
//!
//! Every binary accepts `--full` to use paper-scale parameters (slower).

pub mod manual;
pub mod table;

/// Returns true when `--full` was passed (paper-scale runs).
pub fn full_scale() -> bool {
    flag("--full")
}

/// Returns true when the bare flag `name` was passed.
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Value of `--name value` or `--name=value`, if present.
pub fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(name).and_then(|r| r.strip_prefix('=')) {
            return Some(v.to_string());
        }
    }
    None
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable. This is a
/// *high-water mark*: it only ever grows, so read it right after the phase
/// being measured and before anything else allocates.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Resets the `VmHWM` high-water mark (writes `5` to
/// `/proc/self/clear_refs`), so a following [`peak_rss_bytes`] reads the
/// peak of *this phase* rather than of the whole process. Returns `false`
/// where the kernel interface is unavailable — callers should then treat
/// the next reading as a whole-process upper bound.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Parses `--backend clique|hypergraph` (default `clique`) for the graph
/// benches (`fig5_partitioner_scaling`, `table1_graph_sizes`). The
/// serving/store benches reuse the same flag name for `mem|log` via
/// [`backend_kind`]; the two sets of binaries don't overlap.
pub fn graph_backend_arg() -> schism_core::GraphBackend {
    match arg_value("--backend").as_deref() {
        None | Some("clique") => schism_core::GraphBackend::Clique,
        Some("hypergraph") => schism_core::GraphBackend::Hypergraph,
        Some(other) => panic!("--backend takes clique|hypergraph, got {other}"),
    }
}

/// Parses `--backend mem|log` (default `mem`), panicking with the usage
/// string on an unknown value — bench binaries want loud misconfiguration.
pub fn backend_kind() -> schism_store::BackendKind {
    match arg_value("--backend") {
        Some(v) => v.parse().unwrap_or_else(|e| panic!("{e}")),
        None => schism_store::BackendKind::Mem,
    }
}

/// Opens a fresh store of the requested kind: `Mem` in memory, `Log` in a
/// new uniquely named subdirectory of `dir` (one bench run opens several
/// independent stores; each needs its own segment files).
pub fn open_backend(
    kind: schism_store::BackendKind,
    num_shards: u32,
    dir: &schism_store::tempdir::TempDir,
    run: &str,
) -> Box<dyn schism_store::ShardStore> {
    match kind {
        schism_store::BackendKind::Mem => Box::new(schism_store::MemStore::new(num_shards)),
        schism_store::BackendKind::Log => Box::new(
            schism_store::LogStore::open(dir.path().join(run), num_shards)
                .expect("open LogStore under temp dir"),
        ),
    }
}

/// Pulls one single-line section (e.g. `"scaling"`, `"huge"`, a backend
/// name) out of an existing sectioned BENCH json at `path`, so a run that
/// measures only one section carries the others over instead of clobbering
/// them. Sections are written one per line as `"name": { ... },` — this is
/// a line parser, not a JSON parser, by design: the bench files are
/// hand-formatted to keep it trivial.
pub fn existing_section(path: &str, name: &str) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    let prefix = format!("\"{name}\": ");
    for line in text.lines() {
        if let Some(rest) = line.trim_start().strip_prefix(&prefix) {
            let rest = rest.trim_end().trim_end_matches(',');
            if rest != "null" {
                return Some(rest.to_string());
            }
        }
    }
    None
}

/// Extracts the numeric value of `"key": <num>` from a one-line JSON
/// fragment (the bench files' section format). Returns `None` when the key
/// is absent or non-numeric.
pub fn json_num(fragment: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = fragment.find(&pat)? + pat.len();
    let rest = &fragment[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Approximate values decoded from the paper's Figure 4 bar chart
/// (camera-ready bitmap; cross-checked against the prose of §6.1 — e.g.
/// TPC-E = 12.1%, Epinions-2 = 4.5% vs manual 6%, Epinions-10 = 6% vs
/// baselines 75.7% / 8%, Random = 50%). `None` = not reported (the paper
/// had no manual partitioning for TPC-E).
#[derive(Clone, Copy, Debug)]
pub struct PaperFig4Row {
    pub workload: &'static str,
    pub schism: f64,
    pub manual: Option<f64>,
    pub replication: f64,
    pub hashing: f64,
    /// The strategy the validation phase selected in the paper.
    pub chosen: &'static str,
}

/// Paper reference values for Figure 4 (percent distributed transactions).
pub const PAPER_FIG4: &[PaperFig4Row] = &[
    PaperFig4Row {
        workload: "ycsb-a",
        schism: 0.0,
        manual: Some(0.0),
        replication: 50.0,
        hashing: 0.0,
        chosen: "hashing",
    },
    PaperFig4Row {
        workload: "ycsb-e",
        schism: 0.25,
        manual: Some(0.16),
        replication: 5.1,
        hashing: 85.5,
        chosen: "range-predicates",
    },
    PaperFig4Row {
        workload: "tpcc-2w",
        schism: 12.1,
        manual: Some(12.1),
        replication: 100.0,
        hashing: 54.6,
        chosen: "range-predicates",
    },
    PaperFig4Row {
        workload: "tpcc-2w-sampled",
        schism: 12.7,
        manual: Some(12.3),
        replication: 100.0,
        hashing: 54.1,
        chosen: "range-predicates",
    },
    PaperFig4Row {
        workload: "tpcc-50w",
        schism: 10.8,
        manual: Some(10.8),
        replication: 100.0,
        hashing: 55.5,
        chosen: "range-predicates",
    },
    PaperFig4Row {
        workload: "tpce",
        schism: 12.1,
        manual: None,
        replication: 44.0,
        hashing: 68.5,
        chosen: "range-predicates",
    },
    PaperFig4Row {
        workload: "epinions-2",
        schism: 4.5,
        manual: Some(6.0),
        replication: 8.0,
        hashing: 62.1,
        chosen: "lookup-table",
    },
    PaperFig4Row {
        workload: "epinions-10",
        schism: 6.1,
        manual: Some(6.5),
        replication: 8.0,
        hashing: 75.7,
        chosen: "lookup-table",
    },
    PaperFig4Row {
        workload: "random",
        schism: 50.0,
        manual: Some(50.0),
        replication: 100.0,
        hashing: 50.0,
        chosen: "hashing",
    },
];

/// Looks up the paper row by workload name.
pub fn paper_row(workload: &str) -> Option<&'static PaperFig4Row> {
    PAPER_FIG4.iter().find(|r| r.workload == workload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_num_extracts_section_fields() {
        let frag = "{ \"peak_mib\": 76.5, \"cut\": 1200, \"frac\": -0.5 }";
        assert_eq!(json_num(frag, "peak_mib"), Some(76.5));
        assert_eq!(json_num(frag, "cut"), Some(1200.0));
        assert_eq!(json_num(frag, "frac"), Some(-0.5));
        assert_eq!(json_num(frag, "missing"), None);
    }

    #[test]
    fn paper_rows_complete() {
        assert_eq!(PAPER_FIG4.len(), 9);
        assert!(paper_row("tpce").is_some());
        assert!(paper_row("tpce").unwrap().manual.is_none());
        assert!(paper_row("nope").is_none());
    }
}
