//! Criterion micro-benchmark for the discrete-event simulator: events per
//! second of simulated point-read traffic.

use criterion::{criterion_group, criterion_main, Criterion};
use schism_sim::{run, PoolSource, SimConfig, SimOp, SimTxn};

fn pool(servers: u32) -> Vec<SimTxn> {
    (0..256u64)
        .map(|i| SimTxn {
            ops: vec![
                SimOp {
                    server: (i % servers as u64) as u32,
                    key: (0, i * 2),
                    write: false,
                },
                SimOp {
                    server: (i % servers as u64) as u32,
                    key: (0, i * 2 + 1),
                    write: i % 4 == 0,
                },
            ],
        })
        .collect()
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/run-1s");
    group.sample_size(10);
    let cfg = SimConfig {
        num_servers: 4,
        num_clients: 100,
        warmup: 200_000,
        duration: 1_000_000,
        ..SimConfig::figure1(4)
    };
    group.bench_function("4srv-100cli", |b| {
        b.iter(|| run(&cfg, &mut PoolSource::new(pool(4))))
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
