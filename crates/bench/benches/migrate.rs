//! Criterion micro-benchmarks for the migration machinery: plan diffing
//! and partition relabeling at 1e5–1e6 tuples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schism_migrate::{plan_migration, relabel, PlanConfig};
use schism_router::PartitionSet;
use schism_workload::{MaterializedDb, TupleId};
use std::collections::HashMap;

const K: u32 = 64;

/// `n` tuples hashed over `K` partitions; `perturb` per-mille of them
/// moved to a different partition (plus a global label rotation, which
/// relabeling must see through).
fn assignments(
    n: u64,
    perturb_per_mille: u64,
) -> (
    HashMap<TupleId, PartitionSet>,
    HashMap<TupleId, PartitionSet>,
) {
    let mut old = HashMap::with_capacity(n as usize);
    let mut new = HashMap::with_capacity(n as usize);
    for r in 0..n {
        let p = (r.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % K as u64;
        let moved = (r.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) % 1_000 < perturb_per_mille;
        let q = if moved { (p + 7) % K as u64 } else { p };
        old.insert(TupleId::new(0, r), PartitionSet::single(p as u32));
        // Rotated labels: new id = old id + 1 (mod K).
        new.insert(
            TupleId::new(0, r),
            PartitionSet::single(((q + 1) % K as u64) as u32),
        );
    }
    (old, new)
}

fn bench_plan_diff(c: &mut Criterion) {
    let mut group = c.benchmark_group("migrate/plan");
    group.sample_size(10);
    for &n in &[100_000u64, 1_000_000] {
        let (old, new) = assignments(n, 50);
        let db = MaterializedDb::new();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| plan_migration(&old, &new, &db, &PlanConfig::default()))
        });
    }
    group.finish();
}

fn bench_relabel(c: &mut Criterion) {
    let mut group = c.benchmark_group("migrate/relabel");
    group.sample_size(10);
    for &n in &[100_000u64, 1_000_000] {
        let (old, new) = assignments(n, 50);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| relabel(&old, &new, K))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plan_diff, bench_relabel);
criterion_main!(benches);
