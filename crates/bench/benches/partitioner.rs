//! Criterion micro-benchmarks for the multilevel graph partitioner — the
//! machinery behind Figure 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schism_graph::{gen, partition, PartitionerConfig};

fn bench_partition_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition/planted");
    group.sample_size(10);
    for &(groups, per_group) in &[(4usize, 500usize), (8, 1_000), (16, 2_000)] {
        let g = gen::planted_partition(groups, per_group, per_group * 6, per_group / 2, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}v", g.num_vertices())),
            &g,
            |b, g| b.iter(|| partition(g, &PartitionerConfig::with_k(groups as u32))),
        );
    }
    group.finish();
}

fn bench_partition_k(c: &mut Criterion) {
    let g = gen::planted_partition(16, 1_000, 6_000, 500, 3);
    let mut group = c.benchmark_group("partition/k-sweep");
    group.sample_size(10);
    for &k in &[2u32, 8, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| partition(&g, &PartitionerConfig::with_k(k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partition_scaling, bench_partition_k);
criterion_main!(benches);
