//! Criterion micro-benchmarks for the explanation-phase classifier
//! (decision tree training + CFS).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schism_ml::{cfs_select, DatasetBuilder, DecisionTree, TreeConfig};

fn warehouse_dataset(rows: i64, warehouses: i64) -> schism_ml::Dataset {
    let mut b = DatasetBuilder::new()
        .numeric("s_i_id")
        .numeric("s_w_id")
        .numeric("noise");
    for i in 0..rows {
        let w = i % warehouses;
        b.row(&[i, w, (i * 2654435761) % 97], (w % 8) as u32);
    }
    b.build()
}

fn bench_tree_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree/train");
    group.sample_size(10);
    for &rows in &[1_000i64, 10_000] {
        let ds = warehouse_dataset(rows, 16);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &ds, |b, ds| {
            b.iter(|| DecisionTree::train(ds, &TreeConfig::default()))
        });
    }
    group.finish();
}

fn bench_cfs(c: &mut Criterion) {
    let ds = warehouse_dataset(5_000, 16);
    c.bench_function("cfs/select", |b| b.iter(|| cfs_select(&ds, 16)));
}

fn bench_predict(c: &mut Criterion) {
    let ds = warehouse_dataset(10_000, 16);
    let tree = DecisionTree::train(&ds, &TreeConfig::default());
    c.bench_function("tree/predict", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            tree.predict(&[i % 10_000, i % 16, i % 97])
        })
    });
}

criterion_group!(benches, bench_tree_train, bench_cfs, bench_predict);
criterion_main!(benches);
