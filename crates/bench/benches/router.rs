//! Criterion micro-benchmarks for the routing layer: lookup-table backends
//! (Appendix C.1) and replication-aware transaction routing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schism_router::{
    route_transaction, BitArrayBackend, BloomBackend, BloomFilter, IndexBackend, LookupBackend,
    LookupScheme, MissPolicy, PartitionSet,
};
use schism_workload::{MaterializedDb, TupleId, TxnBuilder};

const N: u64 = 100_000;
const K: u32 = 8;

fn entries() -> Vec<(u64, PartitionSet)> {
    (0..N)
        .map(|r| (r, PartitionSet::single((r % K as u64) as u32)))
        .collect()
}

fn bench_lookup_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup/get");
    let index = IndexBackend::new(entries());
    let bits = BitArrayBackend::new(N, entries());
    let bloom = BloomBackend::new(K, (N / K as u64) as usize, 0.01, entries());
    let backends: Vec<(&str, &dyn LookupBackend)> =
        vec![("index", &index), ("bit-array", &bits), ("bloom", &bloom)];
    for (name, b) in backends {
        group.bench_with_input(BenchmarkId::from_parameter(name), &b, |bench, b| {
            let mut row = 0u64;
            bench.iter(|| {
                row = (row + 7919) % N;
                b.get(row)
            })
        });
    }
    group.finish();
}

fn bench_bloom_insert(c: &mut Criterion) {
    c.bench_function("bloom/insert", |b| {
        let mut filter = BloomFilter::new(N as usize, 0.01);
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(0x9E37_79B9);
            filter.insert(key);
        })
    });
}

fn bench_route_transaction(c: &mut Criterion) {
    let scheme = LookupScheme::new(
        K,
        vec![Some(
            Box::new(BitArrayBackend::new(N, entries())) as Box<dyn LookupBackend>
        )],
        vec![None],
        MissPolicy::Replicate,
    );
    let db = MaterializedDb::new();
    let mut txns = Vec::new();
    for i in 0..64u64 {
        let mut b = TxnBuilder::new(false);
        for j in 0..10 {
            b.read(TupleId::new(0, (i * 997 + j * 131) % N));
        }
        b.write(TupleId::new(0, (i * 7919) % N));
        txns.push(b.finish());
    }
    c.bench_function("route/txn-10r1w", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % txns.len();
            route_transaction(&txns[i], &scheme, &db)
        })
    });
}

criterion_group!(
    benches,
    bench_lookup_backends,
    bench_bloom_insert,
    bench_route_transaction
);
criterion_main!(benches);
