//! End-to-end: a drifting workload drives the controller, the resulting
//! plan is executed against in-memory shard stores while the simulator
//! shows the migration's throughput tax — with routing flips driven by
//! batch acknowledgements, never ahead of them.

use schism_core::{build_graph, run_partition_phase, SchismConfig};
use schism_migrate::{ControllerConfig, MigrationController, StepOutcome, Tick};
use schism_router::{Scheme, VersionedScheme};
use schism_sim::{run, MigrationSource, PoolSource, SimConfig, SimTxn};
use schism_store::{load_assignment, MemStore, ShardStore};
use schism_workload::drifting::{self, DriftingConfig};
use std::sync::Arc;

const K: u32 = 4;

fn controller_at_window0(dcfg: &DriftingConfig) -> MigrationController {
    let w0 = drifting::window(dcfg, 0);
    MigrationController::bootstrap(&w0, ControllerConfig::new(K))
}

#[test]
fn migration_traffic_costs_throughput_then_recovers() {
    let dcfg = DriftingConfig {
        num_txns: 2_000,
        ..Default::default()
    };
    let mut ctl = controller_at_window0(&dcfg);
    let w2 = drifting::window(&dcfg, 2);
    let outcome = match ctl.observe(&w2) {
        Tick::Migrate(m) => m,
        Tick::Stable(r) => panic!("drift missed: {}", r.distance),
    };
    assert!(!outcome.plan.is_empty());

    // Foreground: the drifted window routed through the *new* placement.
    let scheme = schism_core::build_lookup_scheme(&w2, &w2.trace, ctl.assignment(), K);
    let pool = SimTxn::from_trace(&w2.trace, &scheme, &*w2.db);
    let sim_cfg = SimConfig {
        num_servers: K,
        num_clients: 40,
        duration: 4_000_000,
        warmup: 1_000_000,
        ..SimConfig::default()
    };
    let quiet = run(&sim_cfg, &mut PoolSource::new(pool.clone()));

    // Same foreground plus copy traffic, one move per 2 txns. The plan's
    // own queue drains in a fraction of the run, so cycle it into a
    // sustained stream that outlives the measurement window — modeling a
    // long-running migration at this throttle.
    let moves = outcome.plan.sim_txns();
    assert!(!moves.is_empty(), "plan must induce copy transactions");
    assert!(
        moves.iter().all(SimTxn::is_distributed),
        "copies cross servers"
    );
    let sustained: Vec<SimTxn> = moves.iter().cloned().cycle().take(60_000).collect();
    let mut source = MigrationSource::new(PoolSource::new(pool), sustained, 2);
    let busy = run(&sim_cfg, &mut source);
    assert!(
        !source.drained(),
        "copy stream must outlive the run for the tax to be measurable"
    );

    assert!(
        busy.throughput < 0.9 * quiet.throughput,
        "migration traffic must cost throughput: {} vs {}",
        busy.throughput,
        quiet.throughput
    );
    assert!(
        busy.p99_latency_ms > 0.0 && busy.p99_latency_ms >= busy.p95_latency_ms,
        "mid-migration p99 must be reported: {busy:?}"
    );
}

type Placement = std::collections::HashMap<schism_workload::TupleId, schism_router::PartitionSet>;
type Fixture = (
    schism_migrate::MigrationOutcome,
    Placement,
    Arc<dyn Scheme>,
    Arc<dyn Scheme>,
    schism_workload::Workload,
);

/// Builds the drift → plan fixture: outcome, pre-migration placement, and
/// the old/new lookup schemes.
fn drifted_fixture(num_txns: usize) -> Fixture {
    let dcfg = DriftingConfig {
        num_txns,
        ..Default::default()
    };
    let w0 = drifting::window(&dcfg, 0);
    let cfg = SchismConfig::new(K);
    let wg = build_graph(&w0, &w0.trace, &cfg);
    let prev = run_partition_phase(&wg, &cfg).assignment;

    let mut ctl = MigrationController::with_assignment(&w0, prev.clone(), ControllerConfig::new(K));
    let w3 = drifting::window(&dcfg, 3);
    let outcome = match ctl.observe(&w3) {
        Tick::Migrate(m) => m,
        Tick::Stable(r) => panic!("drift missed: {}", r.distance),
    };

    let old: Arc<dyn Scheme> = Arc::new(schism_core::build_lookup_scheme(&w0, &w0.trace, &prev, K));
    let new: Arc<dyn Scheme> = Arc::new(schism_core::build_lookup_scheme(
        &w3,
        &w3.trace,
        ctl.assignment(),
        K,
    ));
    (outcome, prev, old, new, w3)
}

#[test]
fn executed_plan_converges_store_and_router() {
    let (outcome, prev, old, new, w3) = drifted_fixture(1_500);

    // Physical shards hold the pre-migration placement.
    let store = MemStore::new(K);
    load_assignment(&store, &prev, &*w3.db).expect("seed store");
    let rows_before = store.total_rows();

    let vs = VersionedScheme::new(old, new.clone());
    let mut exec = outcome.executor(&store, &vs);
    assert_eq!(exec.run_to_completion(), StepOutcome::Done);
    assert!(exec.is_complete());

    let report = exec.report();
    assert_eq!(report.batches_flipped, outcome.plan.batches.len());
    assert_eq!(report.tuples_moved, outcome.plan.total_moves);
    assert_eq!(report.bytes_copied, outcome.plan.total_bytes);
    assert_eq!(vs.moved_count(), outcome.plan.total_moves);
    assert_eq!(vs.flipped_batches(), outcome.plan.batches.len() as u64);

    // Store contents and routing agree for every migrated tuple: the row
    // lives on exactly the shards the new placement names, nowhere else,
    // and the versioned scheme resolves to the new epoch.
    for m in outcome.plan.moves() {
        assert_eq!(
            vs.locate_tuple(m.tuple, &*w3.db),
            new.locate_tuple(m.tuple, &*w3.db)
        );
        for shard in 0..K {
            assert_eq!(
                store.get(shard, m.tuple).unwrap().is_some(),
                m.to.contains(shard),
                "tuple {} on shard {shard}",
                m.tuple
            );
        }
    }
    // Single-primary placements: copies added == copies dropped, so the
    // store's total row count is preserved by a completed migration.
    let copies_delta: i64 = outcome
        .plan
        .moves()
        .map(|m| i64::from(m.copies_added().len()) - i64::from(m.copies_dropped().len()))
        .sum();
    assert_eq!(store.total_rows() as i64, rows_before as i64 + copies_delta);

    let finalized = vs.finalize();
    assert_eq!(finalized.name(), new.name());
}

/// Regression for the optimistic moved-set advance: with the
/// acknowledgement-gated source, routing flips happen *inside* the batch
/// acknowledgement, so the moved-set can never lead the copy traffic the
/// cluster has actually absorbed.
#[test]
fn moved_set_never_leads_acknowledged_batches() {
    let (outcome, prev, old, new, w3) = drifted_fixture(1_000);

    let store = MemStore::new(K);
    load_assignment(&store, &prev, &*w3.db).expect("seed store");
    let vs = VersionedScheme::new(old, new);
    let mut exec = outcome.executor(&store, &vs);

    // Foreground traffic routed through the versioned scheme (the live
    // epoch), plus the plan's copy batches gated on executor progress.
    let pool = SimTxn::from_trace(&w3.trace, &vs, &*w3.db);
    let batches = outcome.plan.sim_txn_batches();
    let total_batches = batches.len();
    let mut source = MigrationSource::batched(
        PoolSource::new(pool),
        batches,
        1,
        Some(Box::new(|b| {
            // The invariant under test: when batch b's traffic has just
            // been issued, exactly b batches have been acknowledged.
            assert_eq!(
                vs.flipped_batches(),
                b as u64,
                "moved-set led the acknowledgement at batch {b}"
            );
            let flipped = matches!(exec.step(), StepOutcome::Flipped(_));
            assert!(flipped, "batch {b} must execute cleanly");
            assert_eq!(vs.flipped_batches(), b as u64 + 1);
            true
        })),
    );
    let sim_cfg = SimConfig {
        num_servers: K,
        num_clients: 40,
        duration: 8_000_000,
        warmup: 500_000,
        ..SimConfig::default()
    };
    let report = run(&sim_cfg, &mut source);
    assert!(report.completed > 0);

    // However far the run got, flips equal acknowledged batches exactly.
    let issued = source.batches_issued();
    assert_eq!(vs.flipped_batches(), issued as u64);
    assert!(
        issued > 0,
        "sim run must make migration progress (plan has {total_batches} batches)"
    );
    drop(source);
    assert_eq!(exec.progress().0, issued);
}
