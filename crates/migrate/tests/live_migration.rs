//! End-to-end: a drifting workload drives the controller, the resulting
//! plan is executed against a versioned scheme while the simulator shows
//! the migration's throughput tax.

use schism_core::{build_graph, run_partition_phase, SchismConfig};
use schism_migrate::{ControllerConfig, MigrationController, Tick};
use schism_router::Scheme;
use schism_sim::{run, MigrationSource, PoolSource, SimConfig, SimTxn};
use schism_workload::drifting::{self, DriftingConfig};

const K: u32 = 4;

fn controller_at_window0(dcfg: &DriftingConfig) -> MigrationController {
    let w0 = drifting::window(dcfg, 0);
    MigrationController::bootstrap(&w0, ControllerConfig::new(K))
}

#[test]
fn migration_traffic_costs_throughput_then_recovers() {
    let dcfg = DriftingConfig {
        num_txns: 2_000,
        ..Default::default()
    };
    let mut ctl = controller_at_window0(&dcfg);
    let w2 = drifting::window(&dcfg, 2);
    let outcome = match ctl.observe(&w2) {
        Tick::Migrate(m) => m,
        Tick::Stable(r) => panic!("drift missed: {}", r.distance),
    };
    assert!(!outcome.plan.is_empty());

    // Foreground: the drifted window routed through the *new* placement.
    let scheme = schism_core::build_lookup_scheme(&w2, &w2.trace, ctl.assignment(), K);
    let pool = SimTxn::from_trace(&w2.trace, &scheme, &*w2.db);
    let sim_cfg = SimConfig {
        num_servers: K,
        num_clients: 40,
        duration: 4_000_000,
        warmup: 1_000_000,
        ..SimConfig::default()
    };
    let quiet = run(&sim_cfg, &mut PoolSource::new(pool.clone()));

    // Same foreground plus copy traffic, one move per 2 txns. The plan's
    // own queue drains in a fraction of the run, so cycle it into a
    // sustained stream that outlives the measurement window — modeling a
    // long-running migration at this throttle.
    let moves = outcome.plan.sim_txns();
    assert!(!moves.is_empty(), "plan must induce copy transactions");
    assert!(
        moves.iter().all(SimTxn::is_distributed),
        "copies cross servers"
    );
    let sustained: Vec<SimTxn> = moves.iter().cloned().cycle().take(60_000).collect();
    let mut source = MigrationSource::new(PoolSource::new(pool), sustained, 2);
    let busy = run(&sim_cfg, &mut source);
    assert!(
        !source.drained(),
        "copy stream must outlive the run for the tax to be measurable"
    );

    assert!(
        busy.throughput < 0.9 * quiet.throughput,
        "migration traffic must cost throughput: {} vs {}",
        busy.throughput,
        quiet.throughput
    );
}

#[test]
fn executed_plan_converges_router_to_new_placement() {
    use schism_router::VersionedScheme;
    use std::sync::Arc;

    let dcfg = DriftingConfig {
        num_txns: 1_500,
        ..Default::default()
    };
    let w0 = drifting::window(&dcfg, 0);
    let cfg = SchismConfig::new(K);
    let wg = build_graph(&w0, &w0.trace, &cfg);
    let prev = run_partition_phase(&wg, &cfg).assignment;

    let mut ctl = MigrationController::with_assignment(&w0, prev.clone(), ControllerConfig::new(K));
    let w3 = drifting::window(&dcfg, 3);
    let outcome = match ctl.observe(&w3) {
        Tick::Migrate(m) => m,
        Tick::Stable(r) => panic!("drift missed: {}", r.distance),
    };

    let old: Arc<dyn Scheme> = Arc::new(schism_core::build_lookup_scheme(&w0, &w0.trace, &prev, K));
    let new: Arc<dyn Scheme> = Arc::new(schism_core::build_lookup_scheme(
        &w3,
        &w3.trace,
        ctl.assignment(),
        K,
    ));
    let vs = VersionedScheme::new(old, new.clone());

    // Execute batch by batch; the moved-set grows monotonically.
    let mut done = 0usize;
    for batch in &outcome.plan.batches {
        done += vs.mark_batch(batch.moves.iter().map(|m| m.tuple));
        assert_eq!(vs.moved_count(), done);
    }
    assert_eq!(done, outcome.plan.total_moves);

    // After the last batch every moved tuple resolves through the new
    // scheme; finalize hands the new scheme back for the swap.
    for m in outcome.plan.moves() {
        assert_eq!(
            vs.locate_tuple(m.tuple, &*w3.db),
            new.locate_tuple(m.tuple, &*w3.db)
        );
    }
    let finalized = vs.finalize();
    assert_eq!(finalized.name(), new.name());
}
