//! Fixed-memory drift histograms: count-min sketch + deterministic
//! heavy-hitter reservoir.
//!
//! The exact [`AccessHistogram`](crate::drift::AccessHistogram) keeps one
//! counter per distinct tuple, so a drift monitor over a hot set of
//! millions of tuples carries O(hot set) memory *per window* — the piece
//! that stops scaling first at 1e8-access traces. [`SketchHistogram`] is
//! the fixed-memory replacement behind the same observe/distance API:
//!
//! - a **count-min sketch** (`depth` rows × `width` counters) answers
//!   per-tuple frequency queries with a one-sided error: estimates never
//!   undercount, and overcount by more than `ε·N` (`ε ≈ 2/width`, `N` =
//!   total accesses) only with probability `~2^-depth` per query;
//! - a **deterministic heavy-hitter reservoir** (SpaceSaving, capacity
//!   `heavy_hitters`) tracks the keys worth comparing individually. Every
//!   tuple whose true count exceeds `N / heavy_hitters` is guaranteed to be
//!   present, and the structure is a pure function of the observation
//!   sequence — no RNG, no hashing races — so windows fed in index order
//!   are reproducible.
//!
//! Distances ([`SketchHistogram::distance`]) are computed over the **union
//! of the two reservoirs** plus one aggregate *residual* bin holding the
//! tail mass neither reservoir tracks. That is exactly the distance of a
//! coarsened pair of distributions, so by the data-processing inequality
//! the sketched TV/JS can only *under*-shoot the exact distance by the
//! detail lost in the tail bin — while CMS overestimation noise can push
//! it either way by at most `~|U|·ε`. [`SketchHistogram::distance_with_bound`]
//! returns both the distance and that error bound; the pinned tests hold
//! sketch-vs-exact within it on real drifting traces.
//!
//! Memory is `depth · width · 8` bytes of counters plus the reservoir —
//! independent of the trace length and of the hot-set size. The defaults
//! (4 × 8192 counters + 1024 heavy hitters) fit in ~300 KiB.

use crate::drift::{DistanceMetric, DriftConfig, DriftReport};
use schism_workload::{TraceSource, TupleId};
use std::collections::{BTreeSet, HashMap};

fn splitmix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn tuple_hash(t: TupleId) -> u64 {
    splitmix(t.row ^ (t.table as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Sketch sizing. All three knobs trade accuracy for (fixed) memory; none
/// of them grows with the trace.
#[derive(Clone, Copy, Debug)]
pub struct SketchConfig {
    /// Count-min counters per row. Expected per-query overestimate is
    /// `~2·N/width` accesses (see [`SketchHistogram::epsilon`]).
    pub width: usize,
    /// Count-min rows (independent hash functions). Each extra row halves
    /// (at least) the probability of a large overestimate.
    pub depth: usize,
    /// SpaceSaving reservoir capacity: every tuple with true count above
    /// `N / heavy_hitters` is guaranteed tracked.
    pub heavy_hitters: usize,
}

impl Default for SketchConfig {
    fn default() -> Self {
        Self {
            width: 8192,
            depth: 4,
            heavy_hitters: 1024,
        }
    }
}

/// A fixed-memory access histogram of one trace window.
#[derive(Clone, Debug)]
pub struct SketchHistogram {
    cfg: SketchConfig,
    /// `depth` rows of `width` counters, flattened row-major.
    counters: Vec<u64>,
    /// SpaceSaving counts: tuple → upper-bound count.
    heavy: HashMap<TupleId, u64>,
    /// Mirror of `heavy` ordered by `(count, tuple)` for O(log K) min
    /// eviction with a deterministic tie-break.
    order: BTreeSet<(u64, TupleId)>,
    total: u64,
}

impl SketchHistogram {
    pub fn new(cfg: SketchConfig) -> Self {
        assert!(cfg.width >= 2 && cfg.depth >= 1 && cfg.heavy_hitters >= 1);
        Self {
            counters: vec![0; cfg.width * cfg.depth],
            heavy: HashMap::with_capacity(cfg.heavy_hitters + 1),
            order: BTreeSet::new(),
            total: 0,
            cfg,
        }
    }

    /// Records one access. Deterministic: the histogram is a pure function
    /// of the observation sequence.
    pub fn observe(&mut self, t: TupleId) {
        self.total += 1;
        let h = tuple_hash(t);
        for row in 0..self.cfg.depth {
            let idx = (splitmix(h ^ (row as u64).wrapping_mul(0xA076_1D64_78BD_642F))
                % self.cfg.width as u64) as usize;
            self.counters[row * self.cfg.width + idx] += 1;
        }
        // SpaceSaving: tracked keys bump; new keys inherit the evicted
        // minimum's count + 1 (an upper bound on their true count).
        if let Some(c) = self.heavy.get_mut(&t) {
            let old = *c;
            *c += 1;
            self.order.remove(&(old, t));
            self.order.insert((old + 1, t));
        } else if self.heavy.len() < self.cfg.heavy_hitters {
            self.heavy.insert(t, 1);
            self.order.insert((1, t));
        } else {
            let &(min_count, min_t) = self.order.first().expect("non-empty reservoir");
            self.order.remove(&(min_count, min_t));
            self.heavy.remove(&min_t);
            self.heavy.insert(t, min_count + 1);
            self.order.insert((min_count + 1, t));
        }
    }

    /// Feeds every access of a window streamed from any [`TraceSource`],
    /// without materializing a `Trace`.
    pub fn observe_source<S>(&mut self, source: &S)
    where
        S: TraceSource + ?Sized,
    {
        source.for_chunk(0..source.len(), &mut |_, txn| {
            for t in txn.accessed() {
                self.observe(t);
            }
        });
    }

    /// Builds a sketch of a whole window.
    pub fn from_source<S>(cfg: SketchConfig, source: &S) -> Self
    where
        S: TraceSource + ?Sized,
    {
        let mut h = Self::new(cfg);
        h.observe_source(source);
        h
    }

    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Count-min frequency estimate: never undercounts the true count;
    /// overcounts by more than `epsilon() * total` only with probability
    /// `~2^-depth`.
    pub fn estimate(&self, t: TupleId) -> u64 {
        let h = tuple_hash(t);
        let mut best = u64::MAX;
        for row in 0..self.cfg.depth {
            let idx = (splitmix(h ^ (row as u64).wrapping_mul(0xA076_1D64_78BD_642F))
                % self.cfg.width as u64) as usize;
            best = best.min(self.counters[row * self.cfg.width + idx]);
        }
        if best == u64::MAX {
            0
        } else {
            best
        }
    }

    /// Estimated probability mass of `t` in this window.
    pub fn mass(&self, t: TupleId) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.estimate(t) as f64 / self.total as f64
        }
    }

    /// Per-query expected overestimate as a fraction of the total count
    /// (`~2/width`; Markov on one row, and the min over `depth` rows only
    /// tightens it).
    pub fn epsilon(&self) -> f64 {
        2.0 / self.cfg.width as f64
    }

    /// The tracked heavy hitters, as `(tuple, upper-bound count)`.
    pub fn heavy_hitters(&self) -> impl Iterator<Item = (TupleId, u64)> + '_ {
        self.heavy.iter().map(|(&t, &c)| (t, c))
    }

    /// Distance between two sketched windows (see module docs for the
    /// coarsening semantics).
    pub fn distance(&self, other: &Self, metric: DistanceMetric) -> f64 {
        self.distance_with_bound(other, metric).0
    }

    /// Distance plus its error bound vs. the exact (per-tuple) distance.
    ///
    /// The distance is computed over the union `U` of the two reservoirs'
    /// key sets, with per-key masses from the count-min estimates, plus one
    /// residual bin per side holding `max(0, 1 - Σ_U mass)` — the tail
    /// neither reservoir tracks.
    ///
    /// The bound combines the two error sources: `|U| · (ε_a + ε_b)` of
    /// count-min overestimation slack across the queried keys (an expected
    /// bound; `depth` rows make larger excursions exponentially unlikely)
    /// and `(r_a + r_b) / 2 + ...` for the per-key detail aggregated away
    /// in the residual bins. It is stated for total variation; for
    /// Jensen–Shannon the same value is returned as a heuristic (JS of a
    /// coarsening is likewise a lower bound of the exact JS, but the CMS
    /// noise term has no closed form). Pinned against the exact detector in
    /// `tests/drift_sketch.rs`.
    pub fn distance_with_bound(&self, other: &Self, metric: DistanceMetric) -> (f64, f64) {
        if self.total == 0 || other.total == 0 {
            // An empty window carries no evidence either way.
            return (0.0, 0.0);
        }
        let mut keys: Vec<TupleId> = self.heavy.keys().copied().collect();
        keys.extend(other.heavy.keys().copied());
        keys.sort_unstable();
        keys.dedup();

        let mut sum_p = 0.0f64;
        let mut sum_q = 0.0f64;
        let masses: Vec<(f64, f64)> = keys
            .iter()
            .map(|&t| {
                let p = self.mass(t);
                let q = other.mass(t);
                sum_p += p;
                sum_q += q;
                (p, q)
            })
            .collect();
        let rp = (1.0 - sum_p).max(0.0);
        let rq = (1.0 - sum_q).max(0.0);

        let distance = match metric {
            DistanceMetric::TotalVariation => {
                let mut sum = (rp - rq).abs();
                for &(p, q) in &masses {
                    sum += (p - q).abs();
                }
                (0.5 * sum).clamp(0.0, 1.0)
            }
            DistanceMetric::JensenShannon => {
                let kl_term = |p: f64, m: f64| if p > 0.0 { p * (p / m).log2() } else { 0.0 };
                let mut js = 0.0f64;
                for &(p, q) in masses.iter().chain(std::iter::once(&(rp, rq))) {
                    let m = 0.5 * (p + q);
                    js += 0.5 * kl_term(p, m) + 0.5 * kl_term(q, m);
                }
                js.clamp(0.0, 1.0)
            }
        };
        let cms_slack = keys.len() as f64 * (self.epsilon() + other.epsilon());
        let bound = cms_slack + 0.5 * (rp + rq) + 0.5 * cms_slack;
        (distance, bound)
    }
}

/// Fixed-memory counterpart of [`DriftDetector`](crate::drift::DriftDetector):
/// the same window-vs-reference trigger, with sketched histograms on both
/// sides and windows fed from any [`TraceSource`] — no materialized
/// `Trace`, no per-tuple reference map.
pub struct SketchDriftDetector {
    cfg: DriftConfig,
    scfg: SketchConfig,
    reference: SketchHistogram,
}

impl SketchDriftDetector {
    /// `reference` is the window the current placement was computed from
    /// (an in-memory `Trace` works too — it implements [`TraceSource`]).
    pub fn new<S>(cfg: DriftConfig, scfg: SketchConfig, reference: &S) -> Self
    where
        S: TraceSource + ?Sized,
    {
        Self {
            cfg,
            scfg,
            reference: SketchHistogram::from_source(scfg, reference),
        }
    }

    /// Scores one streamed window against the reference.
    pub fn observe<S>(&self, window: &S) -> DriftReport
    where
        S: TraceSource + ?Sized,
    {
        self.observe_histogram(
            &SketchHistogram::from_source(self.scfg, window),
            window.len(),
        )
    }

    /// Scores an already-sketched window (callers that feed
    /// [`SketchHistogram::observe`] incrementally as accesses arrive).
    pub fn observe_histogram(&self, hist: &SketchHistogram, window_txns: usize) -> DriftReport {
        let distance = hist.distance(&self.reference, self.cfg.metric);
        DriftReport {
            distance,
            drifted: window_txns >= self.cfg.min_transactions && distance > self.cfg.threshold,
            window_txns,
        }
    }

    /// Resets the reference after a repartition.
    pub fn rebase<S>(&mut self, reference: &S)
    where
        S: TraceSource + ?Sized,
    {
        self.reference = SketchHistogram::from_source(self.scfg, reference);
    }

    pub fn config(&self) -> &DriftConfig {
        &self.cfg
    }

    pub fn sketch_config(&self) -> &SketchConfig {
        &self.scfg
    }

    /// The reference sketch (for error-bound introspection).
    pub fn reference(&self) -> &SketchHistogram {
        &self.reference
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schism_workload::{Trace, TxnBuilder};

    fn point_trace(rows: &[u64]) -> Trace {
        Trace {
            transactions: rows
                .iter()
                .map(|&r| {
                    let mut b = TxnBuilder::new(false);
                    b.read(TupleId::new(0, r));
                    b.finish()
                })
                .collect(),
        }
    }

    #[test]
    fn estimates_never_undercount() {
        let mut h = SketchHistogram::new(SketchConfig {
            width: 64,
            depth: 3,
            heavy_hitters: 8,
        });
        for i in 0..500u64 {
            h.observe(TupleId::new(0, i % 37));
        }
        for i in 0..37u64 {
            let t = TupleId::new(0, i);
            let truth = (500 / 37) + u64::from(i < 500 % 37);
            assert!(h.estimate(t) >= truth, "CMS undercounted {i}");
        }
        assert_eq!(h.total_accesses(), 500);
    }

    #[test]
    fn heavy_hitters_guarantee_holds() {
        // One key with 40% of the mass must be tracked even with a tiny
        // reservoir under heavy churn from 1000 cold keys.
        let mut h = SketchHistogram::new(SketchConfig {
            width: 1024,
            depth: 4,
            heavy_hitters: 16,
        });
        for i in 0..1000u64 {
            h.observe(TupleId::new(0, 7)); // hot
            h.observe(TupleId::new(1, i)); // churn
        }
        assert!(
            h.heavy_hitters().any(|(t, _)| t == TupleId::new(0, 7)),
            "hot key evicted from the SpaceSaving reservoir"
        );
    }

    #[test]
    fn identical_windows_have_zero_distance() {
        let t = point_trace(&[1, 2, 3, 1, 1, 5]);
        let h = SketchHistogram::from_source(SketchConfig::default(), &t);
        for m in [
            DistanceMetric::TotalVariation,
            DistanceMetric::JensenShannon,
        ] {
            assert!(h.distance(&h, m).abs() < 1e-12);
        }
    }

    #[test]
    fn disjoint_windows_have_maximal_distance() {
        let a = SketchHistogram::from_source(SketchConfig::default(), &point_trace(&[1, 2, 3]));
        let b = SketchHistogram::from_source(SketchConfig::default(), &point_trace(&[10, 11, 12]));
        assert!((a.distance(&b, DistanceMetric::TotalVariation) - 1.0).abs() < 1e-9);
        assert!((a.distance(&b, DistanceMetric::JensenShannon) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = SketchHistogram::from_source(SketchConfig::default(), &point_trace(&[1, 1, 2, 3]));
        let b =
            SketchHistogram::from_source(SketchConfig::default(), &point_trace(&[2, 3, 3, 4, 5]));
        for m in [
            DistanceMetric::TotalVariation,
            DistanceMetric::JensenShannon,
        ] {
            assert!((a.distance(&b, m) - b.distance(&a, m)).abs() < 1e-12);
        }
    }

    #[test]
    fn incremental_observe_equals_from_source() {
        let t = point_trace(&[5, 5, 9, 1, 5, 2, 2]);
        let whole = SketchHistogram::from_source(SketchConfig::default(), &t);
        let mut inc = SketchHistogram::new(SketchConfig::default());
        for txn in &t.transactions {
            for a in txn.accessed() {
                inc.observe(a);
            }
        }
        assert_eq!(inc.total_accesses(), whole.total_accesses());
        assert_eq!(
            inc.distance(&whole, DistanceMetric::TotalVariation).abs(),
            0.0
        );
    }
}
