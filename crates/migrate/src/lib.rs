//! # schism-migrate
//!
//! Incremental repartitioning for Schism: the continuous loop the paper
//! leaves as future work (§7 names "detecting significant workload shifts"
//! as the open problem; SWORD and STAR later made repartitioning
//! incremental and placement adaptive). The crate turns the one-shot
//! advisor into detect → repartition-warm → relabel → plan → migrate-live:
//!
//! | module | role |
//! |--------|------|
//! | [`drift`] | windowed access histograms + distribution-distance trigger |
//! | [`sketch`] | fixed-memory drift: count-min sketch + heavy-hitter reservoir |
//! | [`incremental`] | warm-started re-partition and the from-scratch baseline |
//! | [`relabel`](mod@relabel) | Hungarian matching of new→old partition ids to minimize movement |
//! | [`plan`] | diff two placements into throttled, batched tuple moves |
//! | [`executor`] | run a plan against [`schism_store`] shards: copy → verify → flip per batch |
//! | [`controller`] | the loop: state, trigger, repartition, plan hand-off |
//! | [`catchup`] | shard rejoin: catch-up copy plans over the same executor, plus the under-replication scanner |
//!
//! Mid-migration routing correctness lives in
//! [`schism_router::VersionedScheme`] (old/new scheme pair + moved-set);
//! the [`executor`] owns each batch's copy/verify lifecycle against a
//! [`schism_store::ShardStore`] and advances that moved-set only on
//! acknowledgement ([`schism_router::VersionedScheme::flip_batch`]). The
//! migration's throughput tax is simulated by feeding the plan's batches
//! into [`schism_sim::MigrationSource`], whose injection is gated on the
//! same acknowledgements.
//!
//! ```
//! use schism_migrate::controller::{ControllerConfig, MigrationController, Tick};
//! use schism_workload::drifting::{self, DriftingConfig};
//!
//! let cfg = DriftingConfig { num_txns: 1_500, ..Default::default() };
//! let mut ctl = MigrationController::bootstrap(
//!     &drifting::window(&cfg, 0),
//!     ControllerConfig::new(4),
//! );
//! // The hot spot rotates: the detector fires and a move plan comes back.
//! match ctl.observe(&drifting::window(&cfg, 3)) {
//!     Tick::Migrate(m) => assert!(m.plan.total_moves > 0),
//!     Tick::Stable(r) => panic!("drift missed: {}", r.distance),
//! }
//! ```

pub mod catchup;
pub mod controller;
pub mod drift;
pub mod executor;
pub mod incremental;
pub mod plan;
pub mod relabel;
pub mod sketch;

pub use catchup::{
    catch_up_plan, run_catch_up, scan_under_replicated, CatchUpReport, UnderReplicated,
};
pub use controller::{ControllerConfig, MigrationController, MigrationOutcome, Tick};
pub use drift::{
    split_windows, AccessHistogram, DistanceMetric, DriftConfig, DriftDetector, DriftReport,
};
pub use executor::{
    BatchReport, BatchState, ExecError, ExecutorConfig, ExecutorReport, MigrationExecutor,
    StepOutcome,
};
pub use incremental::{distributed_fraction, rerun_incremental, rerun_scratch, RepartitionOutcome};
pub use plan::{plan_migration, MigrationBatch, MigrationPlan, PlanConfig, TupleMove};
pub use relabel::{apply_relabel, relabel, Relabeling};
pub use sketch::{SketchConfig, SketchDriftDetector, SketchHistogram};
