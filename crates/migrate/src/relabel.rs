//! The partition-relabeling problem.
//!
//! Partition ids coming out of a graph partitioner are arbitrary: two runs
//! that produce the *same* cut can name the parts differently, and a naive
//! diff would then migrate every tuple. Before diffing an old and a new
//! assignment we therefore choose the id permutation that maximizes
//! overlap — equivalently, minimizes the number of tuples whose primary
//! partition changes.
//!
//! This is an assignment problem on the k×k overlap matrix
//! `M[new][old] = |{tuples with new primary `new` and old primary `old`}|`,
//! solved exactly with the Hungarian algorithm (O(k³), trivial at
//! k ≤ 256). As belt and braces the identity mapping is kept whenever it
//! moves no more tuples than the matching — so relabeling can never be
//! worse than doing nothing, which the umbrella crate's property test
//! pins down.

use schism_router::PartitionSet;
use schism_workload::TupleId;
use std::collections::HashMap;

/// Result of relabeling a new assignment against an old one.
#[derive(Clone, Debug)]
pub struct Relabeling {
    /// `mapping[p]` is the old-world id that new partition `p` takes.
    /// Always a permutation of `0..k`.
    pub mapping: Vec<u32>,
    /// Tuples present in both assignments whose primary partition differs
    /// *after* relabeling (the data that actually has to move).
    pub moved: u64,
    /// Same count under the identity mapping (what a naive diff would
    /// migrate).
    pub identity_moved: u64,
    /// Tuples present in both assignments.
    pub common: u64,
}

impl Relabeling {
    /// Fraction of common tuples that must move after relabeling.
    pub fn moved_fraction(&self) -> f64 {
        if self.common == 0 {
            0.0
        } else {
            self.moved as f64 / self.common as f64
        }
    }

    /// Whether the matching beat (or tied) the identity mapping.
    pub fn is_identity(&self) -> bool {
        self.mapping.iter().enumerate().all(|(i, &m)| i as u32 == m)
    }
}

/// Computes the best relabeling of `new` onto `prev`'s partition ids.
pub fn relabel(
    prev: &HashMap<TupleId, PartitionSet>,
    new: &HashMap<TupleId, PartitionSet>,
    k: u32,
) -> Relabeling {
    assert!(k >= 1);
    let k = k as usize;
    let mut overlap = vec![vec![0u64; k]; k];
    let mut common = 0u64;
    for (t, new_ps) in new {
        let (Some(np), Some(op)) = (new_ps.first(), prev.get(t).and_then(PartitionSet::first))
        else {
            continue;
        };
        if (np as usize) < k && (op as usize) < k {
            overlap[np as usize][op as usize] += 1;
            common += 1;
        }
    }

    let mapping = hungarian_max(&overlap);
    let matched: u64 = (0..k).map(|p| overlap[p][mapping[p] as usize]).sum();
    let identity_kept: u64 = (0..k).map(|p| overlap[p][p]).sum();

    // Never relabel into something worse than doing nothing.
    let (mapping, kept) = if identity_kept >= matched {
        ((0..k as u32).collect(), identity_kept)
    } else {
        (mapping, matched)
    };

    Relabeling {
        mapping,
        moved: common - kept,
        identity_moved: common - identity_kept,
        common,
    }
}

/// Applies a relabeling in place: every partition id in every set is
/// renamed through `mapping`.
pub fn apply_relabel(assignment: &mut HashMap<TupleId, PartitionSet>, mapping: &[u32]) {
    if mapping.iter().enumerate().all(|(i, &m)| i as u32 == m) {
        return;
    }
    for ps in assignment.values_mut() {
        let renamed: PartitionSet = ps
            .iter()
            .map(|p| mapping.get(p as usize).copied().unwrap_or(p))
            .collect();
        *ps = renamed;
    }
}

/// Exact maximum-weight perfect matching on a square matrix via the
/// Hungarian algorithm (potentials formulation). Returns `mapping` with
/// `mapping[row] = col`.
fn hungarian_max(weights: &[Vec<u64>]) -> Vec<u32> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let max_w = weights
        .iter()
        .flat_map(|r| r.iter().copied())
        .max()
        .unwrap_or(0) as i64;
    // Minimization on cost = max_w - weight.
    let cost = |r: usize, c: usize| -> i64 { max_w - weights[r][c] as i64 };

    const INF: i64 = i64::MAX / 4;
    // 1-indexed potentials/links, the classic formulation.
    let mut u = vec![0i64; n + 1];
    let mut v = vec![0i64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[col] = row matched to col
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut mapping = vec![0u32; n];
    for j in 1..=n {
        if p[j] > 0 {
            mapping[p[j] - 1] = (j - 1) as u32;
        }
    }
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asg(pairs: &[(u64, u32)]) -> HashMap<TupleId, PartitionSet> {
        pairs
            .iter()
            .map(|&(r, p)| (TupleId::new(0, r), PartitionSet::single(p)))
            .collect()
    }

    #[test]
    fn pure_permutation_moves_nothing() {
        // New labels are old labels cycled by one: relabeling must undo it.
        let prev = asg(&[(0, 0), (1, 0), (2, 1), (3, 1), (4, 2), (5, 2)]);
        let new = asg(&[(0, 1), (1, 1), (2, 2), (3, 2), (4, 0), (5, 0)]);
        let r = relabel(&prev, &new, 3);
        assert_eq!(r.moved, 0, "mapping {:?}", r.mapping);
        assert_eq!(r.identity_moved, 6);
        assert_eq!(r.mapping, vec![2, 0, 1]);
        let mut relabeled = new;
        apply_relabel(&mut relabeled, &r.mapping);
        assert_eq!(relabeled, prev);
    }

    #[test]
    fn identity_when_labels_already_agree() {
        let prev = asg(&[(0, 0), (1, 1), (2, 1)]);
        let new = asg(&[(0, 0), (1, 1), (2, 0)]);
        let r = relabel(&prev, &new, 2);
        assert!(r.is_identity());
        assert_eq!(r.moved, 1);
        assert_eq!(r.moved, r.identity_moved);
    }

    #[test]
    fn never_worse_than_identity() {
        // Pathological overlap where a bad matching could regress: the
        // guarantee is moved <= identity_moved always.
        let prev = asg(&[(0, 0), (1, 1), (2, 2), (3, 0), (4, 1), (5, 2)]);
        let new = asg(&[(0, 0), (1, 0), (2, 0), (3, 1), (4, 1), (5, 2)]);
        let r = relabel(&prev, &new, 3);
        assert!(r.moved <= r.identity_moved);
    }

    #[test]
    fn hungarian_beats_greedy_trap() {
        // Greedy (take the global max first) picks (0,0)=10 then is forced
        // into 1+1; optimal is 9+9+2 via the off-diagonal.
        let w = vec![vec![10, 9, 0], vec![9, 1, 0], vec![0, 0, 2]];
        let m = hungarian_max(&w);
        let total: u64 = (0..3).map(|i| w[i][m[i] as usize]).sum();
        assert_eq!(total, 20, "mapping {m:?}");
    }

    #[test]
    fn disjoint_tuple_sets_are_a_noop() {
        let prev = asg(&[(0, 0), (1, 1)]);
        let new = asg(&[(10, 1), (11, 0)]);
        let r = relabel(&prev, &new, 2);
        assert_eq!(r.common, 0);
        assert_eq!(r.moved, 0);
        assert_eq!(r.moved_fraction(), 0.0);
    }

    #[test]
    fn replicated_tuples_relabel_their_whole_set() {
        let mut new: HashMap<TupleId, PartitionSet> = HashMap::new();
        new.insert(TupleId::new(0, 0), [0u32, 1].into_iter().collect());
        apply_relabel(&mut new, &[1, 0]);
        let ps = new[&TupleId::new(0, 0)];
        assert_eq!(ps.iter().collect::<Vec<_>>(), vec![0, 1], "set renamed");
    }
}
