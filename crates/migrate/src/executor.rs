//! The migration executor: runs a [`MigrationPlan`] against physical
//! shard stores, batch by batch, and drives routing from acknowledgements.
//!
//! Each batch walks the lifecycle
//!
//! ```text
//! planned ──► copying ──► verifying ──► flipped
//!                ▲            │
//!                └── retry ◄──┤ (checksum/count mismatch, ≤ max_retries)
//!                             └──► aborted (rollback: copied rows deleted)
//! ```
//!
//! - **copy** reads every moved row from its source shard and writes it to
//!   each shard gaining a copy (one atomic [`ShardStore::apply_batch`] per
//!   destination shard); a row that has vanished from a live source was
//!   deleted by a foreground DELETE while in plan, and the copy propagates
//!   the tombstone (deletes it from the destinations) instead of aborting;
//! - **verify** re-reads both sides and compares row count and checksum —
//!   a mismatch re-copies the batch up to [`ExecutorConfig::max_retries`]
//!   times, then aborts (a tombstoned row verifies as absent-everywhere);
//! - **flip** is the only point routing changes: the batch is acknowledged
//!   into the [`VersionedScheme`] moved-set via the sequenced
//!   [`VersionedScheme::flip_batch`] API, after which (and only after
//!   which) the shards dropping a copy delete theirs.
//!
//! Because a batch either flips completely or is rolled back completely,
//! aborting at any batch boundary leaves every key with exactly one owner
//! and the stores bit-identical to the pre-migration state for all
//! unflipped batches — the property test in the umbrella crate drives
//! random plans through random abort points to prove it.

use crate::plan::{MigrationPlan, TupleMove};
use schism_router::{FlipError, VersionedScheme};
use schism_store::{HealthMap, ShardId, ShardStore, StoreError, WriteOp};
use schism_workload::TupleId;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Executor tuning knobs.
#[derive(Clone, Debug, Default)]
pub struct ExecutorConfig {
    /// Copy re-attempts per batch after a failed verification (0 = a
    /// single verify failure aborts the migration).
    pub max_retries: u32,
    /// Fault injection for tests and chaos runs: on attempt `a` of batch
    /// `b`, every `(b, a)` listed here makes the copy write a corrupted
    /// payload for the batch's first copied row, which verification then
    /// catches.
    pub corrupt_copies: Vec<(usize, u32)>,
    /// Shard liveness shared with the serving layer. When set, copy and
    /// verify read their source row from the first **live** member of a
    /// move's copy set — a failed shard's store is still readable but
    /// stale (writes skip it from the moment it is marked down), and a
    /// catching-up shard is stale until its own copy verifies, so using
    /// either as a copy source would migrate pre-failure values and lose
    /// acknowledged writes.
    pub health: Option<Arc<HealthMap>>,
}

/// Why a migration stopped making progress.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The backend failed.
    Store(StoreError),
    /// A moved tuple has no **live** source shard left to read from (every
    /// authoritative copy is down or catching up). A row that is merely
    /// absent on a live source is not an error: the executor treats it as
    /// a tombstone (the key was deleted while in plan) and propagates the
    /// delete to the destination copies.
    MissingSource(TupleId),
    /// Copy verification kept failing after all retries.
    VerifyFailed { batch: usize, attempts: u32 },
    /// The routing layer rejected the batch acknowledgement.
    Flip(FlipError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Store(e) => write!(f, "store error: {e}"),
            ExecError::MissingSource(t) => write!(f, "no source copy for tuple {t}"),
            ExecError::VerifyFailed { batch, attempts } => {
                write!(f, "batch {batch} failed verification {attempts} time(s)")
            }
            ExecError::Flip(e) => write!(f, "flip rejected: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<StoreError> for ExecError {
    fn from(e: StoreError) -> Self {
        ExecError::Store(e)
    }
}

/// Lifecycle state of one batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchState {
    Planned,
    Copying,
    Verifying,
    Flipped,
    Aborted,
}

/// What one flipped batch actually did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchReport {
    /// Batch index in the plan (= flip sequence number).
    pub batch: usize,
    /// Tuples processed (including drop-only moves).
    pub tuples: usize,
    /// Row copies written to destination shards.
    pub rows_copied: u64,
    /// Payload bytes written, measured from the rows themselves (not the
    /// plan's estimate).
    pub bytes_copied: u64,
    /// Replica copies deleted after the flip.
    pub rows_dropped: u64,
    /// Copy re-attempts this batch needed before verification passed.
    pub retries: u32,
}

/// Result of one [`MigrationExecutor::step`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The next batch copied, verified, and flipped.
    Flipped(BatchReport),
    /// The executor is paused; nothing happened.
    Paused,
    /// No batches remain (all flipped, or the migration was aborted).
    Done,
    /// This batch could not be completed; its copies were rolled back and
    /// the migration stopped.
    Aborted { batch: usize, error: ExecError },
}

/// Totals across the executed prefix of the plan.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecutorReport {
    pub batches_flipped: usize,
    pub tuples_moved: usize,
    pub rows_copied: u64,
    pub bytes_copied: u64,
    pub rows_dropped: u64,
    pub retries: u32,
}

/// Executes a [`MigrationPlan`] against a [`ShardStore`], flipping routing
/// in a [`VersionedScheme`] one acknowledged batch at a time.
///
/// The executor is deliberately synchronous and single-stepped: callers
/// (the simulator loop, the bench bin, a future real server) own the
/// pacing, interleaving foreground work between steps and pausing,
/// resuming, or aborting at batch boundaries.
pub struct MigrationExecutor<'a> {
    plan: &'a MigrationPlan,
    store: &'a dyn ShardStore,
    scheme: &'a VersionedScheme,
    cfg: ExecutorConfig,
    states: Vec<BatchState>,
    next: usize,
    paused: bool,
    aborted: bool,
    reports: Vec<BatchReport>,
}

impl<'a> MigrationExecutor<'a> {
    /// Prepares to execute `plan`. The scheme must be at the start of its
    /// epoch (no batches flipped yet).
    pub fn new(
        plan: &'a MigrationPlan,
        store: &'a dyn ShardStore,
        scheme: &'a VersionedScheme,
        cfg: ExecutorConfig,
    ) -> Self {
        assert_eq!(
            scheme.flipped_batches(),
            0,
            "executor requires a fresh migration epoch"
        );
        Self {
            states: vec![BatchState::Planned; plan.batches.len()],
            plan,
            store,
            scheme,
            cfg,
            next: 0,
            paused: false,
            aborted: false,
            reports: Vec::new(),
        }
    }

    /// Lifecycle state of batch `i`.
    pub fn batch_state(&self, i: usize) -> BatchState {
        self.states[i]
    }

    /// Reports for the batches flipped so far, in order.
    pub fn batch_reports(&self) -> &[BatchReport] {
        &self.reports
    }

    /// `(flipped, total)` batch counts.
    pub fn progress(&self) -> (usize, usize) {
        (self.next, self.plan.batches.len())
    }

    /// Whether every batch has flipped.
    pub fn is_complete(&self) -> bool {
        !self.aborted && self.next == self.plan.batches.len()
    }

    /// Whether the migration was aborted (by [`abort`](Self::abort) or a
    /// failed batch).
    pub fn is_aborted(&self) -> bool {
        self.aborted
    }

    /// Stops issuing batches until [`resume`](Self::resume). In-flight
    /// state is untouched: pausing is only observable at batch boundaries.
    pub fn pause(&mut self) {
        self.paused = true;
    }

    pub fn resume(&mut self) {
        self.paused = false;
    }

    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Aborts the migration at the current batch boundary: all remaining
    /// batches are marked [`BatchState::Aborted`] and will never execute.
    /// Already-flipped batches stay flipped (the new placement owns them);
    /// unexecuted batches never touched the stores, so no rollback is
    /// needed here — mid-batch failures roll themselves back inside
    /// [`step`](Self::step).
    pub fn abort(&mut self) {
        self.aborted = true;
        for s in &mut self.states[self.next..] {
            *s = BatchState::Aborted;
        }
    }

    /// Aggregated totals over the executed prefix.
    pub fn report(&self) -> ExecutorReport {
        let mut r = ExecutorReport {
            batches_flipped: self.reports.len(),
            ..Default::default()
        };
        for b in &self.reports {
            r.tuples_moved += b.tuples;
            r.rows_copied += b.rows_copied;
            r.bytes_copied += b.bytes_copied;
            r.rows_dropped += b.rows_dropped;
            r.retries += b.retries;
        }
        r
    }

    /// Runs every remaining batch; stops early on pause or abort.
    pub fn run_to_completion(&mut self) -> StepOutcome {
        loop {
            match self.step() {
                StepOutcome::Flipped(_) => continue,
                other => return other,
            }
        }
    }

    /// Executes the next batch through copy → verify → flip.
    pub fn step(&mut self) -> StepOutcome {
        if self.aborted || self.next >= self.plan.batches.len() {
            return StepOutcome::Done;
        }
        if self.paused {
            return StepOutcome::Paused;
        }
        let i = self.next;
        match self.execute_batch(i) {
            Ok(report) => {
                self.states[i] = BatchState::Flipped;
                self.next += 1;
                self.reports.push(report.clone());
                StepOutcome::Flipped(report)
            }
            Err((error, flipped)) => {
                if flipped {
                    // The flip landed before the failure (post-flip drop
                    // cleanup): the new placement owns this batch, so it
                    // must count as flipped — rolling it back now would
                    // contradict the moved-set.
                    self.states[i] = BatchState::Flipped;
                    self.next = i + 1;
                } else {
                    // Pre-flip failure: execute_batch rolled the batch's
                    // copies back, so the stores match pre-batch state.
                    self.states[i] = BatchState::Aborted;
                }
                self.abort();
                StepOutcome::Aborted { batch: i, error }
            }
        }
    }

    /// The error flag reports whether the batch had already flipped when
    /// the failure happened (post-flip failures must not roll back).
    fn execute_batch(&mut self, i: usize) -> Result<BatchReport, (ExecError, bool)> {
        let moves = &self.plan.batches[i].moves;
        let mut retries = 0u32;
        let (rows_copied, bytes_copied) = loop {
            let attempt = retries;
            self.states[i] = BatchState::Copying;
            let copied = match self.copy_batch(i, attempt) {
                Ok(c) => c,
                Err(e) => return Err((self.rolled_back(i, e), false)),
            };
            self.states[i] = BatchState::Verifying;
            match self.verify_batch(moves) {
                Ok(true) => break copied,
                Ok(false) if attempt >= self.cfg.max_retries => {
                    let e = ExecError::VerifyFailed {
                        batch: i,
                        attempts: attempt + 1,
                    };
                    return Err((self.rolled_back(i, e), false));
                }
                Ok(false) => retries += 1,
                Err(e) => return Err((self.rolled_back(i, e), false)),
            }
        };
        // The acknowledgement: routing flips only now, and only in order.
        if let Err(e) = self
            .scheme
            .flip_batch(i as u64, moves.iter().map(|m| m.tuple))
        {
            return Err((self.rolled_back(i, ExecError::Flip(e)), false));
        }
        // Post-flip cleanup: shards losing a copy drop theirs. Routing
        // already points elsewhere, so this can never orphan a key.
        let mut rows_dropped = 0u64;
        for m in moves {
            for shard in m.copies_dropped().iter() {
                match self.store.delete(shard, m.tuple) {
                    Ok(true) => rows_dropped += 1,
                    Ok(false) => {}
                    Err(e) => return Err((ExecError::Store(e), true)),
                }
            }
        }
        Ok(BatchReport {
            batch: i,
            tuples: moves.len(),
            rows_copied,
            bytes_copied,
            rows_dropped,
            retries,
        })
    }

    /// Rolls batch `i`'s destination copies back and returns the error to
    /// report: `cause`, unless the rollback itself failed — a store that
    /// can no longer be written is the graver fault.
    fn rolled_back(&self, i: usize, cause: ExecError) -> ExecError {
        match self.rollback_batch(i) {
            Ok(()) => cause,
            Err(e) => e,
        }
    }

    /// The shard copy and verify read `m`'s row from: the first live
    /// member of the source copy set (every live authoritative copy holds
    /// every acknowledged write — see [`ExecutorConfig::health`]). Down
    /// *and* catching-up members are both excluded: a catching-up shard
    /// is stale until its own copy verifies.
    fn live_source(&self, m: &TupleMove) -> Result<ShardId, ExecError> {
        let from = match &self.cfg.health {
            Some(h) => m.from.difference(&h.not_live_set()),
            None => m.from,
        };
        from.first().ok_or(ExecError::MissingSource(m.tuple))
    }

    /// Copies every row of batch `i` to its gaining shards; one atomic
    /// write batch per destination shard. Returns `(rows, bytes)` written.
    fn copy_batch(&self, i: usize, attempt: u32) -> Result<(u64, u64), ExecError> {
        let moves = &self.plan.batches[i].moves;
        let corrupt = self.cfg.corrupt_copies.contains(&(i, attempt));
        let mut per_shard: HashMap<ShardId, Vec<WriteOp>> = HashMap::new();
        let mut rows = 0u64;
        let mut bytes = 0u64;
        let mut corrupted_one = false;
        for m in moves {
            let added = m.copies_added();
            if added.is_empty() {
                continue; // drop-only move: nothing to copy
            }
            let src = self.live_source(m)?;
            let Some(row) = self.store.get(src, m.tuple)? else {
                // Tombstone: the key was deleted (by a foreground DELETE)
                // after the plan was cut. Propagate the delete so a stale
                // copy from an earlier attempt can't survive, and let
                // verify pass on absent-everywhere.
                for shard in added.iter() {
                    per_shard
                        .entry(shard)
                        .or_default()
                        .push(WriteOp::Delete(m.tuple));
                }
                continue;
            };
            for shard in added.iter() {
                let mut payload = row.clone();
                if corrupt && !corrupted_one {
                    corrupted_one = true;
                    match payload.first_mut() {
                        Some(b) => *b = b.wrapping_add(1),
                        None => payload.push(0xff),
                    }
                }
                rows += 1;
                bytes += payload.len() as u64;
                per_shard
                    .entry(shard)
                    .or_default()
                    .push(WriteOp::Put(m.tuple, payload));
            }
        }
        for (shard, ops) in per_shard {
            self.store.apply_batch(shard, &ops)?;
        }
        Ok((rows, bytes))
    }

    /// Count + checksum verification: every destination shard must hold
    /// every copied row with the source's checksum — and for a tombstoned
    /// row (`want = None`, deleted while in plan) the destinations must be
    /// absent too.
    fn verify_batch(&self, moves: &[TupleMove]) -> Result<bool, ExecError> {
        for m in moves {
            let added = m.copies_added();
            if added.is_empty() {
                continue;
            }
            let src = self.live_source(m)?;
            let want = self.store.checksum(src, m.tuple)?;
            for shard in added.iter() {
                if self.store.checksum(shard, m.tuple)? != want {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Deletes whatever the in-flight batch copied to destination shards,
    /// restoring them to their pre-batch contents (a gaining shard never
    /// held the row before this batch — `copies_added = to \ from`).
    fn rollback_batch(&self, i: usize) -> Result<(), ExecError> {
        let mut per_shard: HashMap<ShardId, Vec<WriteOp>> = HashMap::new();
        for m in &self.plan.batches[i].moves {
            for shard in m.copies_added().iter() {
                per_shard
                    .entry(shard)
                    .or_default()
                    .push(WriteOp::Delete(m.tuple));
            }
        }
        for (shard, ops) in per_shard {
            self.store.apply_batch(shard, &ops)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{plan_migration, PlanConfig};
    use schism_router::{PartitionSet, Scheme};
    use schism_store::{load_assignment, MemStore};
    use schism_workload::MaterializedDb;
    use std::collections::HashMap as Map;
    use std::sync::Arc;

    fn asg(pairs: &[(u64, u32)]) -> Map<TupleId, PartitionSet> {
        pairs
            .iter()
            .map(|&(r, p)| (TupleId::new(0, r), PartitionSet::single(p)))
            .collect()
    }

    fn scheme_for(asg: &Map<TupleId, PartitionSet>, k: u32) -> Arc<dyn Scheme> {
        let entries: Vec<(u64, PartitionSet)> = asg.iter().map(|(t, &p)| (t.row, p)).collect();
        Arc::new(schism_router::LookupScheme::new(
            k,
            vec![Some(Box::new(schism_router::IndexBackend::new(entries))
                as Box<dyn schism_router::LookupBackend>)],
            vec![None],
            schism_router::MissPolicy::HashRow,
        ))
    }

    /// Store seeded from `old`, scheme pair over `old`/`new`, plan between
    /// them.
    fn fixture(
        old: &Map<TupleId, PartitionSet>,
        new: &Map<TupleId, PartitionSet>,
        k: u32,
        rows_per_batch: usize,
    ) -> (MemStore, VersionedScheme, MigrationPlan) {
        let db = MaterializedDb::new();
        let store = MemStore::new(k);
        load_assignment(&store, old, &db).unwrap();
        let vs = VersionedScheme::new(scheme_for(old, k), scheme_for(new, k));
        let plan = plan_migration(
            old,
            new,
            &db,
            &PlanConfig {
                max_rows_per_batch: rows_per_batch,
                ..Default::default()
            },
        );
        (store, vs, plan)
    }

    #[test]
    fn full_run_converges_store_and_routing() {
        let old = asg(&[(0, 0), (1, 0), (2, 1), (3, 1), (4, 2)]);
        let new = asg(&[(0, 1), (1, 0), (2, 2), (3, 0), (4, 2)]);
        let (store, vs, plan) = fixture(&old, &new, 3, 2);
        let db = MaterializedDb::new();
        let mut exec = MigrationExecutor::new(&plan, &store, &vs, ExecutorConfig::default());
        assert_eq!(exec.run_to_completion(), StepOutcome::Done);
        assert!(exec.is_complete());
        let report = exec.report();
        assert_eq!(report.batches_flipped, plan.batches.len());
        assert_eq!(report.tuples_moved, plan.total_moves);
        assert_eq!(
            report.bytes_copied, plan.total_bytes,
            "64B rows, 1 copy each"
        );
        assert_eq!(report.rows_dropped, report.rows_copied);
        // Store and routing agree: the row lives exactly where the scheme
        // says, and nowhere else.
        for (&t, pset) in &new {
            assert_eq!(vs.locate_tuple(t, &db), *pset);
            for shard in 0..3u32 {
                assert_eq!(
                    store.get(shard, t).unwrap().is_some(),
                    pset.contains(shard),
                    "tuple {t} on shard {shard}"
                );
            }
        }
        assert_eq!(store.total_rows(), new.len() as u64);
    }

    #[test]
    fn replication_grow_and_shrink_execute() {
        let mut old = Map::new();
        old.insert(TupleId::new(0, 0), PartitionSet::single(0));
        old.insert(
            TupleId::new(0, 1),
            [0u32, 1, 2].into_iter().collect::<PartitionSet>(),
        );
        let mut new = Map::new();
        new.insert(
            TupleId::new(0, 0),
            [0u32, 1].into_iter().collect::<PartitionSet>(),
        );
        new.insert(TupleId::new(0, 1), PartitionSet::single(2));
        let (store, vs, plan) = fixture(&old, &new, 3, 10);
        let mut exec = MigrationExecutor::new(&plan, &store, &vs, ExecutorConfig::default());
        assert!(matches!(exec.step(), StepOutcome::Flipped(_)));
        // Grow: copy on shard 1; shrink: only shard 2 keeps tuple 1.
        assert!(store.get(1, TupleId::new(0, 0)).unwrap().is_some());
        assert!(store.get(0, TupleId::new(0, 1)).unwrap().is_none());
        assert!(store.get(1, TupleId::new(0, 1)).unwrap().is_none());
        assert!(store.get(2, TupleId::new(0, 1)).unwrap().is_some());
    }

    #[test]
    fn pause_blocks_resume_continues() {
        let old = asg(&(0..6).map(|r| (r, 0)).collect::<Vec<_>>());
        let new = asg(&(0..6).map(|r| (r, 1)).collect::<Vec<_>>());
        let (store, vs, plan) = fixture(&old, &new, 2, 2);
        let mut exec = MigrationExecutor::new(&plan, &store, &vs, ExecutorConfig::default());
        assert!(matches!(exec.step(), StepOutcome::Flipped(_)));
        exec.pause();
        assert_eq!(exec.step(), StepOutcome::Paused);
        assert_eq!(exec.progress(), (1, 3));
        assert_eq!(vs.flipped_batches(), 1, "pause froze the moved-set");
        exec.resume();
        assert_eq!(exec.run_to_completion(), StepOutcome::Done);
        assert!(exec.is_complete());
    }

    #[test]
    fn transient_corruption_is_retried_and_healed() {
        let old = asg(&[(0, 0), (1, 0)]);
        let new = asg(&[(0, 1), (1, 1)]);
        let (store, vs, plan) = fixture(&old, &new, 2, 10);
        let cfg = ExecutorConfig {
            max_retries: 2,
            corrupt_copies: vec![(0, 0), (0, 1)], // first two attempts bad
            ..ExecutorConfig::default()
        };
        let mut exec = MigrationExecutor::new(&plan, &store, &vs, cfg);
        let report = match exec.step() {
            StepOutcome::Flipped(r) => r,
            other => panic!("expected flip after retries, got {other:?}"),
        };
        assert_eq!(report.retries, 2);
        assert!(exec.is_complete());
        // Healed: destination bytes equal the deterministic seed payload.
        let want = schism_store::seed_row(TupleId::new(0, 0), 64);
        assert_eq!(store.get(1, TupleId::new(0, 0)).unwrap(), Some(want));
    }

    #[test]
    fn persistent_corruption_aborts_with_rollback() {
        let old = asg(&[(0, 0), (1, 0), (2, 0), (3, 0)]);
        let new = asg(&[(0, 1), (1, 1), (2, 1), (3, 1)]);
        let (store, vs, plan) = fixture(&old, &new, 2, 2);
        let cfg = ExecutorConfig {
            max_retries: 1,
            corrupt_copies: vec![(1, 0), (1, 1)], // batch 1 never verifies
            ..ExecutorConfig::default()
        };
        let mut exec = MigrationExecutor::new(&plan, &store, &vs, cfg);
        assert!(matches!(exec.step(), StepOutcome::Flipped(_)));
        match exec.step() {
            StepOutcome::Aborted { batch, error } => {
                assert_eq!(batch, 1);
                assert_eq!(
                    error,
                    ExecError::VerifyFailed {
                        batch: 1,
                        attempts: 2
                    }
                );
            }
            other => panic!("expected abort, got {other:?}"),
        }
        assert!(exec.is_aborted());
        assert_eq!(exec.step(), StepOutcome::Done, "aborted executor is done");
        assert_eq!(vs.flipped_batches(), 1, "only the verified batch flipped");
        // Batch 0's tuples moved; batch 1's were rolled back to shard 0.
        let db = MaterializedDb::new();
        for m in plan.batches[0].moves.iter() {
            assert!(store.get(1, m.tuple).unwrap().is_some());
            assert!(store.get(0, m.tuple).unwrap().is_none());
            assert_eq!(vs.locate_tuple(m.tuple, &db), PartitionSet::single(1));
        }
        for m in plan.batches[1].moves.iter() {
            assert!(store.get(0, m.tuple).unwrap().is_some(), "source intact");
            assert!(store.get(1, m.tuple).unwrap().is_none(), "copy rolled back");
            assert_eq!(vs.locate_tuple(m.tuple, &db), PartitionSet::single(0));
        }
    }

    #[test]
    fn rejected_flip_rolls_copies_back() {
        let old = asg(&[(0, 0), (1, 0)]);
        let new = asg(&[(0, 1), (1, 1)]);
        let (store, vs, plan) = fixture(&old, &new, 2, 10);
        let mut exec = MigrationExecutor::new(&plan, &store, &vs, ExecutorConfig::default());
        // An out-of-band flip desynchronizes the sequence: the executor's
        // own flip of batch 0 is now rejected, and the already-copied rows
        // must be rolled back off the destination shards.
        vs.flip_batch(0, []).unwrap();
        match exec.step() {
            StepOutcome::Aborted { batch, error } => {
                assert_eq!(batch, 0);
                assert_eq!(
                    error,
                    ExecError::Flip(FlipError {
                        expected: 1,
                        got: 0
                    })
                );
            }
            other => panic!("expected abort, got {other:?}"),
        }
        for t in [TupleId::new(0, 0), TupleId::new(0, 1)] {
            assert!(store.get(0, t).unwrap().is_some(), "source intact");
            assert!(store.get(1, t).unwrap().is_none(), "copy rolled back");
        }
        assert_eq!(exec.batch_state(0), BatchState::Aborted);
    }

    #[test]
    fn vanished_source_row_tombstones_instead_of_aborting() {
        // Key (0,0) is deleted by a foreground DELETE after the plan was
        // cut; its live source set is intact, so the executor propagates
        // the tombstone and the migration completes — the mid-migration
        // in-plan DELETE no longer aborts.
        let old = asg(&[(0, 0), (1, 0)]);
        let new = asg(&[(0, 1), (1, 1)]);
        let (store, vs, plan) = fixture(&old, &new, 2, 10);
        store.delete(0, TupleId::new(0, 0)).unwrap();
        let mut exec = MigrationExecutor::new(&plan, &store, &vs, ExecutorConfig::default());
        assert!(matches!(exec.step(), StepOutcome::Flipped(_)));
        assert!(exec.is_complete());
        assert_eq!(vs.flipped_batches(), 1);
        // The deleted key exists nowhere; the surviving key moved whole.
        assert!(store.get(0, TupleId::new(0, 0)).unwrap().is_none());
        assert!(store.get(1, TupleId::new(0, 0)).unwrap().is_none());
        assert!(store.get(1, TupleId::new(0, 1)).unwrap().is_some());
        assert!(store.get(0, TupleId::new(0, 1)).unwrap().is_none());
        assert_eq!(exec.report().rows_copied, 1);

        // An entirely empty store degenerates to an all-tombstone
        // migration that still converges routing.
        let old = asg(&[(0, 0)]);
        let new = asg(&[(0, 1)]);
        let db = MaterializedDb::new();
        let empty = MemStore::new(2); // never loaded: every source row absent
        let vs2 = VersionedScheme::new(scheme_for(&old, 2), scheme_for(&new, 2));
        let plan2 = plan_migration(&old, &new, &db, &PlanConfig::default());
        let mut exec2 = MigrationExecutor::new(&plan2, &empty, &vs2, ExecutorConfig::default());
        assert!(matches!(exec2.step(), StepOutcome::Flipped(_)));
        assert_eq!(vs2.flipped_batches(), 1);
        assert_eq!(empty.total_rows(), 0);
    }

    #[test]
    fn copy_source_skips_down_shards() {
        use schism_store::{HealthMap, ShardStore};
        // Tuple 0 is replicated on {0, 1}; it moves to {1, 2}. Shard 0 —
        // the default copy source — holds a stale payload and is marked
        // down; the executor must copy shard 1's (fresh) bytes instead.
        let mut old = Map::new();
        old.insert(
            TupleId::new(0, 0),
            [0u32, 1].into_iter().collect::<PartitionSet>(),
        );
        let mut new = Map::new();
        new.insert(
            TupleId::new(0, 0),
            [1u32, 2].into_iter().collect::<PartitionSet>(),
        );
        let (store, vs, plan) = fixture(&old, &new, 3, 10);
        let stale = b"stale-pre-failure".to_vec();
        store.put(0, TupleId::new(0, 0), stale.clone()).unwrap();
        let fresh = store.get(1, TupleId::new(0, 0)).unwrap().unwrap();
        assert_ne!(fresh, stale);
        let health = Arc::new(HealthMap::new());
        health.mark_down(0);
        let mut exec = MigrationExecutor::new(
            &plan,
            &store,
            &vs,
            ExecutorConfig {
                health: Some(Arc::clone(&health)),
                ..ExecutorConfig::default()
            },
        );
        assert!(matches!(exec.step(), StepOutcome::Flipped(_)));
        assert_eq!(
            store.get(2, TupleId::new(0, 0)).unwrap(),
            Some(fresh),
            "destination must receive the live replica's bytes"
        );
        // All authoritative sources down: a clean MissingSource abort.
        let (store2, vs2, plan2) = fixture(&old, &new, 3, 10);
        let dead = Arc::new(HealthMap::new());
        dead.mark_down(0);
        dead.mark_down(1);
        let mut exec2 = MigrationExecutor::new(
            &plan2,
            &store2,
            &vs2,
            ExecutorConfig {
                health: Some(dead),
                ..ExecutorConfig::default()
            },
        );
        match exec2.step() {
            StepOutcome::Aborted { error, .. } => {
                assert_eq!(error, ExecError::MissingSource(TupleId::new(0, 0)));
            }
            other => panic!("expected abort, got {other:?}"),
        }
    }

    #[test]
    fn abort_at_boundary_freezes_remaining_batches() {
        let old = asg(&(0..9).map(|r| (r, 0)).collect::<Vec<_>>());
        let new = asg(&(0..9).map(|r| (r, 1)).collect::<Vec<_>>());
        let (store, vs, plan) = fixture(&old, &new, 2, 3);
        let mut exec = MigrationExecutor::new(&plan, &store, &vs, ExecutorConfig::default());
        assert!(matches!(exec.step(), StepOutcome::Flipped(_)));
        exec.abort();
        assert_eq!(exec.step(), StepOutcome::Done);
        assert_eq!(exec.batch_state(0), BatchState::Flipped);
        assert_eq!(exec.batch_state(1), BatchState::Aborted);
        assert_eq!(exec.batch_state(2), BatchState::Aborted);
        // Unexecuted batches never touched the store.
        for m in plan.batches[1].moves.iter().chain(&plan.batches[2].moves) {
            assert!(store.get(0, m.tuple).unwrap().is_some());
            assert!(store.get(1, m.tuple).unwrap().is_none());
        }
    }
}
