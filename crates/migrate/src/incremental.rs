//! Incremental vs. from-scratch repartitioning.
//!
//! [`rerun_incremental`] is the warm path: rebuild the workload graph from
//! the drifted trace, seed the partitioner with the previous per-tuple
//! placement ([`schism_core::Schism::rerun`]), then solve the relabeling
//! problem against the previous assignment so ids line up. Because
//! refinement only moves vertices for balance or cut gains, the resulting
//! diff — the data migration — stays small.
//!
//! [`rerun_scratch`] is the control: a cold multilevel partition of the
//! same graph, relabeled as favorably as possible. Even with optimal
//! relabeling a cold run re-decides every tuple, so its diff approaches the
//! random-permutation bound — the gap between the two is the entire point
//! of incremental repartitioning (SWORD makes the same argument for
//! hypergraph containers).
//!
//! Both paths honor `SchismConfig::threads` end to end: the per-window
//! graph rebuild (the streaming parallel `build_graph`) and the warm/cold
//! partition run on the same worker pool, so a rerun racing a drift window
//! uses every core without changing its output.

use crate::relabel::{apply_relabel, relabel, Relabeling};
use schism_core::{build_graph, run_partition_phase, Schism};
use schism_router::{evaluate, PartitionSet};
use schism_workload::{Trace, TupleId, Workload};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// A repartitioning outcome with ids aligned to the previous assignment.
#[derive(Clone, Debug)]
pub struct RepartitionOutcome {
    /// The relabeled new placement.
    pub assignment: HashMap<TupleId, PartitionSet>,
    /// How the new partition ids were matched onto the old ones.
    pub relabeling: Relabeling,
    /// Edge cut of the underlying graph partitioning.
    pub edge_cut: u64,
    /// Load imbalance (1.0 = perfect).
    pub imbalance: f64,
    /// Wall-clock for graph build + partitioning + relabeling.
    pub wall_time: Duration,
}

impl RepartitionOutcome {
    /// Fraction of common tuples whose primary partition moved.
    pub fn moved_fraction(&self) -> f64 {
        self.relabeling.moved_fraction()
    }
}

/// Warm-started re-partition of `train`, aligned to `prev`.
pub fn rerun_incremental(
    schism: &Schism,
    workload: &Workload,
    train: &Trace,
    prev: &HashMap<TupleId, PartitionSet>,
) -> RepartitionOutcome {
    let t0 = Instant::now();
    let outcome = schism.rerun(workload, train, prev);
    finish(
        outcome.phase.assignment,
        prev,
        schism.cfg.k,
        outcome.phase.edge_cut,
        outcome.phase.imbalance,
        t0,
    )
}

/// From-scratch re-partition of `train`, aligned to `prev` (baseline).
pub fn rerun_scratch(
    schism: &Schism,
    workload: &Workload,
    train: &Trace,
    prev: &HashMap<TupleId, PartitionSet>,
) -> RepartitionOutcome {
    let t0 = Instant::now();
    let wg = build_graph(workload, train, &schism.cfg);
    let phase = run_partition_phase(&wg, &schism.cfg);
    finish(
        phase.assignment,
        prev,
        schism.cfg.k,
        phase.edge_cut,
        phase.imbalance,
        t0,
    )
}

fn finish(
    mut assignment: HashMap<TupleId, PartitionSet>,
    prev: &HashMap<TupleId, PartitionSet>,
    k: u32,
    edge_cut: u64,
    imbalance: f64,
    t0: Instant,
) -> RepartitionOutcome {
    let relabeling = relabel(prev, &assignment, k);
    apply_relabel(&mut assignment, &relabeling.mapping);
    RepartitionOutcome {
        assignment,
        relabeling,
        edge_cut,
        imbalance,
        wall_time: t0.elapsed(),
    }
}

/// Distributed-transaction fraction of a placement on a trace, evaluated
/// through the fine-grained lookup scheme it induces.
pub fn distributed_fraction(
    workload: &Workload,
    train: &Trace,
    eval: &Trace,
    assignment: &HashMap<TupleId, PartitionSet>,
    k: u32,
) -> f64 {
    let scheme = schism_core::build_lookup_scheme(workload, train, assignment, k);
    evaluate(&scheme, eval, &*workload.db).distributed_fraction()
}

#[cfg(test)]
mod tests {
    use super::*;
    use schism_core::SchismConfig;
    use schism_workload::drifting::{self, DriftingConfig};

    fn cfg(k: u32, seed: u64) -> SchismConfig {
        let mut c = SchismConfig::new(k);
        c.seed = seed;
        c
    }

    #[test]
    fn incremental_rerun_on_identical_trace_moves_almost_nothing() {
        let dcfg = DriftingConfig {
            num_txns: 2_000,
            ..Default::default()
        };
        let w = drifting::window(&dcfg, 0);
        let schism = Schism::new(cfg(4, 7));
        let wg = build_graph(&w, &w.trace, &schism.cfg);
        let prev = run_partition_phase(&wg, &schism.cfg).assignment;
        let out = rerun_incremental(&schism, &w, &w.trace, &prev);
        assert!(
            out.moved_fraction() < 0.05,
            "no drift should mean (almost) no movement, got {}",
            out.moved_fraction()
        );
    }

    #[test]
    fn incremental_beats_scratch_on_drifted_trace() {
        let dcfg = DriftingConfig {
            num_txns: 3_000,
            ..Default::default()
        };
        let w0 = drifting::window(&dcfg, 0);
        let w1 = drifting::window(&dcfg, 1);
        let schism = Schism::new(cfg(4, 3));
        let wg = build_graph(&w0, &w0.trace, &schism.cfg);
        let prev = run_partition_phase(&wg, &schism.cfg).assignment;

        let inc = rerun_incremental(&schism, &w1, &w1.trace, &prev);
        // Different seed so the cold run explores a different landscape, as
        // a periodic re-run in production would.
        let scratch = rerun_scratch(&Schism::new(cfg(4, 99)), &w1, &w1.trace, &prev);

        // The headline acceptance criterion: the warm path moves less than
        // half the data of a from-scratch repartition…
        assert!(
            (inc.relabeling.moved as f64) < 0.5 * scratch.relabeling.moved as f64,
            "incremental moved {} vs scratch {}",
            inc.relabeling.moved,
            scratch.relabeling.moved,
        );
        // …while the partitioning quality it serves stays within 10% of
        // what the cold run would deliver (distributed-txn fraction on a
        // held-out slice of the drifted window).
        let (train, test) = w1.trace.split(0.8, 17);
        let f_inc = distributed_fraction(&w1, &train, &test, &inc.assignment, 4);
        let f_scr = distributed_fraction(&w1, &train, &test, &scratch.assignment, 4);
        assert!(
            f_inc <= f_scr + 0.10,
            "incremental dist fraction {f_inc:.4} strays from scratch {f_scr:.4}"
        );
    }
}
