//! Windowed drift detection over workload traces.
//!
//! The detector keeps a *reference* access histogram — the distribution the
//! current partitioning was computed from — and compares each incoming
//! window's histogram against it with a distribution distance. When the
//! distance crosses the configured threshold the workload has drifted
//! enough that the placement is stale and a (warm) re-partition pays off.
//!
//! Two distances are offered:
//!
//! - **Total variation**: `0.5 * Σ |p_i - q_i|` — the fraction of access
//!   mass that sits on the "wrong" tuples; directly interpretable as "x% of
//!   traffic moved".
//! - **Jensen–Shannon divergence** (base-2, so in `[0, 1]`): smoother under
//!   sampling noise and symmetric, the usual choice for drift monitors.
//!
//! Histograms are per-tuple. At production scale callers would coarsen to
//! key ranges first; the windowed API only assumes the histogram keys are
//! comparable across windows.

use schism_workload::{Trace, TraceSource, TupleId};
use std::collections::HashMap;

/// Distribution distance used by the detector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistanceMetric {
    TotalVariation,
    JensenShannon,
}

/// Detector configuration.
#[derive(Clone, Debug)]
pub struct DriftConfig {
    pub metric: DistanceMetric,
    /// Distance above which a window counts as drifted.
    pub threshold: f64,
    /// Windows with fewer transactions than this never trigger (too noisy).
    pub min_transactions: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            metric: DistanceMetric::JensenShannon,
            threshold: 0.15,
            min_transactions: 100,
        }
    }
}

/// A normalized access histogram of one trace window.
#[derive(Clone, Debug, Default)]
pub struct AccessHistogram {
    counts: HashMap<TupleId, u64>,
    total: u64,
}

impl AccessHistogram {
    /// Counts every access (point reads, scan members, writes).
    pub fn from_trace(trace: &Trace) -> Self {
        Self::from_source(trace)
    }

    /// Counts every access of a window streamed from any [`TraceSource`]
    /// — no materialized `Trace` needed.
    pub fn from_source<S>(source: &S) -> Self
    where
        S: TraceSource + ?Sized,
    {
        let mut h = Self::default();
        h.observe_source(source);
        h
    }

    /// Records one access. The histogram is a running count: callers can
    /// feed accesses as they arrive instead of batching a window first.
    pub fn observe(&mut self, t: TupleId) {
        *self.counts.entry(t).or_insert(0) += 1;
        self.total += 1;
    }

    /// Feeds every access of a streamed window into the running counts.
    pub fn observe_source<S>(&mut self, source: &S)
    where
        S: TraceSource + ?Sized,
    {
        source.for_chunk(0..source.len(), &mut |_, txn| {
            for t in txn.accessed() {
                self.observe(t);
            }
        });
    }

    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    pub fn distinct_tuples(&self) -> usize {
        self.counts.len()
    }

    /// Probability mass of `t` in this window.
    pub fn mass(&self, t: TupleId) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            *self.counts.get(&t).unwrap_or(&0) as f64 / self.total as f64
        }
    }

    /// Distance between two windows' access distributions.
    pub fn distance(&self, other: &Self, metric: DistanceMetric) -> f64 {
        if self.total == 0 || other.total == 0 {
            // An empty window carries no evidence either way.
            return 0.0;
        }
        match metric {
            DistanceMetric::TotalVariation => {
                let mut sum = 0.0f64;
                for (&t, &c) in &self.counts {
                    let p = c as f64 / self.total as f64;
                    let q = other.mass(t);
                    sum += (p - q).abs();
                }
                // Keys only in `other`.
                for (&t, &c) in &other.counts {
                    if !self.counts.contains_key(&t) {
                        sum += c as f64 / other.total as f64;
                    }
                }
                0.5 * sum
            }
            DistanceMetric::JensenShannon => {
                let mut js = 0.0f64;
                let kl_term = |p: f64, m: f64| if p > 0.0 { p * (p / m).log2() } else { 0.0 };
                for (&t, &c) in &self.counts {
                    let p = c as f64 / self.total as f64;
                    let q = other.mass(t);
                    let m = 0.5 * (p + q);
                    js += 0.5 * kl_term(p, m);
                }
                for (&t, &c) in &other.counts {
                    let q = c as f64 / other.total as f64;
                    let p = self.mass(t);
                    let m = 0.5 * (p + q);
                    js += 0.5 * kl_term(q, m);
                }
                js.clamp(0.0, 1.0)
            }
        }
    }
}

/// What the detector said about one window.
#[derive(Clone, Copy, Debug)]
pub struct DriftReport {
    /// Distance from the reference distribution.
    pub distance: f64,
    /// Whether the threshold was crossed (and the window was big enough).
    pub drifted: bool,
    /// Transactions in the observed window.
    pub window_txns: usize,
}

/// Windowed drift detector: reference histogram + threshold trigger.
pub struct DriftDetector {
    cfg: DriftConfig,
    reference: AccessHistogram,
}

impl DriftDetector {
    /// `reference` is the trace the current placement was computed from.
    pub fn new(cfg: DriftConfig, reference: &Trace) -> Self {
        Self {
            cfg,
            reference: AccessHistogram::from_trace(reference),
        }
    }

    /// Scores one window against the reference.
    pub fn observe(&self, window: &Trace) -> DriftReport {
        let hist = AccessHistogram::from_trace(window);
        let distance = hist.distance(&self.reference, self.cfg.metric);
        DriftReport {
            distance,
            drifted: window.len() >= self.cfg.min_transactions && distance > self.cfg.threshold,
            window_txns: window.len(),
        }
    }

    /// Resets the reference after a repartition: future windows are judged
    /// against the distribution the *new* placement was computed from.
    pub fn rebase(&mut self, trace: &Trace) {
        self.reference = AccessHistogram::from_trace(trace);
    }

    pub fn config(&self) -> &DriftConfig {
        &self.cfg
    }
}

/// Chops a trace into back-to-back windows of `window_txns` transactions
/// (the last window keeps the remainder if it is at least half-full,
/// otherwise it is merged into the previous one).
pub fn split_windows(trace: &Trace, window_txns: usize) -> Vec<Trace> {
    assert!(window_txns > 0);
    let mut out: Vec<Trace> = Vec::new();
    let mut cur = Vec::with_capacity(window_txns);
    for t in &trace.transactions {
        cur.push(t.clone());
        if cur.len() == window_txns {
            out.push(Trace {
                transactions: std::mem::take(&mut cur),
            });
        }
    }
    if !cur.is_empty() {
        if cur.len() * 2 >= window_txns || out.is_empty() {
            out.push(Trace { transactions: cur });
        } else if let Some(last) = out.last_mut() {
            last.transactions.extend(cur);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use schism_workload::drifting::{self, DriftingConfig};
    use schism_workload::TxnBuilder;

    fn point_trace(rows: &[u64]) -> Trace {
        Trace {
            transactions: rows
                .iter()
                .map(|&r| {
                    let mut b = TxnBuilder::new(false);
                    b.read(TupleId::new(0, r));
                    b.finish()
                })
                .collect(),
        }
    }

    #[test]
    fn identical_windows_have_zero_distance() {
        let t = point_trace(&[1, 2, 3, 1, 1, 5]);
        let h = AccessHistogram::from_trace(&t);
        for m in [
            DistanceMetric::TotalVariation,
            DistanceMetric::JensenShannon,
        ] {
            assert!(h.distance(&h, m).abs() < 1e-12);
        }
    }

    #[test]
    fn disjoint_windows_have_maximal_distance() {
        let a = AccessHistogram::from_trace(&point_trace(&[1, 2, 3]));
        let b = AccessHistogram::from_trace(&point_trace(&[10, 11, 12]));
        assert!((a.distance(&b, DistanceMetric::TotalVariation) - 1.0).abs() < 1e-12);
        assert!((a.distance(&b, DistanceMetric::JensenShannon) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = AccessHistogram::from_trace(&point_trace(&[1, 1, 2, 3]));
        let b = AccessHistogram::from_trace(&point_trace(&[2, 3, 3, 4, 5]));
        for m in [
            DistanceMetric::TotalVariation,
            DistanceMetric::JensenShannon,
        ] {
            assert!((a.distance(&b, m) - b.distance(&a, m)).abs() < 1e-12);
        }
    }

    #[test]
    fn detector_fires_on_real_drift_not_on_noise() {
        let cfg = DriftingConfig::default();
        let w0 = drifting::window(&cfg, 0);
        let detector = DriftDetector::new(DriftConfig::default(), &w0.trace);
        // A fresh sample of the same distribution: below threshold.
        let same = drifting::generate(&DriftingConfig {
            seed: 1234,
            ..cfg.clone()
        });
        let quiet = detector.observe(&same.trace);
        assert!(!quiet.drifted, "noise misread as drift: {}", quiet.distance);
        // A rotated hot spot: above threshold.
        let moved = drifting::window(&cfg, 3);
        let loud = detector.observe(&moved.trace);
        assert!(loud.drifted, "drift missed: {}", loud.distance);
        assert!(loud.distance > quiet.distance);
    }

    #[test]
    fn small_windows_never_trigger() {
        let detector = DriftDetector::new(
            DriftConfig {
                min_transactions: 100,
                ..Default::default()
            },
            &point_trace(&[1, 2, 3]),
        );
        let r = detector.observe(&point_trace(&[50, 51, 52]));
        assert!(r.distance > 0.9, "disjoint windows are far apart");
        assert!(!r.drifted, "3-txn window is below min_transactions");
    }

    #[test]
    fn rebase_resets_reference() {
        let mut d = DriftDetector::new(
            DriftConfig {
                min_transactions: 1,
                ..Default::default()
            },
            &point_trace(&[1, 2, 3]),
        );
        let far = point_trace(&[7, 8, 9]);
        assert!(d.observe(&far).drifted);
        d.rebase(&far);
        assert!(!d.observe(&far).drifted);
    }

    #[test]
    fn split_windows_covers_trace() {
        let t = point_trace(&(0..25).collect::<Vec<_>>());
        let ws = split_windows(&t, 10);
        assert_eq!(ws.len(), 3, "10 + 10 + 5 (remainder >= half keeps its own)");
        assert_eq!(ws.iter().map(Trace::len).sum::<usize>(), 25);
        let tiny = split_windows(&point_trace(&(0..23).collect::<Vec<_>>()), 10);
        assert_eq!(tiny.len(), 2, "3-txn remainder merges into the last window");
        assert_eq!(tiny[1].len(), 13);
    }
}
