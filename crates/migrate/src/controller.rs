//! The continuous loop: watch windows, detect drift, repartition warm,
//! relabel, and emit a migration plan.
//!
//! [`MigrationController`] owns the pieces the rest of the crate provides —
//! a drift monitor rebased on every repartition (the exact
//! [`DriftDetector`], or the fixed-memory [`SketchDriftDetector`] when
//! [`SchismConfig::sketch_drift`] is set), the current per-tuple
//! placement, and the planner budgets — and exposes a single
//! [`observe`](MigrationController::observe) entry point per window. The
//! caller executes the returned plan at its own pace: build a
//! [`MigrationExecutor`] via [`MigrationOutcome::executor`] over the live
//! [`schism_store::ShardStore`] and a [`schism_router::VersionedScheme`],
//! then [`step`](MigrationExecutor::step) it between foreground work.
//! Routing flips only on each batch's verified-copy acknowledgement, so
//! traffic keeps being served correctly for the whole migration.

use crate::drift::{DriftConfig, DriftDetector, DriftReport};
use crate::executor::{ExecutorConfig, MigrationExecutor};
use crate::incremental::{rerun_incremental, RepartitionOutcome};
use crate::plan::{plan_migration, MigrationPlan, PlanConfig};
use crate::sketch::{SketchConfig, SketchDriftDetector};
use schism_core::{build_graph, run_partition_phase, Schism, SchismConfig};
use schism_router::{PartitionSet, VersionedScheme};
use schism_store::ShardStore;
use schism_workload::{Trace, TupleId, Workload};
use std::collections::HashMap;

/// Everything the controller needs to run the loop.
#[derive(Clone, Debug)]
pub struct ControllerConfig {
    pub schism: SchismConfig,
    pub drift: DriftConfig,
    /// Sketch sizing, used only when
    /// [`SchismConfig::sketch_drift`](schism_core::SchismConfig) is set —
    /// the controller then monitors windows through a fixed-memory
    /// [`SketchDriftDetector`] instead of exact per-tuple histograms, so
    /// drift detection stops scaling with the hot-set size.
    pub sketch: SketchConfig,
    pub plan: PlanConfig,
    /// Defaults for executors built via [`MigrationOutcome::executor`].
    pub executor: ExecutorConfig,
}

impl ControllerConfig {
    pub fn new(k: u32) -> Self {
        Self {
            schism: SchismConfig::new(k),
            drift: DriftConfig::default(),
            sketch: SketchConfig::default(),
            plan: PlanConfig::default(),
            executor: ExecutorConfig::default(),
        }
    }
}

/// The drift monitor behind the controller: exact per-tuple histograms by
/// default, count-min sketches behind [`SchismConfig::sketch_drift`]. Both
/// expose the same observe/rebase surface, so the loop below is oblivious
/// to which one is running.
enum Detector {
    Exact(DriftDetector),
    Sketch(SketchDriftDetector),
}

impl Detector {
    fn new(cfg: &ControllerConfig, reference: &Trace) -> Self {
        if cfg.schism.sketch_drift {
            Detector::Sketch(SketchDriftDetector::new(
                cfg.drift.clone(),
                cfg.sketch,
                reference,
            ))
        } else {
            Detector::Exact(DriftDetector::new(cfg.drift.clone(), reference))
        }
    }

    fn observe(&self, window: &Trace) -> DriftReport {
        match self {
            Detector::Exact(d) => d.observe(window),
            Detector::Sketch(d) => d.observe(window),
        }
    }

    fn rebase(&mut self, reference: &Trace) {
        match self {
            Detector::Exact(d) => d.rebase(reference),
            Detector::Sketch(d) => d.rebase(reference),
        }
    }
}

/// What one observed window produced.
// One `Tick` exists per observed window and is consumed immediately, so
// the size gap between the variants never multiplies across a collection.
#[allow(clippy::large_enum_variant)]
pub enum Tick {
    /// No repartition: the window matches the reference distribution (or
    /// is too small to trust).
    Stable(DriftReport),
    /// Drift crossed the threshold: a warm repartition ran and this is the
    /// resulting (possibly empty) migration.
    Migrate(MigrationOutcome),
}

/// A triggered repartition: the drift evidence, the warm re-run, and the
/// batched plan from the old placement to the new one.
pub struct MigrationOutcome {
    pub report: DriftReport,
    pub repartition: RepartitionOutcome,
    pub plan: MigrationPlan,
    /// Executor defaults inherited from the controller's config.
    pub executor_cfg: ExecutorConfig,
    /// Copy-stream pacing ([`PlanConfig::inject_every`]) inherited from the
    /// controller's plan config: callers injecting this outcome's plan into
    /// live traffic (e.g. [`schism_sim::MigrationSource::batched`]) should
    /// pass it through rather than hardcode a rate.
    pub inject_every: u32,
}

impl MigrationOutcome {
    /// Builds the executor for this outcome's plan: `store` holds the
    /// physical shards, `scheme` is the fresh old→new epoch whose moved-set
    /// the executor will advance batch by batch.
    pub fn executor<'a>(
        &'a self,
        store: &'a dyn ShardStore,
        scheme: &'a VersionedScheme,
    ) -> MigrationExecutor<'a> {
        MigrationExecutor::new(&self.plan, store, scheme, self.executor_cfg.clone())
    }
}

/// Drift-detect → warm repartition → relabel → plan, with state carried
/// across windows.
pub struct MigrationController {
    cfg: ControllerConfig,
    detector: Detector,
    assignment: HashMap<TupleId, PartitionSet>,
}

impl MigrationController {
    /// Bootstraps from an initial workload: one cold partition of its
    /// trace becomes the reference placement and drift baseline.
    pub fn bootstrap(workload: &Workload, cfg: ControllerConfig) -> Self {
        let wg = build_graph(workload, &workload.trace, &cfg.schism);
        let phase = run_partition_phase(&wg, &cfg.schism);
        let detector = Detector::new(&cfg, &workload.trace);
        Self {
            cfg,
            detector,
            assignment: phase.assignment,
        }
    }

    /// Adopts an existing placement (e.g. from a previous
    /// [`schism_core::Recommendation`]) instead of bootstrapping cold.
    pub fn with_assignment(
        reference: &Workload,
        assignment: HashMap<TupleId, PartitionSet>,
        cfg: ControllerConfig,
    ) -> Self {
        let detector = Detector::new(&cfg, &reference.trace);
        Self {
            cfg,
            detector,
            assignment,
        }
    }

    /// The current authoritative placement.
    pub fn assignment(&self) -> &HashMap<TupleId, PartitionSet> {
        &self.assignment
    }

    /// Feeds one window (a [`Workload`] whose trace is the window).
    ///
    /// On drift: runs the warm repartition, swaps the controller's
    /// placement to the relabeled result, rebases the drift reference, and
    /// returns the move plan. The caller owns plan execution; the
    /// controller's state already reflects the post-migration world.
    pub fn observe(&mut self, window: &Workload) -> Tick {
        let report = self.detector.observe(&window.trace);
        if !report.drifted {
            return Tick::Stable(report);
        }
        let schism = Schism::new(self.cfg.schism.clone());
        let repartition = rerun_incremental(&schism, window, &window.trace, &self.assignment);
        let plan = plan_migration(
            &self.assignment,
            &repartition.assignment,
            &*window.db,
            &self.cfg.plan,
        );
        self.assignment = repartition.assignment.clone();
        self.detector.rebase(&window.trace);
        Tick::Migrate(MigrationOutcome {
            report,
            repartition,
            plan,
            executor_cfg: self.cfg.executor.clone(),
            inject_every: self.cfg.plan.inject_every,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::DistanceMetric;
    use schism_workload::drifting::{self, DriftingConfig};

    fn controller_cfg(k: u32) -> ControllerConfig {
        let mut cfg = ControllerConfig::new(k);
        cfg.drift = DriftConfig {
            metric: DistanceMetric::JensenShannon,
            threshold: 0.15,
            min_transactions: 100,
        };
        cfg
    }

    #[test]
    fn stable_windows_do_not_migrate() {
        let dcfg = DriftingConfig {
            num_txns: 2_000,
            ..Default::default()
        };
        let w0 = drifting::window(&dcfg, 0);
        let mut ctl = MigrationController::bootstrap(&w0, controller_cfg(4));
        let before = ctl.assignment().clone();
        // A fresh sample of the same window distribution.
        let same = drifting::generate(&DriftingConfig { seed: 777, ..dcfg });
        match ctl.observe(&same) {
            Tick::Stable(r) => assert!(!r.drifted),
            Tick::Migrate(m) => panic!("spurious migration, distance {}", m.report.distance),
        }
        assert_eq!(ctl.assignment().len(), before.len(), "state untouched");
    }

    #[test]
    fn sketch_detector_matches_exact_loop() {
        // The same windows through a sketch-backed controller: stable stays
        // stable, drift still triggers, and rebase still takes.
        let dcfg = DriftingConfig {
            num_txns: 2_000,
            ..Default::default()
        };
        let w0 = drifting::window(&dcfg, 0);
        let mut cfg = controller_cfg(4);
        cfg.schism.sketch_drift = true;
        let mut ctl = MigrationController::bootstrap(&w0, cfg);
        let same = drifting::generate(&DriftingConfig { seed: 777, ..dcfg });
        match ctl.observe(&same) {
            Tick::Stable(r) => assert!(!r.drifted),
            Tick::Migrate(m) => panic!("spurious migration, distance {}", m.report.distance),
        }
        let w3 = drifting::window(&dcfg, 3);
        let outcome = match ctl.observe(&w3) {
            Tick::Migrate(m) => m,
            Tick::Stable(r) => panic!("sketch missed drift, distance {}", r.distance),
        };
        assert!(outcome.report.drifted);
        match ctl.observe(&w3) {
            Tick::Stable(r) => assert!(!r.drifted, "rebase failed: {}", r.distance),
            Tick::Migrate(_) => panic!("same window migrated twice"),
        }
    }

    #[test]
    fn drifted_window_triggers_plan_and_rebase() {
        let dcfg = DriftingConfig {
            num_txns: 2_000,
            ..Default::default()
        };
        let w0 = drifting::window(&dcfg, 0);
        let mut ctl = MigrationController::bootstrap(&w0, controller_cfg(4));
        let w3 = drifting::window(&dcfg, 3);
        let outcome = match ctl.observe(&w3) {
            Tick::Migrate(m) => m,
            Tick::Stable(r) => panic!("drift missed, distance {}", r.distance),
        };
        assert!(outcome.report.drifted);
        // The plan diffs old vs relabeled-new placements exactly.
        let moved_by_plan = outcome.plan.total_moves;
        assert!(moved_by_plan > 0, "a rotated hotspot must move something");
        // Controller adopted the new placement…
        assert_eq!(ctl.assignment().len(), outcome.repartition.assignment.len());
        // …and rebased: replaying the same window is now stable.
        match ctl.observe(&w3) {
            Tick::Stable(r) => assert!(!r.drifted, "rebase failed: {}", r.distance),
            Tick::Migrate(_) => panic!("same window migrated twice"),
        }
    }
}
