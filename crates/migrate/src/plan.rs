//! Migration planning: diff two placements into a throttled, batched move
//! plan.
//!
//! A [`TupleMove`] records one tuple's copy-set transition `from → to`;
//! partitions in `to \ from` receive a copy, partitions in `from \ to` drop
//! theirs once the move commits. Moves are packed into [`MigrationBatch`]es
//! under per-batch row *and* byte budgets — the executor's throttle unit:
//! one batch is what a live system copies, then marks moved in the
//! [`schism_router::VersionedScheme`], before yielding to foreground
//! traffic ([`MigrationPlan::sim_txns`] turns the same plan into simulator
//! transactions so the tax shows up in simulated throughput).
//!
//! Only tuples present in **both** assignments generate moves: a tuple seen
//! for the first time has no authoritative copy to relocate (the lookup
//! scheme's miss policy places it), and a tuple that vanished from the
//! trace keeps its old home until a later plan touches it.

use schism_router::PartitionSet;
use schism_sim::{SimOp, SimTxn};
use schism_workload::{TupleId, TupleValues};
use std::collections::HashMap;

/// One tuple's placement change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TupleMove {
    pub tuple: TupleId,
    /// Copy set before the migration.
    pub from: PartitionSet,
    /// Copy set after the migration.
    pub to: PartitionSet,
}

impl TupleMove {
    /// Partitions that must receive a copy.
    pub fn copies_added(&self) -> PartitionSet {
        self.to.difference(&self.from)
    }

    /// Partitions that drop their copy after commit.
    pub fn copies_dropped(&self) -> PartitionSet {
        self.from.difference(&self.to)
    }
}

/// Throttle budgets for one batch, plus the injection-rate QoS knob for
/// executing the plan against live traffic.
#[derive(Clone, Copy, Debug)]
pub struct PlanConfig {
    /// Maximum tuples per batch.
    pub max_rows_per_batch: usize,
    /// Maximum payload bytes per batch (a tuple's bytes count once per
    /// receiving partition).
    pub max_bytes_per_batch: u64,
    /// Copy-stream pacing when the plan runs alongside foreground traffic:
    /// one migration move is issued per `inject_every` foreground
    /// transactions (`1` alternates move/foreground; larger values tax the
    /// cluster less but stretch the migration). This is the knob
    /// [`schism_sim::MigrationSource`] previously hardcoded; surfacing it
    /// here is the first step of the adaptive-QoS roadmap item — a future
    /// controller can raise it when simulated p99 degrades. Must be `>= 1`.
    pub inject_every: u32,
}

impl Default for PlanConfig {
    fn default() -> Self {
        Self {
            max_rows_per_batch: 1_000,
            max_bytes_per_batch: 16 << 20,
            inject_every: 1,
        }
    }
}

impl PlanConfig {
    /// Sizes batch budgets from a **calibrated** cost model so that every
    /// planned batch's predicted duration stays at or under `target_us` —
    /// the feedback edge of the calibration loop (`live_migration
    /// --calibrate` fits the model from measured batches; this maps it
    /// back onto the planner's throttle).
    ///
    /// `avg_row_bytes` converts between the two budgets: the row budget
    /// assumes rows of that payload, the byte budget is the row budget's
    /// payload equivalent, so whichever budget trips first the prediction
    /// holds. Degenerate models (zero marginal cost, or a fixed cost at or
    /// above the target) fall back to a 1-row budget rather than an
    /// unbounded one.
    pub fn for_target_batch_duration(
        model: &schism_sim::MigrationCostModel,
        target_us: f64,
        avg_row_bytes: u32,
    ) -> Self {
        let budget_us = (target_us - model.batch_fixed_us).max(0.0);
        let per_row_us = model.row_us + model.byte_us * f64::from(avg_row_bytes);
        let max_rows = if per_row_us > 0.0 {
            (budget_us / per_row_us).floor() as usize
        } else {
            0
        }
        .max(1);
        let max_bytes = (max_rows as u64 * u64::from(avg_row_bytes)).max(1);
        Self {
            max_rows_per_batch: max_rows,
            max_bytes_per_batch: max_bytes,
            ..Self::default()
        }
    }
}

/// One throttle unit of work.
#[derive(Clone, Debug, Default)]
pub struct MigrationBatch {
    pub moves: Vec<TupleMove>,
    /// Payload bytes this batch copies.
    pub bytes: u64,
}

/// The full, ordered move plan between two placements.
#[derive(Clone, Debug, Default)]
pub struct MigrationPlan {
    pub batches: Vec<MigrationBatch>,
    pub total_moves: usize,
    pub total_bytes: u64,
}

impl MigrationPlan {
    pub fn is_empty(&self) -> bool {
        self.total_moves == 0
    }

    /// All moves in plan order.
    pub fn moves(&self) -> impl Iterator<Item = &TupleMove> + '_ {
        self.batches.iter().flat_map(|b| b.moves.iter())
    }

    /// Renders the plan as simulator transactions: each move reads the
    /// tuple on its current primary and writes it on every partition that
    /// gains a copy — a distributed transaction whenever the two differ,
    /// which is precisely the migration's 2PC tax on the cluster.
    pub fn sim_txns(&self) -> Vec<SimTxn> {
        self.batches
            .iter()
            .flat_map(|b| txns_for(&b.moves))
            .collect()
    }

    /// The same rendering, preserving batch boundaries: element `i` holds
    /// batch `i`'s copy transactions (possibly empty for drop-only
    /// batches). This is the shape [`schism_sim::MigrationSource::batched`]
    /// takes, so the simulator's injection gates on exactly the batches the
    /// executor acknowledges.
    pub fn sim_txn_batches(&self) -> Vec<Vec<SimTxn>> {
        self.batches.iter().map(|b| txns_for(&b.moves)).collect()
    }
}

/// Copy transactions for one batch's moves (drop-only moves render to
/// nothing: no bytes cross the wire).
///
/// Ops are emitted in ascending server order — the same per-key order
/// foreground replica writes use ([`SimTxn::from_transaction`] fans a
/// write out over `pset.iter()`, which ascends) — so a copy and a
/// foreground write to the same tuple can never acquire its per-server
/// locks in opposite orders. Emitting the source read first looks natural
/// but deadlocks: a copy holding `S key@3` waiting on `X key@1` while a
/// replica write holds `X key@1` waiting on `key@3` is a cycle the
/// simulator can only break by lock timeout, and it re-forms on exactly
/// the hot tuples a drifted plan moves.
fn txns_for(moves: &[TupleMove]) -> Vec<SimTxn> {
    moves
        .iter()
        .filter_map(|m| {
            let added = m.copies_added();
            if added.is_empty() {
                return None;
            }
            let src = m.from.first()?;
            let key = (m.tuple.table, m.tuple.row);
            let mut ops: Vec<SimOp> = added
                .iter()
                .map(|dst| SimOp {
                    server: dst,
                    key,
                    write: true,
                })
                .collect();
            ops.push(SimOp {
                server: src,
                key,
                write: false,
            });
            ops.sort_unstable_by_key(|o| o.server);
            Some(SimTxn { ops })
        })
        .collect()
}

/// Diffs `old` against `new` and packs the changed tuples into batches.
///
/// Deterministic: moves are emitted in `TupleId` order regardless of map
/// iteration order, so the same pair of assignments always yields the same
/// plan (and the same simulated traffic).
pub fn plan_migration(
    old: &HashMap<TupleId, PartitionSet>,
    new: &HashMap<TupleId, PartitionSet>,
    db: &dyn TupleValues,
    cfg: &PlanConfig,
) -> MigrationPlan {
    assert!(cfg.max_rows_per_batch >= 1);
    assert!(cfg.max_bytes_per_batch >= 1);
    assert!(cfg.inject_every >= 1, "inject_every must be >= 1");
    let mut moves: Vec<TupleMove> = new
        .iter()
        .filter_map(|(&t, &to)| {
            let &from = old.get(&t)?;
            (from != to).then_some(TupleMove { tuple: t, from, to })
        })
        .collect();
    moves.sort_unstable_by_key(|m| m.tuple);

    let mut plan = MigrationPlan::default();
    let mut batch = MigrationBatch::default();
    for m in moves {
        // Payload is copy bandwidth only: a drop-only move (replication
        // shrink) transfers no bytes, matching the traffic `sim_txns`
        // renders; it still occupies a row slot in its batch because the
        // executor must process (and mark) it.
        let payload = u64::from(db.tuple_bytes(m.tuple.table)) * u64::from(m.copies_added().len());
        let would_overflow = !batch.moves.is_empty()
            && (batch.moves.len() >= cfg.max_rows_per_batch
                || batch.bytes + payload > cfg.max_bytes_per_batch);
        if would_overflow {
            plan.batches.push(std::mem::take(&mut batch));
        }
        batch.bytes += payload;
        plan.total_bytes += payload;
        batch.moves.push(m);
        plan.total_moves += 1;
    }
    if !batch.moves.is_empty() {
        plan.batches.push(batch);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use schism_workload::MaterializedDb;

    fn asg(pairs: &[(u64, u32)]) -> HashMap<TupleId, PartitionSet> {
        pairs
            .iter()
            .map(|&(r, p)| (TupleId::new(0, r), PartitionSet::single(p)))
            .collect()
    }

    #[test]
    fn diff_only_changed_tuples_in_order() {
        let old = asg(&[(0, 0), (1, 0), (2, 1), (3, 1)]);
        let new = asg(&[(0, 0), (1, 1), (2, 0), (3, 1), (9, 0)]);
        let plan = plan_migration(&old, &new, &MaterializedDb::new(), &PlanConfig::default());
        let rows: Vec<u64> = plan.moves().map(|m| m.tuple.row).collect();
        assert_eq!(rows, vec![1, 2], "only changed & common tuples, sorted");
        assert_eq!(plan.total_moves, 2);
    }

    #[test]
    fn batches_respect_row_budget() {
        let old = asg(&(0..25).map(|r| (r, 0)).collect::<Vec<_>>());
        let new = asg(&(0..25).map(|r| (r, 1)).collect::<Vec<_>>());
        let cfg = PlanConfig {
            max_rows_per_batch: 10,
            ..Default::default()
        };
        let plan = plan_migration(&old, &new, &MaterializedDb::new(), &cfg);
        let sizes: Vec<usize> = plan.batches.iter().map(|b| b.moves.len()).collect();
        assert_eq!(sizes, vec![10, 10, 5]);
        assert_eq!(plan.total_moves, 25);
    }

    #[test]
    fn batches_respect_byte_budget() {
        let mut db = MaterializedDb::new();
        let t = db.add_table(1);
        db.set_tuple_bytes(t, 100);
        let old = asg(&(0..10).map(|r| (r, 0)).collect::<Vec<_>>());
        let new = asg(&(0..10).map(|r| (r, 1)).collect::<Vec<_>>());
        let cfg = PlanConfig {
            max_rows_per_batch: 1_000,
            max_bytes_per_batch: 250,
            ..Default::default()
        };
        let plan = plan_migration(&old, &new, &db, &cfg);
        for b in &plan.batches {
            assert!(b.bytes <= 250, "batch bytes {}", b.bytes);
        }
        assert_eq!(plan.total_bytes, 1_000);
        assert_eq!(plan.batches.len(), 5);
    }

    #[test]
    fn replication_changes_count_copy_bytes() {
        let old = asg(&[(0, 0)]);
        let mut new = HashMap::new();
        new.insert(
            TupleId::new(0, 0),
            [0u32, 1, 2].into_iter().collect::<PartitionSet>(),
        );
        let plan = plan_migration(&old, &new, &MaterializedDb::new(), &PlanConfig::default());
        assert_eq!(plan.total_moves, 1);
        let m = plan.moves().next().unwrap();
        assert_eq!(m.copies_added().iter().collect::<Vec<_>>(), vec![1, 2]);
        assert!(m.copies_dropped().is_empty());
        assert_eq!(plan.total_bytes, 2 * 64, "64 default bytes x 2 new copies");
    }

    #[test]
    fn drop_only_moves_carry_no_payload() {
        // Replication shrink {0,1} -> {0}: a move (the replica must be
        // dropped and the tuple marked) but zero copy bytes, so it never
        // trips the byte throttle.
        let mut old = HashMap::new();
        old.insert(
            TupleId::new(0, 0),
            [0u32, 1].into_iter().collect::<PartitionSet>(),
        );
        let new = asg(&[(0, 0)]);
        let cfg = PlanConfig {
            max_bytes_per_batch: 1,
            ..Default::default()
        };
        let plan = plan_migration(&old, &new, &MaterializedDb::new(), &cfg);
        assert_eq!(plan.total_moves, 1);
        assert_eq!(plan.total_bytes, 0);
        assert_eq!(plan.batches.len(), 1);
        let m = plan.moves().next().unwrap();
        assert!(m.copies_added().is_empty());
        assert_eq!(m.copies_dropped().iter().collect::<Vec<_>>(), vec![1]);
        assert!(plan.sim_txns().is_empty(), "no copy traffic for drops");
    }

    #[test]
    fn sim_txns_are_cross_server_copies() {
        let old = asg(&[(0, 0), (1, 1)]);
        let new = asg(&[(0, 2), (1, 1)]);
        let plan = plan_migration(&old, &new, &MaterializedDb::new(), &PlanConfig::default());
        let txns = plan.sim_txns();
        assert_eq!(txns.len(), 1);
        assert_eq!(
            txns[0].ops,
            vec![
                SimOp {
                    server: 0,
                    key: (0, 0),
                    write: false
                },
                SimOp {
                    server: 2,
                    key: (0, 0),
                    write: true
                },
            ]
        );
        assert!(txns[0].is_distributed());
    }

    #[test]
    fn sim_txn_batches_align_with_plan_batches() {
        let old = asg(&(0..5).map(|r| (r, 0)).collect::<Vec<_>>());
        let new = asg(&(0..5).map(|r| (r, 1)).collect::<Vec<_>>());
        let cfg = PlanConfig {
            max_rows_per_batch: 2,
            ..Default::default()
        };
        let plan = plan_migration(&old, &new, &MaterializedDb::new(), &cfg);
        let batched = plan.sim_txn_batches();
        assert_eq!(batched.len(), plan.batches.len());
        for (b, txns) in plan.batches.iter().zip(&batched) {
            assert_eq!(b.moves.len(), txns.len());
        }
        let flat: Vec<SimTxn> = batched.into_iter().flatten().collect();
        assert_eq!(flat.len(), plan.sim_txns().len());
    }

    #[test]
    fn target_duration_budgets_bound_predicted_batch_time() {
        use schism_sim::MigrationCostModel;
        let model = MigrationCostModel {
            batch_fixed_us: 1_000.0,
            row_us: 5.0,
            byte_us: 0.125, // 64 B rows → 5 + 8 = 13 us/row
        };
        let cfg = PlanConfig::for_target_batch_duration(&model, 14_000.0, 64);
        assert_eq!(cfg.max_rows_per_batch, 1_000); // (14000-1000)/13
        assert_eq!(cfg.max_bytes_per_batch, 64_000);
        // Plan under those budgets: every batch's prediction ≤ target.
        let old = asg(&(0..2_500).map(|r| (r, 0)).collect::<Vec<_>>());
        let new = asg(&(0..2_500).map(|r| (r, 1)).collect::<Vec<_>>());
        let plan = plan_migration(&old, &new, &MaterializedDb::new(), &cfg);
        assert!(plan.batches.len() >= 3);
        for b in &plan.batches {
            let pred = model.predict_batch_us(b.moves.len() as u64, b.bytes);
            assert!(pred <= 14_000.0 + 1e-6, "batch predicted {pred} us");
        }
        // Degenerate models clamp instead of exploding.
        let flat = MigrationCostModel {
            batch_fixed_us: 50_000.0,
            row_us: 0.0,
            byte_us: 0.0,
        };
        let cfg = PlanConfig::for_target_batch_duration(&flat, 14_000.0, 64);
        assert_eq!(cfg.max_rows_per_batch, 1);
    }

    #[test]
    fn empty_diff_empty_plan() {
        let a = asg(&[(0, 0)]);
        let plan = plan_migration(&a, &a, &MaterializedDb::new(), &PlanConfig::default());
        assert!(plan.is_empty());
        assert!(plan.batches.is_empty());
        assert!(plan.sim_txns().is_empty());
    }
}
