//! Shard rejoin: catch-up copies that stream a recovering shard back to
//! the live leaders' state, plus the re-replication scanner that finds
//! groups running below their replication factor.
//!
//! A shard that crashed and was revived re-enters as
//! [`CatchingUp`](schism_store::HealthState::CatchingUp): it receives
//! every *new* foreground write from the moment its worker respawns, but
//! everything written while it was down is missing, and anything it held
//! at the moment of the crash may be stale. The catch-up path closes that
//! gap by reusing the migration machinery wholesale:
//!
//! 1. [`catch_up_plan`] walks the key universe and emits one
//!    [`TupleMove`] per tuple the recovering shard should hold, with
//!    `from` = the other members of its copy set and `to` = `from ∪ {S}`
//!    — so `copies_added() = {S}` and nothing is ever dropped;
//! 2. [`run_catch_up`] executes that plan with a [`MigrationExecutor`]
//!    over a **throwaway** [`VersionedScheme`] whose old and new epochs
//!    are the same scheme: the copy → verify → flip lifecycle runs
//!    unchanged (including retry-on-mismatch, which is what heals races
//!    with concurrent foreground writes), while the flip is a routing
//!    no-op and `copies_dropped()` is empty everywhere;
//! 3. on completion the shard is flipped
//!    [`Live`](schism_store::HealthState::Live) via
//!    [`HealthMap::mark_live`] — only then does it serve reads and count
//!    toward write quorums again.
//!
//! Because the executor's copy source is always a **live** member (see
//! [`ExecutorConfig::health`]) and verification compares checksums
//! against that live source, every key the rejoining shard ends up with
//! — including any stale pre-crash residue, which the copy overwrites,
//! and any key deleted while it was down, which the tombstone pass-through
//! removes — matches the leader's current state before the shard goes
//! Live.
//!
//! [`scan_under_replicated`] is the standing repair loop's detector: it
//! reports, per non-live shard, how many tuples currently route a copy at
//! it, i.e. how many keys are one failure away from losing redundancy.

use crate::executor::{ExecError, ExecutorConfig, MigrationExecutor, StepOutcome};
use crate::plan::{MigrationBatch, MigrationPlan, PlanConfig, TupleMove};
use schism_router::{PartitionSet, Scheme, VersionedScheme};
use schism_store::{HealthMap, ShardId, ShardStore};
use schism_workload::{TupleId, TupleValues};
use std::sync::Arc;

/// What one completed catch-up did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CatchUpReport {
    /// Tuples the recovering shard is a member for (moves planned).
    pub tuples: usize,
    /// Rows actually copied onto the shard (tuples minus tombstones).
    pub rows_copied: u64,
    /// Payload bytes copied, measured from the rows themselves.
    pub bytes_copied: u64,
    /// Copy re-attempts needed before verification passed — non-zero under
    /// concurrent foreground writes, and that is expected, not an error.
    pub retries: u32,
}

/// One under-replicated membership: a shard that is not
/// [`Live`](schism_store::HealthState::Live) while `stale_tuples` keys
/// still route a copy at it — each of those keys is running one replica
/// short until the shard rejoins (or a future plan moves the copy away).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnderReplicated {
    pub shard: ShardId,
    pub stale_tuples: usize,
}

/// Builds the rejoin plan for `shard`: one move per candidate tuple whose
/// copy set (under `scheme`) contains `shard`, copying from the set's
/// *other* members onto `shard` alone. Tuples whose only copy lives on
/// `shard` itself are skipped — there is no surviving source to catch up
/// from, and the shard's own store is the best (only) copy there is.
///
/// `candidates` must cover the key universe the server routes (e.g. every
/// pk of every loaded table); keys that do not map to `shard` cost one
/// routing probe each and produce no move.
pub fn catch_up_plan(
    scheme: &dyn Scheme,
    db: &dyn TupleValues,
    candidates: impl IntoIterator<Item = TupleId>,
    shard: ShardId,
    cfg: &PlanConfig,
) -> MigrationPlan {
    assert!(cfg.max_rows_per_batch >= 1);
    assert!(cfg.max_bytes_per_batch >= 1);
    let only = PartitionSet::single(shard);
    let mut plan = MigrationPlan::default();
    let mut batch = MigrationBatch::default();
    for t in candidates {
        let copies = scheme.locate_tuple(t, db);
        if !copies.contains(shard) {
            continue;
        }
        let from = copies.difference(&only);
        if from.is_empty() {
            continue; // sole owner: nothing to catch up from
        }
        let payload = u64::from(db.tuple_bytes(t.table));
        if !batch.moves.is_empty()
            && (batch.moves.len() >= cfg.max_rows_per_batch
                || batch.bytes + payload > cfg.max_bytes_per_batch)
        {
            plan.batches.push(std::mem::take(&mut batch));
        }
        batch.moves.push(TupleMove {
            tuple: t,
            from,
            to: copies,
        });
        batch.bytes += payload;
        plan.total_moves += 1;
        plan.total_bytes += payload;
    }
    if !batch.moves.is_empty() {
        plan.batches.push(batch);
    }
    plan
}

/// Streams `shard` up to the live members' state and flips it Live.
///
/// The shard must already be
/// [`CatchingUp`](schism_store::HealthState::CatchingUp) (its worker
/// respawned and receiving foreground writes — `Server::revive_shard` in
/// `schism-serve` does both); this runs the [`catch_up_plan`] through a
/// [`MigrationExecutor`] with `health` as the copy-source filter, and on
/// success calls [`HealthMap::mark_live`]. On abort (every source of some
/// tuple is gone, or verification kept failing) the shard is **left**
/// catching up: it keeps absorbing writes and the caller may retry.
///
/// `max_retries` bounds per-batch re-copies; under live traffic a handful
/// of retries is normal (a foreground write between copy and verify makes
/// the checksums disagree once), so callers should pass a generous bound.
#[allow(clippy::too_many_arguments)]
pub fn run_catch_up(
    shard: ShardId,
    scheme: &Arc<dyn Scheme>,
    db: &dyn TupleValues,
    candidates: impl IntoIterator<Item = TupleId>,
    store: &dyn ShardStore,
    health: &Arc<HealthMap>,
    cfg: &PlanConfig,
    max_retries: u32,
) -> Result<CatchUpReport, ExecError> {
    assert_eq!(
        health.state(shard),
        schism_store::HealthState::CatchingUp,
        "catch-up requires the shard to be revived into CatchingUp first"
    );
    let plan = catch_up_plan(&**scheme, db, candidates, shard, cfg);
    // Same scheme on both sides: flips are routing no-ops, so the
    // executor's lifecycle runs untouched without ever moving a route.
    let vs = VersionedScheme::new(Arc::clone(scheme), Arc::clone(scheme));
    let mut exec = MigrationExecutor::new(
        &plan,
        store,
        &vs,
        ExecutorConfig {
            max_retries,
            health: Some(Arc::clone(health)),
            ..ExecutorConfig::default()
        },
    );
    loop {
        match exec.step() {
            StepOutcome::Flipped(_) => {}
            StepOutcome::Done => break,
            StepOutcome::Aborted { error, .. } => return Err(error),
            StepOutcome::Paused => unreachable!("catch-up executor is never paused"),
        }
    }
    let r = exec.report();
    health.mark_live(shard);
    Ok(CatchUpReport {
        tuples: plan.total_moves,
        rows_copied: r.rows_copied,
        bytes_copied: r.bytes_copied,
        retries: r.retries,
    })
}

/// The re-replication detector: for every shard that is currently Down or
/// CatchingUp, counts the candidate tuples whose copy set still routes a
/// copy at it. A non-empty result means some replica groups are running
/// under their replication factor; the repair loop's response is to
/// revive the shard and [`run_catch_up`] (counts for a shard already
/// catching up show the copy still in flight). Shards holding no
/// candidate tuples are omitted — their death cost no redundancy.
pub fn scan_under_replicated(
    scheme: &dyn Scheme,
    db: &dyn TupleValues,
    candidates: impl IntoIterator<Item = TupleId>,
    health: &HealthMap,
) -> Vec<UnderReplicated> {
    let not_live = health.not_live_set();
    if not_live.is_empty() {
        return Vec::new();
    }
    let mut counts: Vec<usize> = Vec::new();
    for t in candidates {
        for shard in scheme.locate_tuple(t, db).intersect(&not_live).iter() {
            if counts.len() <= shard as usize {
                counts.resize(shard as usize + 1, 0);
            }
            counts[shard as usize] += 1;
        }
    }
    counts
        .iter()
        .enumerate()
        .filter(|&(_, &n)| n > 0)
        .map(|(s, &n)| UnderReplicated {
            shard: s as u32,
            stale_tuples: n,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use schism_router::{HashScheme, ReplicatedScheme};
    use schism_store::MemStore;
    use schism_workload::MaterializedDb;

    const K: u32 = 4;
    const RF: u32 = 3;
    const N_KEYS: u64 = 48;

    fn keys() -> impl Iterator<Item = TupleId> {
        (0..N_KEYS).map(|r| TupleId::new(0, r))
    }

    fn rf3() -> Arc<dyn Scheme> {
        Arc::new(ReplicatedScheme::new(
            RF,
            Arc::new(HashScheme::by_attrs(K, vec![Some(0)])),
        ))
    }

    /// A store loaded per the scheme's placement, with every shard holding
    /// exactly the rows it routes.
    fn loaded(scheme: &Arc<dyn Scheme>, db: &MaterializedDb) -> MemStore {
        let store = MemStore::new(K);
        for t in keys() {
            for shard in scheme.locate_tuple(t, db).iter() {
                store
                    .put(shard, t, format!("row-{}", t.row).into_bytes())
                    .unwrap();
            }
        }
        store
    }

    #[test]
    fn plan_targets_only_the_rejoining_shard() {
        let scheme = rf3();
        let db = MaterializedDb::new();
        let plan = catch_up_plan(&*scheme, &db, keys(), 2, &PlanConfig::default());
        assert!(!plan.is_empty(), "hash spreads some keys onto shard 2");
        for m in plan.moves() {
            assert_eq!(m.copies_added(), PartitionSet::single(2));
            assert!(m.copies_dropped().is_empty(), "catch-up never drops");
            assert!(!m.from.contains(2));
            assert_eq!(m.from.len(), RF - 1);
        }
        let member_count = keys()
            .filter(|&t| scheme.locate_tuple(t, &db).contains(2))
            .count();
        assert_eq!(plan.total_moves, member_count);
    }

    #[test]
    fn catch_up_heals_a_wiped_shard_and_flips_it_live() {
        let scheme = rf3();
        let db = MaterializedDb::new();
        let store = loaded(&scheme, &db);
        let health = Arc::new(HealthMap::new());
        // Shard 2 crashes losing everything, then is revived empty.
        health.mark_down(2);
        store.wipe_shard(2).unwrap();
        // A key it held is deleted while it is down: catch-up must NOT
        // resurrect it (tombstone pass-through), and a key it held gets
        // overwritten: catch-up must copy the fresh bytes.
        let gone = keys()
            .find(|&t| scheme.locate_tuple(t, &db).contains(2))
            .unwrap();
        for shard in scheme.locate_tuple(gone, &db).iter() {
            store.delete(shard, gone).unwrap();
        }
        assert!(health.begin_catch_up(2));
        let report = run_catch_up(
            2,
            &scheme,
            &db,
            keys(),
            &store,
            &health,
            &PlanConfig::default(),
            4,
        )
        .unwrap();
        assert_eq!(health.state(2), schism_store::HealthState::Live);
        assert_eq!(health.rejoins(), 1);
        assert_eq!(
            report.rows_copied,
            report.tuples as u64 - 1,
            "one tombstone"
        );
        // Every key shard 2 routes is back, byte-identical to the leader.
        for t in keys() {
            let copies = scheme.locate_tuple(t, &db);
            if !copies.contains(2) {
                continue;
            }
            let src = copies.difference(&PartitionSet::single(2)).first().unwrap();
            assert_eq!(store.get(2, t).unwrap(), store.get(src, t).unwrap());
        }
        assert!(store.get(2, gone).unwrap().is_none(), "tombstone honored");
    }

    #[test]
    fn catch_up_aborts_when_every_source_is_down() {
        let scheme = rf3();
        let db = MaterializedDb::new();
        let store = loaded(&scheme, &db);
        let health = Arc::new(HealthMap::new());
        // Take down an entire replica group's other members: shard 2's
        // keys led by 0 have copies on {0, 1, 2}; kill 0 and 1 too.
        for s in [0, 1, 2] {
            health.mark_down(s);
        }
        assert!(health.begin_catch_up(2));
        let err = run_catch_up(
            2,
            &scheme,
            &db,
            keys(),
            &store,
            &health,
            &PlanConfig::default(),
            4,
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::MissingSource(_)));
        assert_eq!(
            health.state(2),
            schism_store::HealthState::CatchingUp,
            "a failed catch-up leaves the shard catching up for retry"
        );
    }

    #[test]
    fn scanner_counts_stale_memberships_per_dead_shard() {
        let scheme = rf3();
        let db = MaterializedDb::new();
        let health = HealthMap::new();
        assert!(scan_under_replicated(&*scheme, &db, keys(), &health).is_empty());
        health.mark_down(1);
        health.mark_down(3);
        health.begin_catch_up(3);
        let report = scan_under_replicated(&*scheme, &db, keys(), &health);
        assert_eq!(report.len(), 2, "both non-live shards hold memberships");
        for u in &report {
            let expect = keys()
                .filter(|&t| scheme.locate_tuple(t, &db).contains(u.shard))
                .count();
            assert_eq!(u.stale_tuples, expect);
            assert!(u.stale_tuples > 0);
        }
        assert!(report.windows(2).all(|w| w[0].shard < w[1].shard));
    }
}
