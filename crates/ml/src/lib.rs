//! # schism-ml
//!
//! The machine-learning substrate the Schism paper obtains from Weka \[9\]:
//! a C4.5-style decision tree (Weka's J48), rule extraction, stratified
//! cross-validation, and correlation-based feature selection (CFS).
//!
//! The explanation phase of Schism (§4.3, §5.2) trains a decision tree that
//! maps tuple attribute values to partition labels, prunes it aggressively,
//! validates it with cross-validation, and reads the leaves back as range
//! predicates:
//!
//! ```
//! use schism_ml::{DatasetBuilder, DecisionTree, TreeConfig, extract_rules};
//!
//! let mut b = DatasetBuilder::new().numeric("s_i_id").numeric("s_w_id");
//! for i in 0..50 {
//!     b.row(&[i, 1], 0); // warehouse 1 -> partition 0
//!     b.row(&[i, 2], 1); // warehouse 2 -> partition 1
//! }
//! let ds = b.build();
//! let tree = DecisionTree::train(&ds, &TreeConfig::default());
//! let rules = extract_rules(&tree, &ds);
//! assert_eq!(rules.len(), 2); // "s_w_id <= 1 -> 0", "s_w_id >= 2 -> 1"
//! ```

pub mod cfs;
pub mod crossval;
pub mod dataset;
pub mod discretize;
pub mod entropy;
pub mod prune;
pub mod rules;
pub mod tree;

pub use cfs::{cfs_select, CfsResult};
pub use crossval::{cross_validate, stratified_folds, CvResult};
pub use dataset::{AttrKind, Attribute, Dataset, DatasetBuilder};
pub use rules::{extract_rules, Cond, Rule};
pub use tree::{DecisionTree, Node, NodeStats, TreeConfig};
