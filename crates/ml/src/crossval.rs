//! Stratified k-fold cross-validation.
//!
//! The explanation phase uses cross-validation "to avoid over-fitting"
//! (§4.3): an explanation whose cross-validated accuracy is far below its
//! training accuracy memorized the training tuples instead of finding a
//! generalizable predicate.

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Splits row indices into `k` folds, stratified so each fold has roughly
/// the same class mix (shuffle within class, deal round-robin).
pub fn stratified_folds(labels: &[u32], k: usize, seed: u64) -> Vec<Vec<u32>> {
    assert!(k >= 2, "need at least 2 folds");
    let mut rng = StdRng::seed_from_u64(seed);
    let num_classes = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut per_class: Vec<Vec<u32>> = vec![Vec::new(); num_classes];
    for (i, &l) in labels.iter().enumerate() {
        per_class[l as usize].push(i as u32);
    }
    let mut folds: Vec<Vec<u32>> = vec![Vec::new(); k];
    let mut next = 0usize;
    for class_rows in &mut per_class {
        class_rows.shuffle(&mut rng);
        for &r in class_rows.iter() {
            folds[next].push(r);
            next = (next + 1) % k;
        }
    }
    folds
}

/// Result of [`cross_validate`].
#[derive(Clone, Copy, Debug)]
pub struct CvResult {
    /// Mean held-out accuracy across folds.
    pub accuracy: f64,
    /// Accuracy of a tree trained on all data, evaluated on the same data
    /// (the optimistic number the paper prints as 1 - pred.error).
    pub training_accuracy: f64,
}

/// k-fold cross-validation of a decision tree configuration.
pub fn cross_validate(ds: &Dataset, cfg: &TreeConfig, k: usize, seed: u64) -> CvResult {
    let all: Vec<u32> = (0..ds.len() as u32).collect();
    let full = DecisionTree::train(ds, cfg);
    let training_accuracy = full.accuracy_on(ds, &all);
    if ds.len() < k {
        // Too few rows to cross-validate; report training accuracy only.
        return CvResult {
            accuracy: training_accuracy,
            training_accuracy,
        };
    }
    let folds = stratified_folds(ds.labels(), k, seed);
    let mut acc_sum = 0.0;
    let mut folds_used = 0usize;
    for held in 0..k {
        if folds[held].is_empty() {
            continue;
        }
        let train_rows: Vec<u32> = folds
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != held)
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        let tree = DecisionTree::train_on(ds, train_rows, cfg);
        acc_sum += tree.accuracy_on(ds, &folds[held]);
        folds_used += 1;
    }
    CvResult {
        accuracy: if folds_used == 0 {
            training_accuracy
        } else {
            acc_sum / folds_used as f64
        },
        training_accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    #[test]
    fn folds_are_stratified_and_disjoint() {
        let labels: Vec<u32> = (0..100).map(|i| u32::from(i % 4 == 0)).collect(); // 25/75
        let folds = stratified_folds(&labels, 5, 7);
        assert_eq!(folds.len(), 5);
        let mut seen = std::collections::HashSet::new();
        for f in &folds {
            assert_eq!(f.len(), 20);
            let minority = f.iter().filter(|&&r| labels[r as usize] == 1).count();
            assert_eq!(minority, 5, "fold lost stratification");
            for &r in f {
                assert!(seen.insert(r), "row {r} appears twice");
            }
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn learnable_concept_scores_high() {
        let mut b = DatasetBuilder::new().numeric("x").numeric("noise");
        for i in 0..200i64 {
            b.row(&[i, (i * 7919) % 13], u32::from(i >= 100));
        }
        let ds = b.build();
        let cv = cross_validate(&ds, &TreeConfig::default(), 5, 1);
        assert!(cv.accuracy > 0.95, "cv accuracy {}", cv.accuracy);
        assert!(cv.training_accuracy >= cv.accuracy - 1e-9);
    }

    #[test]
    fn random_labels_score_low() {
        // Labels decorrelated from the attribute: cv accuracy ~ chance (0.5),
        // flagging an overfit explanation. splitmix64-style mixing avoids
        // the learnable run structure a plain LCG would leave behind.
        fn mix(i: i64) -> u64 {
            let mut h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 31;
            h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h ^= h >> 27;
            h
        }
        let mut b = DatasetBuilder::new().numeric("x");
        for i in 0..200i64 {
            b.row(&[i], (mix(i) & 1) as u32);
        }
        let ds = b.build();
        // Unlimited depth so the unpruned tree can fully memorize the noise
        // (random labels degenerate into deep peel-off chains).
        let cfg = TreeConfig {
            prune_cf: 1.0,
            min_leaf: 1,
            min_split: 2,
            max_depth: 1024,
        };
        let cv = cross_validate(&ds, &cfg, 5, 2);
        assert!(
            cv.accuracy < 0.7,
            "random labels should not generalize: {}",
            cv.accuracy
        );
        assert!(
            cv.training_accuracy > 0.9,
            "unpruned tree should memorize training data: {}",
            cv.training_accuracy
        );
    }

    #[test]
    fn tiny_dataset_falls_back() {
        let mut b = DatasetBuilder::new().numeric("x");
        b.row(&[1], 0);
        b.row(&[2], 1);
        let ds = b.build();
        let cv = cross_validate(&ds, &TreeConfig::default(), 10, 3);
        assert!(cv.accuracy >= 0.0 && cv.accuracy <= 1.0);
    }
}
