//! C4.5-style decision tree (the algorithm behind Weka's J48, which Schism
//! uses for its explanation phase, §5.2).
//!
//! - numeric attributes: binary splits `value <= threshold`
//! - categorical attributes: multiway splits on the category code
//! - split criterion: gain ratio
//! - stopping: purity, `min_split`, `min_leaf`, `max_depth`
//! - pruning: pessimistic error-based subtree replacement (see
//!   [`crate::prune`]), controlled by a confidence factor

use crate::dataset::{AttrKind, Dataset};
use crate::entropy::{gain_ratio, info_gain};

/// Training knobs. Defaults mirror C4.5/J48 defaults; Schism cranks
/// `min_leaf` up ("aggressive pruning ... to eliminate rules with little
/// support", §4.3).
#[derive(Clone, Debug)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum rows on each side of a numeric split / in a leaf.
    pub min_leaf: u32,
    /// Minimum rows required to attempt any split.
    pub min_split: u32,
    /// Confidence factor for pessimistic pruning (C4.5 default 0.25);
    /// smaller prunes harder. `>= 1.0` disables pruning.
    pub prune_cf: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 30,
            min_leaf: 2,
            min_split: 4,
            prune_cf: 0.25,
        }
    }
}

/// Per-node training statistics, kept for pruning and rule support.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeStats {
    /// Training rows that reached the node.
    pub n: u32,
    /// Majority class among them.
    pub majority: u32,
    /// Training rows not of the majority class.
    pub errors: u32,
}

/// Decision tree node.
#[derive(Clone, Debug)]
pub enum Node {
    Leaf {
        stats: NodeStats,
    },
    /// Binary numeric split: `value <= threshold` goes left.
    Num {
        stats: NodeStats,
        attr: usize,
        threshold: i64,
        left: Box<Node>,
        right: Box<Node>,
    },
    /// Multiway categorical split; `children[code]` may be absent when no
    /// training row had that code (prediction falls back to the majority).
    Cat {
        stats: NodeStats,
        attr: usize,
        children: Vec<Option<Box<Node>>>,
    },
}

impl Node {
    pub fn stats(&self) -> NodeStats {
        match self {
            Node::Leaf { stats } | Node::Num { stats, .. } | Node::Cat { stats, .. } => *stats,
        }
    }
}

/// A trained decision tree.
#[derive(Clone, Debug)]
pub struct DecisionTree {
    pub(crate) root: Node,
    num_attrs: usize,
}

impl DecisionTree {
    /// Trains on the whole dataset.
    pub fn train(ds: &Dataset, cfg: &TreeConfig) -> Self {
        let rows: Vec<u32> = (0..ds.len() as u32).collect();
        Self::train_on(ds, rows, cfg)
    }

    /// Trains on a subset of rows (used by cross-validation).
    pub fn train_on(ds: &Dataset, mut rows: Vec<u32>, cfg: &TreeConfig) -> Self {
        let mut root = if rows.is_empty() {
            Node::Leaf {
                stats: NodeStats {
                    n: 0,
                    majority: 0,
                    errors: 0,
                },
            }
        } else {
            build(ds, &mut rows, cfg.max_depth, cfg)
        };
        if cfg.prune_cf < 1.0 {
            crate::prune::prune(&mut root, cfg.prune_cf);
        }
        Self {
            root,
            num_attrs: ds.num_attrs(),
        }
    }

    /// Predicts the class of a row given as one value per attribute.
    pub fn predict(&self, row: &[i64]) -> u32 {
        assert_eq!(row.len(), self.num_attrs, "row arity mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { stats } => return stats.majority,
                Node::Num {
                    attr,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    node = if row[*attr] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
                Node::Cat {
                    stats,
                    attr,
                    children,
                } => {
                    let code = row[*attr];
                    match usize::try_from(code).ok().and_then(|c| children.get(c)) {
                        Some(Some(child)) => node = child,
                        _ => return stats.majority,
                    }
                }
            }
        }
    }

    /// Fraction of `rows` the tree classifies correctly.
    pub fn accuracy_on(&self, ds: &Dataset, rows: &[u32]) -> f64 {
        if rows.is_empty() {
            return 1.0;
        }
        let mut buf = vec![0i64; ds.num_attrs()];
        let correct = rows
            .iter()
            .filter(|&&r| {
                for (a, slot) in buf.iter_mut().enumerate() {
                    *slot = ds.value(a, r as usize);
                }
                self.predict(&buf) == ds.label(r as usize)
            })
            .count();
        correct as f64 / rows.len() as f64
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        fn walk(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Num { left, right, .. } => walk(left) + walk(right),
                Node::Cat { children, .. } => {
                    children.iter().map(|c| c.as_deref().map_or(0, walk)).sum()
                }
            }
        }
        walk(&self.root)
    }

    /// Depth (a lone leaf has depth 1).
    pub fn depth(&self) -> usize {
        fn walk(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Num { left, right, .. } => 1 + walk(left).max(walk(right)),
                Node::Cat { children, .. } => {
                    1 + children
                        .iter()
                        .map(|c| c.as_deref().map_or(0, walk))
                        .max()
                        .unwrap_or(0)
                }
            }
        }
        walk(&self.root)
    }

    /// Root node (read-only), for rule extraction.
    pub fn root(&self) -> &Node {
        &self.root
    }
}

fn stats_of(counts: &[u32]) -> NodeStats {
    let n: u32 = counts.iter().sum();
    let (majority, maj_n) = counts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(c, &m)| (c as u32, m))
        .unwrap_or((0, 0));
    NodeStats {
        n,
        majority,
        errors: n - maj_n,
    }
}

struct BestSplit {
    attr: usize,
    gain_ratio: f64,
    kind: SplitKind,
}

enum SplitKind {
    Num { threshold: i64 },
    Cat,
}

fn build(ds: &Dataset, rows: &mut [u32], depth_left: usize, cfg: &TreeConfig) -> Node {
    let counts = ds.class_counts(rows);
    let stats = stats_of(&counts);
    let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
    if pure || stats.n < cfg.min_split || depth_left == 0 {
        return Node::Leaf { stats };
    }

    let best = find_best_split(ds, rows, &counts, cfg);
    let best = match best {
        Some(b) if b.gain_ratio > 1e-10 => b,
        _ => return Node::Leaf { stats },
    };

    match best.kind {
        SplitKind::Num { threshold } => {
            // Partition rows in place: `<= threshold` first.
            let mid = partition_in_place(rows, |r| ds.value(best.attr, r as usize) <= threshold);
            if mid == 0 || mid == rows.len() {
                return Node::Leaf { stats };
            }
            let (l, r) = rows.split_at_mut(mid);
            let left = build(ds, l, depth_left - 1, cfg);
            let right = build(ds, r, depth_left - 1, cfg);
            Node::Num {
                stats,
                attr: best.attr,
                threshold,
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        SplitKind::Cat => {
            let arity = match ds.attr(best.attr).kind {
                AttrKind::Categorical { arity } => arity as usize,
                AttrKind::Numeric => unreachable!("cat split on numeric attr"),
            };
            // Bucket rows per code.
            let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); arity];
            for &r in rows.iter() {
                buckets[ds.value(best.attr, r as usize) as usize].push(r);
            }
            let children: Vec<Option<Box<Node>>> = buckets
                .into_iter()
                .map(|mut b| {
                    if b.is_empty() {
                        None
                    } else {
                        Some(Box::new(build(ds, &mut b, depth_left - 1, cfg)))
                    }
                })
                .collect();
            Node::Cat {
                stats,
                attr: best.attr,
                children,
            }
        }
    }
}

fn find_best_split(
    ds: &Dataset,
    rows: &[u32],
    parent_counts: &[u32],
    cfg: &TreeConfig,
) -> Option<BestSplit> {
    let mut best: Option<BestSplit> = None;
    let nc = ds.num_classes() as usize;
    for attr in 0..ds.num_attrs() {
        let candidate = match ds.attr(attr).kind {
            AttrKind::Numeric => best_numeric_split(ds, rows, parent_counts, attr, nc, cfg),
            AttrKind::Categorical { arity } => {
                best_categorical_split(ds, rows, parent_counts, attr, arity as usize, nc)
            }
        };
        if let Some(c) = candidate {
            match &best {
                Some(b) if b.gain_ratio >= c.gain_ratio => {}
                _ => best = Some(c),
            }
        }
    }
    best
}

fn best_numeric_split(
    ds: &Dataset,
    rows: &[u32],
    parent_counts: &[u32],
    attr: usize,
    nc: usize,
    cfg: &TreeConfig,
) -> Option<BestSplit> {
    // Sort (value, label) and scan boundaries between distinct values.
    let mut pairs: Vec<(i64, u32)> = rows
        .iter()
        .map(|&r| (ds.value(attr, r as usize), ds.label(r as usize)))
        .collect();
    pairs.sort_unstable_by_key(|&(v, _)| v);
    let n = pairs.len();
    let mut left = vec![0u32; nc];
    // Candidate thresholds with (gain, gain_ratio). Gain ratio alone favors
    // degenerate peel-one-row splits (the split-info denominator collapses),
    // so — like C4.5 — only candidates with at-least-average gain compete on
    // gain ratio.
    let mut candidates: Vec<(f64, f64, i64)> = Vec::new();
    for i in 0..n - 1 {
        left[pairs[i].1 as usize] += 1;
        if pairs[i].0 == pairs[i + 1].0 {
            continue; // not a boundary
        }
        let left_n = (i + 1) as u32;
        let right_n = (n - i - 1) as u32;
        if left_n < cfg.min_leaf || right_n < cfg.min_leaf {
            continue;
        }
        let right: Vec<u32> = parent_counts
            .iter()
            .zip(&left)
            .map(|(&p, &l)| p - l)
            .collect();
        let gain = info_gain(parent_counts, &[&left, &right]);
        if gain > 1e-10 {
            let gr = gain_ratio(parent_counts, &[&left, &right]);
            candidates.push((gain, gr, pairs[i].0));
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let avg_gain: f64 =
        candidates.iter().map(|&(g, _, _)| g).sum::<f64>() / candidates.len() as f64;
    candidates
        .into_iter()
        .filter(|&(g, _, _)| g + 1e-12 >= avg_gain)
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(_, gr, threshold)| BestSplit {
            attr,
            gain_ratio: gr,
            kind: SplitKind::Num { threshold },
        })
}

fn best_categorical_split(
    ds: &Dataset,
    rows: &[u32],
    parent_counts: &[u32],
    attr: usize,
    arity: usize,
    nc: usize,
) -> Option<BestSplit> {
    let mut hist = vec![vec![0u32; nc]; arity];
    for &r in rows {
        hist[ds.value(attr, r as usize) as usize][ds.label(r as usize) as usize] += 1;
    }
    let non_empty: Vec<&[u32]> = hist
        .iter()
        .filter(|h| h.iter().any(|&c| c > 0))
        .map(|h| h.as_slice())
        .collect();
    if non_empty.len() < 2 {
        return None;
    }
    let gain = info_gain(parent_counts, &non_empty);
    if gain <= 1e-10 {
        return None;
    }
    Some(BestSplit {
        attr,
        gain_ratio: gain_ratio(parent_counts, &non_empty),
        kind: SplitKind::Cat,
    })
}

/// Stable-ish in-place partition; returns the number of rows satisfying the
/// predicate (moved to the front).
fn partition_in_place(rows: &mut [u32], pred: impl Fn(u32) -> bool) -> usize {
    let mut i = 0usize;
    for j in 0..rows.len() {
        if pred(rows[j]) {
            rows.swap(i, j);
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    /// The paper's TPC-C stock example: label = partition, split on s_w_id.
    fn warehouse_dataset() -> Dataset {
        let mut b = DatasetBuilder::new().numeric("s_i_id").numeric("s_w_id");
        for i in 0..50 {
            b.row(&[i, 1], 0);
            b.row(&[i, 2], 1);
        }
        b.build()
    }

    #[test]
    fn learns_warehouse_rule() {
        let ds = warehouse_dataset();
        let tree = DecisionTree::train(&ds, &TreeConfig::default());
        assert_eq!(tree.predict(&[7, 1]), 0);
        assert_eq!(tree.predict(&[7, 2]), 1);
        assert_eq!(tree.num_leaves(), 2, "one split suffices");
        // The split must be on s_w_id (attr 1), not the uninformative item id.
        match tree.root() {
            Node::Num {
                attr, threshold, ..
            } => {
                assert_eq!(*attr, 1);
                assert_eq!(*threshold, 1); // s_w_id <= 1 -> partition 0
            }
            other => panic!("expected numeric split, got {other:?}"),
        }
        assert_eq!(tree.accuracy_on(&ds, &(0..100).collect::<Vec<_>>()), 1.0);
    }

    #[test]
    fn pure_dataset_is_single_leaf() {
        let mut b = DatasetBuilder::new().numeric("x");
        for i in 0..10 {
            b.row(&[i], 3);
        }
        let ds = b.build();
        let tree = DecisionTree::train(&ds, &TreeConfig::default());
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.depth(), 1);
        assert_eq!(tree.predict(&[99]), 3);
    }

    #[test]
    fn categorical_split() {
        let mut b = DatasetBuilder::new().categorical("color", 3);
        for _ in 0..5 {
            b.row(&[0], 0);
            b.row(&[1], 1);
            b.row(&[2], 2);
        }
        let ds = b.build();
        let tree = DecisionTree::train(
            &ds,
            &TreeConfig {
                min_leaf: 1,
                ..Default::default()
            },
        );
        assert_eq!(tree.predict(&[0]), 0);
        assert_eq!(tree.predict(&[1]), 1);
        assert_eq!(tree.predict(&[2]), 2);
    }

    #[test]
    fn unseen_category_falls_back_to_majority() {
        let mut b = DatasetBuilder::new().categorical("c", 4);
        for _ in 0..6 {
            b.row(&[0], 0);
        }
        for _ in 0..3 {
            b.row(&[1], 1);
        }
        let ds = b.build();
        let tree = DecisionTree::train(
            &ds,
            &TreeConfig {
                min_leaf: 1,
                ..Default::default()
            },
        );
        // Code 3 never seen in training; majority overall is class 0.
        assert_eq!(tree.predict(&[3]), 0);
    }

    #[test]
    fn min_leaf_blocks_tiny_splits() {
        // One stray row of class 1 among 20 of class 0: with min_leaf 5 no
        // leaf smaller than 5 rows exists, so the stray row can never be
        // isolated — every prediction is the majority class.
        let mut b = DatasetBuilder::new().numeric("x");
        for i in 0..20 {
            b.row(&[i], 0);
        }
        b.row(&[100], 1);
        let ds = b.build();
        let cfg = TreeConfig {
            min_leaf: 5,
            prune_cf: 1.0,
            ..Default::default()
        };
        let tree = DecisionTree::train(&ds, &cfg);
        assert_eq!(tree.predict(&[100]), 0, "stray row must not get a rule");
        assert_eq!(tree.predict(&[0]), 0);
        // Any leaves that do exist carry >= min_leaf support.
        let rules = crate::rules::extract_rules(&tree, &ds);
        assert!(rules.iter().all(|r| r.support >= 5), "{rules:?}");
    }

    #[test]
    fn conjunction_needs_two_levels() {
        // label = (x >= 5 AND y >= 5): one split cannot express it.
        let mut b = DatasetBuilder::new().numeric("x").numeric("y");
        for x in 0..10 {
            for y in 0..10 {
                b.row(&[x, y], u32::from(x >= 5 && y >= 5));
            }
        }
        let ds = b.build();
        let cfg = TreeConfig {
            min_leaf: 1,
            min_split: 2,
            prune_cf: 1.0,
            ..Default::default()
        };
        let tree = DecisionTree::train(&ds, &cfg);
        assert!(tree.depth() >= 3, "conjunction requires nested splits");
        for (x, y) in [(0, 0), (0, 9), (9, 0), (9, 9), (4, 9), (5, 5)] {
            let want = u32::from(x >= 5 && y >= 5);
            assert_eq!(tree.predict(&[x, y]), want, "({x},{y})");
        }
    }

    #[test]
    fn empty_dataset_gives_default_leaf() {
        let ds = DatasetBuilder::new().numeric("x").build();
        let tree = DecisionTree::train(&ds, &TreeConfig::default());
        assert_eq!(tree.predict(&[5]), 0);
    }
}
