//! Information-theoretic split criteria (entropy, information gain, gain
//! ratio) shared by the decision tree and CFS feature selection.

/// Shannon entropy (bits) of a class histogram.
pub fn entropy(counts: &[u32]) -> f64 {
    let total: u64 = counts.iter().map(|&c| c as u64).sum();
    if total == 0 {
        return 0.0;
    }
    let tot = total as f64;
    let mut h = 0.0;
    for &c in counts {
        if c > 0 {
            let p = c as f64 / tot;
            h -= p * p.log2();
        }
    }
    h
}

/// Entropy of a two-way split: weighted sum of child entropies.
pub fn split_entropy(parts: &[&[u32]]) -> f64 {
    let total: u64 = parts
        .iter()
        .map(|p| p.iter().map(|&c| c as u64).sum::<u64>())
        .sum();
    if total == 0 {
        return 0.0;
    }
    let tot = total as f64;
    parts
        .iter()
        .map(|p| {
            let n: u64 = p.iter().map(|&c| c as u64).sum();
            (n as f64 / tot) * entropy(p)
        })
        .sum()
}

/// Information gain of a split relative to the parent histogram.
pub fn info_gain(parent: &[u32], parts: &[&[u32]]) -> f64 {
    entropy(parent) - split_entropy(parts)
}

/// Split information: entropy of the partition *sizes* (C4.5's denominator
/// that penalizes high-arity splits).
pub fn split_info(parts: &[&[u32]]) -> f64 {
    let sizes: Vec<u32> = parts.iter().map(|p| p.iter().sum::<u32>()).collect();
    entropy(&sizes)
}

/// C4.5 gain ratio: `info_gain / split_info`, zero when the split is
/// degenerate (all rows in one branch).
pub fn gain_ratio(parent: &[u32], parts: &[&[u32]]) -> f64 {
    let si = split_info(parts);
    if si <= f64::EPSILON {
        return 0.0;
    }
    info_gain(parent, parts) / si
}

/// Symmetric uncertainty between two discrete variables given their joint
/// histogram `joint[x][y]`: `2 * MI(X;Y) / (H(X) + H(Y))` in `[0, 1]`.
/// Used by CFS (correlation-based feature selection).
pub fn symmetric_uncertainty(joint: &[Vec<u32>]) -> f64 {
    let x_counts: Vec<u32> = joint.iter().map(|row| row.iter().sum()).collect();
    let ny = joint.first().map_or(0, |r| r.len());
    let mut y_counts = vec![0u32; ny];
    for row in joint {
        for (y, &c) in row.iter().enumerate() {
            y_counts[y] += c;
        }
    }
    let hx = entropy(&x_counts);
    let hy = entropy(&y_counts);
    if hx + hy <= f64::EPSILON {
        return 0.0;
    }
    // H(X, Y) from the flattened joint.
    let flat: Vec<u32> = joint.iter().flatten().copied().collect();
    let hxy = entropy(&flat);
    let mi = hx + hy - hxy;
    (2.0 * mi / (hx + hy)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn entropy_basics() {
        assert!((entropy(&[5, 5]) - 1.0).abs() < EPS);
        assert!(entropy(&[10, 0]).abs() < EPS);
        assert!(entropy(&[]).abs() < EPS);
        assert!((entropy(&[1, 1, 1, 1]) - 2.0).abs() < EPS);
    }

    #[test]
    fn perfect_split_has_full_gain() {
        let parent = [4, 4];
        let left = [4, 0];
        let right = [0, 4];
        assert!((info_gain(&parent, &[&left, &right]) - 1.0).abs() < EPS);
        assert!((gain_ratio(&parent, &[&left, &right]) - 1.0).abs() < EPS);
    }

    #[test]
    fn useless_split_has_zero_gain() {
        let parent = [4, 4];
        let left = [2, 2];
        let right = [2, 2];
        assert!(info_gain(&parent, &[&left, &right]).abs() < EPS);
    }

    #[test]
    fn degenerate_split_gain_ratio_is_zero() {
        let parent = [4, 4];
        let left = [4, 4];
        let right = [0, 0];
        assert_eq!(gain_ratio(&parent, &[&left, &right]), 0.0);
    }

    #[test]
    fn split_info_penalizes_arity() {
        // Two equal halves: split_info = 1 bit. Four quarters: 2 bits.
        let h = [2, 2];
        let q = [1, 1];
        assert!((split_info(&[&h, &h]) - 1.0).abs() < EPS);
        assert!((split_info(&[&q, &q, &q, &q]) - 2.0).abs() < EPS);
    }

    #[test]
    fn su_of_identical_variables_is_one() {
        // X == Y on a 2x2 diagonal joint.
        let joint = vec![vec![5, 0], vec![0, 5]];
        assert!((symmetric_uncertainty(&joint) - 1.0).abs() < EPS);
    }

    #[test]
    fn su_of_independent_variables_is_zero() {
        let joint = vec![vec![4, 4], vec![4, 4]];
        assert!(symmetric_uncertainty(&joint).abs() < 1e-6);
    }

    #[test]
    fn su_constant_variable_is_zero() {
        let joint = vec![vec![3, 7]];
        assert_eq!(symmetric_uncertainty(&joint), 0.0);
    }
}
