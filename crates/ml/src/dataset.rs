//! Labelled training data for the classifiers.
//!
//! Values are stored column-major as `i64`: numeric attributes hold the raw
//! value, categorical attributes hold a non-negative category code. Labels
//! are dense `u32` class ids — in Schism these are partition numbers plus
//! virtual replication labels (§4.3).

/// Attribute kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttrKind {
    /// Ordered numeric attribute; splits are `value <= threshold`.
    Numeric,
    /// Unordered categorical attribute with codes in `[0, arity)`; splits
    /// are multiway on the code.
    Categorical { arity: u32 },
}

/// Attribute metadata.
#[derive(Clone, Debug)]
pub struct Attribute {
    pub name: String,
    pub kind: AttrKind,
}

/// A labelled dataset, column-major.
#[derive(Clone, Debug)]
pub struct Dataset {
    attrs: Vec<Attribute>,
    /// `columns[a][row]` = value of attribute `a` in `row`.
    columns: Vec<Vec<i64>>,
    labels: Vec<u32>,
    num_classes: u32,
}

impl Dataset {
    /// Creates a dataset from attribute metadata, column vectors, and labels.
    ///
    /// # Panics
    /// Panics if the shapes disagree, a categorical code is out of range, or
    /// a label is `>= num_classes`.
    pub fn new(
        attrs: Vec<Attribute>,
        columns: Vec<Vec<i64>>,
        labels: Vec<u32>,
        num_classes: u32,
    ) -> Self {
        assert_eq!(attrs.len(), columns.len(), "one column per attribute");
        for col in &columns {
            assert_eq!(
                col.len(),
                labels.len(),
                "all columns must match label count"
            );
        }
        for (a, col) in attrs.iter().zip(&columns) {
            if let AttrKind::Categorical { arity } = a.kind {
                for &v in col {
                    assert!(
                        v >= 0 && (v as u64) < arity as u64,
                        "category code {v} out of range for {}",
                        a.name
                    );
                }
            }
        }
        for &l in &labels {
            assert!(l < num_classes, "label {l} >= num_classes {num_classes}");
        }
        Self {
            attrs,
            columns,
            labels,
            num_classes,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of attributes.
    pub fn num_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> u32 {
        self.num_classes
    }

    /// Attribute metadata.
    pub fn attr(&self, a: usize) -> &Attribute {
        &self.attrs[a]
    }

    /// All attributes.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Value of attribute `a` in `row`.
    #[inline]
    pub fn value(&self, a: usize, row: usize) -> i64 {
        self.columns[a][row]
    }

    /// Whole column for attribute `a`.
    pub fn column(&self, a: usize) -> &[i64] {
        &self.columns[a]
    }

    /// Label of `row`.
    #[inline]
    pub fn label(&self, row: usize) -> u32 {
        self.labels[row]
    }

    /// All labels.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Class histogram over the given row indices.
    pub fn class_counts(&self, rows: &[u32]) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_classes as usize];
        for &r in rows {
            counts[self.labels[r as usize] as usize] += 1;
        }
        counts
    }

    /// Majority class over `rows` (ties resolve to the smaller id);
    /// `(class, count)`.
    pub fn majority(&self, rows: &[u32]) -> (u32, u32) {
        let counts = self.class_counts(rows);
        let mut best = (0u32, 0u32);
        for (c, &n) in counts.iter().enumerate() {
            if n > best.1 {
                best = (c as u32, n);
            }
        }
        best
    }
}

/// Convenience builder for tests and small callers.
#[derive(Clone, Debug, Default)]
pub struct DatasetBuilder {
    attrs: Vec<Attribute>,
    rows: Vec<Vec<i64>>,
    labels: Vec<u32>,
}

impl DatasetBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn numeric(mut self, name: &str) -> Self {
        self.attrs.push(Attribute {
            name: name.into(),
            kind: AttrKind::Numeric,
        });
        self
    }

    pub fn categorical(mut self, name: &str, arity: u32) -> Self {
        self.attrs.push(Attribute {
            name: name.into(),
            kind: AttrKind::Categorical { arity },
        });
        self
    }

    pub fn row(&mut self, values: &[i64], label: u32) -> &mut Self {
        assert_eq!(values.len(), self.attrs.len());
        self.rows.push(values.to_vec());
        self.labels.push(label);
        self
    }

    pub fn build(self) -> Dataset {
        let n_attrs = self.attrs.len();
        let mut columns = vec![Vec::with_capacity(self.rows.len()); n_attrs];
        for row in &self.rows {
            for (a, &v) in row.iter().enumerate() {
                columns[a].push(v);
            }
        }
        let num_classes = self.labels.iter().copied().max().map_or(1, |m| m + 1);
        Dataset::new(self.attrs, columns, self.labels, num_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_access() {
        let mut b = DatasetBuilder::new().numeric("x").categorical("c", 3);
        b.row(&[10, 0], 0);
        b.row(&[20, 1], 1);
        b.row(&[30, 2], 1);
        let ds = b.build();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.num_attrs(), 2);
        assert_eq!(ds.num_classes(), 2);
        assert_eq!(ds.value(0, 1), 20);
        assert_eq!(ds.value(1, 2), 2);
        assert_eq!(ds.label(0), 0);
        assert_eq!(ds.class_counts(&[0, 1, 2]), vec![1, 2]);
        assert_eq!(ds.majority(&[0, 1, 2]), (1, 2));
    }

    #[test]
    fn majority_tie_prefers_lower_class() {
        let mut b = DatasetBuilder::new().numeric("x");
        b.row(&[1], 0);
        b.row(&[2], 1);
        let ds = b.build();
        assert_eq!(ds.majority(&[0, 1]), (0, 1));
    }

    #[test]
    #[should_panic(expected = "category code")]
    fn rejects_out_of_range_category() {
        let mut b = DatasetBuilder::new().categorical("c", 2);
        b.row(&[5], 0);
        b.build();
    }
}
