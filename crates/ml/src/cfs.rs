//! Correlation-based feature selection (CFS, Hall 1999) — the attribute
//! selection step Schism borrows from Weka (§5.2): "the candidate attributes
//! are fed into Weka's correlation-based feature selection to select a set
//! of attributes that are correlated with the partition label."
//!
//! Merit of a subset S of k features:
//!
//! ```text
//! merit(S) = k * mean(su(f, label)) / sqrt(k + k (k-1) * mean(su(f, f')))
//! ```
//!
//! where `su` is symmetric uncertainty. Greedy forward selection adds the
//! feature that maximizes merit until no addition improves it.

use crate::dataset::{AttrKind, Dataset};
use crate::discretize;
use crate::entropy::symmetric_uncertainty;

/// Default number of bins when discretizing numeric attributes.
pub const DEFAULT_BINS: usize = 16;

/// Precomputed discrete view of a dataset for correlation estimates.
struct DiscreteView {
    /// codes[attr][row]
    codes: Vec<Vec<u32>>,
    arity: Vec<usize>,
    labels: Vec<u32>,
    num_classes: usize,
}

impl DiscreteView {
    fn new(ds: &Dataset, bins: usize) -> Self {
        let mut codes = Vec::with_capacity(ds.num_attrs());
        let mut arity = Vec::with_capacity(ds.num_attrs());
        for a in 0..ds.num_attrs() {
            match ds.attr(a).kind {
                AttrKind::Categorical { arity: ar } => {
                    codes.push(ds.column(a).iter().map(|&v| v as u32).collect());
                    arity.push(ar as usize);
                }
                AttrKind::Numeric => {
                    let (c, d) = discretize::codes(ds.column(a), bins);
                    arity.push(d.num_bins());
                    codes.push(c);
                }
            }
        }
        Self {
            codes,
            arity,
            labels: ds.labels().to_vec(),
            num_classes: ds.num_classes() as usize,
        }
    }

    fn su_with_label(&self, a: usize) -> f64 {
        let mut joint = vec![vec![0u32; self.num_classes]; self.arity[a]];
        for (row, &l) in self.labels.iter().enumerate() {
            joint[self.codes[a][row] as usize][l as usize] += 1;
        }
        symmetric_uncertainty(&joint)
    }

    fn su_between(&self, a: usize, b: usize) -> f64 {
        let mut joint = vec![vec![0u32; self.arity[b]]; self.arity[a]];
        for row in 0..self.labels.len() {
            joint[self.codes[a][row] as usize][self.codes[b][row] as usize] += 1;
        }
        symmetric_uncertainty(&joint)
    }
}

/// Result of CFS selection.
#[derive(Clone, Debug)]
pub struct CfsResult {
    /// Selected attribute indices, in selection order.
    pub selected: Vec<usize>,
    /// Merit of the selected subset.
    pub merit: f64,
    /// Symmetric uncertainty of every attribute with the label.
    pub label_correlation: Vec<f64>,
}

/// Runs greedy-forward CFS. Returns an empty selection when no attribute
/// carries any information about the label.
pub fn cfs_select(ds: &Dataset, bins: usize) -> CfsResult {
    let n = ds.num_attrs();
    if n == 0 || ds.is_empty() {
        return CfsResult {
            selected: Vec::new(),
            merit: 0.0,
            label_correlation: vec![0.0; n],
        };
    }
    let view = DiscreteView::new(ds, bins.max(2));
    let rcf: Vec<f64> = (0..n).map(|a| view.su_with_label(a)).collect();

    // Pairwise SU cache, filled lazily.
    let mut rff = vec![vec![f64::NAN; n]; n];
    let pair = |a: usize, b: usize, view: &DiscreteView, rff: &mut Vec<Vec<f64>>| -> f64 {
        let (x, y) = if a < b { (a, b) } else { (b, a) };
        if rff[x][y].is_nan() {
            rff[x][y] = view.su_between(x, y);
        }
        rff[x][y]
    };

    let merit_of = |sel: &[usize], rff: &mut Vec<Vec<f64>>, view: &DiscreteView| -> f64 {
        let k = sel.len() as f64;
        if sel.is_empty() {
            return 0.0;
        }
        let mean_rcf: f64 = sel.iter().map(|&a| rcf[a]).sum::<f64>() / k;
        let mut sum_rff = 0.0;
        for i in 0..sel.len() {
            for j in i + 1..sel.len() {
                sum_rff += pair(sel[i], sel[j], view, rff);
            }
        }
        let pairs = k * (k - 1.0) / 2.0;
        let mean_rff = if pairs > 0.0 { sum_rff / pairs } else { 0.0 };
        let denom = (k + k * (k - 1.0) * mean_rff).sqrt();
        if denom <= f64::EPSILON {
            0.0
        } else {
            k * mean_rcf / denom
        }
    };

    let mut selected: Vec<usize> = Vec::new();
    let mut best_merit = 0.0f64;
    loop {
        let mut best_add: Option<(usize, f64)> = None;
        for (a, &rcf_a) in rcf.iter().enumerate().take(n) {
            if selected.contains(&a) || rcf_a <= f64::EPSILON {
                continue;
            }
            let mut trial = selected.clone();
            trial.push(a);
            let m = merit_of(&trial, &mut rff, &view);
            match best_add {
                Some((_, bm)) if bm >= m => {}
                _ => best_add = Some((a, m)),
            }
        }
        match best_add {
            Some((a, m)) if m > best_merit + 1e-12 => {
                selected.push(a);
                best_merit = m;
            }
            _ => break,
        }
    }
    CfsResult {
        selected,
        merit: best_merit,
        label_correlation: rcf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    /// The paper's running example: for TPC-C stock, CFS keeps `s_w_id` and
    /// discards `s_i_id` (§5.2).
    #[test]
    fn selects_warehouse_drops_item() {
        let mut b = DatasetBuilder::new().numeric("s_i_id").numeric("s_w_id");
        for i in 0..200i64 {
            let w = i % 4;
            b.row(&[i, w], w as u32); // label == warehouse, item id is noise
        }
        let ds = b.build();
        let r = cfs_select(&ds, DEFAULT_BINS);
        assert_eq!(r.selected, vec![1], "should select only s_w_id: {r:?}");
        assert!(r.label_correlation[1] > 0.9);
        assert!(r.label_correlation[0] < 0.3);
    }

    #[test]
    fn constant_attribute_selects_nothing() {
        // A constant column has exactly zero mutual information with any
        // label; CFS must return an empty selection rather than inventing
        // structure.
        let mut b = DatasetBuilder::new().numeric("constant");
        for i in 0..100i64 {
            b.row(&[7], u32::from(i % 2 == 0));
        }
        let ds = b.build();
        let r = cfs_select(&ds, DEFAULT_BINS);
        assert!(r.selected.is_empty(), "selected {:?}", r.selected);
        assert_eq!(r.label_correlation, vec![0.0]);
    }

    #[test]
    fn random_attribute_has_weak_correlation() {
        // Pseudorandom attribute vs independent labels: sample correlation
        // is nonzero (finite sample) but must stay small.
        let mut b = DatasetBuilder::new().numeric("junk");
        for i in 0..1000i64 {
            b.row(&[(i * 48271) % 31], u32::from((i * 2654435761) % 2 == 0));
        }
        let ds = b.build();
        let r = cfs_select(&ds, DEFAULT_BINS);
        assert!(
            r.label_correlation[0] < 0.1,
            "correlation {}",
            r.label_correlation[0]
        );
    }

    #[test]
    fn complementary_attributes_both_selected() {
        // label = (x_high, y_high) 4-class; each attribute alone gives one
        // bit; together they determine the label.
        let mut b = DatasetBuilder::new()
            .numeric("x")
            .numeric("y")
            .numeric("noise");
        for i in 0..400i64 {
            let x = i % 20;
            let y = (i / 20) % 20;
            let label = (u32::from(x >= 10) << 1) | u32::from(y >= 10);
            b.row(&[x, y, (i * 37) % 11], label);
        }
        let ds = b.build();
        let r = cfs_select(&ds, DEFAULT_BINS);
        let mut sel = r.selected.clone();
        sel.sort_unstable();
        assert_eq!(sel, vec![0, 1], "should select x and y: {r:?}");
    }

    #[test]
    fn empty_dataset_is_safe() {
        let ds = DatasetBuilder::new().numeric("x").build();
        let r = cfs_select(&ds, 4);
        assert!(r.selected.is_empty());
    }
}
