//! Pessimistic error-based pruning (C4.5 subtree replacement).
//!
//! C4.5 treats the training error of each leaf as a binomial sample and
//! replaces a subtree by a leaf whenever the leaf's *upper confidence bound*
//! on errors is no worse than the sum over the subtree's leaves. The
//! confidence factor (default 0.25) sets the one-sided confidence level —
//! lower CF means a larger z, more pessimism about deep structure, harder
//! pruning. Schism prunes aggressively to drop "rules with little support"
//! (§4.3).

use crate::tree::{Node, NodeStats};

/// Prunes `node` in place with confidence factor `cf`.
pub fn prune(node: &mut Node, cf: f64) {
    let z = z_for_cf(cf);
    prune_rec(node, z);
}

fn prune_rec(node: &mut Node, z: f64) -> f64 {
    let stats = node.stats();
    match node {
        Node::Leaf { .. } => upper_error(stats.n, stats.errors, z),
        Node::Num { left, right, .. } => {
            let subtree = prune_rec(left, z) + prune_rec(right, z);
            maybe_replace(node, stats, subtree, z)
        }
        Node::Cat { children, .. } => {
            let subtree: f64 = children
                .iter_mut()
                .filter_map(|c| c.as_deref_mut())
                .map(|c| prune_rec(c, z))
                .sum();
            maybe_replace(node, stats, subtree, z)
        }
    }
}

fn maybe_replace(node: &mut Node, stats: NodeStats, subtree_errors: f64, z: f64) -> f64 {
    let as_leaf = upper_error(stats.n, stats.errors, z);
    // C4.5 replaces when the collapsed leaf is no worse (plus a small slack
    // in favour of the simpler model).
    if as_leaf <= subtree_errors + 0.1 {
        *node = Node::Leaf { stats };
        as_leaf
    } else {
        subtree_errors
    }
}

/// Upper confidence bound on the *count* of errors among `n` samples with
/// `e` observed errors, at one-sided confidence `z` (Wilson score interval,
/// the standard approximation of C4.5's binomial limit).
pub fn upper_error(n: u32, e: u32, z: f64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    let f = e as f64 / n;
    let z2 = z * z;
    let ub =
        (f + z2 / (2.0 * n) + z * (f / n - f * f / n + z2 / (4.0 * n * n)).sqrt()) / (1.0 + z2 / n);
    ub * n
}

/// One-sided standard-normal quantile `z = Φ⁻¹(1 - cf)` via the
/// Beasley–Springer–Moro / Acklam rational approximation (max error ~1e-9,
/// far below what pruning needs).
pub fn z_for_cf(cf: f64) -> f64 {
    let p = (1.0 - cf).clamp(1e-9, 1.0 - 1e-9);
    inverse_normal_cdf(p)
}

fn inverse_normal_cdf(p: f64) -> f64 {
    // Acklam's algorithm.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::tree::{DecisionTree, TreeConfig};

    #[test]
    fn z_values_match_tables() {
        assert!((z_for_cf(0.25) - 0.6745).abs() < 1e-3);
        assert!((z_for_cf(0.05) - 1.6449).abs() < 1e-3);
        assert!((z_for_cf(0.5)).abs() < 1e-6);
    }

    #[test]
    fn upper_error_grows_with_pessimism() {
        let e1 = upper_error(100, 10, z_for_cf(0.25));
        let e2 = upper_error(100, 10, z_for_cf(0.05));
        assert!(e2 > e1, "smaller cf must be more pessimistic");
        assert!(e1 > 10.0, "upper bound exceeds observed errors");
        assert_eq!(upper_error(0, 0, 0.69), 0.0);
    }

    use crate::tree::{Node, NodeStats};

    fn leaf(n: u32, majority: u32, errors: u32) -> Node {
        Node::Leaf {
            stats: NodeStats {
                n,
                majority,
                errors,
            },
        }
    }

    #[test]
    fn useless_split_is_collapsed() {
        // Both children predict the same class and carry errors: the split
        // buys nothing, so pessimistic pruning must collapse it.
        let mut node = Node::Num {
            stats: NodeStats {
                n: 20,
                majority: 0,
                errors: 5,
            },
            attr: 0,
            threshold: 10,
            left: Box::new(leaf(10, 0, 3)),
            right: Box::new(leaf(10, 0, 2)),
        };
        prune(&mut node, 0.25);
        match node {
            Node::Leaf { stats } => assert_eq!(
                stats,
                NodeStats {
                    n: 20,
                    majority: 0,
                    errors: 5
                }
            ),
            other => panic!("expected collapse, got {other:?}"),
        }
    }

    #[test]
    fn informative_split_is_kept() {
        // Perfect separation: collapsing would cost 10 errors.
        let mut node = Node::Num {
            stats: NodeStats {
                n: 20,
                majority: 0,
                errors: 10,
            },
            attr: 0,
            threshold: 10,
            left: Box::new(leaf(10, 0, 0)),
            right: Box::new(leaf(10, 1, 0)),
        };
        prune(&mut node, 0.25);
        assert!(
            matches!(node, Node::Num { .. }),
            "useful split must survive"
        );
    }

    #[test]
    fn lower_cf_prunes_harder() {
        // A marginal split: small error reduction from a deep subtree.
        // With a lenient CF it survives; with an aggressive (small) CF the
        // pessimism penalty for the small leaves outweighs the gain.
        let build = || Node::Num {
            stats: NodeStats {
                n: 40,
                majority: 0,
                errors: 6,
            },
            attr: 0,
            threshold: 5,
            left: Box::new(leaf(36, 0, 4)),
            right: Box::new(leaf(4, 1, 1)),
        };
        let mut lenient = build();
        prune(&mut lenient, 0.9);
        assert!(
            matches!(lenient, Node::Num { .. }),
            "cf=0.9 should keep the split"
        );
        let mut aggressive = build();
        prune(&mut aggressive, 0.01);
        assert!(
            matches!(aggressive, Node::Leaf { .. }),
            "cf=0.01 should collapse the marginal split"
        );
    }

    #[test]
    fn pruning_recurses_bottom_up() {
        // Inner useless split under a useful root: inner collapses, root
        // survives.
        let inner = Node::Num {
            stats: NodeStats {
                n: 10,
                majority: 1,
                errors: 2,
            },
            attr: 0,
            threshold: 15,
            left: Box::new(leaf(5, 1, 1)),
            right: Box::new(leaf(5, 1, 1)),
        };
        let mut root = Node::Num {
            stats: NodeStats {
                n: 20,
                majority: 0,
                errors: 10,
            },
            attr: 0,
            threshold: 9,
            left: Box::new(leaf(10, 0, 0)),
            right: Box::new(inner),
        };
        prune(&mut root, 0.25);
        match &root {
            Node::Num { right, .. } => {
                assert!(
                    matches!(**right, Node::Leaf { .. }),
                    "inner split must collapse"
                );
            }
            other => panic!("root must survive, got {other:?}"),
        }
    }

    #[test]
    fn pure_tree_unchanged_by_pruning() {
        let mut b = DatasetBuilder::new().numeric("x");
        for i in 0..20 {
            b.row(&[i], u32::from(i >= 10));
        }
        let ds = b.build();
        let tree = DecisionTree::train(&ds, &TreeConfig::default());
        assert_eq!(tree.num_leaves(), 2);
        assert_eq!(tree.predict(&[3]), 0);
        assert_eq!(tree.predict(&[15]), 1);
    }
}
