//! Equal-frequency discretization of numeric attributes.
//!
//! CFS (see [`crate::cfs`]) needs discrete variables to estimate mutual
//! information; numeric columns are binned here before the correlation
//! computation. Bin boundaries always fall between *distinct* values, so
//! identical values never straddle bins.

/// A discretization of a numeric column.
#[derive(Clone, Debug)]
pub struct Discretization {
    /// Upper bound (inclusive) of each bin except the last, sorted.
    /// `code(v) = number of cutpoints < v`... concretely: bin `i` holds
    /// `v <= cutpoints[i]` (and not in an earlier bin); values above every
    /// cutpoint take the last code.
    pub cutpoints: Vec<i64>,
}

impl Discretization {
    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.cutpoints.len() + 1
    }

    /// Bin code of a value.
    pub fn code(&self, v: i64) -> u32 {
        // cutpoints is sorted; partition_point gives the first cut >= v.
        self.cutpoints.partition_point(|&c| c < v) as u32
    }
}

/// Builds an equal-frequency discretization with at most `max_bins` bins.
///
/// Duplicated values are kept together; columns with fewer distinct values
/// than `max_bins` get one bin per distinct value.
pub fn equal_frequency(values: &[i64], max_bins: usize) -> Discretization {
    assert!(max_bins >= 1);
    let mut sorted: Vec<i64> = values.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() <= max_bins {
        // Cut between every pair of distinct values.
        return Discretization {
            cutpoints: sorted.windows(2).map(|w| w[0]).collect(),
        };
    }
    // Walk the *full* sorted multiset to find equal-frequency boundaries,
    // then snap each boundary to the nearest distinct-value gap.
    let mut full: Vec<i64> = values.to_vec();
    full.sort_unstable();
    let n = full.len();
    let mut cutpoints = Vec::with_capacity(max_bins - 1);
    for b in 1..max_bins {
        let idx = b * n / max_bins;
        let candidate = full[idx.min(n - 1)];
        // The cut is "v <= candidate-gap"; use the previous distinct value
        // so the boundary value itself lands in the upper bin... we instead
        // cut at the largest distinct value strictly below `candidate`.
        let pos = sorted.partition_point(|&v| v < candidate);
        if pos == 0 {
            continue;
        }
        let cut = sorted[pos - 1];
        if cutpoints.last() != Some(&cut) {
            cutpoints.push(cut);
        }
    }
    Discretization { cutpoints }
}

/// Discretizes the whole column, returning codes.
pub fn codes(values: &[i64], max_bins: usize) -> (Vec<u32>, Discretization) {
    let d = equal_frequency(values, max_bins);
    let codes = values.iter().map(|&v| d.code(v)).collect();
    (codes, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn few_distinct_values_one_bin_each() {
        let vals = vec![5, 5, 7, 7, 7, 9];
        let (codes, d) = codes_helper(&vals, 10);
        assert_eq!(d.num_bins(), 3);
        assert_eq!(codes, vec![0, 0, 1, 1, 1, 2]);
    }

    #[test]
    fn equal_frequency_splits_uniform_data() {
        let vals: Vec<i64> = (0..100).collect();
        let (codes, d) = codes_helper(&vals, 4);
        assert_eq!(d.num_bins(), 4);
        // Each quartile ~25 rows.
        for bin in 0..4u32 {
            let count = codes.iter().filter(|&&c| c == bin).count();
            assert!((20..=30).contains(&count), "bin {bin} has {count}");
        }
        // Monotone codes.
        for w in codes.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn heavy_duplicates_stay_together() {
        // 90 copies of 1 and ten larger values, 4 bins: all the 1s must get
        // the same code.
        let mut vals = vec![1i64; 90];
        vals.extend(10..20);
        let (codes, _) = codes_helper(&vals, 4);
        let code_of_one = codes[0];
        assert!(codes[..90].iter().all(|&c| c == code_of_one));
    }

    #[test]
    fn out_of_range_values_clamp() {
        let vals: Vec<i64> = (0..10).collect();
        let (_, d) = codes_helper(&vals, 2);
        assert_eq!(d.code(i64::MIN), 0);
        assert_eq!(d.code(i64::MAX), (d.num_bins() - 1) as u32);
    }

    fn codes_helper(vals: &[i64], bins: usize) -> (Vec<u32>, Discretization) {
        codes(vals, bins)
    }
}
