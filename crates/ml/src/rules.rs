//! Rule extraction: flattens a decision tree into the predicate rules the
//! paper shows, e.g. `s_w_id <= 1 -> partition 1 (pred. error 1.49%)`.

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, Node};

/// One condition on one attribute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Cond {
    /// `lo <= value <= hi` on an integer-valued numeric attribute. The
    /// bounds are inclusive; unconstrained ends use `i64::MIN` / `i64::MAX`.
    NumRange { attr: usize, lo: i64, hi: i64 },
    /// `value == code` on a categorical attribute.
    CatEq { attr: usize, code: i64 },
}

impl Cond {
    /// Whether `row` satisfies the condition.
    pub fn matches(&self, row: &[i64]) -> bool {
        match *self {
            Cond::NumRange { attr, lo, hi } => (lo..=hi).contains(&row[attr]),
            Cond::CatEq { attr, code } => row[attr] == code,
        }
    }
}

/// A classification rule: a conjunction of conditions implying a label.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    pub conds: Vec<Cond>,
    pub label: u32,
    /// Training rows that reached the leaf.
    pub support: u32,
    /// Fraction of those rows the leaf misclassifies (the paper's
    /// "pred. error").
    pub error_rate: f64,
}

impl Rule {
    /// Whether `row` satisfies every condition.
    pub fn matches(&self, row: &[i64]) -> bool {
        self.conds.iter().all(|c| c.matches(row))
    }

    /// Renders like the paper: `s_w_id <= 1: partition 0 (err 1.5%)`.
    pub fn render(&self, attr_names: &[&str]) -> String {
        let mut parts: Vec<String> = Vec::new();
        for c in &self.conds {
            match *c {
                Cond::NumRange { attr, lo, hi } => {
                    let name = attr_names[attr];
                    match (lo == i64::MIN, hi == i64::MAX) {
                        (true, true) => {}
                        (true, false) => parts.push(format!("{name} <= {hi}")),
                        (false, true) => parts.push(format!("{name} >= {lo}")),
                        (false, false) => parts.push(format!("{lo} <= {name} <= {hi}")),
                    }
                }
                Cond::CatEq { attr, code } => parts.push(format!("{} = {code}", attr_names[attr])),
            }
        }
        let lhs = if parts.is_empty() {
            "<empty>".to_owned()
        } else {
            parts.join(" AND ")
        };
        format!(
            "{lhs}: label {} (support {}, pred. error {:.2}%)",
            self.label,
            self.support,
            self.error_rate * 100.0
        )
    }
}

/// Extracts one rule per leaf. Numeric conditions accumulated along a path
/// are merged into a single inclusive range per attribute.
pub fn extract_rules(tree: &DecisionTree, ds: &Dataset) -> Vec<Rule> {
    let _ = ds; // kept for API symmetry with training; rules are tree-only
    let mut rules = Vec::new();
    let mut path: Vec<Cond> = Vec::new();
    walk(tree.root(), &mut path, &mut rules);
    rules
}

fn walk(node: &Node, path: &mut Vec<Cond>, out: &mut Vec<Rule>) {
    match node {
        Node::Leaf { stats } => {
            let conds = merge_conditions(path);
            let error_rate = if stats.n == 0 {
                0.0
            } else {
                stats.errors as f64 / stats.n as f64
            };
            out.push(Rule {
                conds,
                label: stats.majority,
                support: stats.n,
                error_rate,
            });
        }
        Node::Num {
            attr,
            threshold,
            left,
            right,
            ..
        } => {
            path.push(Cond::NumRange {
                attr: *attr,
                lo: i64::MIN,
                hi: *threshold,
            });
            walk(left, path, out);
            path.pop();
            let lo = threshold.saturating_add(1);
            path.push(Cond::NumRange {
                attr: *attr,
                lo,
                hi: i64::MAX,
            });
            walk(right, path, out);
            path.pop();
        }
        Node::Cat { attr, children, .. } => {
            for (code, child) in children.iter().enumerate() {
                if let Some(child) = child {
                    path.push(Cond::CatEq {
                        attr: *attr,
                        code: code as i64,
                    });
                    walk(child, path, out);
                    path.pop();
                }
            }
        }
    }
}

/// Intersects all numeric ranges per attribute; categorical equalities pass
/// through (duplicates collapse).
fn merge_conditions(path: &[Cond]) -> Vec<Cond> {
    let mut out: Vec<Cond> = Vec::new();
    for c in path {
        match *c {
            Cond::NumRange { attr, lo, hi } => {
                if let Some(Cond::NumRange {
                    lo: elo, hi: ehi, ..
                }) = out
                    .iter_mut()
                    .find(|e| matches!(e, Cond::NumRange { attr: a, .. } if *a == attr))
                {
                    *elo = (*elo).max(lo);
                    *ehi = (*ehi).min(hi);
                } else {
                    out.push(c.clone());
                }
            }
            Cond::CatEq { .. } => {
                if !out.contains(c) {
                    out.push(c.clone());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::tree::TreeConfig;

    #[test]
    fn warehouse_rules_match_paper_shape() {
        // TPC-C stock: s_w_id in {1, 2}, partition = s_w_id - 1.
        let mut b = DatasetBuilder::new().numeric("s_i_id").numeric("s_w_id");
        for i in 0..50 {
            b.row(&[i, 1], 0);
            b.row(&[i, 2], 1);
        }
        let ds = b.build();
        let tree = DecisionTree::train(&ds, &TreeConfig::default());
        let rules = extract_rules(&tree, &ds);
        assert_eq!(rules.len(), 2);
        let names = ["s_i_id", "s_w_id"];
        let rendered: Vec<String> = rules.iter().map(|r| r.render(&names)).collect();
        assert!(
            rendered[0].starts_with("s_w_id <= 1: label 0"),
            "got {rendered:?}"
        );
        assert!(
            rendered[1].starts_with("s_w_id >= 2: label 1"),
            "got {rendered:?}"
        );
        // Rules behave like the tree.
        for row in [[10, 1], [10, 2]] {
            let by_tree = tree.predict(&row);
            let by_rule = rules
                .iter()
                .find(|r| r.matches(&row))
                .expect("covered")
                .label;
            assert_eq!(by_tree, by_rule);
        }
    }

    #[test]
    fn nested_ranges_merge() {
        // Three classes split at 10 and 20 -> middle rule must be a closed
        // range 11..=20.
        let mut b = DatasetBuilder::new().numeric("x");
        for i in 0..30 {
            b.row(
                &[i],
                if i <= 10 {
                    0
                } else if i <= 20 {
                    1
                } else {
                    2
                },
            );
        }
        let ds = b.build();
        let tree = DecisionTree::train(
            &ds,
            &TreeConfig {
                min_leaf: 1,
                min_split: 2,
                ..Default::default()
            },
        );
        let rules = extract_rules(&tree, &ds);
        assert_eq!(rules.len(), 3);
        let middle = rules.iter().find(|r| r.label == 1).expect("class 1 rule");
        assert_eq!(middle.conds.len(), 1, "ranges must merge into one cond");
        match middle.conds[0] {
            Cond::NumRange { lo, hi, .. } => {
                assert_eq!((lo, hi), (11, 20));
            }
            ref other => panic!("unexpected cond {other:?}"),
        }
    }

    #[test]
    fn single_leaf_yields_empty_rule() {
        let mut b = DatasetBuilder::new().numeric("x");
        for i in 0..5 {
            b.row(&[i], 0);
        }
        let ds = b.build();
        let tree = DecisionTree::train(&ds, &TreeConfig::default());
        let rules = extract_rules(&tree, &ds);
        assert_eq!(rules.len(), 1);
        assert!(rules[0].conds.is_empty());
        assert!(rules[0].render(&["x"]).starts_with("<empty>: label 0"));
        assert!(rules[0].matches(&[42]));
    }

    #[test]
    fn rules_partition_the_space() {
        // Every row matches exactly one rule (trees induce a partition).
        let mut b = DatasetBuilder::new().numeric("x").numeric("y");
        for x in 0..10 {
            for y in 0..10 {
                b.row(&[x, y], u32::from(x + y >= 10));
            }
        }
        let ds = b.build();
        let tree = DecisionTree::train(
            &ds,
            &TreeConfig {
                min_leaf: 1,
                min_split: 2,
                prune_cf: 1.0,
                ..Default::default()
            },
        );
        let rules = extract_rules(&tree, &ds);
        for x in 0..10i64 {
            for y in 0..10i64 {
                let hits = rules.iter().filter(|r| r.matches(&[x, y])).count();
                assert_eq!(hits, 1, "row ({x},{y}) matched {hits} rules");
            }
        }
    }
}
