//! In-memory sharded backend: one ordered map per shard behind its own
//! lock, with rows/bytes accounting maintained on every mutation.
//!
//! This is the first physical backend from the ROADMAP's multi-backend
//! line: it is exactly enough store for the migration executor to copy,
//! verify, and roll back real bytes, while staying deterministic and
//! allocation-cheap for tests and benches. The per-shard `RwLock` means
//! shards never contend with each other — the same isolation a real
//! shared-nothing deployment would give — and `apply_batch` holds one
//! write guard for the whole batch, which is what makes it atomic.

use crate::{ShardId, ShardStats, ShardStore, StoreError, WriteOp};
use schism_sql::TableId;
use schism_workload::TupleId;
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::RwLock;

#[derive(Default)]
struct Shard {
    rows: BTreeMap<TupleId, Vec<u8>>,
    bytes: u64,
}

impl Shard {
    fn put(&mut self, t: TupleId, value: Vec<u8>) {
        self.bytes += value.len() as u64;
        if let Some(prev) = self.rows.insert(t, value) {
            self.bytes -= prev.len() as u64;
        }
    }

    fn delete(&mut self, t: TupleId) -> bool {
        match self.rows.remove(&t) {
            Some(prev) => {
                self.bytes -= prev.len() as u64;
                true
            }
            None => false,
        }
    }
}

/// In-memory [`ShardStore`]: `BTreeMap<TupleId, Vec<u8>>` per shard.
pub struct MemStore {
    shards: Vec<RwLock<Shard>>,
}

impl MemStore {
    /// An empty store with `num_shards` shards.
    pub fn new(num_shards: u32) -> Self {
        Self {
            shards: (0..num_shards)
                .map(|_| RwLock::new(Shard::default()))
                .collect(),
        }
    }

    fn shard(&self, shard: ShardId) -> Result<&RwLock<Shard>, StoreError> {
        self.shards
            .get(shard as usize)
            .ok_or(StoreError::NoSuchShard(shard))
    }

    /// Total rows across all shards.
    pub fn total_rows(&self) -> u64 {
        (0..self.num_shards())
            .map(|s| self.stats(s).expect("shard in range").rows)
            .sum()
    }

    /// Total payload bytes across all shards.
    pub fn total_bytes(&self) -> u64 {
        (0..self.num_shards())
            .map(|s| self.stats(s).expect("shard in range").bytes)
            .sum()
    }

    /// Clears one shard's contents entirely — the chaos-test crash model
    /// where a failed node's replacement comes up with an empty disk, so
    /// rejoin has to re-copy everything rather than trust residue.
    pub fn wipe_shard(&self, shard: ShardId) -> Result<(), StoreError> {
        let mut guard = self.shard(shard)?.write().expect("shard lock poisoned");
        *guard = Shard::default();
        Ok(())
    }

    /// Snapshot of one shard's full contents, in key order (tests and
    /// debugging; rebuilding a shard's state elsewhere goes through
    /// [`ShardStore::scan_range`]).
    pub fn dump(&self, shard: ShardId) -> Result<Vec<(TupleId, Vec<u8>)>, StoreError> {
        let guard = self.shard(shard)?.read().expect("shard lock poisoned");
        Ok(guard.rows.iter().map(|(&t, v)| (t, v.clone())).collect())
    }
}

impl ShardStore for MemStore {
    fn num_shards(&self) -> u32 {
        self.shards.len() as u32
    }

    fn get(&self, shard: ShardId, t: TupleId) -> Result<Option<Vec<u8>>, StoreError> {
        let guard = self.shard(shard)?.read().expect("shard lock poisoned");
        Ok(guard.rows.get(&t).cloned())
    }

    fn put(&self, shard: ShardId, t: TupleId, value: Vec<u8>) -> Result<(), StoreError> {
        let mut guard = self.shard(shard)?.write().expect("shard lock poisoned");
        guard.put(t, value);
        Ok(())
    }

    fn delete(&self, shard: ShardId, t: TupleId) -> Result<bool, StoreError> {
        let mut guard = self.shard(shard)?.write().expect("shard lock poisoned");
        Ok(guard.delete(t))
    }

    fn scan_range(
        &self,
        shard: ShardId,
        table: TableId,
        rows: Range<u64>,
    ) -> Result<Vec<(TupleId, Vec<u8>)>, StoreError> {
        let guard = self.shard(shard)?.read().expect("shard lock poisoned");
        if rows.start >= rows.end {
            return Ok(Vec::new()); // BTreeMap::range panics on start > end
        }
        Ok(guard
            .rows
            .range(TupleId::new(table, rows.start)..TupleId::new(table, rows.end))
            .map(|(&t, v)| (t, v.clone()))
            .collect())
    }

    fn apply_batch(&self, shard: ShardId, ops: &[WriteOp]) -> Result<(), StoreError> {
        let mut guard = self.shard(shard)?.write().expect("shard lock poisoned");
        for op in ops {
            match op {
                WriteOp::Put(t, value) => guard.put(*t, value.clone()),
                WriteOp::Delete(t) => {
                    guard.delete(*t);
                }
            }
        }
        Ok(())
    }

    fn stats(&self, shard: ShardId) -> Result<ShardStats, StoreError> {
        let guard = self.shard(shard)?.read().expect("shard lock poisoned");
        Ok(ShardStats {
            rows: guard.rows.len() as u64,
            bytes: guard.bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fnv1a;

    #[test]
    fn put_get_delete_roundtrip_with_accounting() {
        let s = MemStore::new(2);
        let t = TupleId::new(0, 5);
        s.put(0, t, vec![1, 2, 3]).unwrap();
        assert_eq!(s.get(0, t).unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(s.get(1, t).unwrap(), None);
        assert_eq!(s.stats(0).unwrap(), ShardStats { rows: 1, bytes: 3 });
        // Overwrite replaces, accounting follows.
        s.put(0, t, vec![9; 10]).unwrap();
        assert_eq!(s.stats(0).unwrap(), ShardStats { rows: 1, bytes: 10 });
        assert!(s.delete(0, t).unwrap());
        assert!(!s.delete(0, t).unwrap(), "second delete is a no-op");
        assert_eq!(s.stats(0).unwrap(), ShardStats::default());
    }

    #[test]
    fn unknown_shard_errors() {
        let s = MemStore::new(1);
        let t = TupleId::new(0, 0);
        assert_eq!(s.get(3, t).unwrap_err(), StoreError::NoSuchShard(3));
        assert_eq!(s.put(3, t, vec![]).unwrap_err(), StoreError::NoSuchShard(3));
        assert_eq!(s.stats(3).unwrap_err(), StoreError::NoSuchShard(3));
    }

    #[test]
    fn scan_range_is_table_scoped_and_ordered() {
        let s = MemStore::new(1);
        for row in [4u64, 1, 9] {
            s.put(0, TupleId::new(1, row), vec![row as u8]).unwrap();
        }
        s.put(0, TupleId::new(0, 2), vec![0]).unwrap(); // other table
        s.put(0, TupleId::new(2, 2), vec![0]).unwrap(); // other table
        let hits = s.scan_range(0, 1, 0..10).unwrap();
        let rows: Vec<u64> = hits.iter().map(|(t, _)| t.row).collect();
        assert_eq!(rows, vec![1, 4, 9]);
        let partial = s.scan_range(0, 1, 2..9).unwrap();
        assert_eq!(partial.len(), 1);
        assert_eq!(partial[0].0.row, 4);
        // Empty and inverted ranges scan to nothing instead of panicking
        // (BTreeMap::range would panic on start > end).
        assert!(s.scan_range(0, 1, 4..4).unwrap().is_empty());
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = 9u64..2u64;
        assert!(s.scan_range(0, 1, inverted).unwrap().is_empty());
    }

    #[test]
    fn apply_batch_is_all_or_nothing_per_guard() {
        let s = MemStore::new(1);
        let a = TupleId::new(0, 1);
        let b = TupleId::new(0, 2);
        s.put(0, a, vec![1]).unwrap();
        s.apply_batch(0, &[WriteOp::Delete(a), WriteOp::Put(b, vec![2, 2])])
            .unwrap();
        assert_eq!(s.get(0, a).unwrap(), None);
        assert_eq!(s.get(0, b).unwrap(), Some(vec![2, 2]));
        assert_eq!(s.stats(0).unwrap(), ShardStats { rows: 1, bytes: 2 });
    }

    #[test]
    fn checksum_matches_payload() {
        let s = MemStore::new(1);
        let t = TupleId::new(0, 7);
        assert_eq!(s.checksum(0, t).unwrap(), None);
        s.put(0, t, vec![5, 6, 7]).unwrap();
        assert_eq!(s.checksum(0, t).unwrap(), Some(fnv1a(&[5, 6, 7])));
    }
}
