//! Self-cleaning temporary directories for store tests, benches, and
//! doctests — no external crate, honors `TMPDIR` so CI can point the
//! (write-heavy) [`crate::LogStore`] tests at a tmpfs.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under [`std::env::temp_dir`], removed
/// (recursively) on drop. Dropping never panics: cleanup failure of a
/// temp path is not worth failing a test run over.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `$TMPDIR/<prefix>-<pid>-<n>`, unique within this process.
    /// Uses `create_dir` (not `create_dir_all`) and skips to the next
    /// counter on collision: a directory leaked by a killed earlier run
    /// under a recycled pid must never be silently adopted — its stale
    /// contents (e.g. a `LogStore` MANIFEST and segments) would leak into
    /// a store the caller believes is fresh.
    pub fn new(prefix: &str) -> std::io::Result<Self> {
        let base = std::env::temp_dir();
        std::fs::create_dir_all(&base)?;
        loop {
            let path = base.join(format!(
                "{prefix}-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            match std::fs::create_dir(&path) {
                Ok(()) => return Ok(Self { path }),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_unique_dirs_and_cleans_up() {
        let a = TempDir::new("schism-tempdir-test").unwrap();
        let b = TempDir::new("schism-tempdir-test").unwrap();
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        std::fs::write(kept.join("f"), b"x").unwrap();
        drop(a);
        assert!(!kept.exists(), "dropped TempDir removes its tree");
        assert!(b.path().is_dir(), "sibling untouched");
    }
}
