//! Persistent log-structured backend: one append-only segment file per
//! shard, an in-memory index rebuilt on open, and batch-atomic commit
//! records — the durability story the migration executor's
//! acknowledgements were waiting for.
//!
//! The on-disk format (byte layout diagram in `docs/STORES.md`) is a
//! sequence of length-prefixed, checksummed records:
//!
//! ```text
//! record := len:u32le  crc:u64le  body[len]        crc = fnv1a(body)
//! body   := PUT    (0x01) table:u16le row:u64le vlen:u32le value[vlen]
//!         | DELETE (0x02) table:u16le row:u64le
//!         | COMMIT (0x03) ops:u32le
//! ```
//!
//! Mutations are *staged* in the log and take effect only at a `COMMIT`
//! record whose `ops` count matches the staged run — `apply_batch`
//! appends all of its op records plus the commit marker in a single
//! write, so a crash anywhere inside the batch leaves a tail that replay
//! refuses to apply. On open, each segment is scanned record by record;
//! the first torn record (short read, checksum mismatch, bad tag, or a
//! commit whose count disagrees) ends the committed prefix and the file
//! is truncated back to it. Acknowledged batches survive; torn tails are
//! discarded — exactly the all-or-nothing contract [`MemStore`] provides
//! in memory.
//!
//! Overwrites and deletes strand dead records in the segment; when a
//! segment exceeds [`LogStoreConfig::compact_min_bytes`] and its dead
//! fraction crosses [`LogStoreConfig::compact_dead_ratio`], the shard is
//! rewritten live-records-only into a sibling `.tmp` file which is
//! fsynced and atomically renamed over the segment.
//!
//! [`MemStore`]: crate::MemStore

use crate::fault::FaultHook;
use crate::{fnv1a, ShardId, ShardStats, ShardStore, StoreError, WriteOp};
use schism_sql::TableId;
use schism_workload::TupleId;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};

/// `len` + `crc` prefix before every record body.
const HEADER_LEN: u64 = 12;
/// Fixed part of a PUT body: tag + table + row + vlen.
const PUT_FIXED: u64 = 1 + 2 + 8 + 4;
/// Bodies larger than this are rejected as corrupt rather than allocated.
const MAX_BODY: u32 = 1 << 30;
/// Largest value `apply_batch` accepts. Anything bigger would frame a
/// record that replay rejects as corrupt (`MAX_BODY`) — i.e. a write that
/// "succeeds" but is silently discarded on reopen — so it must be refused
/// up front.
pub const MAX_VALUE_LEN: u64 = MAX_BODY as u64 - PUT_FIXED;
/// Ops per commit record during compaction (bounds staged-replay memory).
const COMPACT_OPS_PER_COMMIT: u32 = 1 << 20;

const TAG_PUT: u8 = 0x01;
const TAG_DELETE: u8 = 0x02;
const TAG_COMMIT: u8 = 0x03;

/// Tuning for [`LogStore`].
#[derive(Clone, Copy, Debug)]
pub struct LogStoreConfig {
    /// Segments smaller than this never compact (avoids churn on tiny
    /// shards where the rewrite costs more than the space).
    pub compact_min_bytes: u64,
    /// Compact when `1 - live_record_bytes / segment_bytes` reaches this
    /// fraction.
    pub compact_dead_ratio: f64,
    /// `fdatasync` after every commit record. Off by default: the store's
    /// crash model in tests and benches is process kill (OS page cache
    /// survives), and the executor's verify pass re-reads what it wrote.
    pub sync_commits: bool,
}

impl Default for LogStoreConfig {
    fn default() -> Self {
        Self {
            compact_min_bytes: 1 << 20,
            compact_dead_ratio: 0.5,
            sync_commits: false,
        }
    }
}

/// Where a live row's payload sits in its segment.
#[derive(Clone, Copy, Debug)]
struct ValueRef {
    /// Byte offset of the value (not the record) in the segment file.
    offset: u64,
    /// Value length in bytes.
    vlen: u32,
    /// Full on-disk footprint of the PUT record (header + body).
    record_len: u64,
}

/// One staged, not-yet-committed mutation during replay.
type Staged = (TupleId, Option<ValueRef>);

/// One shard's segment file and the index over its committed records.
struct ShardLog {
    file: File,
    path: PathBuf,
    index: BTreeMap<TupleId, ValueRef>,
    /// Committed end of the segment (= file length after open/truncate).
    tail: u64,
    /// Sum of `vlen` over the index — what [`ShardStats::bytes`] reports.
    live_payload: u64,
    /// Sum of `record_len` over the index; `tail - live_record` is the
    /// reclaimable dead space (superseded records, commits, deletes).
    live_record: u64,
    compactions: u64,
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io(format!("{what} {}: {e}", path.display()))
}

fn push_record(buf: &mut Vec<u8>, body: &[u8]) {
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(&fnv1a(body).to_le_bytes());
    buf.extend_from_slice(body);
}

fn encode_put(buf: &mut Vec<u8>, t: TupleId, value: &[u8]) {
    let mut body = Vec::with_capacity(PUT_FIXED as usize + value.len());
    body.push(TAG_PUT);
    body.extend_from_slice(&t.table.to_le_bytes());
    body.extend_from_slice(&t.row.to_le_bytes());
    body.extend_from_slice(&(value.len() as u32).to_le_bytes());
    body.extend_from_slice(value);
    push_record(buf, &body);
}

fn encode_delete(buf: &mut Vec<u8>, t: TupleId) {
    let mut body = [0u8; 11];
    body[0] = TAG_DELETE;
    body[1..3].copy_from_slice(&t.table.to_le_bytes());
    body[3..11].copy_from_slice(&t.row.to_le_bytes());
    push_record(buf, &body);
}

fn encode_commit(buf: &mut Vec<u8>, ops: u32) {
    let mut body = [0u8; 5];
    body[0] = TAG_COMMIT;
    body[1..5].copy_from_slice(&ops.to_le_bytes());
    push_record(buf, &body);
}

/// On-disk size of a committed PUT of `vlen` payload bytes.
fn put_record_len(vlen: u32) -> u64 {
    HEADER_LEN + PUT_FIXED + u64::from(vlen)
}

/// On-disk size of a COMMIT record.
fn commit_record_len() -> u64 {
    HEADER_LEN + 5
}

/// A parsed record body (values are not materialized during replay —
/// only their position is).
enum Rec {
    Put { t: TupleId, vlen: u32 },
    Delete(TupleId),
    Commit(u32),
}

/// `None` = corrupt body (bad tag or short fields) → torn tail.
fn parse_body(body: &[u8]) -> Option<Rec> {
    let tag = *body.first()?;
    let tuple = |b: &[u8]| -> Option<TupleId> {
        Some(TupleId::new(
            TableId::from_le_bytes(b.get(1..3)?.try_into().ok()?),
            u64::from_le_bytes(b.get(3..11)?.try_into().ok()?),
        ))
    };
    match tag {
        TAG_PUT => {
            let t = tuple(body)?;
            let vlen = u32::from_le_bytes(body.get(11..15)?.try_into().ok()?);
            (body.len() as u64 == PUT_FIXED + u64::from(vlen)).then_some(Rec::Put { t, vlen })
        }
        TAG_DELETE => (body.len() == 11).then(|| Rec::Delete(tuple(body).unwrap())),
        TAG_COMMIT => {
            let ops = u32::from_le_bytes(body.get(1..5)?.try_into().ok()?);
            (body.len() == 5).then_some(Rec::Commit(ops))
        }
        _ => None,
    }
}

impl ShardLog {
    /// Opens (or creates) the segment at `path`, replays its committed
    /// prefix into a fresh index, and truncates any torn tail.
    fn open(path: PathBuf) -> Result<Self, StoreError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open segment", &path, e))?;
        let file_len = file
            .metadata()
            .map_err(|e| io_err("stat segment", &path, e))?
            .len();
        let mut log = Self {
            file,
            path,
            index: BTreeMap::new(),
            tail: 0,
            live_payload: 0,
            live_record: 0,
            compactions: 0,
        };
        let committed = log.replay(file_len)?;
        if committed < file_len {
            log.file
                .set_len(committed)
                .map_err(|e| io_err("truncate torn tail of", &log.path, e))?;
        }
        log.tail = committed;
        Ok(log)
    }

    /// Scans records from the start of the file, applying staged ops at
    /// each valid commit. Returns the end offset of the committed prefix.
    fn replay(&mut self, file_len: u64) -> Result<u64, StoreError> {
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| io_err("seek", &self.path, e))?;
        let mut reader = std::io::BufReader::new(&mut self.file);
        let mut pos = 0u64;
        let mut committed = 0u64;
        let mut staged: Vec<Staged> = Vec::new();
        loop {
            let mut header = [0u8; HEADER_LEN as usize];
            if pos + HEADER_LEN > file_len || reader.read_exact(&mut header).is_err() {
                break; // clean EOF or torn header
            }
            let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
            let crc = u64::from_le_bytes(header[4..12].try_into().unwrap());
            if len > MAX_BODY || pos + HEADER_LEN + u64::from(len) > file_len {
                break; // body would run past EOF: torn
            }
            let mut body = vec![0u8; len as usize];
            if reader.read_exact(&mut body).is_err() || fnv1a(&body) != crc {
                break; // torn or bit-rotted body
            }
            let rec_end = pos + HEADER_LEN + u64::from(len);
            match parse_body(&body) {
                Some(Rec::Put { t, vlen }) => staged.push((
                    t,
                    Some(ValueRef {
                        offset: pos + HEADER_LEN + PUT_FIXED,
                        vlen,
                        record_len: put_record_len(vlen),
                    }),
                )),
                Some(Rec::Delete(t)) => staged.push((t, None)),
                Some(Rec::Commit(ops)) => {
                    if ops as usize != staged.len() {
                        break; // commit does not match its staged run: torn
                    }
                    for (t, vref) in staged.drain(..) {
                        apply_committed(
                            &mut self.index,
                            &mut self.live_payload,
                            &mut self.live_record,
                            t,
                            vref,
                        );
                    }
                    committed = rec_end;
                }
                None => break, // unknown tag / malformed fields: torn
            }
            pos = rec_end;
        }
        Ok(committed)
    }

    /// Appends `buf` (op records + their commit) at the committed tail.
    /// `fault` fires [`sync_points::LOG_SYNC`](crate::fault::sync_points)
    /// after the write but before the `fdatasync` — the commit is not
    /// acknowledged until the hook returns *and* the sync completes, so an
    /// injected stall delays the ack rather than letting it race ahead of
    /// durability.
    fn append(
        &mut self,
        buf: &[u8],
        sync: bool,
        fault: Option<(&dyn FaultHook, ShardId)>,
    ) -> Result<(), StoreError> {
        self.file
            .seek(SeekFrom::Start(self.tail))
            .map_err(|e| io_err("seek", &self.path, e))?;
        self.file
            .write_all(buf)
            .map_err(|e| io_err("append to", &self.path, e))?;
        if sync {
            if let Some((hook, shard)) = fault {
                hook.at(crate::fault::sync_points::LOG_SYNC, shard);
            }
            self.file
                .sync_data()
                .map_err(|e| io_err("sync", &self.path, e))?;
        }
        self.tail += buf.len() as u64;
        Ok(())
    }

    /// Reads one live value out of the segment.
    fn read_value(&mut self, vref: ValueRef) -> Result<Vec<u8>, StoreError> {
        self.file
            .seek(SeekFrom::Start(vref.offset))
            .map_err(|e| io_err("seek", &self.path, e))?;
        let mut value = vec![0u8; vref.vlen as usize];
        self.file
            .read_exact(&mut value)
            .map_err(|e| io_err("read value from", &self.path, e))?;
        Ok(value)
    }

    /// Whether the dead fraction warrants a rewrite.
    fn needs_compaction(&self, cfg: &LogStoreConfig) -> bool {
        self.tail >= cfg.compact_min_bytes
            && (self.tail - self.live_record) as f64 >= cfg.compact_dead_ratio * self.tail as f64
    }

    /// Rewrites the segment live-records-only: stream every indexed row
    /// into `<segment>.tmp` (committing every [`COMPACT_OPS_PER_COMMIT`]
    /// ops), fsync, then atomically rename over the segment.
    fn compact(&mut self) -> Result<(), StoreError> {
        let tmp_path = {
            let mut os = self.path.clone().into_os_string();
            os.push(".tmp");
            PathBuf::from(os)
        };
        let tmp = File::create(&tmp_path).map_err(|e| io_err("create", &tmp_path, e))?;
        let mut writer = std::io::BufWriter::new(tmp);
        let mut new_index = BTreeMap::new();
        let mut new_tail = 0u64;
        let mut pending = 0u32;
        let mut buf = Vec::new();
        let entries: Vec<(TupleId, ValueRef)> = self.index.iter().map(|(&t, &v)| (t, v)).collect();
        for (t, vref) in entries {
            let value = self.read_value(vref)?;
            buf.clear();
            encode_put(&mut buf, t, &value);
            new_index.insert(
                t,
                ValueRef {
                    offset: new_tail + HEADER_LEN + PUT_FIXED,
                    vlen: vref.vlen,
                    record_len: put_record_len(vref.vlen),
                },
            );
            new_tail += buf.len() as u64;
            pending += 1;
            if pending == COMPACT_OPS_PER_COMMIT {
                encode_commit(&mut buf, pending);
                new_tail += commit_record_len();
                pending = 0;
            }
            writer
                .write_all(&buf)
                .map_err(|e| io_err("write", &tmp_path, e))?;
        }
        if pending > 0 || new_index.is_empty() {
            buf.clear();
            encode_commit(&mut buf, pending);
            new_tail += commit_record_len();
            writer
                .write_all(&buf)
                .map_err(|e| io_err("write", &tmp_path, e))?;
        }
        let tmp = writer
            .into_inner()
            .map_err(|e| io_err("flush", &tmp_path, e.into()))?;
        tmp.sync_data().map_err(|e| io_err("sync", &tmp_path, e))?;
        std::fs::rename(&tmp_path, &self.path)
            .map_err(|e| io_err("rename compacted segment over", &self.path, e))?;
        self.file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(|e| io_err("reopen compacted", &self.path, e))?;
        self.live_record = new_index.values().map(|v| v.record_len).sum();
        self.live_payload = new_index.values().map(|v| u64::from(v.vlen)).sum();
        self.index = new_index;
        self.tail = new_tail;
        self.compactions += 1;
        Ok(())
    }
}

/// Applies one committed mutation to the index, keeping the live
/// payload/record accounting exact under overwrites — replay, the write
/// path, and compaction all funnel through here so the three can never
/// disagree about what a committed op does.
fn apply_committed(
    index: &mut BTreeMap<TupleId, ValueRef>,
    live_payload: &mut u64,
    live_record: &mut u64,
    t: TupleId,
    vref: Option<ValueRef>,
) {
    let prev = match vref {
        Some(v) => {
            *live_payload += u64::from(v.vlen);
            *live_record += v.record_len;
            index.insert(t, v)
        }
        None => index.remove(&t),
    };
    if let Some(old) = prev {
        *live_payload -= u64::from(old.vlen);
        *live_record -= old.record_len;
    }
}

/// Persistent log-structured [`ShardStore`]: a directory holding one
/// append-only segment file per shard plus a `MANIFEST` recording the
/// shard count.
///
/// See the [module docs](self) for the record format and recovery rules,
/// and `docs/STORES.md` for the full storage chapter.
pub struct LogStore {
    dir: PathBuf,
    cfg: LogStoreConfig,
    shards: Vec<Mutex<ShardLog>>,
    /// Optional fault-injection hook fired at the `log.sync` point (see
    /// [`set_fault_hook`](Self::set_fault_hook)).
    fault: RwLock<Option<Arc<dyn FaultHook>>>,
}

impl LogStore {
    /// Opens (creating if absent) a store of `num_shards` shards under
    /// `dir` with the default [`LogStoreConfig`]. Replays every segment's
    /// committed prefix and truncates torn tails.
    pub fn open(dir: impl AsRef<Path>, num_shards: u32) -> Result<Self, StoreError> {
        Self::with_config(dir, num_shards, LogStoreConfig::default())
    }

    /// [`open`](Self::open) with explicit tuning.
    pub fn with_config(
        dir: impl AsRef<Path>,
        num_shards: u32,
        cfg: LogStoreConfig,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create store dir", &dir, e))?;
        let manifest = dir.join("MANIFEST");
        match std::fs::read_to_string(&manifest) {
            Ok(text) => {
                let found = text
                    .lines()
                    .find_map(|l| l.strip_prefix("shards="))
                    .and_then(|v| v.trim().parse::<u32>().ok());
                if found != Some(num_shards) {
                    return Err(StoreError::Io(format!(
                        "manifest {} declares shards={:?}, caller asked for {num_shards}",
                        manifest.display(),
                        found
                    )));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                std::fs::write(
                    &manifest,
                    format!("schism-logstore v1\nshards={num_shards}\n"),
                )
                .map_err(|e| io_err("write", &manifest, e))?;
            }
            Err(e) => return Err(io_err("read", &manifest, e)),
        }
        let shards = (0..num_shards)
            .map(|s| ShardLog::open(Self::segment_path_in(&dir, s)).map(Mutex::new))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            dir,
            cfg,
            shards,
            fault: RwLock::new(None),
        })
    }

    /// Installs (or clears) a [`FaultHook`] fired at the
    /// [`LOG_SYNC`](crate::fault::sync_points::LOG_SYNC) point: between
    /// writing a commit record and `fdatasync`ing it, for every synced
    /// commit. Only meaningful with
    /// [`sync_commits`](LogStoreConfig::sync_commits) enabled.
    pub fn set_fault_hook(&self, hook: Option<Arc<dyn FaultHook>>) {
        *self.fault.write().expect("fault lock poisoned") = hook;
    }

    fn fault_hook(&self) -> Option<Arc<dyn FaultHook>> {
        self.fault.read().expect("fault lock poisoned").clone()
    }

    fn segment_path_in(dir: &Path, shard: ShardId) -> PathBuf {
        dir.join(format!("shard-{shard:04}.log"))
    }

    /// Path of `shard`'s segment file (recovery tests truncate this to
    /// simulate a kill mid-write).
    pub fn segment_path(&self, shard: ShardId) -> PathBuf {
        Self::segment_path_in(&self.dir, shard)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn shard(&self, shard: ShardId) -> Result<&Mutex<ShardLog>, StoreError> {
        self.shards
            .get(shard as usize)
            .ok_or(StoreError::NoSuchShard(shard))
    }

    fn locked(&self, shard: ShardId) -> Result<std::sync::MutexGuard<'_, ShardLog>, StoreError> {
        Ok(self.shard(shard)?.lock().expect("shard lock poisoned"))
    }

    /// Total compaction rewrites across all shards since open.
    pub fn compactions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").compactions)
            .sum()
    }

    /// Current on-disk size of `shard`'s segment in bytes.
    pub fn segment_bytes(&self, shard: ShardId) -> Result<u64, StoreError> {
        Ok(self.locked(shard)?.tail)
    }

    /// Total live rows across all shards.
    pub fn total_rows(&self) -> u64 {
        (0..self.num_shards())
            .map(|s| self.stats(s).expect("shard in range").rows)
            .sum()
    }

    /// Total live payload bytes across all shards.
    pub fn total_bytes(&self) -> u64 {
        (0..self.num_shards())
            .map(|s| self.stats(s).expect("shard in range").bytes)
            .sum()
    }

    /// Forces `fdatasync` on every segment (epoch boundaries; tests).
    pub fn sync_all(&self) -> Result<(), StoreError> {
        for s in 0..self.num_shards() {
            let guard = self.locked(s)?;
            guard
                .file
                .sync_data()
                .map_err(|e| io_err("sync", &guard.path, e))?;
        }
        Ok(())
    }

    /// Appends an encoded op run + commit and maintains the index; the
    /// single `write_all` is what makes the batch all-or-nothing under a
    /// kill (replay only applies ops covered by an intact commit). Staged
    /// put offsets arrive buffer-relative and are rebased onto the shard
    /// tail here, under the one lock acquisition that also appends — the
    /// tail is only stable while the lock is held.
    fn commit_ops(&self, shard: ShardId, buf: &[u8], ops: Vec<Staged>) -> Result<(), StoreError> {
        let hook = self.fault_hook();
        let mut guard = self.locked(shard)?;
        Self::commit_locked(&mut guard, &self.cfg, buf, ops, shard, hook.as_deref())
    }

    /// The under-lock half of [`commit_ops`](Self::commit_ops): append,
    /// index, maybe compact.
    fn commit_locked(
        log: &mut ShardLog,
        cfg: &LogStoreConfig,
        buf: &[u8],
        mut ops: Vec<Staged>,
        shard: ShardId,
        fault: Option<&dyn FaultHook>,
    ) -> Result<(), StoreError> {
        for (_, vref) in ops.iter_mut() {
            if let Some(v) = vref {
                v.offset += log.tail;
            }
        }
        log.append(buf, cfg.sync_commits, fault.map(|h| (h, shard)))?;
        for (t, vref) in ops {
            apply_committed(
                &mut log.index,
                &mut log.live_payload,
                &mut log.live_record,
                t,
                vref,
            );
        }
        if log.needs_compaction(cfg) {
            // The batch above is already durably committed and indexed; a
            // failed compaction must not turn that success into an error
            // (compact's rename is its own commit point, so a failure
            // leaves either the old or the fully rewritten segment — both
            // replay to the same state, and the next mutation retries).
            let _ = log.compact();
        }
        Ok(())
    }
}

impl ShardStore for LogStore {
    fn num_shards(&self) -> u32 {
        self.shards.len() as u32
    }

    fn get(&self, shard: ShardId, t: TupleId) -> Result<Option<Vec<u8>>, StoreError> {
        let mut guard = self.locked(shard)?;
        match guard.index.get(&t).copied() {
            Some(vref) => Ok(Some(guard.read_value(vref)?)),
            None => Ok(None),
        }
    }

    fn put(&self, shard: ShardId, t: TupleId, value: Vec<u8>) -> Result<(), StoreError> {
        self.apply_batch(shard, &[WriteOp::Put(t, value)])
    }

    fn delete(&self, shard: ShardId, t: TupleId) -> Result<bool, StoreError> {
        // Presence check and append happen under one lock acquisition so
        // the returned bool reflects a single linearization point (two
        // racing deletes must not both report `true`, as MemStore's
        // single-guard delete cannot). A delete of an absent key writes
        // nothing — matches MemStore's no-op and keeps the log from
        // growing on misses.
        let hook = self.fault_hook();
        let mut guard = self.locked(shard)?;
        if !guard.index.contains_key(&t) {
            return Ok(false);
        }
        let mut buf = Vec::new();
        encode_delete(&mut buf, t);
        encode_commit(&mut buf, 1);
        Self::commit_locked(
            &mut guard,
            &self.cfg,
            &buf,
            vec![(t, None)],
            shard,
            hook.as_deref(),
        )?;
        Ok(true)
    }

    fn scan_range(
        &self,
        shard: ShardId,
        table: TableId,
        rows: Range<u64>,
    ) -> Result<Vec<(TupleId, Vec<u8>)>, StoreError> {
        let mut guard = self.locked(shard)?;
        if rows.start >= rows.end {
            return Ok(Vec::new()); // BTreeMap::range panics on start > end
        }
        let refs: Vec<(TupleId, ValueRef)> = guard
            .index
            .range(TupleId::new(table, rows.start)..TupleId::new(table, rows.end))
            .map(|(&t, &v)| (t, v))
            .collect();
        refs.into_iter()
            .map(|(t, vref)| Ok((t, guard.read_value(vref)?)))
            .collect()
    }

    fn apply_batch(&self, shard: ShardId, ops: &[WriteOp]) -> Result<(), StoreError> {
        self.shard(shard)?; // range-check before encoding work
        let mut buf = Vec::new();
        let mut staged: Vec<Staged> = Vec::with_capacity(ops.len());
        for op in ops {
            match op {
                WriteOp::Put(t, value) => {
                    if value.len() as u64 > MAX_VALUE_LEN {
                        return Err(StoreError::Io(format!(
                            "value for tuple {t} is {} bytes; LogStore records cap at {MAX_VALUE_LEN}",
                            value.len()
                        )));
                    }
                    staged.push((
                        *t,
                        Some(ValueRef {
                            // Buffer-relative; commit_ops rebases onto the
                            // shard tail under the lock.
                            offset: buf.len() as u64 + HEADER_LEN + PUT_FIXED,
                            vlen: value.len() as u32,
                            record_len: put_record_len(value.len() as u32),
                        }),
                    ));
                    encode_put(&mut buf, *t, value);
                }
                WriteOp::Delete(t) => {
                    staged.push((*t, None));
                    encode_delete(&mut buf, *t);
                }
            }
        }
        encode_commit(&mut buf, ops.len() as u32);
        self.commit_ops(shard, &buf, staged)
    }

    fn stats(&self, shard: ShardId) -> Result<ShardStats, StoreError> {
        let guard = self.locked(shard)?;
        Ok(ShardStats {
            rows: guard.index.len() as u64,
            bytes: guard.live_payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn t(row: u64) -> TupleId {
        TupleId::new(0, row)
    }

    #[test]
    fn roundtrip_and_accounting_match_contract() {
        let dir = TempDir::new("logstore-roundtrip").unwrap();
        let s = LogStore::open(dir.path(), 2).unwrap();
        s.put(0, t(5), vec![1, 2, 3]).unwrap();
        assert_eq!(s.get(0, t(5)).unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(s.get(1, t(5)).unwrap(), None);
        assert_eq!(s.stats(0).unwrap(), ShardStats { rows: 1, bytes: 3 });
        s.put(0, t(5), vec![9; 10]).unwrap();
        assert_eq!(s.stats(0).unwrap(), ShardStats { rows: 1, bytes: 10 });
        assert!(s.delete(0, t(5)).unwrap());
        assert!(!s.delete(0, t(5)).unwrap(), "second delete is a no-op");
        assert_eq!(s.stats(0).unwrap(), ShardStats::default());
        assert_eq!(s.get(9, t(0)).unwrap_err(), StoreError::NoSuchShard(9));
    }

    #[test]
    fn scan_range_is_table_scoped_and_ordered() {
        let dir = TempDir::new("logstore-scan").unwrap();
        let s = LogStore::open(dir.path(), 1).unwrap();
        for row in [4u64, 1, 9] {
            s.put(0, TupleId::new(1, row), vec![row as u8]).unwrap();
        }
        s.put(0, TupleId::new(0, 2), vec![0]).unwrap();
        s.put(0, TupleId::new(2, 2), vec![0]).unwrap();
        let rows: Vec<u64> = s
            .scan_range(0, 1, 0..10)
            .unwrap()
            .iter()
            .map(|(t, _)| t.row)
            .collect();
        assert_eq!(rows, vec![1, 4, 9]);
        assert!(s.scan_range(0, 1, 4..4).unwrap().is_empty());
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = 9u64..2u64;
        assert!(s.scan_range(0, 1, inverted).unwrap().is_empty());
    }

    #[test]
    fn survives_drop_and_reopen() {
        let dir = TempDir::new("logstore-reopen").unwrap();
        {
            let s = LogStore::open(dir.path(), 2).unwrap();
            s.apply_batch(
                0,
                &[
                    WriteOp::Put(t(1), vec![1; 8]),
                    WriteOp::Put(t(2), vec![2; 16]),
                    WriteOp::Delete(t(1)),
                ],
            )
            .unwrap();
            s.put(1, t(3), vec![3]).unwrap();
        }
        let s = LogStore::open(dir.path(), 2).unwrap();
        assert_eq!(s.get(0, t(1)).unwrap(), None, "delete replayed");
        assert_eq!(s.get(0, t(2)).unwrap(), Some(vec![2; 16]));
        assert_eq!(s.get(1, t(3)).unwrap(), Some(vec![3]));
        assert_eq!(s.stats(0).unwrap(), ShardStats { rows: 1, bytes: 16 });
    }

    #[test]
    fn torn_tail_is_truncated_to_last_commit() {
        let dir = TempDir::new("logstore-torn").unwrap();
        let seg;
        let committed_len;
        {
            let s = LogStore::open(dir.path(), 1).unwrap();
            s.put(0, t(1), vec![0xAA; 32]).unwrap();
            seg = s.segment_path(0);
            committed_len = s.segment_bytes(0).unwrap();
            s.put(0, t(2), vec![0xBB; 32]).unwrap();
        }
        let full = std::fs::metadata(&seg).unwrap().len();
        // Kill mid-write of the second batch: every truncation point
        // strictly inside it must recover to exactly the first batch.
        for cut in [committed_len + 1, committed_len + HEADER_LEN + 3, full - 1] {
            let bytes = std::fs::read(&seg).unwrap();
            std::fs::write(&seg, &bytes[..cut as usize]).unwrap();
            let s = LogStore::open(dir.path(), 1).unwrap();
            assert_eq!(s.get(0, t(1)).unwrap(), Some(vec![0xAA; 32]));
            assert_eq!(s.get(0, t(2)).unwrap(), None, "torn batch discarded");
            assert_eq!(s.segment_bytes(0).unwrap(), committed_len);
            // The truncated store accepts new writes.
            s.put(0, t(7), vec![7]).unwrap();
            drop(s);
            let s = LogStore::open(dir.path(), 1).unwrap();
            assert_eq!(s.get(0, t(7)).unwrap(), Some(vec![7]));
            // Restore the intact file for the next cut.
            std::fs::write(&seg, &bytes).unwrap();
        }
    }

    #[test]
    fn bit_rot_inside_committed_prefix_cuts_there() {
        let dir = TempDir::new("logstore-rot").unwrap();
        let seg;
        {
            let s = LogStore::open(dir.path(), 1).unwrap();
            s.put(0, t(1), vec![0x11; 16]).unwrap();
            s.put(0, t(2), vec![0x22; 16]).unwrap();
            seg = s.segment_path(0);
        }
        let mut bytes = std::fs::read(&seg).unwrap();
        let n = bytes.len();
        bytes[n - 10] ^= 0xFF; // corrupt the second batch
        std::fs::write(&seg, &bytes).unwrap();
        let s = LogStore::open(dir.path(), 1).unwrap();
        assert_eq!(s.get(0, t(1)).unwrap(), Some(vec![0x11; 16]));
        assert_eq!(s.get(0, t(2)).unwrap(), None, "corrupt batch dropped");
    }

    #[test]
    fn compaction_reclaims_dead_space_and_preserves_rows() {
        let dir = TempDir::new("logstore-compact").unwrap();
        let cfg = LogStoreConfig {
            compact_min_bytes: 512,
            compact_dead_ratio: 0.5,
            sync_commits: false,
        };
        let s = LogStore::with_config(dir.path(), 1, cfg).unwrap();
        // Overwrite the same few keys many times: almost all records dead.
        for round in 0..50u64 {
            for row in 0..4u64 {
                s.put(0, t(row), vec![round as u8; 64]).unwrap();
            }
        }
        assert!(s.compactions() > 0, "dead-ratio trigger fired");
        let seg = s.segment_bytes(0).unwrap();
        assert!(
            seg < 4 * (put_record_len(64) + commit_record_len()) + 512,
            "segment stays near live size, got {seg}"
        );
        for row in 0..4u64 {
            assert_eq!(s.get(0, t(row)).unwrap(), Some(vec![49; 64]));
        }
        assert_eq!(
            s.stats(0).unwrap(),
            ShardStats {
                rows: 4,
                bytes: 256
            }
        );
        // Compacted segment replays cleanly.
        drop(s);
        let s = LogStore::open(dir.path(), 1).unwrap();
        assert_eq!(
            s.stats(0).unwrap(),
            ShardStats {
                rows: 4,
                bytes: 256
            }
        );
        assert_eq!(s.get(0, t(2)).unwrap(), Some(vec![49; 64]));
    }

    #[test]
    fn manifest_guards_shard_count() {
        let dir = TempDir::new("logstore-manifest").unwrap();
        LogStore::open(dir.path(), 3).unwrap();
        assert!(LogStore::open(dir.path(), 3).is_ok());
        match LogStore::open(dir.path(), 4) {
            Err(StoreError::Io(msg)) => assert!(msg.contains("shards=")),
            Err(other) => panic!("expected manifest mismatch, got {other:?}"),
            Ok(_) => panic!("manifest mismatch must not open"),
        }
    }

    #[test]
    fn empty_batch_commits_and_replays() {
        let dir = TempDir::new("logstore-empty").unwrap();
        {
            let s = LogStore::open(dir.path(), 1).unwrap();
            s.apply_batch(0, &[]).unwrap();
        }
        let s = LogStore::open(dir.path(), 1).unwrap();
        assert_eq!(s.stats(0).unwrap(), ShardStats::default());
    }
}
