//! # schism-store
//!
//! Pluggable physical shard stores: the storage layer migration batches
//! actually move bytes through. The rest of the workspace reasons about
//! *placements* (which partition owns which tuple); this crate holds the
//! partitions themselves, so the migration executor in `schism-migrate`
//! can copy real rows, verify them (count + checksum), and only then flip
//! routing — and so the simulator's migration cost model is calibrated
//! against measured copy rates instead of assumed ones (`live_migration
//! --calibrate` in `schism-bench`).
//!
//! Two backends implement the one [`ShardStore`] contract:
//!
//! | backend | durability | layout | when |
//! |---------|------------|--------|------|
//! | [`MemStore`] | volatile | one ordered map per shard behind a lock | tests, simulation, baselines |
//! | [`LogStore`] | persistent | one append-only, checksummed segment file per shard; in-memory index rebuilt on open; torn tails truncated; size-triggered compaction | measured copy rates, crash-recovery, anything that must survive the process |
//!
//! They are **observationally equivalent** — property tests in the
//! umbrella crate (`tests/store_backends.rs`) drive random op
//! interleavings, executor runs, and kill-at-any-byte-offset recoveries
//! through both and require identical answers. The contract itself
//! (atomicity, visibility, accounting, error surface) and the `LogStore`
//! record format are documented in `docs/STORES.md`, the storage chapter
//! of the architecture book.
//!
//! | item | role |
//! |------|------|
//! | [`ShardStore`] | the backend trait: get/put/delete, range scans, atomic per-shard batches, byte accounting |
//! | [`MemStore`] / [`LogStore`] | the two backends; [`BackendKind`] parses `--backend mem\|log` |
//! | [`load_assignment`] | seed a store from a per-tuple placement, one deterministic row per copy |
//! | [`seed_row`] / [`fnv1a`] | deterministic row payloads and the checksum used by copy verification |
//! | [`FaultStore`] / [`FaultHook`] | injectable wrapper firing hooks at named sync points (deterministic fault injection) |
//! | [`HealthMap`] / [`ShardHealth`] | per-shard `Live / Down / CatchingUp` state machine shared by the server and the migration executor |
//! | [`tempdir::TempDir`] | self-cleaning scratch directories for tests and benches |
//!
//! Backends are shared by reference (`&dyn ShardStore`) between the
//! executor and any concurrent readers, so all mutation goes through
//! interior mutability; implementations must make
//! [`apply_batch`](ShardStore::apply_batch) atomic per shard — the
//! executor relies on that for clean abort-with-rollback, and `LogStore`
//! extends the same guarantee across a crash: a batch is either wholly
//! visible after reopen or wholly discarded.
//!
//! ```
//! use schism_store::{tempdir::TempDir, LogStore, ShardStore, WriteOp};
//! use schism_workload::TupleId;
//!
//! let dir = TempDir::new("schism-store-doc")?;
//! let a = TupleId::new(0, 1);
//! let b = TupleId::new(0, 2);
//! {
//!     let store = LogStore::open(dir.path(), 2)?;
//!     store.apply_batch(0, &[
//!         WriteOp::Put(a, b"alpha".to_vec()),
//!         WriteOp::Put(b, b"beta".to_vec()),
//!     ])?;
//! } // dropped: all state now lives in the segment files
//! let store = LogStore::open(dir.path(), 2)?; // replays the log
//! assert_eq!(store.get(0, a)?, Some(b"alpha".to_vec()));
//! assert_eq!(store.get(0, b)?, Some(b"beta".to_vec()));
//! assert_eq!(store.stats(0)?.rows, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod fault;
pub mod log;
pub mod mem;
pub mod tempdir;

pub use fault::{sync_points, FaultHook, FaultStore, HealthMap, HealthState, ShardHealth};
pub use log::{LogStore, LogStoreConfig};
pub use mem::MemStore;

use std::str::FromStr;

/// Which [`ShardStore`] implementation to construct — the `--backend`
/// flag of the bench/example binaries parses into this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// [`MemStore`]: volatile, ordered map per shard.
    Mem,
    /// [`LogStore`]: persistent, one append-only segment file per shard.
    Log,
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BackendKind::Mem => "mem",
            BackendKind::Log => "log",
        })
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "mem" => Ok(BackendKind::Mem),
            "log" => Ok(BackendKind::Log),
            other => Err(format!("unknown backend {other:?} (expected mem|log)")),
        }
    }
}

use schism_router::PartitionSet;
use schism_sql::TableId;
use schism_workload::{TupleId, TupleValues};
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

/// Identifies one physical shard. Shard ids coincide with partition ids:
/// partition `p` of a placement lives on shard `p` of the store.
pub type ShardId = u32;

/// Storage-layer failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The shard id is outside the store's range.
    NoSuchShard(ShardId),
    /// A row that must exist (e.g. a migration copy source) is missing.
    NotFound { shard: ShardId, tuple: TupleId },
    /// A persistent backend failed at the filesystem layer (the message
    /// carries the `std::io::Error` and the path involved).
    Io(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchShard(s) => write!(f, "no such shard {s}"),
            StoreError::NotFound { shard, tuple } => {
                write!(f, "tuple {tuple} not found on shard {shard}")
            }
            StoreError::Io(msg) => write!(f, "storage i/o: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// One write in an atomic per-shard batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WriteOp {
    Put(TupleId, Vec<u8>),
    Delete(TupleId),
}

/// Per-shard size accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Live rows on the shard.
    pub rows: u64,
    /// Sum of live row payload sizes in bytes.
    pub bytes: u64,
}

/// A physical backend holding `num_shards` independent shards of rows
/// keyed by [`TupleId`].
///
/// All methods take `&self`: stores are shared between the migration
/// executor and foreground readers, so implementations use interior
/// mutability (per-shard locks in [`MemStore`]). Only `apply_batch` is
/// required to be atomic, and only per shard — cross-shard atomicity is
/// the *executor's* job (that is what the verify/flip protocol provides).
pub trait ShardStore: Send + Sync {
    /// Number of shards (= partitions) this store holds.
    fn num_shards(&self) -> u32;

    /// Reads one row, `None` if absent.
    fn get(&self, shard: ShardId, t: TupleId) -> Result<Option<Vec<u8>>, StoreError>;

    /// Writes one row (insert or overwrite).
    fn put(&self, shard: ShardId, t: TupleId, value: Vec<u8>) -> Result<(), StoreError>;

    /// Deletes one row; returns whether it existed.
    fn delete(&self, shard: ShardId, t: TupleId) -> Result<bool, StoreError>;

    /// All rows of `table` on `shard` whose row id falls in `rows`, in row
    /// order.
    fn scan_range(
        &self,
        shard: ShardId,
        table: TableId,
        rows: Range<u64>,
    ) -> Result<Vec<(TupleId, Vec<u8>)>, StoreError>;

    /// Applies `ops` to `shard` atomically: a concurrent reader sees all
    /// of the batch or none of it, never a prefix.
    fn apply_batch(&self, shard: ShardId, ops: &[WriteOp]) -> Result<(), StoreError>;

    /// Row/byte accounting for `shard`.
    fn stats(&self, shard: ShardId) -> Result<ShardStats, StoreError>;

    /// Checksum of one row's payload (`None` if absent). The executor
    /// compares source and destination checksums during copy verification;
    /// backends that hold payloads out of process can override this to
    /// avoid shipping the row back.
    fn checksum(&self, shard: ShardId, t: TupleId) -> Result<Option<u64>, StoreError> {
        Ok(self.get(shard, t)?.map(|v| fnv1a(&v)))
    }
}

/// FNV-1a over a byte slice — the checksum copy verification uses.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic row payload for tuple `t`: `len` bytes derived from the
/// tuple identity by a splitmix-style generator, so two independently
/// seeded stores agree on every row and corruption is detectable.
pub fn seed_row(t: TupleId, len: u32) -> Vec<u8> {
    let mut x = (u64::from(t.table) << 48) ^ t.row ^ 0x9e37_79b9_7f4a_7c15;
    let mut out = Vec::with_capacity(len as usize);
    while out.len() < len as usize {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        out.extend_from_slice(&z.to_le_bytes());
    }
    out.truncate(len as usize);
    out
}

/// Materializes a placement into `store`: every tuple gets one
/// [`seed_row`] payload (sized by [`TupleValues::tuple_bytes`]) on every
/// shard in its copy set. Returns the number of rows written.
pub fn load_assignment(
    store: &dyn ShardStore,
    assignment: &HashMap<TupleId, PartitionSet>,
    db: &dyn TupleValues,
) -> Result<u64, StoreError> {
    let mut written = 0u64;
    for (&t, pset) in assignment {
        let row = seed_row(t, db.tuple_bytes(t.table));
        for shard in pset.iter() {
            store.put(shard, t, row.clone())?;
            written += 1;
        }
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable_and_discriminates() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn seed_row_deterministic_and_sized() {
        let t = TupleId::new(3, 17);
        assert_eq!(seed_row(t, 64), seed_row(t, 64));
        assert_eq!(seed_row(t, 10).len(), 10);
        assert_ne!(seed_row(t, 64), seed_row(TupleId::new(3, 18), 64));
        assert_ne!(seed_row(t, 64), seed_row(TupleId::new(4, 17), 64));
        assert!(seed_row(t, 0).is_empty());
    }

    #[test]
    fn load_assignment_places_every_copy() {
        use schism_workload::MaterializedDb;
        let store = MemStore::new(3);
        let mut asg = HashMap::new();
        asg.insert(TupleId::new(0, 1), PartitionSet::single(0));
        asg.insert(TupleId::new(0, 2), [1u32, 2].into_iter().collect());
        let written = load_assignment(&store, &asg, &MaterializedDb::new()).unwrap();
        assert_eq!(written, 3);
        assert!(store.get(0, TupleId::new(0, 1)).unwrap().is_some());
        assert!(store.get(1, TupleId::new(0, 2)).unwrap().is_some());
        assert!(store.get(2, TupleId::new(0, 2)).unwrap().is_some());
        assert!(store.get(1, TupleId::new(0, 1)).unwrap().is_none());
        // Replicated copies are byte-identical.
        assert_eq!(
            store.get(1, TupleId::new(0, 2)).unwrap(),
            store.get(2, TupleId::new(0, 2)).unwrap()
        );
    }
}
