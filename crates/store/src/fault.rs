//! Deterministic fault injection and shard-liveness plumbing for the
//! storage layer.
//!
//! Two small pieces live here because every tier above the store needs
//! them:
//!
//! - [`FaultHook`] + [`FaultStore`]: an injectable [`ShardStore`] wrapper
//!   that fires a hook at **named sync points** before delegating each
//!   operation. The serving layer's `FaultPlan` implements the hook to
//!   stall a backend mid-operation (seeded and replayable); [`LogStore`]
//!   additionally fires [`sync_points::LOG_SYNC`] between writing a commit
//!   record and `fdatasync`ing it, so tests can pin that a stalled flush
//!   never acknowledges a batch early.
//! - [`ShardHealth`] + [`HealthMap`]: the shared liveness view. The server
//!   marks a shard down when its worker stops answering; the migration
//!   executor consults the same map so a copy source is always a *live*
//!   replica holding the acked-write frontier. Down is sticky — this
//!   failure model has no rejoin, which is exactly what makes "every live
//!   copy has every acknowledged write" an invariant instead of a race.
//!
//! [`LogStore`]: crate::LogStore

use crate::{ShardId, ShardStats, ShardStore, StoreError, WriteOp};
use schism_router::PartitionSet;
use schism_sql::TableId;
use schism_workload::TupleId;
use std::collections::BTreeSet;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// The named sync points [`FaultStore`] and [`LogStore`](crate::LogStore)
/// fire. The full map (which operation, fired when) is documented in the
/// "Replication & failover" chapter of `docs/ARCHITECTURE.md`.
pub mod sync_points {
    /// Before a point read.
    pub const GET: &str = "store.get";
    /// Before a single-row write.
    pub const PUT: &str = "store.put";
    /// Before a single-row delete.
    pub const DELETE: &str = "store.delete";
    /// Before a range scan.
    pub const SCAN: &str = "store.scan";
    /// Before an atomic batch commit.
    pub const APPLY_BATCH: &str = "store.apply_batch";
    /// Before a checksum read.
    pub const CHECKSUM: &str = "store.checksum";
    /// Inside `LogStore` with `sync_commits` on: after the commit record
    /// is written but **before** `fdatasync` — the window in which a
    /// stalled flush must not acknowledge the batch.
    pub const LOG_SYNC: &str = "log.sync";
}

/// Observer invoked at named sync points. Implementations may sleep (to
/// model a stalled disk or a slow replica) but must return — the store
/// blocks inside the hook, which is the point: the operation, and with it
/// the acknowledgement, cannot complete early.
pub trait FaultHook: Send + Sync {
    /// Called with the sync-point name and the shard the operation targets.
    fn at(&self, point: &'static str, shard: ShardId);
}

/// A [`ShardStore`] wrapper that fires a [`FaultHook`] at a named sync
/// point before delegating each operation to the inner backend.
pub struct FaultStore {
    inner: Arc<dyn ShardStore>,
    hook: Arc<dyn FaultHook>,
}

impl FaultStore {
    pub fn new(inner: Arc<dyn ShardStore>, hook: Arc<dyn FaultHook>) -> Self {
        Self { inner, hook }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &Arc<dyn ShardStore> {
        &self.inner
    }
}

impl ShardStore for FaultStore {
    fn num_shards(&self) -> u32 {
        self.inner.num_shards()
    }

    fn get(&self, shard: ShardId, t: TupleId) -> Result<Option<Vec<u8>>, StoreError> {
        self.hook.at(sync_points::GET, shard);
        self.inner.get(shard, t)
    }

    fn put(&self, shard: ShardId, t: TupleId, value: Vec<u8>) -> Result<(), StoreError> {
        self.hook.at(sync_points::PUT, shard);
        self.inner.put(shard, t, value)
    }

    fn delete(&self, shard: ShardId, t: TupleId) -> Result<bool, StoreError> {
        self.hook.at(sync_points::DELETE, shard);
        self.inner.delete(shard, t)
    }

    fn scan_range(
        &self,
        shard: ShardId,
        table: TableId,
        rows: Range<u64>,
    ) -> Result<Vec<(TupleId, Vec<u8>)>, StoreError> {
        self.hook.at(sync_points::SCAN, shard);
        self.inner.scan_range(shard, table, rows)
    }

    fn apply_batch(&self, shard: ShardId, ops: &[WriteOp]) -> Result<(), StoreError> {
        self.hook.at(sync_points::APPLY_BATCH, shard);
        self.inner.apply_batch(shard, ops)
    }

    fn stats(&self, shard: ShardId) -> Result<ShardStats, StoreError> {
        self.inner.stats(shard)
    }

    fn checksum(&self, shard: ShardId, t: TupleId) -> Result<Option<u64>, StoreError> {
        self.hook.at(sync_points::CHECKSUM, shard);
        self.inner.checksum(shard, t)
    }
}

/// Liveness view shared between the serving layer and the migration
/// executor: which shards' workers have stopped answering.
pub trait ShardHealth: Send + Sync {
    /// Whether `shard` is considered failed.
    fn is_down(&self, shard: ShardId) -> bool;
}

/// Shared sticky down-set. Marking a shard down is permanent — a failed
/// shard's store copy goes stale the moment writes start skipping it, so
/// it can never silently rejoin the replica set.
#[derive(Debug, Default)]
pub struct HealthMap {
    down: RwLock<BTreeSet<ShardId>>,
    /// Bumped on every *new* failure — a cheap "did routing change" check.
    epoch: AtomicU64,
}

impl HealthMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `shard` failed. Returns whether it was newly marked.
    pub fn mark_down(&self, shard: ShardId) -> bool {
        let newly = self
            .down
            .write()
            .expect("health lock poisoned")
            .insert(shard);
        if newly {
            self.epoch.fetch_add(1, Ordering::SeqCst);
        }
        newly
    }

    /// Snapshot of the failed shards as a [`PartitionSet`].
    pub fn down_set(&self) -> PartitionSet {
        self.down
            .read()
            .expect("health lock poisoned")
            .iter()
            .copied()
            .collect()
    }

    /// Number of failures recorded so far.
    pub fn failures(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }
}

impl ShardHealth for HealthMap {
    fn is_down(&self, shard: ShardId) -> bool {
        self.down
            .read()
            .expect("health lock poisoned")
            .contains(&shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;

    /// Counts invocations per sync point (no sleeping).
    #[derive(Default)]
    struct Counter {
        gets: AtomicU64,
        batches: AtomicU64,
    }

    impl FaultHook for Counter {
        fn at(&self, point: &'static str, _shard: ShardId) {
            match point {
                sync_points::GET => self.gets.fetch_add(1, Ordering::SeqCst),
                sync_points::APPLY_BATCH => self.batches.fetch_add(1, Ordering::SeqCst),
                _ => 0,
            };
        }
    }

    #[test]
    fn fault_store_fires_hooks_and_delegates() {
        let hook = Arc::new(Counter::default());
        let store = FaultStore::new(
            Arc::new(MemStore::new(2)),
            Arc::clone(&hook) as Arc<dyn FaultHook>,
        );
        let t = TupleId::new(0, 1);
        store.put(0, t, vec![1, 2]).unwrap();
        assert_eq!(store.get(0, t).unwrap(), Some(vec![1, 2]));
        store.apply_batch(1, &[WriteOp::Put(t, vec![3])]).unwrap();
        assert_eq!(store.get(1, t).unwrap(), Some(vec![3]));
        assert_eq!(hook.gets.load(Ordering::SeqCst), 2);
        assert_eq!(hook.batches.load(Ordering::SeqCst), 1);
        assert_eq!(store.num_shards(), 2);
        assert_eq!(store.stats(0).unwrap().rows, 1);
        assert!(store.checksum(0, t).unwrap().is_some());
    }

    #[test]
    fn health_map_is_sticky_and_counts_new_failures_once() {
        let h = HealthMap::new();
        assert!(!h.is_down(3));
        assert!(h.down_set().is_empty());
        assert!(h.mark_down(3));
        assert!(!h.mark_down(3), "re-marking is not a new failure");
        assert!(h.mark_down(1));
        assert!(h.is_down(3) && h.is_down(1) && !h.is_down(0));
        assert_eq!(h.failures(), 2);
        let set = h.down_set();
        assert_eq!(set.len(), 2);
        assert!(set.contains(1) && set.contains(3));
    }
}
