//! Deterministic fault injection and shard-liveness plumbing for the
//! storage layer.
//!
//! Two small pieces live here because every tier above the store needs
//! them:
//!
//! - [`FaultHook`] + [`FaultStore`]: an injectable [`ShardStore`] wrapper
//!   that fires a hook at **named sync points** before delegating each
//!   operation. The serving layer's `FaultPlan` implements the hook to
//!   stall a backend mid-operation (seeded and replayable); [`LogStore`]
//!   additionally fires [`sync_points::LOG_SYNC`] between writing a commit
//!   record and `fdatasync`ing it, so tests can pin that a stalled flush
//!   never acknowledges a batch early.
//! - [`ShardHealth`] + [`HealthMap`]: the shared liveness view. The server
//!   marks a shard down when its worker stops answering; the migration
//!   executor consults the same map so a copy source is always a *live*
//!   replica holding the acked-write frontier. A downed shard is not
//!   stuck forever: once its worker is respawned it transitions through
//!   [`HealthState::CatchingUp`] — receiving all foreground writes but
//!   serving no reads and counting toward no quorum — until a catch-up
//!   copy verifies it against a live replica and flips it back to
//!   [`HealthState::Live`]. Because a shard only re-enters the read/quorum
//!   set *after* that verified copy, "every live copy has every
//!   acknowledged write" stays an invariant instead of becoming a race.
//!
//! [`LogStore`]: crate::LogStore

use crate::{ShardId, ShardStats, ShardStore, StoreError, WriteOp};
use schism_router::PartitionSet;
use schism_sql::TableId;
use schism_workload::TupleId;
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// The named sync points [`FaultStore`] and [`LogStore`](crate::LogStore)
/// fire. The full map (which operation, fired when) is documented in the
/// "Replication & failover" chapter of `docs/ARCHITECTURE.md`.
pub mod sync_points {
    /// Before a point read.
    pub const GET: &str = "store.get";
    /// Before a single-row write.
    pub const PUT: &str = "store.put";
    /// Before a single-row delete.
    pub const DELETE: &str = "store.delete";
    /// Before a range scan.
    pub const SCAN: &str = "store.scan";
    /// Before an atomic batch commit.
    pub const APPLY_BATCH: &str = "store.apply_batch";
    /// Before a checksum read.
    pub const CHECKSUM: &str = "store.checksum";
    /// Inside `LogStore` with `sync_commits` on: after the commit record
    /// is written but **before** `fdatasync` — the window in which a
    /// stalled flush must not acknowledge the batch.
    pub const LOG_SYNC: &str = "log.sync";
}

/// Observer invoked at named sync points. Implementations may sleep (to
/// model a stalled disk or a slow replica) but must return — the store
/// blocks inside the hook, which is the point: the operation, and with it
/// the acknowledgement, cannot complete early.
pub trait FaultHook: Send + Sync {
    /// Called with the sync-point name and the shard the operation targets.
    fn at(&self, point: &'static str, shard: ShardId);
}

/// A [`ShardStore`] wrapper that fires a [`FaultHook`] at a named sync
/// point before delegating each operation to the inner backend.
pub struct FaultStore {
    inner: Arc<dyn ShardStore>,
    hook: Arc<dyn FaultHook>,
}

impl FaultStore {
    pub fn new(inner: Arc<dyn ShardStore>, hook: Arc<dyn FaultHook>) -> Self {
        Self { inner, hook }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &Arc<dyn ShardStore> {
        &self.inner
    }
}

impl ShardStore for FaultStore {
    fn num_shards(&self) -> u32 {
        self.inner.num_shards()
    }

    fn get(&self, shard: ShardId, t: TupleId) -> Result<Option<Vec<u8>>, StoreError> {
        self.hook.at(sync_points::GET, shard);
        self.inner.get(shard, t)
    }

    fn put(&self, shard: ShardId, t: TupleId, value: Vec<u8>) -> Result<(), StoreError> {
        self.hook.at(sync_points::PUT, shard);
        self.inner.put(shard, t, value)
    }

    fn delete(&self, shard: ShardId, t: TupleId) -> Result<bool, StoreError> {
        self.hook.at(sync_points::DELETE, shard);
        self.inner.delete(shard, t)
    }

    fn scan_range(
        &self,
        shard: ShardId,
        table: TableId,
        rows: Range<u64>,
    ) -> Result<Vec<(TupleId, Vec<u8>)>, StoreError> {
        self.hook.at(sync_points::SCAN, shard);
        self.inner.scan_range(shard, table, rows)
    }

    fn apply_batch(&self, shard: ShardId, ops: &[WriteOp]) -> Result<(), StoreError> {
        self.hook.at(sync_points::APPLY_BATCH, shard);
        self.inner.apply_batch(shard, ops)
    }

    fn stats(&self, shard: ShardId) -> Result<ShardStats, StoreError> {
        self.inner.stats(shard)
    }

    fn checksum(&self, shard: ShardId, t: TupleId) -> Result<Option<u64>, StoreError> {
        self.hook.at(sync_points::CHECKSUM, shard);
        self.inner.checksum(shard, t)
    }
}

/// Liveness view shared between the serving layer and the migration
/// executor: which shards' workers have stopped answering.
pub trait ShardHealth: Send + Sync {
    /// Whether `shard` is strictly [`HealthState::Down`] (its worker is
    /// dead and no recovery has started).
    fn is_down(&self, shard: ShardId) -> bool;

    /// Whether `shard` is fully [`HealthState::Live`] — i.e. it holds the
    /// acked-write frontier and may serve reads, lead, and count toward
    /// write quorums. A catching-up shard is neither down nor live.
    fn is_live(&self, shard: ShardId) -> bool {
        !self.is_down(shard)
    }
}

/// Per-shard liveness state. Absent from the [`HealthMap`] means `Live`.
///
/// ```text
///            mark_down                begin_catch_up
///   Live ───────────────► Down ───────────────────► CatchingUp
///    ▲                     ▲                             │
///    │      mark_live      │         mark_down           │
///    └─────────────────────┼─────────────────────────────┤
///                          └─────────────────────────────┘
/// ```
///
/// `CatchingUp` is the rejoin window: the shard's worker is back and the
/// serving layer targets it with every foreground write (so it misses
/// nothing new), but it serves no reads, leads no replica set, and counts
/// toward no write quorum until a catch-up copy (copy → verify against a
/// live replica) flips it `Live`. If the catch-up fails or the worker dies
/// again, `mark_down` sends it back to `Down`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// Holds the acked-write frontier; full read/write/quorum member.
    Live,
    /// Worker dead; receives nothing, serves nothing.
    Down,
    /// Worker back up and receiving writes, but stale until its catch-up
    /// copy verifies — excluded from reads, leadership, and quorums.
    CatchingUp,
}

/// Shared shard-liveness map. `mark_down` is the only transition the data
/// path takes on its own (structural failure detection); the recovery
/// transitions `begin_catch_up` and `mark_live` are driven by whoever runs
/// the rejoin (the re-replication scanner or a chaos/bench harness), and
/// `mark_live` must only be called after a verified catch-up copy — the
/// map itself cannot know whether the shard's store is current.
#[derive(Debug, Default)]
pub struct HealthMap {
    states: RwLock<BTreeMap<ShardId, HealthState>>,
    /// Counts *new* failures (transitions into `Down`) — the serving
    /// layer's failover counter.
    failures: AtomicU64,
    /// Counts completed rejoins (transitions `CatchingUp` → `Live`).
    rejoins: AtomicU64,
}

impl HealthMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current state of `shard`.
    pub fn state(&self, shard: ShardId) -> HealthState {
        self.states
            .read()
            .expect("health lock poisoned")
            .get(&shard)
            .copied()
            .unwrap_or(HealthState::Live)
    }

    /// Marks `shard` failed (from any state). Returns whether it was newly
    /// marked — re-marking an already-down shard is not a new failure, but
    /// killing a catching-up shard is.
    pub fn mark_down(&self, shard: ShardId) -> bool {
        let newly = self
            .states
            .write()
            .expect("health lock poisoned")
            .insert(shard, HealthState::Down)
            != Some(HealthState::Down);
        if newly {
            self.failures.fetch_add(1, Ordering::SeqCst);
        }
        newly
    }

    /// Transitions `shard` from `Down` to `CatchingUp`. Call *after* its
    /// worker is respawned, so foreground writes targeted at the
    /// catching-up shard land instead of failing. Returns `false` (no-op)
    /// unless the shard is currently `Down`.
    pub fn begin_catch_up(&self, shard: ShardId) -> bool {
        let mut states = self.states.write().expect("health lock poisoned");
        match states.get(&shard) {
            Some(HealthState::Down) => {
                states.insert(shard, HealthState::CatchingUp);
                true
            }
            _ => false,
        }
    }

    /// Transitions `shard` from `CatchingUp` to `Live`. Only valid after a
    /// verified catch-up copy; returns `false` (no-op) unless the shard is
    /// currently `CatchingUp`.
    pub fn mark_live(&self, shard: ShardId) -> bool {
        let mut states = self.states.write().expect("health lock poisoned");
        match states.get(&shard) {
            Some(HealthState::CatchingUp) => {
                states.remove(&shard);
                self.rejoins.fetch_add(1, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }

    fn set_of(&self, pred: impl Fn(HealthState) -> bool) -> PartitionSet {
        self.states
            .read()
            .expect("health lock poisoned")
            .iter()
            .filter(|(_, &s)| pred(s))
            .map(|(&shard, _)| shard)
            .collect()
    }

    /// Snapshot of the strictly-`Down` shards as a [`PartitionSet`].
    pub fn down_set(&self) -> PartitionSet {
        self.set_of(|s| s == HealthState::Down)
    }

    /// Snapshot of the `CatchingUp` shards.
    pub fn catching_up_set(&self) -> PartitionSet {
        self.set_of(|s| s == HealthState::CatchingUp)
    }

    /// Snapshot of everything that is not `Live` (`Down` ∪ `CatchingUp`):
    /// the set to exclude from reads, leader choice, and quorum counting.
    pub fn not_live_set(&self) -> PartitionSet {
        self.set_of(|s| s != HealthState::Live)
    }

    /// Number of failures (transitions into `Down`) recorded so far.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::SeqCst)
    }

    /// Number of completed rejoins (`CatchingUp` → `Live`) so far.
    pub fn rejoins(&self) -> u64 {
        self.rejoins.load(Ordering::SeqCst)
    }
}

impl ShardHealth for HealthMap {
    fn is_down(&self, shard: ShardId) -> bool {
        self.state(shard) == HealthState::Down
    }

    fn is_live(&self, shard: ShardId) -> bool {
        self.state(shard) == HealthState::Live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;

    /// Counts invocations per sync point (no sleeping).
    #[derive(Default)]
    struct Counter {
        gets: AtomicU64,
        batches: AtomicU64,
    }

    impl FaultHook for Counter {
        fn at(&self, point: &'static str, _shard: ShardId) {
            match point {
                sync_points::GET => self.gets.fetch_add(1, Ordering::SeqCst),
                sync_points::APPLY_BATCH => self.batches.fetch_add(1, Ordering::SeqCst),
                _ => 0,
            };
        }
    }

    #[test]
    fn fault_store_fires_hooks_and_delegates() {
        let hook = Arc::new(Counter::default());
        let store = FaultStore::new(
            Arc::new(MemStore::new(2)),
            Arc::clone(&hook) as Arc<dyn FaultHook>,
        );
        let t = TupleId::new(0, 1);
        store.put(0, t, vec![1, 2]).unwrap();
        assert_eq!(store.get(0, t).unwrap(), Some(vec![1, 2]));
        store.apply_batch(1, &[WriteOp::Put(t, vec![3])]).unwrap();
        assert_eq!(store.get(1, t).unwrap(), Some(vec![3]));
        assert_eq!(hook.gets.load(Ordering::SeqCst), 2);
        assert_eq!(hook.batches.load(Ordering::SeqCst), 1);
        assert_eq!(store.num_shards(), 2);
        assert_eq!(store.stats(0).unwrap().rows, 1);
        assert!(store.checksum(0, t).unwrap().is_some());
    }

    #[test]
    fn health_map_counts_new_failures_once() {
        let h = HealthMap::new();
        assert!(!h.is_down(3));
        assert!(h.is_live(3));
        assert!(h.down_set().is_empty());
        assert!(h.mark_down(3));
        assert!(!h.mark_down(3), "re-marking is not a new failure");
        assert!(h.mark_down(1));
        assert!(h.is_down(3) && h.is_down(1) && !h.is_down(0));
        assert_eq!(h.failures(), 2);
        let set = h.down_set();
        assert_eq!(set.len(), 2);
        assert!(set.contains(1) && set.contains(3));
    }

    #[test]
    fn health_state_machine_walks_down_catching_up_live() {
        let h = HealthMap::new();
        // Recovery transitions are no-ops from the wrong state.
        assert!(!h.begin_catch_up(2), "cannot catch up a live shard");
        assert!(!h.mark_live(2), "cannot re-mark a live shard");

        assert!(h.mark_down(2));
        assert_eq!(h.state(2), HealthState::Down);
        assert!(!h.mark_live(2), "down shard must catch up first");

        assert!(h.begin_catch_up(2));
        assert!(!h.begin_catch_up(2), "already catching up");
        assert_eq!(h.state(2), HealthState::CatchingUp);
        // Catching up is neither down nor live: excluded from reads and
        // quorums, but no longer treated as failed for routing.
        assert!(!h.is_down(2) && !h.is_live(2));
        assert!(h.down_set().is_empty());
        assert!(h.catching_up_set().contains(2));
        assert!(h.not_live_set().contains(2));

        assert!(h.mark_live(2));
        assert_eq!(h.state(2), HealthState::Live);
        assert!(h.is_live(2));
        assert!(h.not_live_set().is_empty());
        assert_eq!(h.rejoins(), 1);
        assert_eq!(h.failures(), 1);
    }

    #[test]
    fn killing_a_catching_up_shard_is_a_new_failure() {
        let h = HealthMap::new();
        assert!(h.mark_down(5));
        assert!(h.begin_catch_up(5));
        assert!(h.mark_down(5), "dying mid-catch-up is a fresh failure");
        assert_eq!(h.state(5), HealthState::Down);
        assert_eq!(h.failures(), 2);
        assert_eq!(h.rejoins(), 0);
    }
}
