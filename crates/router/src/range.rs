//! Range-predicate partitioning: the output of Schism's explanation phase
//! (§4.3) — per-table first-match rule lists over attribute ranges, with
//! whole-table replication as a policy (the `item` table in TPC-C).

use crate::pset::PartitionSet;
use crate::scheme::{Complexity, Route, Scheme};
use schism_sql::{ColId, Predicate, Statement, Value};
use schism_workload::{TupleId, TupleValues};

/// One rule: a conjunction of inclusive ranges over attributes, mapping to
/// a set of partitions (a set because replicated tuples map to several).
#[derive(Clone, Debug, PartialEq)]
pub struct RangeRule {
    /// `(attr, lo, hi)` — attr value must be within `lo..=hi`.
    pub conds: Vec<(ColId, i64, i64)>,
    pub partitions: PartitionSet,
}

impl RangeRule {
    /// Whether a tuple's attribute values satisfy every condition.
    fn matches(&self, t: TupleId, db: &dyn TupleValues) -> Option<bool> {
        for &(col, lo, hi) in &self.conds {
            let v = db.value(t, col)?;
            if !(lo..=hi).contains(&v) {
                return Some(false);
            }
        }
        Some(true)
    }

    /// Whether a statement's predicate could select rows in this rule's
    /// region (conservative: unknown → true).
    fn overlaps(&self, pred: &Predicate) -> bool {
        for &(col, lo, hi) in &self.conds {
            if let Some(values) = pred.pinned_values(col) {
                let any_in = values.iter().any(|v| match v {
                    Value::Int(i) => (lo..=hi).contains(i),
                    _ => false,
                });
                if !any_in {
                    return false;
                }
            }
        }
        true
    }
}

/// Per-table placement policy.
#[derive(Clone, Debug)]
pub enum TablePolicy {
    /// First-match rule list; tuples matching no rule fall to `default`.
    Rules {
        rules: Vec<RangeRule>,
        default: PartitionSet,
    },
    /// The whole table is replicated everywhere.
    Replicate,
    /// The whole table lives on one partition.
    Single(u32),
}

/// A range-predicate scheme: one policy per table.
#[derive(Clone, Debug)]
pub struct RangeScheme {
    k: u32,
    policies: Vec<TablePolicy>,
}

impl RangeScheme {
    /// Builds a scheme; `policies[table]` must cover every table id used.
    pub fn new(k: u32, policies: Vec<TablePolicy>) -> Self {
        assert!(k >= 1);
        Self { k, policies }
    }

    fn policy(&self, table: u16) -> &TablePolicy {
        self.policies
            .get(table as usize)
            .unwrap_or(&TablePolicy::Replicate)
    }

    /// Read-only access to the policies (for reporting).
    pub fn policies(&self) -> &[TablePolicy] {
        &self.policies
    }
}

impl Scheme for RangeScheme {
    fn name(&self) -> String {
        let rules: usize = self
            .policies
            .iter()
            .map(|p| match p {
                TablePolicy::Rules { rules, .. } => rules.len(),
                _ => 0,
            })
            .sum();
        format!("range-predicates ({rules} rules) k={}", self.k)
    }

    fn k(&self) -> u32 {
        self.k
    }

    fn complexity(&self) -> Complexity {
        Complexity::Range
    }

    fn locate_tuple(&self, t: TupleId, db: &dyn TupleValues) -> PartitionSet {
        match self.policy(t.table) {
            TablePolicy::Replicate => PartitionSet::all(self.k),
            TablePolicy::Single(p) => PartitionSet::single(*p),
            TablePolicy::Rules { rules, default } => {
                for r in rules {
                    match r.matches(t, db) {
                        Some(true) => return r.partitions,
                        Some(false) => continue,
                        None => return *default, // missing attribute value
                    }
                }
                *default
            }
        }
    }

    fn route_statement(&self, stmt: &Statement) -> Route {
        let write = stmt.kind.is_write();
        match self.policy(stmt.table) {
            TablePolicy::Replicate => {
                if write {
                    Route::must(PartitionSet::all(self.k))
                } else {
                    Route::any(PartitionSet::all(self.k))
                }
            }
            TablePolicy::Single(p) => Route::must(PartitionSet::single(*p)),
            TablePolicy::Rules { rules, default } => {
                let mut targets = PartitionSet::empty();
                let mut fully_pinned = true;
                for r in rules {
                    if r.overlaps(&stmt.predicate) {
                        targets.union_with(&r.partitions);
                    }
                    for &(col, _, _) in &r.conds {
                        if stmt.predicate.pinned_values(col).is_none() {
                            fully_pinned = false;
                        }
                    }
                }
                // If the statement doesn't pin all ruled attributes, rows
                // outside every rule could match too.
                if !fully_pinned || targets.is_empty() {
                    targets.union_with(default);
                }
                Route::must(targets)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schism_workload::MaterializedDb;

    /// The paper's TPC-C outcome: stock split by s_w_id, item replicated.
    fn tpcc_like() -> (RangeScheme, MaterializedDb) {
        let mut db = MaterializedDb::new();
        let stock = db.add_table(2);
        // s_w_id for rows 0..6: w 1,1,1,2,2,2
        db.set_column(stock, 0, vec![1, 1, 1, 2, 2, 2]);
        let _item = db.add_table(1);
        let scheme = RangeScheme::new(
            2,
            vec![
                TablePolicy::Rules {
                    rules: vec![
                        RangeRule {
                            conds: vec![(0, i64::MIN, 1)],
                            partitions: PartitionSet::single(0),
                        },
                        RangeRule {
                            conds: vec![(0, 2, i64::MAX)],
                            partitions: PartitionSet::single(1),
                        },
                    ],
                    default: PartitionSet::single(0),
                },
                TablePolicy::Replicate,
            ],
        );
        (scheme, db)
    }

    #[test]
    fn locates_by_rule() {
        let (s, db) = tpcc_like();
        assert_eq!(
            s.locate_tuple(TupleId::new(0, 0), &db),
            PartitionSet::single(0)
        );
        assert_eq!(
            s.locate_tuple(TupleId::new(0, 4), &db),
            PartitionSet::single(1)
        );
        // Replicated table.
        assert_eq!(s.locate_tuple(TupleId::new(1, 0), &db).len(), 2);
    }

    #[test]
    fn routes_pinned_statement_to_one_partition() {
        let (s, _) = tpcc_like();
        let stmt = Statement::select(0, Predicate::Eq(0, Value::Int(2)));
        let r = s.route_statement(&stmt);
        assert_eq!(r.targets, PartitionSet::single(1));
        let stmt = Statement::select(0, Predicate::Eq(0, Value::Int(1)));
        assert_eq!(s.route_statement(&stmt).targets, PartitionSet::single(0));
    }

    #[test]
    fn unpinned_statement_broadcasts() {
        let (s, _) = tpcc_like();
        let stmt = Statement::select(0, Predicate::True);
        assert_eq!(s.route_statement(&stmt).targets.len(), 2);
    }

    #[test]
    fn replicated_read_vs_write() {
        let (s, _) = tpcc_like();
        let read = s.route_statement(&Statement::select(1, Predicate::True));
        assert!(read.any_one);
        let write = s.route_statement(&Statement::update(1, Predicate::True));
        assert!(!write.any_one);
    }

    #[test]
    fn missing_attribute_falls_to_default() {
        let (s, db) = tpcc_like();
        // Row 100 has no materialized s_w_id.
        assert_eq!(
            s.locate_tuple(TupleId::new(0, 100), &db),
            PartitionSet::single(0)
        );
        // Unknown table id -> replicate by default policy.
        assert_eq!(s.locate_tuple(TupleId::new(9, 0), &db).len(), 2);
    }

    #[test]
    fn multi_attribute_rule() {
        let mut db = MaterializedDb::new();
        let t = db.add_table(2);
        db.set_column(t, 0, vec![1, 1, 2, 2]);
        db.set_column(t, 1, vec![1, 2, 1, 2]);
        let s = RangeScheme::new(
            4,
            vec![TablePolicy::Rules {
                rules: vec![
                    RangeRule {
                        conds: vec![(0, 1, 1), (1, 1, 1)],
                        partitions: PartitionSet::single(0),
                    },
                    RangeRule {
                        conds: vec![(0, 1, 1), (1, 2, 2)],
                        partitions: PartitionSet::single(1),
                    },
                    RangeRule {
                        conds: vec![(0, 2, 2), (1, 1, 1)],
                        partitions: PartitionSet::single(2),
                    },
                ],
                default: PartitionSet::single(3),
            }],
        );
        assert_eq!(
            s.locate_tuple(TupleId::new(0, 0), &db),
            PartitionSet::single(0)
        );
        assert_eq!(
            s.locate_tuple(TupleId::new(0, 1), &db),
            PartitionSet::single(1)
        );
        assert_eq!(
            s.locate_tuple(TupleId::new(0, 2), &db),
            PartitionSet::single(2)
        );
        assert_eq!(
            s.locate_tuple(TupleId::new(0, 3), &db),
            PartitionSet::single(3)
        );
        // Statement pinning both attrs hits exactly one rule... plus the
        // default because rule regions don't provably cover the pin? No —
        // both attrs pinned, one rule overlaps.
        let stmt = Statement::select(
            0,
            Predicate::And(vec![
                Predicate::Eq(0, Value::Int(1)),
                Predicate::Eq(1, Value::Int(2)),
            ]),
        );
        assert_eq!(s.route_statement(&stmt).targets, PartitionSet::single(1));
    }
}
