//! The cost metric of the whole paper: the number of distributed
//! transactions a scheme induces on a (test) trace (§4.4, §6.1).

use crate::router::route_transaction;
use crate::scheme::Scheme;
use schism_workload::{Trace, TupleValues};

/// Evaluation result for one scheme on one trace.
#[derive(Clone, Debug)]
pub struct CostReport {
    pub total_txns: usize,
    pub distributed_txns: usize,
    /// Sum of participant counts (for mean participants).
    pub total_participants: u64,
    /// Transactions per partition (load balance view), indexed by
    /// partition id.
    pub txns_per_partition: Vec<u64>,
}

impl CostReport {
    /// Fraction of distributed transactions — the paper's y-axis in
    /// Figure 4.
    pub fn distributed_fraction(&self) -> f64 {
        if self.total_txns == 0 {
            0.0
        } else {
            self.distributed_txns as f64 / self.total_txns as f64
        }
    }

    /// Mean participants per transaction.
    pub fn mean_participants(&self) -> f64 {
        if self.total_txns == 0 {
            0.0
        } else {
            self.total_participants as f64 / self.total_txns as f64
        }
    }

    /// Load imbalance across partitions (`max * k / total`), 1.0 = perfect.
    pub fn load_imbalance(&self) -> f64 {
        let total: u64 = self.txns_per_partition.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let max = *self.txns_per_partition.iter().max().expect("k >= 1");
        max as f64 * self.txns_per_partition.len() as f64 / total as f64
    }
}

/// Counts distributed transactions for `scheme` over `trace`.
pub fn evaluate(scheme: &dyn Scheme, trace: &Trace, db: &dyn TupleValues) -> CostReport {
    let mut report = CostReport {
        total_txns: trace.len(),
        distributed_txns: 0,
        total_participants: 0,
        txns_per_partition: vec![0; scheme.k() as usize],
    };
    for txn in &trace.transactions {
        let p = route_transaction(txn, scheme, db);
        if p.is_distributed() {
            report.distributed_txns += 1;
        }
        report.total_participants += p.set.len() as u64;
        for part in p.set.iter() {
            report.txns_per_partition[part as usize] += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::HashScheme;
    use crate::scheme::ReplicationScheme;
    use schism_workload::random::{self, RandomConfig};
    use schism_workload::simplecount::{self, AccessMode, SimpleCountConfig};

    #[test]
    fn replication_costs_every_write() {
        // Random workload: every transaction is a 2-tuple write, so full
        // replication makes 100% distributed (the paper's worst case).
        let w = random::generate(&RandomConfig {
            records: 1000,
            num_txns: 500,
            ..Default::default()
        });
        let r = evaluate(&ReplicationScheme::new(4), &w.trace, &*w.db);
        assert_eq!(r.distributed_txns, 500);
        assert!((r.distributed_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(r.mean_participants(), 4.0);
    }

    #[test]
    fn random_workload_hash_cost_matches_theory() {
        // Two uniform tuples on k=2: P(same partition) = 1/2.
        let w = random::generate(&RandomConfig {
            records: 100_000,
            num_txns: 4_000,
            ..Default::default()
        });
        let r = evaluate(&HashScheme::by_row_id(2), &w.trace, &*w.db);
        let f = r.distributed_fraction();
        assert!((0.45..=0.55).contains(&f), "expected ~0.5, got {f}");
    }

    #[test]
    fn aligned_range_workload_is_local_under_matching_hash() {
        // SimpleCount in single-partition mode + a scheme that maps each
        // range stripe to one partition = zero distributed transactions.
        // Emulate the range scheme with the ground-truth striping.
        use crate::pset::PartitionSet;
        use crate::range::{RangeRule, RangeScheme, TablePolicy};
        let cfg = SimpleCountConfig {
            clients: 10,
            rows_per_client: 100,
            servers: 4,
            mode: AccessMode::SinglePartition,
            num_txns: 1_000,
            ..Default::default()
        };
        let w = simplecount::generate(&cfg);
        let stripe = 1000 / 4;
        let rules: Vec<RangeRule> = (0..4)
            .map(|p| RangeRule {
                conds: vec![(0, (p as i64) * stripe, (p as i64 + 1) * stripe - 1)],
                partitions: PartitionSet::single(p),
            })
            .collect();
        let scheme = RangeScheme::new(
            4,
            vec![TablePolicy::Rules {
                rules,
                default: PartitionSet::single(0),
            }],
        );
        let r = evaluate(&scheme, &w.trace, &*w.db);
        assert_eq!(r.distributed_txns, 0, "aligned scheme must be all-local");
        // And the same scheme on the distributed-mode workload fails hard.
        let w2 = simplecount::generate(&SimpleCountConfig {
            mode: AccessMode::Distributed,
            ..cfg
        });
        let r2 = evaluate(&scheme, &w2.trace, &*w2.db);
        assert!(r2.distributed_fraction() > 0.99);
    }

    #[test]
    fn load_balance_accounting() {
        let w = random::generate(&RandomConfig {
            records: 10_000,
            num_txns: 2_000,
            ..Default::default()
        });
        let r = evaluate(&HashScheme::by_row_id(4), &w.trace, &*w.db);
        assert!(
            r.load_imbalance() < 1.2,
            "hash should balance: {}",
            r.load_imbalance()
        );
        let total: u64 = r.txns_per_partition.iter().sum();
        assert_eq!(total, r.total_participants);
    }
}
