//! Versioned scheme swap: correct routing *during* a live migration.
//!
//! While a migration plan executes, two placements are live at once: tuples
//! not yet moved still live where the **old** scheme says, tuples already
//! moved live where the **new** scheme says. [`VersionedScheme`] pairs the
//! two schemes with a per-tuple moved-set and routes accordingly, the same
//! way the lookup-table backends pair a [`crate::PartitionSet`] per row:
//!
//! - `locate_tuple` consults the moved-set and delegates to exactly one of
//!   the two schemes, so a single-owner tuple has a single owner at every
//!   instant of the migration (the property tests in the umbrella crate
//!   prove this along full move sequences);
//! - `route_statement` must be conservative — a predicate can match both
//!   moved and unmoved tuples, so the route is the union of both schemes'
//!   routes and stays `must`-semantics unless both sides allow any-one.
//!
//! The moved-set is interior-mutable (`RwLock`) because the router shares
//! schemes as `&dyn Scheme`; marking a tuple moved is the commit point of
//! its copy and is idempotent.

use crate::pset::PartitionSet;
use crate::scheme::{Complexity, Route, Scheme};
use schism_sql::Statement;
use schism_workload::{TupleId, TupleValues};
use std::collections::HashSet;
use std::sync::{Arc, RwLock};

/// A scheme pair (old → new) plus the set of tuples already migrated.
pub struct VersionedScheme {
    old: Arc<dyn Scheme>,
    new: Arc<dyn Scheme>,
    moved: RwLock<HashSet<TupleId>>,
}

impl VersionedScheme {
    /// Starts a migration epoch: everything still routes to `old`.
    pub fn new(old: Arc<dyn Scheme>, new: Arc<dyn Scheme>) -> Self {
        Self {
            old,
            new,
            moved: RwLock::new(HashSet::new()),
        }
    }

    /// Marks one tuple as moved (its copy on the new placement is now
    /// authoritative). Idempotent; returns whether the tuple was newly
    /// marked.
    pub fn mark_moved(&self, t: TupleId) -> bool {
        self.moved.write().expect("moved-set poisoned").insert(t)
    }

    /// Marks a whole batch as moved (one lock acquisition).
    pub fn mark_batch<I: IntoIterator<Item = TupleId>>(&self, tuples: I) -> usize {
        let mut set = self.moved.write().expect("moved-set poisoned");
        tuples.into_iter().filter(|&t| set.insert(t)).count()
    }

    /// Whether `t` has been migrated.
    pub fn is_moved(&self, t: TupleId) -> bool {
        self.moved.read().expect("moved-set poisoned").contains(&t)
    }

    /// Number of tuples migrated so far.
    pub fn moved_count(&self) -> usize {
        self.moved.read().expect("moved-set poisoned").len()
    }

    /// Ends the epoch: the new scheme is authoritative for everything.
    /// Callers swap the returned scheme into the router and drop `self`.
    pub fn finalize(self) -> Arc<dyn Scheme> {
        self.new
    }

    /// The old (pre-migration) scheme.
    pub fn old_scheme(&self) -> &Arc<dyn Scheme> {
        &self.old
    }

    /// The new (post-migration) scheme.
    pub fn new_scheme(&self) -> &Arc<dyn Scheme> {
        &self.new
    }
}

impl Scheme for VersionedScheme {
    fn name(&self) -> String {
        format!("versioned({} -> {})", self.old.name(), self.new.name())
    }

    fn k(&self) -> u32 {
        self.old.k().max(self.new.k())
    }

    fn complexity(&self) -> Complexity {
        self.old.complexity().max(self.new.complexity())
    }

    fn locate_tuple(&self, t: TupleId, db: &dyn TupleValues) -> PartitionSet {
        if self.is_moved(t) {
            self.new.locate_tuple(t, db)
        } else {
            self.old.locate_tuple(t, db)
        }
    }

    fn route_statement(&self, stmt: &Statement) -> Route {
        let a = self.old.route_statement(stmt);
        let b = self.new.route_statement(stmt);
        Route {
            targets: a.targets.union(&b.targets),
            // Any-one is only safe if both epochs would allow it (a
            // replicated read can be served anywhere in either placement).
            any_one: a.any_one && b.any_one,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::HashScheme;
    use crate::scheme::ReplicationScheme;
    use schism_sql::{Predicate, Value};
    use schism_workload::MaterializedDb;

    fn hash_pair() -> (Arc<dyn Scheme>, Arc<dyn Scheme>) {
        (
            Arc::new(HashScheme::by_row_id(2)) as Arc<dyn Scheme>,
            Arc::new(HashScheme::by_row_id(4)) as Arc<dyn Scheme>,
        )
    }

    #[test]
    fn routes_old_until_moved_then_new() {
        let (old, new) = hash_pair();
        let db = MaterializedDb::new();
        let vs = VersionedScheme::new(old.clone(), new.clone());
        let t = TupleId::new(0, 42);
        assert_eq!(vs.locate_tuple(t, &db), old.locate_tuple(t, &db));
        assert!(vs.mark_moved(t));
        assert!(!vs.mark_moved(t), "second mark is a no-op");
        assert_eq!(vs.locate_tuple(t, &db), new.locate_tuple(t, &db));
        // Unmoved neighbors are untouched.
        let u = TupleId::new(0, 43);
        assert_eq!(vs.locate_tuple(u, &db), old.locate_tuple(u, &db));
        assert_eq!(vs.moved_count(), 1);
    }

    #[test]
    fn statement_route_covers_both_epochs() {
        let (old, new) = hash_pair();
        let vs = VersionedScheme::new(old.clone(), new.clone());
        let stmt = Statement::select(0, Predicate::Eq(0, Value::Int(7)));
        let r = vs.route_statement(&stmt);
        let a = old.route_statement(&stmt);
        let b = new.route_statement(&stmt);
        assert_eq!(r.targets, a.targets.union(&b.targets));
        assert!(!r.any_one, "point-lookup routes are must-routes");
    }

    #[test]
    fn any_one_requires_both_epochs() {
        let old: Arc<dyn Scheme> = Arc::new(ReplicationScheme::new(3));
        let new: Arc<dyn Scheme> = Arc::new(ReplicationScheme::new(3));
        let vs = VersionedScheme::new(old, new);
        let read = Statement::select(0, Predicate::Eq(0, Value::Int(1)));
        assert!(vs.route_statement(&read).any_one);
        let write = Statement::update(0, Predicate::Eq(0, Value::Int(1)));
        assert!(!vs.route_statement(&write).any_one);
    }

    #[test]
    fn finalize_hands_back_new_scheme() {
        let (old, new) = hash_pair();
        let vs = VersionedScheme::new(old, new.clone());
        vs.mark_batch([TupleId::new(0, 1), TupleId::new(0, 2)]);
        let done = vs.finalize();
        assert_eq!(done.name(), new.name());
    }

    #[test]
    fn k_and_complexity_are_conservative() {
        let (old, new) = hash_pair();
        let vs = VersionedScheme::new(old, new);
        assert_eq!(vs.k(), 4);
        assert_eq!(vs.complexity(), Complexity::Hash);
        assert!(vs.name().starts_with("versioned("));
    }
}
