//! Versioned scheme swap: correct routing *during* a live migration.
//!
//! While a migration plan executes, two placements are live at once: tuples
//! not yet moved still live where the **old** scheme says, tuples already
//! moved live where the **new** scheme says. [`VersionedScheme`] pairs the
//! two schemes with a per-tuple moved-set and routes accordingly, the same
//! way the lookup-table backends pair a [`crate::PartitionSet`] per row:
//!
//! - `locate_tuple` consults the moved-set and delegates to exactly one of
//!   the two schemes, so a single-owner tuple has a single owner at every
//!   instant of the migration (the property tests in the umbrella crate
//!   prove this along full move sequences);
//! - `route_statement` must be conservative — a predicate can match both
//!   moved and unmoved tuples, so the route is the union of both schemes'
//!   routes and stays `must`-semantics unless both sides allow any-one.
//!
//! The moved-set is interior-mutable (`RwLock`) because the router shares
//! schemes as `&dyn Scheme`; marking a tuple moved is the commit point of
//! its copy and is idempotent.
//!
//! ## Acknowledgement-driven flips
//!
//! The executor-facing API is [`flip_batch`](VersionedScheme::flip_batch):
//! batches flip strictly in plan order, each flip carrying the sequence
//! number of the batch whose copy was verified — the acknowledgement. An
//! out-of-order or duplicate flip is rejected with [`FlipError`] instead of
//! silently advancing the moved-set, so routing can never *lead* the bytes:
//! a tuple routes to the new placement only after its batch's copy has been
//! acknowledged. [`mark_moved`](VersionedScheme::mark_moved) and
//! [`mark_batch`](VersionedScheme::mark_batch) remain as the low-level,
//! unsequenced primitives (single-tuple tests, replays); they deliberately
//! do not advance the batch cursor.

use crate::pset::PartitionSet;
use crate::scheme::{Complexity, Route, Scheme};
use schism_sql::Statement;
use schism_workload::{TupleId, TupleValues};
use std::collections::HashSet;
use std::fmt;
use std::sync::{Arc, RwLock};

/// An out-of-order or duplicate batch flip: the moved-set only advances on
/// the acknowledgement of the next expected batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlipError {
    /// The sequence number the scheme expected next.
    pub expected: u64,
    /// The sequence number the caller tried to flip.
    pub got: u64,
}

impl fmt::Display for FlipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batch flip out of order: expected seq {}, got {}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for FlipError {}

#[derive(Default)]
struct MovedState {
    set: HashSet<TupleId>,
    /// Number of batches flipped through the sequenced API; also the next
    /// expected sequence number.
    flipped_batches: u64,
}

/// A scheme pair (old → new) plus the set of tuples already migrated.
pub struct VersionedScheme {
    old: Arc<dyn Scheme>,
    new: Arc<dyn Scheme>,
    moved: RwLock<MovedState>,
}

impl VersionedScheme {
    /// Starts a migration epoch: everything still routes to `old`.
    pub fn new(old: Arc<dyn Scheme>, new: Arc<dyn Scheme>) -> Self {
        Self {
            old,
            new,
            moved: RwLock::new(MovedState::default()),
        }
    }

    /// Marks one tuple as moved (its copy on the new placement is now
    /// authoritative). Idempotent; returns whether the tuple was newly
    /// marked.
    pub fn mark_moved(&self, t: TupleId) -> bool {
        self.moved
            .write()
            .expect("moved-set poisoned")
            .set
            .insert(t)
    }

    /// Marks a whole batch as moved (one lock acquisition), without
    /// advancing the batch cursor. Prefer
    /// [`flip_batch`](Self::flip_batch) when executing a plan.
    pub fn mark_batch<I: IntoIterator<Item = TupleId>>(&self, tuples: I) -> usize {
        let mut state = self.moved.write().expect("moved-set poisoned");
        tuples.into_iter().filter(|&t| state.set.insert(t)).count()
    }

    /// Flips batch `seq` on acknowledgement of its verified copy. Batches
    /// flip strictly in order: `seq` must equal
    /// [`flipped_batches`](Self::flipped_batches), otherwise nothing
    /// changes and a [`FlipError`] reports the expected sequence. The flip
    /// is atomic — a concurrent reader sees the whole batch moved or none
    /// of it. Returns the number of newly moved tuples.
    pub fn flip_batch<I: IntoIterator<Item = TupleId>>(
        &self,
        seq: u64,
        tuples: I,
    ) -> Result<usize, FlipError> {
        let mut state = self.moved.write().expect("moved-set poisoned");
        if seq != state.flipped_batches {
            return Err(FlipError {
                expected: state.flipped_batches,
                got: seq,
            });
        }
        state.flipped_batches += 1;
        Ok(tuples.into_iter().filter(|&t| state.set.insert(t)).count())
    }

    /// Number of batches flipped through [`flip_batch`](Self::flip_batch);
    /// equivalently, the next expected sequence number.
    pub fn flipped_batches(&self) -> u64 {
        self.moved
            .read()
            .expect("moved-set poisoned")
            .flipped_batches
    }

    /// Whether `t` has been migrated.
    pub fn is_moved(&self, t: TupleId) -> bool {
        self.moved
            .read()
            .expect("moved-set poisoned")
            .set
            .contains(&t)
    }

    /// Number of tuples migrated so far.
    pub fn moved_count(&self) -> usize {
        self.moved.read().expect("moved-set poisoned").set.len()
    }

    /// Ends the epoch: the new scheme is authoritative for everything.
    /// Callers swap the returned scheme into the router and drop `self`.
    pub fn finalize(self) -> Arc<dyn Scheme> {
        self.new
    }

    /// The old (pre-migration) scheme.
    pub fn old_scheme(&self) -> &Arc<dyn Scheme> {
        &self.old
    }

    /// The new (post-migration) scheme.
    pub fn new_scheme(&self) -> &Arc<dyn Scheme> {
        &self.new
    }
}

impl Scheme for VersionedScheme {
    fn name(&self) -> String {
        format!("versioned({} -> {})", self.old.name(), self.new.name())
    }

    fn k(&self) -> u32 {
        self.old.k().max(self.new.k())
    }

    fn complexity(&self) -> Complexity {
        self.old.complexity().max(self.new.complexity())
    }

    fn locate_tuple(&self, t: TupleId, db: &dyn TupleValues) -> PartitionSet {
        if self.is_moved(t) {
            self.new.locate_tuple(t, db)
        } else {
            self.old.locate_tuple(t, db)
        }
    }

    fn route_statement(&self, stmt: &Statement) -> Route {
        let a = self.old.route_statement(stmt);
        let b = self.new.route_statement(stmt);
        Route {
            targets: a.targets.union(&b.targets),
            // Any-one is only safe if both epochs would allow it (a
            // replicated read can be served anywhere in either placement).
            any_one: a.any_one && b.any_one,
        }
    }

    /// Replica roles follow ownership: a moved tuple's leader and
    /// followers are the new epoch's, an unmoved tuple's the old epoch's.
    /// New-epoch pre-copies of an unmoved tuple are *not* part of its
    /// replica set — they lag until their batch is copied, so they are
    /// never promotion candidates (see the serving layer's failover docs).
    fn replica_set(&self, t: TupleId, db: &dyn TupleValues) -> crate::replica::ReplicaSet {
        if self.is_moved(t) {
            self.new.replica_set(t, db)
        } else {
            self.old.replica_set(t, db)
        }
    }

    /// Both epochs must be able to cover their tuples from live shards: a
    /// predicate can match moved and unmoved tuples alike, so the
    /// fallback is the union of both epochs' fallbacks (and `None` as
    /// soon as either epoch is uncoverable).
    fn route_read_fallback(&self, stmt: &Statement, down: &PartitionSet) -> Option<PartitionSet> {
        let a = self.old.route_read_fallback(stmt, down)?;
        let b = self.new.route_read_fallback(stmt, down)?;
        Some(a.union(&b))
    }

    /// Mid-migration write ordering: a moved tuple is wholly owned by the
    /// new placement (its own phases apply); an unmoved tuple writes its
    /// authoritative old-epoch phases first, then pre-writes any extra
    /// new-epoch copies as one final phase. The executor's verify step
    /// re-reads the source, so this ordering guarantees a
    /// verified-then-flipped batch always carries (or is followed onto the
    /// destination by) every acknowledged write.
    fn write_phases(&self, t: TupleId, db: &dyn TupleValues) -> Vec<PartitionSet> {
        if self.is_moved(t) {
            self.new.write_phases(t, db)
        } else {
            let mut phases = self.old.write_phases(t, db);
            let old_all = self.old.locate_tuple(t, db);
            let extra = self.new.locate_tuple(t, db).difference(&old_all);
            if !extra.is_empty() {
                phases.push(extra);
            }
            phases
        }
    }

    fn route_write_phases(&self, stmt: &Statement) -> Vec<PartitionSet> {
        // A predicate can match moved and unmoved tuples alike, so be
        // conservative: the old epoch's phases first, then whatever the
        // new epoch adds on top.
        let mut phases = self.old.route_write_phases(stmt);
        let old_all = self.old.route_statement(stmt).targets;
        let extra = self.new.route_statement(stmt).targets.difference(&old_all);
        if !extra.is_empty() {
            phases.push(extra);
        }
        phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::HashScheme;
    use crate::scheme::ReplicationScheme;
    use schism_sql::{Predicate, Value};
    use schism_workload::MaterializedDb;

    fn hash_pair() -> (Arc<dyn Scheme>, Arc<dyn Scheme>) {
        (
            Arc::new(HashScheme::by_row_id(2)) as Arc<dyn Scheme>,
            Arc::new(HashScheme::by_row_id(4)) as Arc<dyn Scheme>,
        )
    }

    #[test]
    fn routes_old_until_moved_then_new() {
        let (old, new) = hash_pair();
        let db = MaterializedDb::new();
        let vs = VersionedScheme::new(old.clone(), new.clone());
        let t = TupleId::new(0, 42);
        assert_eq!(vs.locate_tuple(t, &db), old.locate_tuple(t, &db));
        assert!(vs.mark_moved(t));
        assert!(!vs.mark_moved(t), "second mark is a no-op");
        assert_eq!(vs.locate_tuple(t, &db), new.locate_tuple(t, &db));
        // Unmoved neighbors are untouched.
        let u = TupleId::new(0, 43);
        assert_eq!(vs.locate_tuple(u, &db), old.locate_tuple(u, &db));
        assert_eq!(vs.moved_count(), 1);
    }

    #[test]
    fn statement_route_covers_both_epochs() {
        let (old, new) = hash_pair();
        let vs = VersionedScheme::new(old.clone(), new.clone());
        let stmt = Statement::select(0, Predicate::Eq(0, Value::Int(7)));
        let r = vs.route_statement(&stmt);
        let a = old.route_statement(&stmt);
        let b = new.route_statement(&stmt);
        assert_eq!(r.targets, a.targets.union(&b.targets));
        assert!(!r.any_one, "point-lookup routes are must-routes");
    }

    #[test]
    fn any_one_requires_both_epochs() {
        let old: Arc<dyn Scheme> = Arc::new(ReplicationScheme::new(3));
        let new: Arc<dyn Scheme> = Arc::new(ReplicationScheme::new(3));
        let vs = VersionedScheme::new(old, new);
        let read = Statement::select(0, Predicate::Eq(0, Value::Int(1)));
        assert!(vs.route_statement(&read).any_one);
        let write = Statement::update(0, Predicate::Eq(0, Value::Int(1)));
        assert!(!vs.route_statement(&write).any_one);
    }

    #[test]
    fn flip_batches_in_order_only() {
        let (old, new) = hash_pair();
        let db = MaterializedDb::new();
        let vs = VersionedScheme::new(old.clone(), new.clone());
        let b0 = [TupleId::new(0, 1), TupleId::new(0, 2)];
        let b1 = [TupleId::new(0, 3)];
        assert_eq!(vs.flipped_batches(), 0);
        // Flipping batch 1 before batch 0 is rejected and changes nothing.
        let err = vs.flip_batch(1, b1).unwrap_err();
        assert_eq!(
            err,
            FlipError {
                expected: 0,
                got: 1
            }
        );
        assert_eq!(vs.moved_count(), 0);
        assert_eq!(
            vs.locate_tuple(TupleId::new(0, 3), &db),
            old.locate_tuple(TupleId::new(0, 3), &db),
            "rejected flip must not affect routing"
        );
        // In order: both flips land, routing follows.
        assert_eq!(vs.flip_batch(0, b0).unwrap(), 2);
        assert_eq!(vs.flip_batch(1, b1).unwrap(), 1);
        assert_eq!(vs.flipped_batches(), 2);
        assert_eq!(
            vs.locate_tuple(TupleId::new(0, 3), &db),
            new.locate_tuple(TupleId::new(0, 3), &db)
        );
        // Replaying an already-flipped batch is rejected (duplicate ack).
        let dup = vs.flip_batch(0, b0).unwrap_err();
        assert_eq!(dup.expected, 2);
        assert_eq!(vs.moved_count(), 3);
    }

    #[test]
    fn mark_batch_does_not_advance_flip_cursor() {
        let (old, new) = hash_pair();
        let vs = VersionedScheme::new(old, new);
        vs.mark_batch([TupleId::new(0, 9)]);
        assert_eq!(vs.flipped_batches(), 0, "unsequenced marks are not acks");
        assert_eq!(vs.flip_batch(0, [TupleId::new(0, 9)]).unwrap(), 0);
        assert_eq!(vs.flipped_batches(), 1);
    }

    #[test]
    fn finalize_hands_back_new_scheme() {
        let (old, new) = hash_pair();
        let vs = VersionedScheme::new(old, new.clone());
        vs.mark_batch([TupleId::new(0, 1), TupleId::new(0, 2)]);
        let done = vs.finalize();
        assert_eq!(done.name(), new.name());
    }

    #[test]
    fn write_phases_order_old_before_new_until_moved() {
        let (old, new) = hash_pair();
        let db = MaterializedDb::new();
        let vs = VersionedScheme::new(old.clone(), new.clone());
        // Find a tuple whose placement actually changes between epochs.
        let t = (0..256)
            .map(|r| TupleId::new(0, r))
            .find(|&t| old.locate_tuple(t, &db) != new.locate_tuple(t, &db))
            .expect("k=2 -> k=4 must relocate something");
        let phases = vs.write_phases(t, &db);
        assert_eq!(phases.len(), 2);
        assert_eq!(
            phases[0],
            old.locate_tuple(t, &db),
            "phase 0 is the old epoch"
        );
        assert_eq!(
            phases[1],
            new.locate_tuple(t, &db)
                .difference(&old.locate_tuple(t, &db)),
            "the final phase pre-writes only the new epoch's extra copies"
        );
        assert!(
            phases[0].intersect(&phases[1]).is_empty(),
            "phases never overlap"
        );
        // Once moved, the new placement is the only write target.
        vs.mark_moved(t);
        assert_eq!(vs.write_phases(t, &db), vec![new.locate_tuple(t, &db)]);
    }

    #[test]
    fn replica_set_follows_ownership_epoch() {
        use crate::replica::ReplicatedScheme;
        let db = MaterializedDb::new();
        let old: Arc<dyn Scheme> =
            Arc::new(ReplicatedScheme::new(2, Arc::new(HashScheme::by_row_id(4))));
        let new: Arc<dyn Scheme> = Arc::new(ReplicatedScheme::new(
            2,
            Arc::new(HashScheme::by_attrs(4, vec![Some(0)])),
        ));
        let vs = VersionedScheme::new(old.clone(), new.clone());
        let t = TupleId::new(0, 6);
        assert_eq!(vs.replica_set(t, &db), old.replica_set(t, &db));
        vs.mark_moved(t);
        assert_eq!(vs.replica_set(t, &db), new.replica_set(t, &db));
        // An unmoved tuple's new-epoch pre-copies are write targets but
        // never replica-set members (they lag until copied).
        let u = TupleId::new(0, 7);
        let phases = vs.write_phases(u, &db);
        let union = phases
            .iter()
            .fold(PartitionSet::empty(), |acc, p| acc.union(p));
        let rs = vs.replica_set(u, &db);
        assert!(rs.all().iter().all(|p| union.contains(p)));
        assert_eq!(rs.all(), old.locate_tuple(u, &db));
    }

    #[test]
    fn route_write_phases_cover_both_epochs_in_order() {
        let (old, new) = hash_pair();
        let vs = VersionedScheme::new(old.clone(), new.clone());
        let w = Statement::update(0, Predicate::True);
        let phases = vs.route_write_phases(&w);
        assert_eq!(phases[0], old.route_statement(&w).targets);
        let union = phases
            .iter()
            .fold(PartitionSet::empty(), |acc, p| acc.union(p));
        assert_eq!(
            union,
            vs.route_statement(&w).targets,
            "all phases together cover the conservative union route"
        );
        for i in 0..phases.len() {
            for j in i + 1..phases.len() {
                assert!(phases[i].intersect(&phases[j]).is_empty());
            }
        }
    }

    #[test]
    fn k_and_complexity_are_conservative() {
        let (old, new) = hash_pair();
        let vs = VersionedScheme::new(old, new);
        assert_eq!(vs.k(), 4);
        assert_eq!(vs.complexity(), Complexity::Hash);
        assert!(vs.name().starts_with("versioned("));
    }
}
