//! Per-tuple replica sets: the leader/follower structure the serving
//! layer's replicated execution is built on (paper §3.2's replicated
//! tuples, with STAR-style asymmetric roles — writes go to the leader and
//! are applied synchronously on followers before acknowledgement; reads
//! may be served by any member).
//!
//! [`ReplicaSet`] is the split itself; [`ReplicatedScheme`] wraps any
//! base [`Scheme`] and replicates every tuple onto `rf` ring-successor
//! partitions of its base placement, which keeps the leader exactly where
//! the unreplicated scheme would have put the tuple (so replication can
//! be layered onto an existing placement without moving anything).

use crate::pset::PartitionSet;
use crate::scheme::{Complexity, Route, Scheme};
use schism_sql::Statement;
use schism_workload::{TupleId, TupleValues};
use std::sync::Arc;

/// One tuple's copy set split into roles: a single leader (all writes
/// enter here first; point of truth for read-your-writes) and zero or
/// more followers (synchronously applied replicas that may serve reads).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicaSet {
    /// The partition every write reaches first.
    pub leader: u32,
    /// Synchronous replicas; never contains `leader`.
    pub followers: PartitionSet,
}

impl ReplicaSet {
    /// A set with no followers.
    pub fn solo(leader: u32) -> Self {
        Self {
            leader,
            followers: PartitionSet::empty(),
        }
    }

    /// Splits an undifferentiated copy set: the first copy leads, the rest
    /// follow. Panics on an empty copy set (schemes never produce one).
    pub fn from_copies(copies: &PartitionSet) -> Self {
        let leader = copies.first().expect("copy set must be non-empty");
        Self {
            leader,
            followers: copies.difference(&PartitionSet::single(leader)),
        }
    }

    /// Leader and followers together.
    pub fn all(&self) -> PartitionSet {
        self.followers.union(&PartitionSet::single(self.leader))
    }

    /// Whether the tuple has any follower at all.
    pub fn is_replicated(&self) -> bool {
        !self.followers.is_empty()
    }

    /// The majority-quorum size over the **full** replica set (leader
    /// included), counting every member whether currently live or not:
    /// `⌊n/2⌋ + 1`. A write is acknowledgeable once this many members
    /// (one of them the acting leader) have applied it; with fewer than
    /// this many live members the group must refuse writes rather than
    /// ack against a minority (Spinnaker's rule, arXiv 1103.2408).
    pub fn quorum(&self) -> u32 {
        self.all().len() / 2 + 1
    }
}

/// Replicates every tuple of a base scheme onto `rf` partitions: the base
/// placement's first copy stays leader, and the `rf - 1` ring successors
/// (`leader + i mod k`) become followers.
///
/// Routing semantics:
/// - point reads (base route hits one partition) may be served by **any**
///   member of the group — [`Scheme::route_predicate_salted`] picks one;
/// - writes must reach the whole group, leader first
///   ([`write_phases`](Scheme::write_phases) =
///   `[{leader}, followers]`);
/// - multi-partition reads fan out to every member and rely on the
///   serving layer's per-tuple dedup — which is what lets a scan survive
///   a down leader: dropping the dead shard from the fan-out still leaves
///   every tuple covered by a live replica.
pub struct ReplicatedScheme {
    inner: Arc<dyn Scheme>,
    rf: u32,
}

impl ReplicatedScheme {
    /// Wraps `inner`, replicating every tuple onto `rf` partitions total
    /// (`rf = 1` degenerates to the base scheme's placement).
    pub fn new(rf: u32, inner: Arc<dyn Scheme>) -> Self {
        assert!(
            rf >= 1 && rf <= inner.k(),
            "replication factor {rf} outside [1, k={}]",
            inner.k()
        );
        Self { inner, rf }
    }

    /// The wrapped base scheme.
    pub fn inner(&self) -> &Arc<dyn Scheme> {
        &self.inner
    }

    /// The replication factor.
    pub fn rf(&self) -> u32 {
        self.rf
    }

    /// The replica group led by partition `leader`: the ring successors
    /// that hold copies of everything `leader` leads.
    fn group_of(&self, leader: u32) -> PartitionSet {
        let k = self.inner.k();
        (0..self.rf).map(|i| (leader + i) % k).collect()
    }

    /// Expands a base-route target set to the union of its replica groups.
    fn expand(&self, targets: &PartitionSet) -> PartitionSet {
        let mut out = PartitionSet::empty();
        for p in targets.iter() {
            out.union_with(&self.group_of(p));
        }
        out
    }
}

impl Scheme for ReplicatedScheme {
    fn name(&self) -> String {
        format!("replicated(rf={}, {})", self.rf, self.inner.name())
    }

    fn k(&self) -> u32 {
        self.inner.k()
    }

    fn complexity(&self) -> Complexity {
        self.inner.complexity().max(Complexity::Replication)
    }

    fn locate_tuple(&self, t: TupleId, db: &dyn TupleValues) -> PartitionSet {
        self.replica_set(t, db).all()
    }

    fn replica_set(&self, t: TupleId, db: &dyn TupleValues) -> ReplicaSet {
        let leader = self
            .inner
            .locate_tuple(t, db)
            .first()
            .expect("base scheme produced an empty copy set");
        ReplicaSet {
            leader,
            followers: self
                .group_of(leader)
                .difference(&PartitionSet::single(leader)),
        }
    }

    fn route_statement(&self, stmt: &Statement) -> Route {
        let base = self.inner.route_statement(stmt);
        if stmt.kind.is_write() {
            // Writes reach every copy; ordering is route_write_phases' job.
            Route::must(self.expand(&base.targets))
        } else if base.targets.is_single() {
            // A point read: any member of the one group can serve it.
            Route::any(self.expand(&base.targets))
        } else {
            // A multi-partition read: fan out to all replicas and let the
            // gather layer dedup per tuple (see type docs).
            Route::must(self.expand(&base.targets))
        }
    }

    fn route_read_fallback(&self, stmt: &Statement, down: &PartitionSet) -> Option<PartitionSet> {
        let base = self.inner.route_statement(stmt).targets;
        // Every touched replica group must keep at least one live member;
        // then the live members of the expanded fan-out cover everything.
        for leader in base.iter() {
            if self.group_of(leader).difference(down).is_empty() {
                return None;
            }
        }
        Some(self.expand(&base).difference(down))
    }

    fn write_phases(&self, t: TupleId, db: &dyn TupleValues) -> Vec<PartitionSet> {
        let rs = self.replica_set(t, db);
        if rs.is_replicated() {
            vec![PartitionSet::single(rs.leader), rs.followers]
        } else {
            vec![PartitionSet::single(rs.leader)]
        }
    }

    fn route_write_phases(&self, stmt: &Statement) -> Vec<PartitionSet> {
        let leaders = self.inner.route_statement(stmt).targets;
        let followers = self.expand(&leaders).difference(&leaders);
        if followers.is_empty() {
            vec![leaders]
        } else {
            vec![leaders, followers]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::HashScheme;
    use crate::scheme::RouteDecision;
    use schism_sql::{Predicate, Value};
    use schism_workload::MaterializedDb;

    fn scheme(k: u32, rf: u32) -> ReplicatedScheme {
        ReplicatedScheme::new(rf, Arc::new(HashScheme::by_attrs(k, vec![Some(0)])))
    }

    #[test]
    fn replica_set_split_roundtrips() {
        let copies: PartitionSet = [2u32, 5, 7].into_iter().collect();
        let rs = ReplicaSet::from_copies(&copies);
        assert_eq!(rs.leader, 2);
        assert_eq!(rs.followers, [5u32, 7].into_iter().collect());
        assert!(rs.is_replicated());
        assert_eq!(rs.all(), copies);
        assert!(!ReplicaSet::solo(3).is_replicated());
        assert_eq!(ReplicaSet::solo(3).all(), PartitionSet::single(3));
    }

    #[test]
    fn quorum_is_a_strict_majority_of_the_full_set() {
        assert_eq!(ReplicaSet::solo(0).quorum(), 1);
        let rf2 = ReplicaSet::from_copies(&[0u32, 1].into_iter().collect());
        assert_eq!(rf2.quorum(), 2, "rf=2 tolerates no failure");
        let rf3 = ReplicaSet::from_copies(&[0u32, 1, 2].into_iter().collect());
        assert_eq!(rf3.quorum(), 2, "rf=3 tolerates one failure");
        let rf5 = ReplicaSet::from_copies(&[0u32, 1, 2, 3, 4].into_iter().collect());
        assert_eq!(rf5.quorum(), 3);
    }

    #[test]
    fn leader_stays_on_base_placement() {
        let s = scheme(4, 3);
        let db = MaterializedDb::new();
        for row in 0..32u64 {
            let t = TupleId::new(0, row);
            let base = s.inner().locate_tuple(t, &db).first().unwrap();
            let rs = s.replica_set(t, &db);
            assert_eq!(rs.leader, base, "replication must not move the leader");
            assert_eq!(rs.followers.len(), 2);
            assert!(!rs.followers.contains(rs.leader));
            assert_eq!(s.locate_tuple(t, &db), rs.all());
        }
    }

    #[test]
    fn ring_wraps_and_rf_one_degenerates() {
        let s = scheme(4, 2);
        let db = MaterializedDb::new();
        // Some tuple leads on partition 3; its follower must wrap to 0.
        let wrapped = (0..64u64)
            .map(|r| s.replica_set(TupleId::new(0, r), &db))
            .find(|rs| rs.leader == 3)
            .expect("hash spreads over all partitions");
        assert_eq!(wrapped.followers, PartitionSet::single(0));
        let solo = scheme(4, 1);
        let t = TupleId::new(0, 9);
        assert!(!solo.replica_set(t, &db).is_replicated());
        assert_eq!(solo.locate_tuple(t, &db), solo.inner().locate_tuple(t, &db));
        assert_eq!(solo.write_phases(t, &db).len(), 1);
    }

    #[test]
    fn writes_phase_leader_before_followers() {
        let s = scheme(4, 3);
        let db = MaterializedDb::new();
        let t = TupleId::new(0, 5);
        let rs = s.replica_set(t, &db);
        let phases = s.write_phases(t, &db);
        assert_eq!(phases, vec![PartitionSet::single(rs.leader), rs.followers]);
        // Statement-level: leaders of the touched groups, then followers.
        // A broadcast write's groups cover everything, so every partition
        // already leads and the follower phase collapses away.
        let w = Statement::update(0, Predicate::True);
        let phases = s.route_write_phases(&w);
        assert_eq!(phases, vec![PartitionSet::all(4)]);
        let point = Statement::update(0, Predicate::Eq(0, Value::Int(5)));
        let phases = s.route_write_phases(&point);
        assert_eq!(phases[0].len(), 1);
        assert_eq!(phases[1].len(), 2);
        assert!(phases[0].intersect(&phases[1]).is_empty());
    }

    #[test]
    fn point_reads_offer_any_replica_and_spread_by_salt() {
        let s = scheme(4, 3);
        let read = Statement::select(0, Predicate::Eq(0, Value::Int(5)));
        let r = s.route_statement(&read);
        assert!(r.any_one);
        assert_eq!(r.targets.len(), 3);
        let picks: std::collections::HashSet<u32> = (0..64u64)
            .map(
                |salt| match s.route_predicate_salted(&read, salt.wrapping_mul(0x9E37)) {
                    RouteDecision::Single(p) => p,
                    other => panic!("expected Single, got {other:?}"),
                },
            )
            .collect();
        assert_eq!(picks.len(), 3, "salted picks must cover the whole group");
        for p in picks {
            assert!(r.targets.contains(p));
        }
    }

    #[test]
    fn scan_reads_fan_out_to_every_replica() {
        let s = scheme(4, 2);
        let scan = Statement::select(0, Predicate::True);
        let r = s.route_statement(&scan);
        assert!(!r.any_one);
        assert_eq!(r.targets, PartitionSet::all(4));
        assert_eq!(s.complexity(), Complexity::Replication);
        assert!(s.name().starts_with("replicated(rf=2"));
    }
}
