//! The partitioning-scheme abstraction shared by the router, the cost
//! evaluator, and Schism's final validation phase.

use crate::pset::PartitionSet;
use crate::replica::ReplicaSet;
use schism_sql::Statement;
use schism_workload::{TupleId, TupleValues};

/// Scheme complexity, for the validation phase's tie-break (§4.4): "we
/// prefer hash partitioning or replication over predicate-based
/// partitioning, and predicate-based partitioning over lookup tables."
/// Lower is simpler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Complexity {
    Hash = 0,
    Replication = 1,
    Range = 2,
    Lookup = 3,
}

/// Collapsed routing verdict for one statement: the shape the serving
/// layer dispatches on, produced by [`Scheme::route_predicate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteDecision {
    /// Exactly one partition serves the statement (a point route, or a
    /// replicated read collapsed to one chosen replica).
    Single(u32),
    /// A strict subset of the partitions must all participate.
    Multi(PartitionSet),
    /// Every partition must participate: nothing in the WHERE clause is
    /// routable under this scheme.
    Broadcast(PartitionSet),
}

impl RouteDecision {
    /// The partitions involved.
    pub fn targets(&self) -> PartitionSet {
        match self {
            RouteDecision::Single(p) => PartitionSet::single(*p),
            RouteDecision::Multi(s) | RouteDecision::Broadcast(s) => *s,
        }
    }

    /// Number of partitions involved.
    pub fn shard_count(&self) -> u32 {
        self.targets().len()
    }
}

fn splitmix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic member choice for any-one routes: the member minimizing
/// a salted splitmix, so the pick is stable for one statement but spreads
/// across members as the salt varies (per key, per statement).
pub fn pick_any(targets: &PartitionSet, salt: u64) -> Option<u32> {
    targets
        .iter()
        .min_by_key(|&p| splitmix(u64::from(p) ^ salt))
}

/// Replica-pick salt derived from a statement's table, constrained
/// columns, and pinned values — equal statements always salt equally.
pub fn statement_salt(stmt: &Statement) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64 ^ u64::from(stmt.table);
    let mut cols = Vec::new();
    stmt.predicate.collect_columns(&mut cols);
    cols.sort_unstable();
    cols.dedup();
    for c in cols {
        h = splitmix(h ^ u64::from(c));
        if let Some(vs) = stmt.predicate.pinned_values(c) {
            for v in vs {
                if let Some(i) = v.as_int() {
                    h = splitmix(h ^ i as u64);
                }
            }
        }
    }
    h
}

/// Where a statement must go.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    /// Candidate partitions.
    pub targets: PartitionSet,
    /// When true, any single member of `targets` suffices (replicated
    /// read); when false every member must participate.
    pub any_one: bool,
}

impl Route {
    pub fn must(targets: PartitionSet) -> Self {
        Self {
            targets,
            any_one: false,
        }
    }

    pub fn any(targets: PartitionSet) -> Self {
        Self {
            targets,
            any_one: true,
        }
    }
}

/// A replication/partitioning strategy.
///
/// `locate_tuple` returns the *copy set* of a tuple — every partition
/// holding a replica. Reads may pick any one member; writes must touch all
/// members. `route_statement` is the runtime path used by the middleware
/// router, driven by WHERE-clause predicates.
pub trait Scheme: Send + Sync {
    /// Short human-readable description (e.g. `"hash(w_id)"`).
    fn name(&self) -> String;

    /// Number of partitions.
    fn k(&self) -> u32;

    /// Complexity rank for validation tie-breaks.
    fn complexity(&self) -> Complexity;

    /// Copy set of `t`. Never empty.
    fn locate_tuple(&self, t: TupleId, db: &dyn TupleValues) -> PartitionSet;

    /// Partitions a statement must reach, based on its predicate.
    fn route_statement(&self, stmt: &Statement) -> Route;

    /// Collapses [`route_statement`](Self::route_statement) into a
    /// [`RouteDecision`]: the single shared routing entry point for the
    /// serving and simulation layers. Any-one routes (replicated reads)
    /// pick one member deterministically via [`pick_any`], salted by the
    /// statement so distinct keys spread across replicas while one key
    /// never flip-flops; must-routes covering every partition become
    /// [`RouteDecision::Broadcast`].
    fn route_predicate(&self, stmt: &Statement) -> RouteDecision {
        self.route_predicate_salted(stmt, statement_salt(stmt))
    }

    /// [`route_predicate`](Self::route_predicate) with an explicit replica
    /// pick salt. Sessions feed a per-statement counter-derived salt here
    /// so *repeated* statements (a closed-loop client hammering one key)
    /// still spread across replicas, where the statement-derived salt
    /// alone would pin them all to one member.
    fn route_predicate_salted(&self, stmt: &Statement, salt: u64) -> RouteDecision {
        let r = self.route_statement(stmt);
        if r.any_one {
            if let Some(p) = pick_any(&r.targets, salt) {
                return RouteDecision::Single(p);
            }
        }
        if r.targets.is_single() {
            return RouteDecision::Single(r.targets.first().expect("non-empty route"));
        }
        if r.targets.len() >= self.k() {
            RouteDecision::Broadcast(r.targets)
        } else {
            RouteDecision::Multi(r.targets)
        }
    }

    /// Leader/follower split of `t`'s copy set. The default names the
    /// first copy leader and the rest followers, which makes the leader
    /// deterministic for every scheme. Schemes that place replicas
    /// deliberately (e.g. [`ReplicatedScheme`](crate::ReplicatedScheme))
    /// override this; [`VersionedScheme`](crate::VersionedScheme)
    /// delegates per tuple to whichever epoch currently owns it.
    fn replica_set(&self, t: TupleId, db: &dyn TupleValues) -> ReplicaSet {
        ReplicaSet::from_copies(&self.locate_tuple(t, db))
    }

    /// The shards a read fan-out can use while the shards in `down` are
    /// failed, or `None` when the statement's rows cannot all be covered
    /// by live shards. The default has no redundancy to offer: any down
    /// target makes the read uncoverable.
    /// [`ReplicatedScheme`](crate::ReplicatedScheme) overrides this to
    /// drop down members whose replica group still has a live copy.
    fn route_read_fallback(&self, stmt: &Statement, down: &PartitionSet) -> Option<PartitionSet> {
        let targets = self.route_statement(stmt).targets;
        if targets.intersect(down).is_empty() {
            Some(targets)
        } else {
            None
        }
    }

    /// Copy sets a *write* to tuple `t` must reach, as ordered phases:
    /// callers must fully apply (and observe completion of) each phase
    /// before starting the next, and only acknowledge the write after all
    /// of them. For a plain scheme every copy is one phase.
    ///
    /// Two overrides give the ordering its meaning:
    /// [`ReplicatedScheme`](crate::ReplicatedScheme) puts the leader in
    /// phase 0 and followers in phase 1 (leader-first, STAR-style
    /// synchronous apply), and [`VersionedScheme`](crate::VersionedScheme)
    /// appends the new placement's extra copies as a *final* phase — the
    /// old placement lands first, which is what makes a concurrent
    /// copy→verify→flip migration unable to lose an acknowledged write
    /// (the verify step re-reads the source, so a source write before the
    /// destination write is always either re-copied or already present).
    fn write_phases(&self, t: TupleId, db: &dyn TupleValues) -> Vec<PartitionSet> {
        vec![self.locate_tuple(t, db)]
    }

    /// Statement-level analogue of [`write_phases`](Self::write_phases)
    /// for writes whose WHERE clause pins no key (scan-writes): the
    /// ordered phases of partitions the statement must reach.
    fn route_write_phases(&self, stmt: &Statement) -> Vec<PartitionSet> {
        vec![self.route_statement(stmt).targets]
    }
}

/// Full-table replication of the entire database: reads are local
/// everywhere, every write touches all partitions (§4.4's "full-table
/// replication" baseline).
#[derive(Clone, Debug)]
pub struct ReplicationScheme {
    k: u32,
}

impl ReplicationScheme {
    pub fn new(k: u32) -> Self {
        assert!(k >= 1);
        Self { k }
    }
}

impl Scheme for ReplicationScheme {
    fn name(&self) -> String {
        "full-replication".to_owned()
    }

    fn k(&self) -> u32 {
        self.k
    }

    fn complexity(&self) -> Complexity {
        Complexity::Replication
    }

    fn locate_tuple(&self, _t: TupleId, _db: &dyn TupleValues) -> PartitionSet {
        PartitionSet::all(self.k)
    }

    fn route_statement(&self, stmt: &Statement) -> Route {
        if stmt.kind.is_write() {
            Route::must(PartitionSet::all(self.k))
        } else {
            Route::any(PartitionSet::all(self.k))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schism_sql::{Predicate, Value};
    use schism_workload::MaterializedDb;

    #[test]
    fn replication_semantics() {
        let s = ReplicationScheme::new(4);
        let db = MaterializedDb::new();
        let loc = s.locate_tuple(TupleId::new(0, 5), &db);
        assert_eq!(loc.len(), 4);
        let read = s.route_statement(&Statement::select(0, Predicate::Eq(0, Value::Int(1))));
        assert!(read.any_one);
        let write = s.route_statement(&Statement::update(0, Predicate::Eq(0, Value::Int(1))));
        assert!(!write.any_one);
        assert_eq!(write.targets.len(), 4);
        assert_eq!(s.complexity(), Complexity::Replication);
    }

    #[test]
    fn complexity_ordering_matches_paper() {
        assert!(Complexity::Hash < Complexity::Replication);
        assert!(Complexity::Replication < Complexity::Range);
        assert!(Complexity::Range < Complexity::Lookup);
    }

    #[test]
    fn route_predicate_collapses_replicated_reads_to_one_replica() {
        let s = ReplicationScheme::new(4);
        let read = Statement::select(0, Predicate::Eq(0, Value::Int(7)));
        match s.route_predicate(&read) {
            RouteDecision::Single(p) => assert!(p < 4),
            other => panic!("expected Single, got {other:?}"),
        }
        // Deterministic: the same statement always picks the same replica.
        assert_eq!(s.route_predicate(&read), s.route_predicate(&read));
        // Distinct keys spread across replicas.
        let picks: std::collections::HashSet<u32> = (0..64)
            .map(|i| {
                match s.route_predicate(&Statement::select(0, Predicate::Eq(0, Value::Int(i)))) {
                    RouteDecision::Single(p) => p,
                    other => panic!("expected Single, got {other:?}"),
                }
            })
            .collect();
        assert!(picks.len() > 1, "replica picks should spread over keys");
    }

    #[test]
    fn route_predicate_classifies_broadcast_and_multi() {
        use crate::hash::HashScheme;
        let s = HashScheme::by_attrs(16, vec![Some(0)]);
        // Unpinned predicate: every partition participates.
        let scan = Statement::select(0, Predicate::True);
        match s.route_predicate(&scan) {
            RouteDecision::Broadcast(t) => assert_eq!(t.len(), 16),
            other => panic!("expected Broadcast, got {other:?}"),
        }
        // Pinned equality: a single partition.
        let point = Statement::select(0, Predicate::Eq(0, Value::Int(5)));
        assert!(matches!(
            s.route_predicate(&point),
            RouteDecision::Single(_)
        ));
        // An IN-list over several keys: a strict subset.
        let multi = Statement::select(0, Predicate::In(0, (0..8).map(Value::Int).collect()));
        match s.route_predicate(&multi) {
            RouteDecision::Multi(t) => assert!(t.len() > 1 && t.len() < 16),
            RouteDecision::Single(_) => {} // hash collisions could collapse it
            other => panic!("expected Multi/Single, got {other:?}"),
        }
    }

    #[test]
    fn default_write_phases_put_everything_in_one_phase() {
        use schism_workload::MaterializedDb;
        let s = ReplicationScheme::new(3);
        let db = MaterializedDb::new();
        let phases = s.write_phases(TupleId::new(0, 4), &db);
        assert_eq!(phases, vec![PartitionSet::all(3)]);
        let w = Statement::update(0, Predicate::True);
        assert_eq!(s.route_write_phases(&w), vec![PartitionSet::all(3)]);
    }

    #[test]
    fn default_replica_set_names_first_copy_leader() {
        use schism_workload::MaterializedDb;
        let s = ReplicationScheme::new(3);
        let db = MaterializedDb::new();
        let rs = s.replica_set(TupleId::new(0, 4), &db);
        assert_eq!(rs.leader, 0);
        assert_eq!(rs.followers, [1u32, 2].into_iter().collect());
        assert_eq!(rs.all(), PartitionSet::all(3));
    }

    #[test]
    fn route_predicate_salted_spreads_one_statement_across_replicas() {
        let s = ReplicationScheme::new(4);
        let read = Statement::select(0, Predicate::Eq(0, Value::Int(7)));
        let picks: std::collections::HashSet<u32> = (0..64u64)
            .map(
                |salt| match s.route_predicate_salted(&read, splitmix(salt)) {
                    RouteDecision::Single(p) => p,
                    other => panic!("expected Single, got {other:?}"),
                },
            )
            .collect();
        assert_eq!(picks.len(), 4, "varying salts must reach every replica");
        // And a fixed salt is stable.
        assert_eq!(
            s.route_predicate_salted(&read, 42),
            s.route_predicate_salted(&read, 42)
        );
    }

    #[test]
    fn route_decision_accessors() {
        let d = RouteDecision::Single(3);
        assert_eq!(d.targets(), PartitionSet::single(3));
        assert_eq!(d.shard_count(), 1);
        let set: PartitionSet = [0u32, 2].into_iter().collect();
        assert_eq!(RouteDecision::Multi(set).shard_count(), 2);
        assert_eq!(RouteDecision::Broadcast(set).targets(), set);
    }
}
