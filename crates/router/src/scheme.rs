//! The partitioning-scheme abstraction shared by the router, the cost
//! evaluator, and Schism's final validation phase.

use crate::pset::PartitionSet;
use schism_sql::Statement;
use schism_workload::{TupleId, TupleValues};

/// Scheme complexity, for the validation phase's tie-break (§4.4): "we
/// prefer hash partitioning or replication over predicate-based
/// partitioning, and predicate-based partitioning over lookup tables."
/// Lower is simpler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Complexity {
    Hash = 0,
    Replication = 1,
    Range = 2,
    Lookup = 3,
}

/// Where a statement must go.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    /// Candidate partitions.
    pub targets: PartitionSet,
    /// When true, any single member of `targets` suffices (replicated
    /// read); when false every member must participate.
    pub any_one: bool,
}

impl Route {
    pub fn must(targets: PartitionSet) -> Self {
        Self {
            targets,
            any_one: false,
        }
    }

    pub fn any(targets: PartitionSet) -> Self {
        Self {
            targets,
            any_one: true,
        }
    }
}

/// A replication/partitioning strategy.
///
/// `locate_tuple` returns the *copy set* of a tuple — every partition
/// holding a replica. Reads may pick any one member; writes must touch all
/// members. `route_statement` is the runtime path used by the middleware
/// router, driven by WHERE-clause predicates.
pub trait Scheme: Send + Sync {
    /// Short human-readable description (e.g. `"hash(w_id)"`).
    fn name(&self) -> String;

    /// Number of partitions.
    fn k(&self) -> u32;

    /// Complexity rank for validation tie-breaks.
    fn complexity(&self) -> Complexity;

    /// Copy set of `t`. Never empty.
    fn locate_tuple(&self, t: TupleId, db: &dyn TupleValues) -> PartitionSet;

    /// Partitions a statement must reach, based on its predicate.
    fn route_statement(&self, stmt: &Statement) -> Route;
}

/// Full-table replication of the entire database: reads are local
/// everywhere, every write touches all partitions (§4.4's "full-table
/// replication" baseline).
#[derive(Clone, Debug)]
pub struct ReplicationScheme {
    k: u32,
}

impl ReplicationScheme {
    pub fn new(k: u32) -> Self {
        assert!(k >= 1);
        Self { k }
    }
}

impl Scheme for ReplicationScheme {
    fn name(&self) -> String {
        "full-replication".to_owned()
    }

    fn k(&self) -> u32 {
        self.k
    }

    fn complexity(&self) -> Complexity {
        Complexity::Replication
    }

    fn locate_tuple(&self, _t: TupleId, _db: &dyn TupleValues) -> PartitionSet {
        PartitionSet::all(self.k)
    }

    fn route_statement(&self, stmt: &Statement) -> Route {
        if stmt.kind.is_write() {
            Route::must(PartitionSet::all(self.k))
        } else {
            Route::any(PartitionSet::all(self.k))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schism_sql::{Predicate, Value};
    use schism_workload::MaterializedDb;

    #[test]
    fn replication_semantics() {
        let s = ReplicationScheme::new(4);
        let db = MaterializedDb::new();
        let loc = s.locate_tuple(TupleId::new(0, 5), &db);
        assert_eq!(loc.len(), 4);
        let read = s.route_statement(&Statement::select(0, Predicate::Eq(0, Value::Int(1))));
        assert!(read.any_one);
        let write = s.route_statement(&Statement::update(0, Predicate::Eq(0, Value::Int(1))));
        assert!(!write.any_one);
        assert_eq!(write.targets.len(), 4);
        assert_eq!(s.complexity(), Complexity::Replication);
    }

    #[test]
    fn complexity_ordering_matches_paper() {
        assert!(Complexity::Hash < Complexity::Replication);
        assert!(Complexity::Replication < Complexity::Range);
        assert!(Complexity::Range < Complexity::Lookup);
    }
}
