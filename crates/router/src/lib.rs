//! # schism-router
//!
//! The routing middleware and partitioning-scheme runtime from §5.4 and
//! Appendix C: partition sets, the [`Scheme`] abstraction, hash / range /
//! lookup-table / full-replication schemes, the three physical lookup-table
//! backends (index, bit-array, Bloom filters), replication-aware
//! transaction routing, and the distributed-transaction cost evaluator that
//! drives Schism's final validation.

pub mod bloom;
pub mod cost;
pub mod hash;
pub mod lookup;
pub mod pset;
pub mod range;
pub mod replica;
pub mod router;
pub mod scheme;
pub mod versioned;

pub use bloom::BloomFilter;
pub use cost::{evaluate, CostReport};
pub use hash::{HashBy, HashScheme};
pub use lookup::{
    BitArrayBackend, BloomBackend, IndexBackend, LookupBackend, LookupScheme, MissPolicy, RowKey,
};
pub use pset::{PartitionSet, MAX_PARTITIONS};
pub use range::{RangeRule, RangeScheme, TablePolicy};
pub use replica::{ReplicaSet, ReplicatedScheme};
pub use router::{route_transaction, Participants};
pub use scheme::{
    pick_any, statement_salt, Complexity, ReplicationScheme, Route, RouteDecision, Scheme,
};
pub use versioned::{FlipError, VersionedScheme};
