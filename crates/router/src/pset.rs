//! Sets of partition ids, as a fixed 256-bit bitset.
//!
//! The paper sizes its lookup tables for "up to 256 partitions" (Appendix
//! C.1); we adopt the same bound, which keeps a partition set copyable and
//! branch-free to union.

/// Maximum number of partitions supported across the crate.
pub const MAX_PARTITIONS: u32 = 256;

/// A set of partition ids in `[0, MAX_PARTITIONS)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PartitionSet {
    bits: [u64; 4],
}

impl PartitionSet {
    /// The empty set.
    pub const fn empty() -> Self {
        Self { bits: [0; 4] }
    }

    /// The singleton `{p}`.
    pub fn single(p: u32) -> Self {
        let mut s = Self::empty();
        s.insert(p);
        s
    }

    /// The full set `{0, .., k-1}`.
    pub fn all(k: u32) -> Self {
        assert!(k <= MAX_PARTITIONS);
        let mut s = Self::empty();
        for p in 0..k {
            s.insert(p);
        }
        s
    }

    /// Inserts `p`.
    #[inline]
    pub fn insert(&mut self, p: u32) {
        assert!(p < MAX_PARTITIONS, "partition {p} out of range");
        self.bits[(p / 64) as usize] |= 1u64 << (p % 64);
    }

    /// Whether `p` is present.
    #[inline]
    pub fn contains(&self, p: u32) -> bool {
        p < MAX_PARTITIONS && self.bits[(p / 64) as usize] & (1u64 << (p % 64)) != 0
    }

    /// Number of partitions in the set.
    #[inline]
    pub fn len(&self) -> u32 {
        self.bits.iter().map(|b| b.count_ones()).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&b| b == 0)
    }

    /// Whether the set has exactly one member.
    #[inline]
    pub fn is_single(&self) -> bool {
        self.len() == 1
    }

    /// Smallest member, if any.
    pub fn first(&self) -> Option<u32> {
        for (i, &b) in self.bits.iter().enumerate() {
            if b != 0 {
                return Some(i as u32 * 64 + b.trailing_zeros());
            }
        }
        None
    }

    /// Set union.
    #[inline]
    pub fn union(&self, other: &Self) -> Self {
        let mut out = *self;
        for i in 0..4 {
            out.bits[i] |= other.bits[i];
        }
        out
    }

    /// In-place union.
    #[inline]
    pub fn union_with(&mut self, other: &Self) {
        for i in 0..4 {
            self.bits[i] |= other.bits[i];
        }
    }

    /// Set intersection.
    #[inline]
    pub fn intersect(&self, other: &Self) -> Self {
        let mut out = *self;
        for i in 0..4 {
            out.bits[i] &= other.bits[i];
        }
        out
    }

    /// Set difference (`self \ other`).
    #[inline]
    pub fn difference(&self, other: &Self) -> Self {
        let mut out = *self;
        for i in 0..4 {
            out.bits[i] &= !other.bits[i];
        }
        out
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..4usize).flat_map(move |i| {
            let mut b = self.bits[i];
            std::iter::from_fn(move || {
                if b == 0 {
                    None
                } else {
                    let p = b.trailing_zeros();
                    b &= b - 1;
                    Some(i as u32 * 64 + p)
                }
            })
        })
    }
}

impl FromIterator<u32> for PartitionSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut s = Self::empty();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl std::fmt::Debug for PartitionSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_operations() {
        let mut s = PartitionSet::empty();
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(255);
        assert_eq!(s.len(), 4);
        assert!(s.contains(64));
        assert!(!s.contains(65));
        assert_eq!(s.first(), Some(0));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 255]);
        assert!(!s.is_single());
        assert!(PartitionSet::single(7).is_single());
    }

    #[test]
    fn union_and_intersect() {
        let a: PartitionSet = [1u32, 2, 3].into_iter().collect();
        let b: PartitionSet = [3u32, 4].into_iter().collect();
        assert_eq!(a.union(&b).len(), 4);
        let i = a.intersect(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3]);
        let mut c = a;
        c.union_with(&b);
        assert_eq!(c, a.union(&b));
        let d = a.difference(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(b.difference(&a).iter().collect::<Vec<_>>(), vec![4]);
    }

    #[test]
    fn all_covers_k() {
        let s = PartitionSet::all(10);
        assert_eq!(s.len(), 10);
        assert!(s.contains(9));
        assert!(!s.contains(10));
        assert_eq!(PartitionSet::all(256).len(), 256);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        PartitionSet::empty().insert(256);
    }

    #[test]
    fn debug_format() {
        let s: PartitionSet = [0u32, 5].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{0,5}");
    }
}
