//! Hash partitioning — the paper's simple automatic baseline ("hash
//! partitioning on the primary key or tuple id", §6.1) and one of the four
//! candidates in final validation ("hash-partitioning on the most
//! frequently used attributes", §4.4).

use crate::pset::PartitionSet;
use crate::scheme::{Complexity, Route, Scheme};
use schism_sql::{ColId, Statement, TableId, Value};
use schism_workload::{TupleId, TupleValues};

/// What to hash.
#[derive(Clone, Debug)]
pub enum HashBy {
    /// Hash the dense tuple row id (with the table id mixed in).
    RowId,
    /// Hash one attribute per table (`None` falls back to the row id).
    Attr(Vec<Option<ColId>>),
}

/// Hash partitioning scheme.
#[derive(Clone, Debug)]
pub struct HashScheme {
    k: u32,
    by: HashBy,
}

fn splitmix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl HashScheme {
    /// Hash by tuple row id.
    pub fn by_row_id(k: u32) -> Self {
        assert!(k >= 1);
        Self {
            k,
            by: HashBy::RowId,
        }
    }

    /// Hash by one attribute per table; tables with `None` hash the row id.
    pub fn by_attrs(k: u32, attrs: Vec<Option<ColId>>) -> Self {
        assert!(k >= 1);
        Self {
            k,
            by: HashBy::Attr(attrs),
        }
    }

    fn bucket_value(&self, v: i64) -> u32 {
        (splitmix(v as u64) % self.k as u64) as u32
    }

    fn bucket_row(&self, table: TableId, row: u64) -> u32 {
        (splitmix(row ^ (table as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) % self.k as u64) as u32
    }

    fn hash_attr(&self, table: TableId) -> Option<ColId> {
        match &self.by {
            HashBy::RowId => None,
            HashBy::Attr(v) => v.get(table as usize).copied().flatten(),
        }
    }
}

impl Scheme for HashScheme {
    fn name(&self) -> String {
        match &self.by {
            HashBy::RowId => format!("hash(row-id) k={}", self.k),
            HashBy::Attr(_) => format!("hash(attrs) k={}", self.k),
        }
    }

    fn k(&self) -> u32 {
        self.k
    }

    fn complexity(&self) -> Complexity {
        Complexity::Hash
    }

    fn locate_tuple(&self, t: TupleId, db: &dyn TupleValues) -> PartitionSet {
        let p = match self.hash_attr(t.table) {
            Some(col) => match db.value(t, col) {
                Some(v) => self.bucket_value(v),
                None => self.bucket_row(t.table, t.row),
            },
            None => self.bucket_row(t.table, t.row),
        };
        PartitionSet::single(p)
    }

    fn route_statement(&self, stmt: &Statement) -> Route {
        match self.hash_attr(stmt.table) {
            Some(col) => match stmt.predicate.pinned_values(col) {
                Some(values) => {
                    let targets: PartitionSet = values
                        .iter()
                        .filter_map(|v| match v {
                            Value::Int(i) => Some(self.bucket_value(*i)),
                            _ => None,
                        })
                        .collect();
                    if targets.is_empty() {
                        Route::must(PartitionSet::all(self.k))
                    } else {
                        Route::must(targets)
                    }
                }
                None => Route::must(PartitionSet::all(self.k)),
            },
            // Row-id hashing cannot be derived from predicates without the
            // key layout: broadcast.
            None => Route::must(PartitionSet::all(self.k)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schism_sql::Predicate;
    use schism_workload::MaterializedDb;

    fn db_with_attr() -> MaterializedDb {
        let mut db = MaterializedDb::new();
        let t = db.add_table(2);
        db.set_column(t, 1, vec![10, 10, 20, 20, 30]);
        db
    }

    #[test]
    fn row_id_hash_spreads_tuples() {
        let s = HashScheme::by_row_id(4);
        let db = MaterializedDb::new();
        let mut seen = std::collections::HashSet::new();
        for r in 0..100 {
            let loc = s.locate_tuple(TupleId::new(0, r), &db);
            assert!(loc.is_single());
            seen.insert(loc.first().unwrap());
        }
        assert_eq!(seen.len(), 4, "all buckets should be used");
    }

    #[test]
    fn attr_hash_colocates_equal_values() {
        let s = HashScheme::by_attrs(8, vec![Some(1)]);
        let db = db_with_attr();
        let a = s.locate_tuple(TupleId::new(0, 0), &db);
        let b = s.locate_tuple(TupleId::new(0, 1), &db);
        assert_eq!(a, b, "same attribute value must co-locate");
        // Statement routing agrees with tuple placement.
        let r = s.route_statement(&Statement::select(0, Predicate::Eq(1, Value::Int(10))));
        assert_eq!(r.targets, a);
        assert!(!r.any_one);
    }

    #[test]
    fn unpinned_statement_broadcasts() {
        let s = HashScheme::by_attrs(4, vec![Some(1)]);
        let r = s.route_statement(&Statement::select(0, Predicate::True));
        assert_eq!(r.targets.len(), 4);
        // Pinned on a different column also broadcasts.
        let r = s.route_statement(&Statement::select(0, Predicate::Eq(0, Value::Int(5))));
        assert_eq!(r.targets.len(), 4);
    }

    #[test]
    fn in_list_routes_to_union() {
        let s = HashScheme::by_attrs(16, vec![Some(1)]);
        let r = s.route_statement(&Statement::select(
            0,
            Predicate::In(1, vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
        ));
        assert!(r.targets.len() <= 3 && !r.targets.is_empty());
    }

    #[test]
    fn deterministic_and_in_range() {
        let s = HashScheme::by_row_id(5);
        let db = MaterializedDb::new();
        for r in 0..50 {
            let a = s.locate_tuple(TupleId::new(1, r), &db);
            let b = s.locate_tuple(TupleId::new(1, r), &db);
            assert_eq!(a, b);
            assert!(a.first().unwrap() < 5);
        }
    }
}
