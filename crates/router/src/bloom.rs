//! Bloom filters — one of the three physical lookup-table representations
//! the paper evaluates (Appendix C.1). False positives cost extra
//! participants at run time but never break correctness.

/// A Bloom filter over `u64` keys with double hashing.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_hashes: u32,
}

impl BloomFilter {
    /// Sizes the filter for `expected_items` at `fp_rate` false positives
    /// (`m = -n ln p / ln2²`, `k = m/n ln2`).
    pub fn new(expected_items: usize, fp_rate: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fp_rate) && fp_rate > 0.0,
            "bad fp rate"
        );
        let n = expected_items.max(1) as f64;
        let ln2 = std::f64::consts::LN_2;
        let m = (-(n * fp_rate.ln()) / (ln2 * ln2)).ceil().max(64.0) as u64;
        let k = ((m as f64 / n) * ln2).round().clamp(1.0, 16.0) as u32;
        Self {
            bits: vec![0u64; m.div_ceil(64) as usize],
            num_bits: m,
            num_hashes: k,
        }
    }

    fn hashes(&self, key: u64) -> (u64, u64) {
        // splitmix64 twice with different increments.
        let h1 = splitmix(key.wrapping_add(0x9E37_79B9_7F4A_7C15));
        let h2 = splitmix(key.wrapping_add(0xD1B5_4A32_D192_ED03)) | 1; // odd stride
        (h1, h2)
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: u64) {
        let (h1, h2) = self.hashes(key);
        for i in 0..self.num_hashes as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// Membership test; false positives possible, false negatives not.
    pub fn contains(&self, key: u64) -> bool {
        let (h1, h2) = self.hashes(key);
        (0..self.num_hashes as u64).all(|i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Size of the bit array in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Number of hash functions.
    pub fn num_hashes(&self) -> u32 {
        self.num_hashes
    }
}

fn splitmix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut b = BloomFilter::new(10_000, 0.01);
        for k in (0..10_000u64).map(|i| i * 7 + 3) {
            b.insert(k);
        }
        for k in (0..10_000u64).map(|i| i * 7 + 3) {
            assert!(b.contains(k), "false negative for {k}");
        }
    }

    #[test]
    fn false_positive_rate_in_ballpark() {
        let mut b = BloomFilter::new(10_000, 0.01);
        for k in 0..10_000u64 {
            b.insert(k);
        }
        let fps = (10_000u64..110_000).filter(|&k| b.contains(k)).count();
        let rate = fps as f64 / 100_000.0;
        assert!(rate < 0.03, "fp rate {rate} far above target 0.01");
    }

    #[test]
    fn sizing_tradeoff() {
        let tight = BloomFilter::new(1000, 0.001);
        let loose = BloomFilter::new(1000, 0.1);
        assert!(tight.size_bytes() > loose.size_bytes());
        assert!(tight.num_hashes() > loose.num_hashes());
    }

    #[test]
    fn empty_filter_contains_nothing_much() {
        let b = BloomFilter::new(1000, 0.01);
        let hits = (0..1000u64).filter(|&k| b.contains(k)).count();
        assert_eq!(hits, 0, "empty filter must reject everything");
    }
}
