//! Replication-aware transaction routing.
//!
//! Given a transaction's read/write tuple sets and a scheme, compute the
//! participant set: writes touch every copy of a tuple; reads may pick any
//! single copy, and per §5.4 "Schism attempts to choose a replica on a
//! partition that has already been accessed in the same transaction". The
//! residual choice is a small set-cover problem solved greedily.

use crate::pset::PartitionSet;
use crate::scheme::Scheme;
use schism_workload::{Transaction, TupleValues};

fn splitmix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Participants of one transaction under a scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Participants {
    pub set: PartitionSet,
}

impl Participants {
    /// Whether the transaction is distributed (more than one participant).
    pub fn is_distributed(&self) -> bool {
        self.set.len() > 1
    }
}

/// Routes a transaction: returns the minimal-ish participant set.
pub fn route_transaction(
    txn: &Transaction,
    scheme: &dyn Scheme,
    db: &dyn TupleValues,
) -> Participants {
    let mut participants = PartitionSet::empty();

    // Writes pin every copy.
    for &w in &txn.writes {
        participants.union_with(&scheme.locate_tuple(w, db));
    }

    // Reads: fixed single-copy reads first, then the flexible (replicated)
    // ones via greedy cover.
    let mut flexible: Vec<PartitionSet> = Vec::new();
    for r in txn.reads.iter().chain(txn.scans.iter().flatten()) {
        let pset = scheme.locate_tuple(*r, db);
        if pset.is_single() {
            participants.union_with(&pset);
        } else {
            flexible.push(pset);
        }
    }

    // Drop flexible reads already satisfied by a chosen participant, then
    // repeatedly pick the partition covering the most remaining reads.
    // Count ties are broken by a per-transaction pseudo-random preference:
    // a fixed tie-break (e.g. lowest id) would route every fully-replicated
    // read-only transaction to the same partition and destroy load balance.
    flexible.retain(|p| p.intersect(&participants).is_empty());
    let salt = txn
        .accessed()
        .next()
        .map(|t| t.row ^ (t.table as u64).rotate_left(32))
        .unwrap_or(0);
    while !flexible.is_empty() {
        let mut counts = std::collections::HashMap::new();
        for pset in &flexible {
            for p in pset.iter() {
                *counts.entry(p).or_insert(0usize) += 1;
            }
        }
        let (&best, _) = counts
            .iter()
            .max_by_key(|&(p, &c)| (c, splitmix(*p as u64 ^ salt)))
            .expect("flexible non-empty");
        participants.insert(best);
        flexible.retain(|p| !p.contains(best));
    }

    // A transaction with no accesses still runs somewhere.
    if participants.is_empty() {
        participants.insert(0);
    }
    Participants { set: participants }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookup::{IndexBackend, LookupScheme, MissPolicy};
    use crate::scheme::ReplicationScheme;
    use schism_workload::{MaterializedDb, TupleId, TxnBuilder};

    fn lookup_scheme(entries: Vec<(u64, PartitionSet)>) -> LookupScheme {
        LookupScheme::new(
            4,
            vec![Some(Box::new(IndexBackend::new(entries)) as Box<_>)],
            vec![None],
            MissPolicy::HashRow,
        )
    }

    #[test]
    fn single_partition_transaction() {
        let s = lookup_scheme(vec![
            (0, PartitionSet::single(2)),
            (1, PartitionSet::single(2)),
        ]);
        let db = MaterializedDb::new();
        let mut b = TxnBuilder::new(false);
        b.read(TupleId::new(0, 0)).write(TupleId::new(0, 1));
        let p = route_transaction(&b.finish(), &s, &db);
        assert_eq!(p.set, PartitionSet::single(2));
        assert!(!p.is_distributed());
    }

    #[test]
    fn replicated_read_joins_write_partition() {
        // Tuple 0 replicated on {0,1,2,3}; write forces partition 3; the
        // read must NOT add a second participant.
        let s = lookup_scheme(vec![
            (0, PartitionSet::all(4)),
            (1, PartitionSet::single(3)),
        ]);
        let db = MaterializedDb::new();
        let mut b = TxnBuilder::new(false);
        b.read(TupleId::new(0, 0)).write(TupleId::new(0, 1));
        let p = route_transaction(&b.finish(), &s, &db);
        assert_eq!(p.set, PartitionSet::single(3));
    }

    #[test]
    fn write_to_replicated_tuple_is_distributed() {
        let s = lookup_scheme(vec![(0, PartitionSet::all(4))]);
        let db = MaterializedDb::new();
        let mut b = TxnBuilder::new(false);
        b.write(TupleId::new(0, 0));
        let p = route_transaction(&b.finish(), &s, &db);
        assert_eq!(p.set.len(), 4);
        assert!(p.is_distributed());
    }

    #[test]
    fn greedy_cover_prefers_shared_partition() {
        // Two replicated reads {0,1} and {1,2}: one participant (1) covers
        // both.
        let s = lookup_scheme(vec![
            (0, [0u32, 1].into_iter().collect()),
            (1, [1u32, 2].into_iter().collect()),
        ]);
        let db = MaterializedDb::new();
        let mut b = TxnBuilder::new(false);
        b.read(TupleId::new(0, 0)).read(TupleId::new(0, 1));
        let p = route_transaction(&b.finish(), &s, &db);
        assert_eq!(p.set, PartitionSet::single(1));
    }

    #[test]
    fn full_replication_reads_local_writes_everywhere() {
        let s = ReplicationScheme::new(3);
        let db = MaterializedDb::new();
        let mut b = TxnBuilder::new(false);
        b.read(TupleId::new(0, 0))
            .read(TupleId::new(0, 1))
            .read(TupleId::new(1, 5));
        let p = route_transaction(&b.finish(), &s, &db);
        assert!(
            p.set.is_single(),
            "read-only under replication is local: {:?}",
            p.set
        );
        let mut b = TxnBuilder::new(false);
        b.write(TupleId::new(0, 0));
        let p = route_transaction(&b.finish(), &s, &db);
        assert_eq!(p.set.len(), 3);
    }

    #[test]
    fn empty_transaction_gets_a_home() {
        let s = ReplicationScheme::new(2);
        let db = MaterializedDb::new();
        let p = route_transaction(&TxnBuilder::new(false).finish(), &s, &db);
        assert_eq!(p.set.len(), 1);
    }

    #[test]
    fn scan_groups_participate() {
        let s = lookup_scheme(vec![
            (0, PartitionSet::single(0)),
            (1, PartitionSet::single(1)),
        ]);
        let db = MaterializedDb::new();
        let mut b = TxnBuilder::new(false);
        b.scan(vec![TupleId::new(0, 0), TupleId::new(0, 1)]);
        let p = route_transaction(&b.finish(), &s, &db);
        assert_eq!(p.set.len(), 2);
        assert!(p.is_distributed());
    }
}
