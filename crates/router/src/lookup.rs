//! Per-tuple lookup tables — the fine-grained output of the graph
//! partitioner (§4.2, Appendix C.1), with the three physical backends the
//! paper discusses: a traditional index (hash map), a dense bit-array (one
//! byte per row id), and per-partition Bloom filters.

use crate::bloom::BloomFilter;
use crate::pset::PartitionSet;
use crate::scheme::{Complexity, Route, Scheme};
use schism_sql::{ColId, Statement, Value};
use schism_workload::{TupleId, TupleValues};
use std::collections::HashMap;

/// What to do for tuples absent from the lookup table (never accessed by
/// the training trace). The paper replicates them in read-mostly workloads
/// ("tuples not present in the initial lookup table have been replicated
/// across all partitions", §6.1) and otherwise inserts into a random
/// partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissPolicy {
    Replicate,
    HashRow,
}

/// A physical lookup-table representation for one table.
pub trait LookupBackend: Send + Sync {
    /// Copy set for `row`, or `None` when the row is not in the table.
    fn get(&self, row: u64) -> Option<PartitionSet>;

    /// Approximate memory footprint.
    fn size_bytes(&self) -> usize;
}

/// Hash-index backend: exact, works for sparse row ids.
pub struct IndexBackend {
    map: HashMap<u64, PartitionSet>,
}

impl IndexBackend {
    pub fn new(entries: impl IntoIterator<Item = (u64, PartitionSet)>) -> Self {
        Self {
            map: entries.into_iter().collect(),
        }
    }
}

impl LookupBackend for IndexBackend {
    fn get(&self, row: u64) -> Option<PartitionSet> {
        self.map.get(&row).copied()
    }

    fn size_bytes(&self) -> usize {
        self.map.len() * (8 + std::mem::size_of::<PartitionSet>())
    }
}

/// Dense bit-array backend: one byte per row id — the paper's "16 GB of RAM
/// can hold 15 billion tuples" representation. Replicated (multi-partition)
/// tuples overflow to a side index.
pub struct BitArrayBackend {
    /// Partition id per row; `MISS` when absent, `MULTI` when in
    /// `overflow`.
    slots: Vec<u8>,
    overflow: HashMap<u64, PartitionSet>,
}

impl BitArrayBackend {
    const MISS: u8 = 0xFF;
    const MULTI: u8 = 0xFE;

    /// Builds for a table of `num_rows` dense row ids.
    ///
    /// Partition ids must be `< 254`; larger ids go to the overflow map.
    pub fn new(num_rows: u64, entries: impl IntoIterator<Item = (u64, PartitionSet)>) -> Self {
        let mut slots = vec![Self::MISS; num_rows as usize];
        let mut overflow = HashMap::new();
        for (row, pset) in entries {
            debug_assert!((row as usize) < slots.len(), "row {row} out of range");
            if let Some(slot) = slots.get_mut(row as usize) {
                match pset.first() {
                    Some(p) if pset.is_single() && p < Self::MULTI as u32 => *slot = p as u8,
                    _ => {
                        *slot = Self::MULTI;
                        overflow.insert(row, pset);
                    }
                }
            }
        }
        Self { slots, overflow }
    }
}

impl LookupBackend for BitArrayBackend {
    fn get(&self, row: u64) -> Option<PartitionSet> {
        match self.slots.get(row as usize) {
            None | Some(&Self::MISS) => None,
            Some(&Self::MULTI) => self.overflow.get(&row).copied(),
            Some(&p) => Some(PartitionSet::single(p as u32)),
        }
    }

    fn size_bytes(&self) -> usize {
        self.slots.len() + self.overflow.len() * (8 + std::mem::size_of::<PartitionSet>())
    }
}

/// Bloom-filter backend: one filter per partition; false positives add
/// extra participants but never lose the true home.
pub struct BloomBackend {
    filters: Vec<BloomFilter>,
}

impl BloomBackend {
    pub fn new(
        k: u32,
        expected_per_partition: usize,
        fp_rate: f64,
        entries: impl IntoIterator<Item = (u64, PartitionSet)>,
    ) -> Self {
        let mut filters: Vec<BloomFilter> = (0..k)
            .map(|_| BloomFilter::new(expected_per_partition, fp_rate))
            .collect();
        for (row, pset) in entries {
            for p in pset.iter() {
                filters[p as usize].insert(row);
            }
        }
        Self { filters }
    }
}

impl LookupBackend for BloomBackend {
    fn get(&self, row: u64) -> Option<PartitionSet> {
        let hits: PartitionSet = self
            .filters
            .iter()
            .enumerate()
            .filter(|(_, f)| f.contains(row))
            .map(|(p, _)| p as u32)
            .collect();
        if hits.is_empty() {
            None
        } else {
            Some(hits)
        }
    }

    fn size_bytes(&self) -> usize {
        self.filters.iter().map(BloomFilter::size_bytes).sum()
    }
}

/// Statement-routing metadata for one table: lookup tables are keyed by row
/// id, so predicates on the (dense integer) primary key map to rows as
/// `row = pk_value - offset`. Tables without such a key broadcast.
#[derive(Clone, Copy, Debug)]
pub struct RowKey {
    pub col: ColId,
    /// `row = value - offset` (offset 1 for 1-based keys).
    pub offset: i64,
}

/// The fine-grained per-tuple scheme.
pub struct LookupScheme {
    k: u32,
    backends: Vec<Option<Box<dyn LookupBackend>>>,
    row_keys: Vec<Option<RowKey>>,
    miss: MissPolicy,
}

impl LookupScheme {
    /// `backends[table]` may be `None` for tables with no lookup data
    /// (treated as fully missing → miss policy).
    pub fn new(
        k: u32,
        backends: Vec<Option<Box<dyn LookupBackend>>>,
        row_keys: Vec<Option<RowKey>>,
        miss: MissPolicy,
    ) -> Self {
        assert!(k >= 1);
        Self {
            k,
            backends,
            row_keys,
            miss,
        }
    }

    fn miss_set(&self, t: TupleId) -> PartitionSet {
        match self.miss {
            MissPolicy::Replicate => PartitionSet::all(self.k),
            MissPolicy::HashRow => {
                let h = t.row ^ (t.table as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut x = h;
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 27;
                PartitionSet::single((x % self.k as u64) as u32)
            }
        }
    }

    /// Total memory footprint of the backends.
    pub fn size_bytes(&self) -> usize {
        self.backends.iter().flatten().map(|b| b.size_bytes()).sum()
    }
}

impl Scheme for LookupScheme {
    fn name(&self) -> String {
        format!("lookup-table k={}", self.k)
    }

    fn k(&self) -> u32 {
        self.k
    }

    fn complexity(&self) -> Complexity {
        Complexity::Lookup
    }

    fn locate_tuple(&self, t: TupleId, _db: &dyn TupleValues) -> PartitionSet {
        self.backends
            .get(t.table as usize)
            .and_then(|b| b.as_ref())
            .and_then(|b| b.get(t.row))
            .unwrap_or_else(|| self.miss_set(t))
    }

    fn route_statement(&self, stmt: &Statement) -> Route {
        let write = stmt.kind.is_write();
        let Some(Some(key)) = self.row_keys.get(stmt.table as usize) else {
            return Route::must(PartitionSet::all(self.k));
        };
        let Some(values) = stmt.predicate.pinned_values(key.col) else {
            return Route::must(PartitionSet::all(self.k));
        };
        let mut targets = PartitionSet::empty();
        let mut single_replicated_read = !write && values.len() == 1;
        for v in &values {
            let Value::Int(i) = v else {
                return Route::must(PartitionSet::all(self.k));
            };
            let row = i - key.offset;
            if row < 0 {
                return Route::must(PartitionSet::all(self.k));
            }
            let t = TupleId::new(stmt.table, row as u64);
            let pset = self
                .backends
                .get(stmt.table as usize)
                .and_then(|b| b.as_ref())
                .and_then(|b| b.get(row as u64))
                .unwrap_or_else(|| self.miss_set(t));
            if pset.is_single() {
                single_replicated_read = false;
            }
            targets.union_with(&pset);
        }
        if single_replicated_read && targets.len() > 1 {
            Route::any(targets)
        } else {
            Route::must(targets)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schism_sql::Predicate;
    use schism_workload::MaterializedDb;

    fn entries() -> Vec<(u64, PartitionSet)> {
        vec![
            (0, PartitionSet::single(0)),
            (1, PartitionSet::single(1)),
            (2, [0u32, 1].into_iter().collect()), // replicated tuple
        ]
    }

    fn backends_roundtrip(b: &dyn LookupBackend) {
        assert_eq!(b.get(0), Some(PartitionSet::single(0)));
        assert_eq!(b.get(1), Some(PartitionSet::single(1)));
        let two = b.get(2).expect("replicated entry present");
        assert!(two.contains(0) && two.contains(1));
        // Row 50 was never inserted. Index/bit-array answer None exactly;
        // bloom may false-positive, which is allowed.
    }

    #[test]
    fn index_backend() {
        let b = IndexBackend::new(entries());
        backends_roundtrip(&b);
        assert_eq!(b.get(50), None);
    }

    #[test]
    fn bitarray_backend() {
        let b = BitArrayBackend::new(100, entries());
        backends_roundtrip(&b);
        assert_eq!(b.get(50), None);
        assert_eq!(b.get(1_000_000), None); // out of range
        assert!(b.size_bytes() >= 100);
    }

    #[test]
    fn bloom_backend_never_loses_home() {
        let many: Vec<(u64, PartitionSet)> = (0..1000)
            .map(|r| (r, PartitionSet::single((r % 4) as u32)))
            .collect();
        let b = BloomBackend::new(4, 300, 0.01, many.clone());
        for (r, pset) in many {
            let got = b.get(r).expect("present");
            assert!(got.contains(pset.first().unwrap()), "lost home of {r}");
        }
    }

    #[test]
    fn scheme_miss_policies() {
        let db = MaterializedDb::new();
        let mk = |miss| {
            LookupScheme::new(
                2,
                vec![Some(
                    Box::new(IndexBackend::new(entries())) as Box<dyn LookupBackend>
                )],
                vec![Some(RowKey { col: 0, offset: 0 })],
                miss,
            )
        };
        let s = mk(MissPolicy::Replicate);
        assert_eq!(s.locate_tuple(TupleId::new(0, 99), &db).len(), 2);
        let s = mk(MissPolicy::HashRow);
        assert!(s.locate_tuple(TupleId::new(0, 99), &db).is_single());
        // Known tuple resolves exactly.
        assert_eq!(
            s.locate_tuple(TupleId::new(0, 1), &db),
            PartitionSet::single(1)
        );
    }

    #[test]
    fn statement_routing_through_row_key() {
        let s = LookupScheme::new(
            2,
            vec![Some(
                Box::new(IndexBackend::new(entries())) as Box<dyn LookupBackend>
            )],
            vec![Some(RowKey { col: 0, offset: 10 })], // pk = row + 10
            MissPolicy::Replicate,
        );
        let stmt = Statement::select(0, Predicate::Eq(0, Value::Int(11))); // row 1
        assert_eq!(s.route_statement(&stmt).targets, PartitionSet::single(1));
        // Replicated tuple read: any_one.
        let stmt = Statement::select(0, Predicate::Eq(0, Value::Int(12))); // row 2
        let r = s.route_statement(&stmt);
        assert!(r.any_one);
        assert_eq!(r.targets.len(), 2);
        // Write to a replicated tuple must touch both.
        let stmt = Statement::update(0, Predicate::Eq(0, Value::Int(12)));
        let r = s.route_statement(&stmt);
        assert!(!r.any_one);
        // Unpinned -> broadcast.
        let stmt = Statement::select(0, Predicate::True);
        assert_eq!(s.route_statement(&stmt).targets.len(), 2);
    }
}
