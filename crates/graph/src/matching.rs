//! Randomized heavy-edge matching (HEM) for the coarsening phase.
//!
//! Vertices are visited in random order; each unmatched vertex is matched to
//! the unmatched neighbor reachable over the heaviest edge. Heavy edges are
//! collapsed first so the coarse graph preserves as much of the cut structure
//! as possible — the classic Karypis–Kumar heuristic ("A fast and high
//! quality multilevel scheme for partitioning irregular graphs").

use crate::csr::{CsrGraph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Sentinel meaning "not matched yet" during the algorithm. In the returned
/// vector every vertex is matched (unmatched vertices are matched to
/// themselves), so the sentinel never escapes.
const UNMATCHED: NodeId = NodeId::MAX;

/// Computes a heavy-edge matching.
///
/// Returns `mate` with `mate[v] == v` for vertices left unmatched (isolated
/// vertices or odd leftovers) and `mate[v] == u`, `mate[u] == v` for matched
/// pairs.
pub fn heavy_edge_matching<R: Rng>(g: &CsrGraph, rng: &mut R) -> Vec<NodeId> {
    heavy_edge_matching_capped(g, u64::MAX, rng)
}

/// [`heavy_edge_matching`] with a cap on the combined weight of a matched
/// pair. The multilevel driver uses this to stop vertices from snowballing
/// past the point where a balanced partition is impossible (a coarse vertex
/// heavier than a partition's capacity can never be placed without
/// overflowing it).
pub fn heavy_edge_matching_capped<R: Rng>(
    g: &CsrGraph,
    max_pair_weight: u64,
    rng: &mut R,
) -> Vec<NodeId> {
    let n = g.num_vertices();
    let mut mate = vec![UNMATCHED; n];
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.shuffle(rng);

    for &v in &order {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        let vw = g.vertex_weight(v) as u64;
        let mut best: Option<(NodeId, u32)> = None;
        for (u, w) in g.edges(v) {
            if mate[u as usize] == UNMATCHED
                && u != v
                && vw + g.vertex_weight(u) as u64 <= max_pair_weight
            {
                match best {
                    Some((_, bw)) if bw >= w => {}
                    _ => best = Some((u, w)),
                }
            }
        }
        match best {
            Some((u, _)) => {
                mate[v as usize] = u;
                mate[u as usize] = v;
            }
            None => mate[v as usize] = v,
        }
    }

    // Second pass: two-hop matching (METIS's fix for star/power-law
    // graphs). Hub-and-spoke structures — Schism's replication stars and
    // hot-tuple cliques — leave most leaves unmatched after HEM because
    // their only neighbor (the hub) is already taken, stalling coarsening.
    // Leaves hanging off the same already-matched vertex are near-duplicates
    // structurally, so pairing them is quality-safe.
    let mut scratch: Vec<NodeId> = Vec::new();
    for &v in &order {
        if mate[v as usize] != v {
            continue; // only self-matched leftovers
        }
        let vw = g.vertex_weight(v) as u64;
        scratch.clear();
        'outer: for (u, _) in g.edges(v) {
            // Bound the scan so huge hubs don't make this quadratic.
            for (w2, _) in g.edges(u).take(32) {
                if w2 != v
                    && mate[w2 as usize] == w2
                    && vw + g.vertex_weight(w2) as u64 <= max_pair_weight
                {
                    mate[v as usize] = w2;
                    mate[w2 as usize] = v;
                    break 'outer;
                }
            }
            scratch.push(u);
            if scratch.len() >= 16 {
                break;
            }
        }
    }
    mate
}

/// [`heavy_edge_matching_capped`] restricted to pairs with equal `labels`.
///
/// Used by the warm-start V-cycle: coarsening that never crosses a label
/// boundary keeps every coarse vertex on one side of the seed partitioning,
/// so the seed projects exactly onto every level of the hierarchy and the
/// refiner can move whole co-access clusters (which single-vertex moves on
/// the fine graph cannot — evicting one member of a clique is always a
/// negative-gain move).
pub fn heavy_edge_matching_labeled<R: Rng>(
    g: &CsrGraph,
    labels: &[u32],
    max_pair_weight: u64,
    rng: &mut R,
) -> Vec<NodeId> {
    let n = g.num_vertices();
    debug_assert_eq!(labels.len(), n);
    let mut mate = vec![UNMATCHED; n];
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.shuffle(rng);

    for &v in &order {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        let vw = g.vertex_weight(v) as u64;
        let vl = labels[v as usize];
        let mut best: Option<(NodeId, u32)> = None;
        for (u, w) in g.edges(v) {
            if mate[u as usize] == UNMATCHED
                && u != v
                && labels[u as usize] == vl
                && vw + g.vertex_weight(u) as u64 <= max_pair_weight
            {
                match best {
                    Some((_, bw)) if bw >= w => {}
                    _ => best = Some((u, w)),
                }
            }
        }
        match best {
            Some((u, _)) => {
                mate[v as usize] = u;
                mate[u as usize] = v;
            }
            None => mate[v as usize] = v,
        }
    }

    // Two-hop pass (see above), also label-restricted.
    for &v in &order {
        if mate[v as usize] != v {
            continue;
        }
        let vw = g.vertex_weight(v) as u64;
        let vl = labels[v as usize];
        let mut scanned = 0usize;
        'outer: for (u, _) in g.edges(v) {
            for (w2, _) in g.edges(u).take(32) {
                if w2 != v
                    && mate[w2 as usize] == w2
                    && labels[w2 as usize] == vl
                    && vw + g.vertex_weight(w2) as u64 <= max_pair_weight
                {
                    mate[v as usize] = w2;
                    mate[w2 as usize] = v;
                    break 'outer;
                }
            }
            scanned += 1;
            if scanned >= 16 {
                break;
            }
        }
    }
    mate
}

/// Number of matched *pairs* in a matching produced by
/// [`heavy_edge_matching`].
pub fn matched_pairs(mate: &[NodeId]) -> usize {
    mate.iter()
        .enumerate()
        .filter(|&(v, &m)| (m as usize) > v)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_is_matching(g: &CsrGraph, mate: &[NodeId]) {
        for v in 0..g.num_vertices() as NodeId {
            let m = mate[v as usize];
            assert_ne!(m, UNMATCHED, "every vertex must be resolved");
            assert_eq!(mate[m as usize], v, "matching must be symmetric");
            if m != v {
                assert!(
                    g.neighbors(v).contains(&m),
                    "matched pair {v}-{m} must be an edge"
                );
            }
        }
    }

    #[test]
    fn prefers_heavy_edges() {
        // Triangle with weights 0-1: 1, 0-2: 100, 1-2: 50. Whichever vertex
        // is visited first, its heaviest available neighbor is chosen, so
        // the weight-1 edge can never be the matched edge.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 100);
        b.add_edge(1, 2, 50);
        let g = b.build();
        for seed in 0..20 {
            let mate = heavy_edge_matching(&g, &mut StdRng::seed_from_u64(seed));
            check_is_matching(&g, &mate);
            assert!(
                !(mate[0] == 1 && mate[1] == 0),
                "seed {seed} matched the light edge"
            );
        }
    }

    #[test]
    fn cap_prevents_heavy_pairs() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 10);
        b.set_vertex_weight(0, 100);
        b.set_vertex_weight(1, 100);
        let g = b.build();
        let mate = heavy_edge_matching_capped(&g, 150, &mut StdRng::seed_from_u64(0));
        assert_eq!(mate, vec![0, 1], "pair exceeding cap must stay unmatched");
        let mate = heavy_edge_matching_capped(&g, 200, &mut StdRng::seed_from_u64(0));
        assert_eq!(mate, vec![1, 0]);
    }

    #[test]
    fn isolated_vertices_self_match() {
        let g = GraphBuilder::new(3).build();
        let mate = heavy_edge_matching(&g, &mut StdRng::seed_from_u64(1));
        assert_eq!(mate, vec![0, 1, 2]);
        assert_eq!(matched_pairs(&mate), 0);
    }

    #[test]
    fn labeled_matching_never_crosses_labels() {
        // Path 0-1-2-3 with labels [0,0,1,1]: edge 1-2 crosses and must not
        // be matched, whatever the visit order.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 100); // heaviest, but crosses
        b.add_edge(2, 3, 1);
        let g = b.build();
        let labels = [0u32, 0, 1, 1];
        for seed in 0..20 {
            let mate = heavy_edge_matching_labeled(
                &g,
                &labels,
                u64::MAX,
                &mut StdRng::seed_from_u64(seed),
            );
            check_is_matching(&g, &mate);
            for v in 0..4usize {
                let m = mate[v] as usize;
                assert_eq!(labels[v], labels[m], "seed {seed} matched across labels");
            }
            assert_eq!(matched_pairs(&mate), 2);
        }
    }

    #[test]
    fn path_graph_matching_is_valid() {
        let n = 101;
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(i as NodeId, (i + 1) as NodeId, 1);
        }
        let g = b.build();
        for seed in 0..5 {
            let mate = heavy_edge_matching(&g, &mut StdRng::seed_from_u64(seed));
            check_is_matching(&g, &mate);
            // A path of 101 vertices admits at most 50 pairs; HEM on a path
            // finds a near-maximal matching.
            let pairs = matched_pairs(&mate);
            assert!(pairs >= 30, "suspiciously small matching: {pairs}");
        }
    }
}
