//! Parallel heavy-edge matching (HEM) for the coarsening phase.
//!
//! The classic Karypis–Kumar heuristic ("A fast and high quality multilevel
//! scheme for partitioning irregular graphs") visits vertices in random
//! order and matches each to its heaviest available neighbor. That
//! formulation is inherently sequential — every decision depends on all
//! earlier ones — so this module uses the standard parallel reformulation
//! (the mt-METIS family): **propose rounds with mutual acceptance**.
//!
//! Each round runs two phases:
//!
//! 1. **Propose** (parallel over vertex chunks): every unmatched vertex
//!    computes its preferred partner — the unmatched neighbor with the
//!    heaviest edge, ties broken by a seed-derived per-vertex priority —
//!    against the *frozen* matching state of the round start. Pure function
//!    of `(graph, mate, seed)`, so chunk decomposition cannot change it.
//! 2. **Resolve** (sequential, O(n)): mutual proposals (`prop[v] == u` and
//!    `prop[u] == v`) become matches. This is the deterministic cross-chunk
//!    conflict tie-break: one-sided proposals simply lose the round and
//!    retry against the shrunken candidate set next round.
//!
//! Rounds repeat until no pair matches; a sequential greedy **cleanup** pass
//! in seeded random order then guarantees maximality (the leftover set is
//! small, so this costs little), and the METIS-style **two-hop** pass pairs
//! the leaves of hub-and-spoke structures — Schism's replication stars —
//! that no direct matching can reduce.
//!
//! Determinism contract: for a fixed `(graph, rng state)` the returned
//! matching is bit-identical for every pool size, because the parallel
//! phase is pure and every tie-break is a total order independent of
//! scheduling.

use crate::csr::{CsrGraph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use schism_par::{chunk_size, Pool};

/// Sentinel meaning "not matched yet" during the algorithm. In the returned
/// vector every vertex is matched (unmatched vertices are matched to
/// themselves), so the sentinel never escapes.
const UNMATCHED: NodeId = NodeId::MAX;

/// Sentinel for "no eligible partner" in a proposal vector.
const NO_PROPOSAL: NodeId = NodeId::MAX;

/// Propose rounds before falling back to the sequential cleanup. Random
/// priorities match an expected constant fraction of eligible pairs per
/// round, so eight rounds leave only a thin remainder.
const PROPOSE_ROUNDS: usize = 8;

/// SplitMix64 — the per-vertex tie-break priority. Seeded per matching call
/// so repeated levels explore different orders, like the shuffle used to.
/// Shared with the hypergraph matcher (`crate::hpartition`).
#[inline]
pub(crate) fn prio(seed: u64, v: NodeId) -> u64 {
    let mut z = seed.wrapping_add((v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Computes a heavy-edge matching with a single-threaded pool.
///
/// Returns `mate` with `mate[v] == v` for vertices left unmatched (isolated
/// vertices or odd leftovers) and `mate[v] == u`, `mate[u] == v` for matched
/// pairs.
pub fn heavy_edge_matching<R: Rng>(g: &CsrGraph, rng: &mut R) -> Vec<NodeId> {
    heavy_edge_matching_capped(g, u64::MAX, rng, &Pool::new(1))
}

/// [`heavy_edge_matching`] with a cap on the combined weight of a matched
/// pair, parallelized over `pool`. The multilevel driver uses the cap to
/// stop vertices from snowballing past the point where a balanced partition
/// is impossible (a coarse vertex heavier than a partition's capacity can
/// never be placed without overflowing it).
pub fn heavy_edge_matching_capped<R: Rng>(
    g: &CsrGraph,
    max_pair_weight: u64,
    rng: &mut R,
    pool: &Pool,
) -> Vec<NodeId> {
    hem(g, None, max_pair_weight, rng, pool)
}

/// [`heavy_edge_matching_capped`] restricted to pairs with equal `labels`.
///
/// Used by the warm-start V-cycle: coarsening that never crosses a label
/// boundary keeps every coarse vertex on one side of the seed partitioning,
/// so the seed projects exactly onto every level of the hierarchy and the
/// refiner can move whole co-access clusters (which single-vertex moves on
/// the fine graph cannot — evicting one member of a clique is always a
/// negative-gain move).
pub fn heavy_edge_matching_labeled<R: Rng>(
    g: &CsrGraph,
    labels: &[u32],
    max_pair_weight: u64,
    rng: &mut R,
    pool: &Pool,
) -> Vec<NodeId> {
    debug_assert_eq!(labels.len(), g.num_vertices());
    hem(g, Some(labels), max_pair_weight, rng, pool)
}

fn hem<R: Rng>(
    g: &CsrGraph,
    labels: Option<&[u32]>,
    max_pair_weight: u64,
    rng: &mut R,
    pool: &Pool,
) -> Vec<NodeId> {
    let n = g.num_vertices();
    let mut mate = vec![UNMATCHED; n];
    // One seed draw and one shuffle: the rng advances by the same amount
    // whatever the pool size, so downstream consumers see identical state.
    let seed: u64 = rng.gen();
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.shuffle(rng);

    let eligible = |v: NodeId, u: NodeId, vw: u64, mate: &[NodeId]| -> bool {
        u != v
            && mate[u as usize] == UNMATCHED
            && vw + g.vertex_weight(u) as u64 <= max_pair_weight
            && labels.is_none_or(|l| l[u as usize] == l[v as usize])
    };

    // Heaviest eligible neighbor; ties by seeded priority, then id — a
    // total order, so the proposal is unique.
    let best_partner = |v: NodeId, mate: &[NodeId]| -> NodeId {
        let vw = g.vertex_weight(v) as u64;
        let mut best: Option<(u32, u64, NodeId)> = None;
        for (u, w) in g.edges(v) {
            if !eligible(v, u, vw, mate) {
                continue;
            }
            let key = (w, prio(seed, u), u);
            if best.is_none_or(|b| key > b) {
                best = Some(key);
            }
        }
        best.map_or(NO_PROPOSAL, |(_, _, u)| u)
    };

    let chunk = chunk_size(n, pool.threads());
    for _ in 0..PROPOSE_ROUNDS {
        // Phase 1: propose against the frozen `mate` (parallel, pure).
        let proposals: Vec<Vec<NodeId>> = pool.scope_chunks(n, chunk, |r| {
            r.map(|v| {
                if mate[v] != UNMATCHED {
                    NO_PROPOSAL
                } else {
                    best_partner(v as NodeId, &mate)
                }
            })
            .collect()
        });
        let prop: Vec<NodeId> = proposals.into_iter().flatten().collect();

        // Phase 2: deterministic conflict resolution — mutual proposals
        // match, everyone else retries next round.
        let mut matched = 0usize;
        for v in 0..n {
            let u = prop[v];
            if u == NO_PROPOSAL || (u as usize) <= v {
                continue;
            }
            if prop[u as usize] == v as NodeId {
                mate[v] = u;
                mate[u as usize] = v as NodeId;
                matched += 1;
            }
        }
        if matched == 0 {
            break;
        }
    }

    // Cleanup: greedy maximal matching over the remainder, in the seeded
    // random visit order the sequential algorithm used. Vertices with no
    // eligible partner self-match.
    for &v in &order {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        let u = best_partner(v, &mate);
        if u == NO_PROPOSAL {
            mate[v as usize] = v;
        } else {
            mate[v as usize] = u;
            mate[u as usize] = v;
        }
    }

    // Two-hop pass (METIS's fix for star/power-law graphs). Hub-and-spoke
    // structures — Schism's replication stars and hot-tuple cliques — leave
    // most leaves self-matched because their only neighbor (the hub) is
    // taken, stalling coarsening. Leaves hanging off the same matched
    // vertex are near-duplicates structurally, so pairing them is
    // quality-safe. Bounded scans keep huge hubs from making this
    // quadratic.
    for &v in &order {
        if mate[v as usize] != v {
            continue; // only self-matched leftovers
        }
        let vw = g.vertex_weight(v) as u64;
        let mut scanned = 0usize;
        'outer: for (u, _) in g.edges(v) {
            for (w2, _) in g.edges(u).take(32) {
                if w2 != v
                    && mate[w2 as usize] == w2
                    && vw + g.vertex_weight(w2) as u64 <= max_pair_weight
                    && labels.is_none_or(|l| l[w2 as usize] == l[v as usize])
                {
                    mate[v as usize] = w2;
                    mate[w2 as usize] = v;
                    break 'outer;
                }
            }
            scanned += 1;
            if scanned >= 16 {
                break;
            }
        }
    }
    mate
}

/// Number of matched *pairs* in a matching produced by
/// [`heavy_edge_matching`].
pub fn matched_pairs(mate: &[NodeId]) -> usize {
    mate.iter()
        .enumerate()
        .filter(|&(v, &m)| (m as usize) > v)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_is_matching(g: &CsrGraph, mate: &[NodeId]) {
        for v in 0..g.num_vertices() as NodeId {
            let m = mate[v as usize];
            assert_ne!(m, UNMATCHED, "every vertex must be resolved");
            assert_eq!(mate[m as usize], v, "matching must be symmetric");
            if m != v {
                assert!(
                    g.neighbors(v).contains(&m),
                    "matched pair {v}-{m} must be an edge"
                );
            }
        }
    }

    #[test]
    fn prefers_heavy_edges() {
        // Triangle with weights 0-1: 1, 0-2: 100, 1-2: 50. The mutual
        // proposal 0<->2 always wins round one, so the weight-1 edge can
        // never be the matched edge.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 100);
        b.add_edge(1, 2, 50);
        let g = b.build();
        for seed in 0..20 {
            let mate = heavy_edge_matching(&g, &mut StdRng::seed_from_u64(seed));
            check_is_matching(&g, &mate);
            assert!(
                !(mate[0] == 1 && mate[1] == 0),
                "seed {seed} matched the light edge"
            );
        }
    }

    #[test]
    fn cap_prevents_heavy_pairs() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 10);
        b.set_vertex_weight(0, 100);
        b.set_vertex_weight(1, 100);
        let g = b.build();
        let pool = Pool::new(1);
        let mate = heavy_edge_matching_capped(&g, 150, &mut StdRng::seed_from_u64(0), &pool);
        assert_eq!(mate, vec![0, 1], "pair exceeding cap must stay unmatched");
        let mate = heavy_edge_matching_capped(&g, 200, &mut StdRng::seed_from_u64(0), &pool);
        assert_eq!(mate, vec![1, 0]);
    }

    #[test]
    fn isolated_vertices_self_match() {
        let g = GraphBuilder::new(3).build();
        let mate = heavy_edge_matching(&g, &mut StdRng::seed_from_u64(1));
        assert_eq!(mate, vec![0, 1, 2]);
        assert_eq!(matched_pairs(&mate), 0);
    }

    #[test]
    fn labeled_matching_never_crosses_labels() {
        // Path 0-1-2-3 with labels [0,0,1,1]: edge 1-2 crosses and must not
        // be matched, whatever the visit order.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 100); // heaviest, but crosses
        b.add_edge(2, 3, 1);
        let g = b.build();
        let labels = [0u32, 0, 1, 1];
        for seed in 0..20 {
            let mate = heavy_edge_matching_labeled(
                &g,
                &labels,
                u64::MAX,
                &mut StdRng::seed_from_u64(seed),
                &Pool::new(1),
            );
            check_is_matching(&g, &mate);
            for v in 0..4usize {
                let m = mate[v] as usize;
                assert_eq!(labels[v], labels[m], "seed {seed} matched across labels");
            }
            assert_eq!(matched_pairs(&mate), 2);
        }
    }

    #[test]
    fn path_graph_matching_is_valid() {
        let n = 101;
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(i as NodeId, (i + 1) as NodeId, 1);
        }
        let g = b.build();
        for seed in 0..5 {
            let mate = heavy_edge_matching(&g, &mut StdRng::seed_from_u64(seed));
            check_is_matching(&g, &mate);
            // A path of 101 vertices admits at most 50 pairs; the cleanup
            // pass guarantees maximality, and a maximal matching on a path
            // has at least ceil((n-1)/3) pairs.
            let pairs = matched_pairs(&mate);
            assert!(pairs >= 34, "suspiciously small matching: {pairs}");
        }
    }

    #[test]
    fn identical_across_pool_sizes() {
        // 600-edge random-ish graph: the matching must be bit-identical for
        // 1, 2, and 4 worker threads.
        let mut b = GraphBuilder::new(300);
        let mut state = 5u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..900 {
            let u = (next() % 300) as NodeId;
            let v = (next() % 300) as NodeId;
            b.add_edge(u, v, 1 + (next() % 7) as u32);
        }
        let g = b.build();
        let run = |threads: usize| {
            heavy_edge_matching_capped(
                &g,
                u64::MAX,
                &mut StdRng::seed_from_u64(99),
                &Pool::new(threads),
            )
        };
        let base = run(1);
        // Symmetry only: the two-hop pass may legitimately pair
        // non-adjacent leaves of a shared hub.
        for v in 0..g.num_vertices() {
            let m = base[v];
            assert_ne!(m, UNMATCHED);
            assert_eq!(base[m as usize], v as NodeId, "matching must be symmetric");
        }
        for t in [2, 4] {
            assert_eq!(run(t), base, "pool size {t} changed the matching");
        }
    }
}
