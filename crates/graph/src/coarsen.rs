//! Graph contraction: collapse a matching into a coarser graph.
//!
//! Matched pairs become a single coarse vertex whose weight is the sum of the
//! pair's weights; parallel edges created by the contraction are merged with
//! summed weights; edges interior to a pair vanish. The mapping from fine to
//! coarse vertex ids is retained so partitions can be projected back during
//! uncoarsening.

use crate::csr::{CsrGraph, NodeId};

/// One level of the multilevel hierarchy.
#[derive(Clone, Debug)]
pub struct CoarseLevel {
    /// The contracted graph.
    pub graph: CsrGraph,
    /// `map[v_fine] = v_coarse`.
    pub map: Vec<NodeId>,
}

/// Contracts `g` according to `mate` (as produced by
/// [`crate::matching::heavy_edge_matching`]).
pub fn contract(g: &CsrGraph, mate: &[NodeId]) -> CoarseLevel {
    let n = g.num_vertices();
    debug_assert_eq!(mate.len(), n);

    // Assign coarse ids: the lower-numbered endpoint of each pair owns the id.
    let mut map = vec![NodeId::MAX; n];
    let mut next: NodeId = 0;
    for v in 0..n {
        let m = mate[v] as usize;
        if m >= v {
            map[v] = next;
            map[m] = next; // no-op when m == v
            next += 1;
        }
    }
    let cn = next as usize;

    // Coarse vertex weights.
    let mut cvwgt = vec![0u64; cn];
    for v in 0..n {
        cvwgt[map[v] as usize] += g.vertex_weight(v as NodeId) as u64;
    }

    // Build coarse adjacency with a timestamped scratch table so each coarse
    // vertex accumulates its neighbors in O(sum of fine degrees).
    let mut xadj = Vec::with_capacity(cn + 1);
    xadj.push(0u32);
    let mut adjncy: Vec<NodeId> = Vec::with_capacity(g.num_edges());
    let mut adjwgt: Vec<u32> = Vec::with_capacity(g.num_edges());
    // slot[c] = index into the adjacency currently being built, valid when
    // stamp[c] == current vertex marker.
    let mut slot = vec![0u32; cn];
    let mut stamp = vec![NodeId::MAX; cn];

    for v in 0..n {
        let cv = map[v];
        // Each coarse vertex is emitted exactly once, by its owner fine
        // vertex (the one with the smaller id in the pair).
        if (mate[v] as usize) < v {
            continue;
        }
        let begin = adjncy.len();
        let emit = |fine: NodeId,
                    adjncy: &mut Vec<NodeId>,
                    adjwgt: &mut Vec<u32>,
                    slot: &mut [u32],
                    stamp: &mut [NodeId]| {
            for (u, w) in g.edges(fine) {
                let cu = map[u as usize];
                if cu == cv {
                    continue; // interior edge of the pair
                }
                if stamp[cu as usize] == cv {
                    let s = slot[cu as usize] as usize;
                    adjwgt[s] = adjwgt[s].saturating_add(w);
                } else {
                    stamp[cu as usize] = cv;
                    slot[cu as usize] = adjncy.len() as u32;
                    adjncy.push(cu);
                    adjwgt.push(w);
                }
            }
        };
        emit(v as NodeId, &mut adjncy, &mut adjwgt, &mut slot, &mut stamp);
        let m = mate[v];
        if m as usize != v {
            emit(m, &mut adjncy, &mut adjwgt, &mut slot, &mut stamp);
        }
        debug_assert!(adjncy.len() >= begin);
        xadj.push(adjncy.len() as u32);
    }

    let cvwgt: Vec<u32> = cvwgt
        .into_iter()
        .map(|w| u32::try_from(w).unwrap_or(u32::MAX))
        .collect();
    CoarseLevel {
        graph: CsrGraph::from_parts(xadj, adjncy, adjwgt, cvwgt),
        map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::matching::heavy_edge_matching;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn contract_square() {
        // Square 0-1-2-3-0, match (0,1) and (2,3): coarse graph is two
        // vertices joined by an edge of weight 2 (edges 1-2 and 3-0 merge).
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 10);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 10);
        b.add_edge(3, 0, 1);
        let g = b.build();
        let mate = vec![1, 0, 3, 2];
        let lvl = contract(&g, &mate);
        lvl.graph.validate().unwrap();
        assert_eq!(lvl.graph.num_vertices(), 2);
        assert_eq!(lvl.graph.num_edges(), 1);
        assert_eq!(lvl.graph.edges(0).next(), Some((1, 2)));
        assert_eq!(lvl.graph.vertex_weight(0), 2);
        assert_eq!(lvl.graph.total_vertex_weight(), g.total_vertex_weight());
    }

    #[test]
    fn self_matched_vertices_survive() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        let g = b.build();
        let mate = vec![1, 0, 2];
        let lvl = contract(&g, &mate);
        assert_eq!(lvl.graph.num_vertices(), 2);
        assert_eq!(lvl.graph.num_edges(), 0);
        assert_eq!(lvl.graph.vertex_weight(lvl.map[2] as NodeId), 1);
    }

    #[test]
    fn weight_conserved_on_random_graph() {
        let mut b = GraphBuilder::new(200);
        let mut rng = StdRng::seed_from_u64(7);
        use rand::Rng;
        for _ in 0..600 {
            let u = rng.gen_range(0..200u32);
            let v = rng.gen_range(0..200u32);
            b.add_edge(u, v, rng.gen_range(1..5));
        }
        let g = b.build();
        let mate = heavy_edge_matching(&g, &mut rng);
        let lvl = contract(&g, &mate);
        lvl.graph.validate().unwrap();
        assert_eq!(lvl.graph.total_vertex_weight(), g.total_vertex_weight());
        assert!(lvl.graph.num_vertices() < g.num_vertices());
        // Total edge weight = fine total minus interior (matched) edges.
        let interior: u64 = (0..200u32)
            .filter(|&v| mate[v as usize] > v)
            .map(|v| {
                g.edges(v)
                    .filter(|&(u, _)| u == mate[v as usize])
                    .map(|(_, w)| w as u64)
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(
            lvl.graph.total_edge_weight(),
            g.total_edge_weight() - interior
        );
    }
}
