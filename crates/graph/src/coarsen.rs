//! Graph contraction: collapse a matching into a coarser graph.
//!
//! Matched pairs become a single coarse vertex whose weight is the sum of the
//! pair's weights; parallel edges created by the contraction are merged with
//! summed weights; edges interior to a pair vanish. The mapping from fine to
//! coarse vertex ids is retained so partitions can be projected back during
//! uncoarsening.
//!
//! The expensive part — building the coarse adjacency, O(E) — is
//! parallelized over *coarse* vertex ranges: each chunk accumulates its
//! vertices' merged neighbor lists into private buffers with a private
//! timestamped scratch table, and a sequential stitch concatenates them
//! with offset fixups. Because every coarse vertex's adjacency is emitted
//! by exactly one chunk and emission order within a vertex only depends on
//! fine-edge order, the stitched CSR is **byte-identical to the sequential
//! build** for any pool size.

use crate::csr::{CsrGraph, NodeId};
use schism_par::Pool;

/// One level of the multilevel hierarchy.
#[derive(Clone, Debug)]
pub struct CoarseLevel {
    /// The contracted graph.
    pub graph: CsrGraph,
    /// `map[v_fine] = v_coarse`.
    pub map: Vec<NodeId>,
}

/// Contracts `g` according to `mate` (as produced by
/// [`crate::matching::heavy_edge_matching`]), sharing the adjacency build
/// across `pool`.
pub fn contract(g: &CsrGraph, mate: &[NodeId], pool: &Pool) -> CoarseLevel {
    let n = g.num_vertices();
    debug_assert_eq!(mate.len(), n);

    // Assign coarse ids: the lower-numbered endpoint of each pair owns the
    // id. Sequential O(n) — a prefix-sum dependency not worth sharding.
    let mut map = vec![NodeId::MAX; n];
    let mut next: NodeId = 0;
    for v in 0..n {
        let m = mate[v] as usize;
        if m >= v {
            map[v] = next;
            map[m] = next; // no-op when m == v
            next += 1;
        }
    }
    let cn = next as usize;

    // Coarse vertex weights, and the owner (emitting) fine vertex of each
    // coarse vertex — the lower endpoint of its pair.
    let mut cvwgt = vec![0u64; cn];
    let mut owner = vec![0 as NodeId; cn];
    for v in 0..n {
        cvwgt[map[v] as usize] += g.vertex_weight(v as NodeId) as u64;
        if mate[v] as usize >= v {
            owner[map[v] as usize] = v as NodeId;
        }
    }

    // Parallel adjacency build over coarse-vertex chunks. Each chunk owns
    // a contiguous id range, so concatenating chunk outputs in order
    // reproduces the sequential emission exactly.
    struct ChunkAdj {
        degrees: Vec<u32>,
        adjncy: Vec<NodeId>,
        adjwgt: Vec<u32>,
    }
    // One chunk per worker (static split): the scratch tables below are
    // O(cn) each, so fine-grained chunking would spend more on re-zeroing
    // `stamp` than on merging edges.
    let chunk = cn.div_ceil(pool.threads()).max(1024);
    let parts: Vec<ChunkAdj> = pool.scope_chunks(cn, chunk, |range| {
        // slot[c] = index into the chunk-local adjacency being built, valid
        // when stamp[c] == the coarse vertex currently being emitted.
        let mut slot = vec![0u32; cn];
        let mut stamp = vec![NodeId::MAX; cn];
        let mut out = ChunkAdj {
            degrees: Vec::with_capacity(range.len()),
            adjncy: Vec::new(),
            adjwgt: Vec::new(),
        };
        for cv in range {
            let cv = cv as NodeId;
            let begin = out.adjncy.len();
            let mut emit = |fine: NodeId| {
                for (u, w) in g.edges(fine) {
                    let cu = map[u as usize];
                    if cu == cv {
                        continue; // interior edge of the pair
                    }
                    if stamp[cu as usize] == cv {
                        let s = slot[cu as usize] as usize;
                        out.adjwgt[s] = out.adjwgt[s].saturating_add(w);
                    } else {
                        stamp[cu as usize] = cv;
                        slot[cu as usize] = out.adjncy.len() as u32;
                        out.adjncy.push(cu);
                        out.adjwgt.push(w);
                    }
                }
            };
            let v = owner[cv as usize];
            emit(v);
            let m = mate[v as usize];
            if m != v {
                emit(m);
            }
            out.degrees.push((out.adjncy.len() - begin) as u32);
        }
        out
    });

    // Sequential stitch: chunk outputs are already in coarse-id order.
    let total_adj: usize = parts.iter().map(|p| p.adjncy.len()).sum();
    let mut xadj = Vec::with_capacity(cn + 1);
    xadj.push(0u32);
    let mut adjncy: Vec<NodeId> = Vec::with_capacity(total_adj);
    let mut adjwgt: Vec<u32> = Vec::with_capacity(total_adj);
    for p in parts {
        for d in p.degrees {
            xadj.push(xadj.last().expect("non-empty") + d);
        }
        adjncy.extend_from_slice(&p.adjncy);
        adjwgt.extend_from_slice(&p.adjwgt);
    }

    let cvwgt: Vec<u32> = cvwgt
        .into_iter()
        .map(|w| u32::try_from(w).unwrap_or(u32::MAX))
        .collect();
    CoarseLevel {
        graph: CsrGraph::from_parts(xadj, adjncy, adjwgt, cvwgt),
        map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::matching::heavy_edge_matching;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn contract_square() {
        // Square 0-1-2-3-0, match (0,1) and (2,3): coarse graph is two
        // vertices joined by an edge of weight 2 (edges 1-2 and 3-0 merge).
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 10);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 10);
        b.add_edge(3, 0, 1);
        let g = b.build();
        let mate = vec![1, 0, 3, 2];
        let lvl = contract(&g, &mate, &Pool::new(1));
        lvl.graph.validate().unwrap();
        assert_eq!(lvl.graph.num_vertices(), 2);
        assert_eq!(lvl.graph.num_edges(), 1);
        assert_eq!(lvl.graph.edges(0).next(), Some((1, 2)));
        assert_eq!(lvl.graph.vertex_weight(0), 2);
        assert_eq!(lvl.graph.total_vertex_weight(), g.total_vertex_weight());
    }

    #[test]
    fn self_matched_vertices_survive() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        let g = b.build();
        let mate = vec![1, 0, 2];
        let lvl = contract(&g, &mate, &Pool::new(1));
        assert_eq!(lvl.graph.num_vertices(), 2);
        assert_eq!(lvl.graph.num_edges(), 0);
        assert_eq!(lvl.graph.vertex_weight(lvl.map[2] as NodeId), 1);
    }

    #[test]
    fn weight_conserved_on_random_graph() {
        let mut b = GraphBuilder::new(200);
        let mut rng = StdRng::seed_from_u64(7);
        use rand::Rng;
        for _ in 0..600 {
            let u = rng.gen_range(0..200u32);
            let v = rng.gen_range(0..200u32);
            b.add_edge(u, v, rng.gen_range(1..5));
        }
        let g = b.build();
        let mate = heavy_edge_matching(&g, &mut rng);
        let lvl = contract(&g, &mate, &Pool::new(1));
        lvl.graph.validate().unwrap();
        assert_eq!(lvl.graph.total_vertex_weight(), g.total_vertex_weight());
        assert!(lvl.graph.num_vertices() < g.num_vertices());
        // Total edge weight = fine total minus interior (matched) edges.
        let interior: u64 = (0..200u32)
            .filter(|&v| mate[v as usize] > v)
            .map(|v| {
                g.edges(v)
                    .filter(|&(u, _)| u == mate[v as usize])
                    .map(|(_, w)| w as u64)
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(
            lvl.graph.total_edge_weight(),
            g.total_edge_weight() - interior
        );
    }

    #[test]
    fn contraction_identical_across_pool_sizes() {
        let mut b = GraphBuilder::new(500);
        let mut rng = StdRng::seed_from_u64(11);
        use rand::Rng;
        for _ in 0..1_500 {
            let u = rng.gen_range(0..500u32);
            let v = rng.gen_range(0..500u32);
            b.add_edge(u, v, rng.gen_range(1..9));
        }
        let g = b.build();
        let mate = heavy_edge_matching(&g, &mut rng);
        let base = contract(&g, &mate, &Pool::new(1));
        base.graph.validate().unwrap();
        for t in [2, 4] {
            let lvl = contract(&g, &mate, &Pool::new(t));
            assert_eq!(lvl.map, base.map, "pool size {t} changed the map");
            // CSR must be byte-identical: compare per-vertex adjacency.
            assert_eq!(lvl.graph.num_vertices(), base.graph.num_vertices());
            for v in 0..base.graph.num_vertices() as NodeId {
                assert_eq!(
                    lvl.graph.edges(v).collect::<Vec<_>>(),
                    base.graph.edges(v).collect::<Vec<_>>(),
                    "pool size {t} changed adjacency of {v}"
                );
            }
        }
    }
}
