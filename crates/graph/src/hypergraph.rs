//! Hypergraph representation: one hyperedge (net) per transaction.
//!
//! Schism's clique expansion (§4.1) turns a transaction touching `t` tuples
//! into `t(t-1)/2` edges — the reason `build_graph` needs blanket-scan
//! thresholds and O(txn²) chunk-local edge buffers. The hypergraph model
//! (arXiv 1309.1556) stores the same transaction as a single **net** whose
//! **pins** are the touched vertices: memory is linear in the trace, and the
//! partitioner can optimize the (λ−1) connectivity metric — the number of
//! *extra* partitions a transaction spans — which is exactly the
//! distributed-transaction count the paper's edge cut only approximates.
//!
//! [`HyperGraph`] is a dual-CSR structure: a vertex → incident-net index
//! (`vxadj`/`vnets`) and a net → pin index (`exadj`/`pins`), plus net
//! weights (merged transaction counts) and vertex weights. Construction
//! mirrors the plain-graph path: [`HyperGraphBuilder`] accumulates nets in
//! any order and canonicalizes at build time (pins sorted and deduplicated
//! per net, nets sorted lexicographically by pin list, identical pin sets
//! merged with summed weights), so a build is insensitive to insertion
//! order. [`HyperEdgeBuffer`] is the chunk-local half of a sharded build,
//! exactly as [`crate::builder::EdgeBuffer`] is for plain graphs.

use crate::csr::NodeId;

/// A net entry in a flattened pin buffer: `pins[start .. start + len]`.
#[derive(Clone, Copy, Debug)]
struct NetEntry {
    start: usize,
    len: u32,
    w: u32,
}

/// Sorts nets lexicographically by pin list and merges identical pin sets
/// (weights summed, saturating). Rebuilds the pin buffer densely. The
/// result is a canonical form: any interleaving of the same multiset of
/// nets compacts to the same buffers.
fn compact_nets(pin_buf: &mut Vec<NodeId>, nets: &mut Vec<NetEntry>) {
    if nets.len() <= 1 {
        return;
    }
    let mut order: Vec<u32> = (0..nets.len() as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        let ea = nets[a as usize];
        let eb = nets[b as usize];
        let sa = &pin_buf[ea.start..ea.start + ea.len as usize];
        let sb = &pin_buf[eb.start..eb.start + eb.len as usize];
        sa.cmp(sb).then(a.cmp(&b))
    });
    let mut new_pins: Vec<NodeId> = Vec::with_capacity(pin_buf.len());
    let mut new_nets: Vec<NetEntry> = Vec::with_capacity(nets.len());
    for &i in &order {
        let e = nets[i as usize];
        let slice = &pin_buf[e.start..e.start + e.len as usize];
        if let Some(last) = new_nets.last_mut() {
            let prev = &new_pins[last.start..last.start + last.len as usize];
            if prev == slice {
                last.w = last.w.saturating_add(e.w);
                continue;
            }
        }
        let start = new_pins.len();
        new_pins.extend_from_slice(slice);
        new_nets.push(NetEntry {
            start,
            len: e.len,
            w: e.w,
        });
    }
    *pin_buf = new_pins;
    *nets = new_nets;
}

/// Sorts and deduplicates the tail `buf[start..]` in place, truncating the
/// buffer to the deduplicated length. Returns the deduplicated pin count.
fn canonicalize_tail(buf: &mut Vec<NodeId>, start: usize) -> usize {
    let tail = &mut buf[start..];
    tail.sort_unstable();
    let mut write = 0usize;
    for read in 0..tail.len() {
        if read == 0 || tail[read] != tail[read - 1] {
            tail[write] = tail[read];
            write += 1;
        }
    }
    buf.truncate(start + write);
    write
}

/// An immutable hypergraph in dual-CSR form.
///
/// Vertices and nets are numbered densely from 0. Pins of a net are stored
/// sorted and unique; the nets incident to a vertex are stored in ascending
/// net order. Net weights count the transactions merged into the net.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct HyperGraph {
    /// Vertex → incident nets: `vnets[vxadj[v] .. vxadj[v + 1]]`.
    vxadj: Vec<u32>,
    vnets: Vec<u32>,
    /// Net → pins: `pins[exadj[e] .. exadj[e + 1]]`.
    exadj: Vec<u32>,
    pins: Vec<NodeId>,
    /// Net weights (transactions merged into the net).
    ewgt: Vec<u32>,
    /// Vertex weights.
    vwgt: Vec<u32>,
    total_vwgt: u64,
}

impl HyperGraph {
    /// The empty hypergraph (no vertices, no nets).
    pub fn empty() -> Self {
        Self {
            vxadj: vec![0],
            exadj: vec![0],
            ..Self::default()
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of nets (hyperedges).
    pub fn num_nets(&self) -> usize {
        self.ewgt.len()
    }

    /// Total number of pins across all nets.
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// Weight of vertex `v`.
    pub fn vertex_weight(&self, v: NodeId) -> u32 {
        self.vwgt[v as usize]
    }

    /// All vertex weights.
    pub fn vertex_weights(&self) -> &[u32] {
        &self.vwgt
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> u64 {
        self.total_vwgt
    }

    /// Net ids incident to vertex `v`, ascending.
    pub fn nets(&self, v: NodeId) -> &[u32] {
        let v = v as usize;
        &self.vnets[self.vxadj[v] as usize..self.vxadj[v + 1] as usize]
    }

    /// Pins of net `e`, sorted and unique.
    pub fn pins(&self, e: u32) -> &[NodeId] {
        let e = e as usize;
        &self.pins[self.exadj[e] as usize..self.exadj[e + 1] as usize]
    }

    /// Weight of net `e`.
    pub fn net_weight(&self, e: u32) -> u32 {
        self.ewgt[e as usize]
    }

    /// Sum of all net weights.
    pub fn total_net_weight(&self) -> u64 {
        self.ewgt.iter().map(|&w| w as u64).sum()
    }

    /// Structural sanity checks; used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices();
        let m = self.num_nets();
        if self.vxadj.len() != n + 1 || self.exadj.len() != m + 1 {
            return Err("index array length mismatch".into());
        }
        for w in self.vxadj.windows(2) {
            if w[0] > w[1] {
                return Err("vxadj not monotone".into());
            }
        }
        for w in self.exadj.windows(2) {
            if w[0] > w[1] {
                return Err("exadj not monotone".into());
            }
        }
        if *self.vxadj.last().unwrap() as usize != self.vnets.len() {
            return Err("vxadj does not cover vnets".into());
        }
        if *self.exadj.last().unwrap() as usize != self.pins.len() {
            return Err("exadj does not cover pins".into());
        }
        let mut pin_total = 0usize;
        for e in 0..m as u32 {
            let ps = self.pins(e);
            if ps.len() < 2 {
                return Err(format!("net {e} has fewer than 2 pins"));
            }
            if self.ewgt[e as usize] == 0 {
                return Err(format!("net {e} has zero weight"));
            }
            for w in ps.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("net {e} pins not strictly ascending"));
                }
            }
            if ps.iter().any(|&p| p as usize >= n) {
                return Err(format!("net {e} pin out of range"));
            }
            pin_total += ps.len();
        }
        if pin_total != self.vnets.len() {
            return Err("incidence and pin counts disagree".into());
        }
        for v in 0..n as NodeId {
            for w in self.nets(v).windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("vertex {v} nets not strictly ascending"));
                }
            }
            for &e in self.nets(v) {
                if e as usize >= m {
                    return Err(format!("vertex {v} net out of range"));
                }
                if !self.pins(e).contains(&v) {
                    return Err(format!("vertex {v} lists net {e} without a pin"));
                }
            }
        }
        let total: u64 = self.vwgt.iter().map(|&w| w as u64).sum();
        if total != self.total_vwgt {
            return Err("total vertex weight out of date".into());
        }
        Ok(())
    }
}

/// Accumulates nets and vertex weights, then produces a [`HyperGraph`].
#[derive(Clone, Debug)]
pub struct HyperGraphBuilder {
    n: usize,
    pin_buf: Vec<NodeId>,
    nets: Vec<NetEntry>,
    vwgt: Vec<u32>,
}

impl HyperGraphBuilder {
    /// A builder for a hypergraph with `n` vertices, all of unit weight.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "too many vertices for u32 ids");
        Self {
            n,
            pin_buf: Vec::new(),
            nets: Vec::new(),
            vwgt: vec![1; n],
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Adds a net over `pins` with weight `w`. Pins are sorted and
    /// deduplicated; nets with fewer than two distinct pins or zero weight
    /// are dropped (they carry no cut information, like self loops in the
    /// plain-graph builder). Identical pin sets are merged at build time
    /// with their weights summed (saturating).
    pub fn add_net(&mut self, pins: &[NodeId], w: u32) {
        if w == 0 || pins.len() < 2 {
            return;
        }
        assert!(
            pins.iter().all(|&p| (p as usize) < self.n),
            "net pin out of range"
        );
        let start = self.pin_buf.len();
        self.pin_buf.extend_from_slice(pins);
        let len = canonicalize_tail(&mut self.pin_buf, start);
        if len < 2 {
            self.pin_buf.truncate(start);
            return;
        }
        self.nets.push(NetEntry {
            start,
            len: len as u32,
            w,
        });
    }

    /// Sets the weight of vertex `v` (default is 1).
    pub fn set_vertex_weight(&mut self, v: NodeId, w: u32) {
        self.vwgt[v as usize] = w;
    }

    /// Adds `w` to the weight of vertex `v` (saturating).
    pub fn add_vertex_weight(&mut self, v: NodeId, w: u32) {
        let cur = &mut self.vwgt[v as usize];
        *cur = cur.saturating_add(w);
    }

    /// Number of buffered (pre-merge) pins.
    pub fn pending_pins(&self) -> usize {
        self.pin_buf.len()
    }

    /// Eagerly merges identical pin sets in place. Long streaming builds
    /// call this periodically to bound peak memory; [`Self::build`]
    /// performs the same merge at the end regardless.
    pub fn compact(&mut self) {
        compact_nets(&mut self.pin_buf, &mut self.nets);
    }

    /// Canonicalizes and emits the dual-CSR hypergraph.
    pub fn build(mut self) -> HyperGraph {
        compact_nets(&mut self.pin_buf, &mut self.nets);
        let n = self.n;
        let m = self.nets.len();

        let mut exadj = Vec::with_capacity(m + 1);
        exadj.push(0u32);
        let mut pins: Vec<NodeId> = Vec::with_capacity(self.pin_buf.len());
        let mut ewgt: Vec<u32> = Vec::with_capacity(m);
        for e in &self.nets {
            pins.extend_from_slice(&self.pin_buf[e.start..e.start + e.len as usize]);
            let end = u32::try_from(pins.len()).expect("pin count overflows u32 index");
            exadj.push(end);
            ewgt.push(e.w);
        }

        // Vertex → net incidence: counting pass then scatter. Scanning nets
        // in ascending id order leaves each vertex's net list ascending.
        let mut deg = vec![0u32; n];
        for &p in &pins {
            deg[p as usize] += 1;
        }
        let mut vxadj = Vec::with_capacity(n + 1);
        vxadj.push(0u32);
        let mut acc = 0u32;
        for &d in &deg {
            acc = acc
                .checked_add(d)
                .expect("pin count overflows u32 incidence index");
            vxadj.push(acc);
        }
        let mut vnets = vec![0u32; acc as usize];
        let mut cursor: Vec<u32> = vxadj[..n].to_vec();
        for (e, window) in exadj.windows(2).enumerate() {
            for &p in &pins[window[0] as usize..window[1] as usize] {
                let c = cursor[p as usize] as usize;
                vnets[c] = e as u32;
                cursor[p as usize] += 1;
            }
        }

        let total_vwgt = self.vwgt.iter().map(|&w| w as u64).sum();
        HyperGraph {
            vxadj,
            vnets,
            exadj,
            pins,
            ewgt,
            vwgt: self.vwgt,
            total_vwgt,
        }
    }
}

/// A standalone net-accumulation buffer for the chunk half of a sharded
/// hypergraph build.
///
/// Worker chunks push one net per transaction, periodically
/// [`HyperEdgeBuffer::compact`]ing to bound memory, and the stitching pass
/// drains the buffers into a [`HyperGraphBuilder`] in chunk order. Like
/// [`crate::builder::EdgeBuffer`] there is **no vertex-range check**: chunk
/// buffers may hold caller-encoded ids (chunk-local replica indices) that
/// are remapped to real node ids during the stitch. Compaction only merges
/// *identical* local pin lists, which is remap-safe: two lists equal before
/// a deterministic remap are equal after it.
#[derive(Clone, Debug, Default)]
pub struct HyperEdgeBuffer {
    pin_buf: Vec<NodeId>,
    nets: Vec<NetEntry>,
}

impl HyperEdgeBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes a net; pins are sorted and deduplicated, nets with fewer than
    /// two distinct pins or zero weight are dropped.
    pub fn push(&mut self, pins: &[NodeId], w: u32) {
        if w == 0 || pins.len() < 2 {
            return;
        }
        let start = self.pin_buf.len();
        self.pin_buf.extend_from_slice(pins);
        let len = canonicalize_tail(&mut self.pin_buf, start);
        if len < 2 {
            self.pin_buf.truncate(start);
            return;
        }
        self.nets.push(NetEntry {
            start,
            len: len as u32,
            w,
        });
    }

    /// Number of buffered (pre-merge) pins.
    pub fn pin_count(&self) -> usize {
        self.pin_buf.len()
    }

    /// Number of buffered (pre-merge) nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.nets.is_empty()
    }

    /// Merges identical pin lists in place (weights summed, saturating).
    pub fn compact(&mut self) {
        compact_nets(&mut self.pin_buf, &mut self.nets);
    }

    /// Iterates the buffered nets as `(pins, weight)` in canonical
    /// (post-compaction) order.
    pub fn nets(&self) -> impl Iterator<Item = (&[NodeId], u32)> {
        self.nets
            .iter()
            .map(|e| (&self.pin_buf[e.start..e.start + e.len as usize], e.w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_merges_identical_nets() {
        let mut b = HyperGraphBuilder::new(4);
        b.add_net(&[0, 1, 2], 1);
        b.add_net(&[2, 1, 0], 2); // same set, different order
        b.add_net(&[1, 3], 5);
        let hg = b.build();
        hg.validate().unwrap();
        assert_eq!(hg.num_nets(), 2);
        assert_eq!(hg.num_pins(), 5);
        // Canonical order is lexicographic by pin list.
        assert_eq!(hg.pins(0), &[0, 1, 2]);
        assert_eq!(hg.net_weight(0), 3);
        assert_eq!(hg.pins(1), &[1, 3]);
        assert_eq!(hg.net_weight(1), 5);
    }

    #[test]
    fn drops_degenerate_nets() {
        let mut b = HyperGraphBuilder::new(3);
        b.add_net(&[1], 4); // single pin
        b.add_net(&[2, 2, 2], 4); // dedups to a single pin
        b.add_net(&[0, 1], 0); // zero weight
        let hg = b.build();
        assert_eq!(hg.num_nets(), 0);
        assert_eq!(hg.num_pins(), 0);
        hg.validate().unwrap();
    }

    #[test]
    fn incidence_is_consistent() {
        let mut b = HyperGraphBuilder::new(5);
        b.add_net(&[0, 1, 2], 1);
        b.add_net(&[2, 3], 2);
        b.add_net(&[0, 4], 3);
        let hg = b.build();
        hg.validate().unwrap();
        assert_eq!(hg.nets(2).len(), 2);
        assert_eq!(hg.nets(4).len(), 1);
        for v in 0..5u32 {
            for &e in hg.nets(v) {
                assert!(hg.pins(e).contains(&v));
            }
        }
    }

    #[test]
    fn vertex_weights_roundtrip() {
        let mut b = HyperGraphBuilder::new(3);
        b.set_vertex_weight(0, 7);
        b.add_vertex_weight(0, 3);
        b.add_vertex_weight(2, 4);
        let hg = b.build();
        assert_eq!(hg.vertex_weight(0), 10);
        assert_eq!(hg.vertex_weight(1), 1);
        assert_eq!(hg.vertex_weight(2), 5);
        assert_eq!(hg.total_vertex_weight(), 16);
    }

    #[test]
    fn insertion_order_is_irrelevant() {
        let nets: Vec<(Vec<NodeId>, u32)> = vec![
            (vec![0, 1, 2], 1),
            (vec![3, 4], 2),
            (vec![0, 1, 2], 4),
            (vec![1, 4], 3),
        ];
        let build = |order: &[usize]| {
            let mut b = HyperGraphBuilder::new(5);
            for &i in order {
                b.add_net(&nets[i].0, nets[i].1);
            }
            b.build()
        };
        let a = build(&[0, 1, 2, 3]);
        let b = build(&[3, 2, 1, 0]);
        assert_eq!(a, b);
    }

    #[test]
    fn buffer_stitch_matches_direct_build() {
        let build = |chunked: bool| {
            let mut b = HyperGraphBuilder::new(6);
            let nets: [(&[NodeId], u32); 4] =
                [(&[0, 1, 2], 1), (&[2, 3], 2), (&[0, 1, 2], 1), (&[4, 5], 9)];
            if chunked {
                let mut first = HyperEdgeBuffer::new();
                let mut second = HyperEdgeBuffer::new();
                for &(pins, w) in &nets[..2] {
                    first.push(pins, w);
                }
                for &(pins, w) in &nets[2..] {
                    second.push(pins, w);
                }
                first.compact();
                for (pins, w) in first.nets() {
                    b.add_net(pins, w);
                }
                for (pins, w) in second.nets() {
                    b.add_net(pins, w);
                }
            } else {
                for &(pins, w) in &nets {
                    b.add_net(pins, w);
                }
            }
            b.build()
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn compact_is_idempotent_and_lossless() {
        let mut buf = HyperEdgeBuffer::new();
        for _ in 0..10 {
            buf.push(&[1, 0], 1);
            buf.push(&[2, 3, 4], 2);
        }
        assert_eq!(buf.net_count(), 20);
        buf.compact();
        assert_eq!(buf.net_count(), 2);
        assert_eq!(buf.pin_count(), 5);
        let got: Vec<(Vec<NodeId>, u32)> = buf.nets().map(|(pins, w)| (pins.to_vec(), w)).collect();
        assert_eq!(got, vec![(vec![0, 1], 10), (vec![2, 3, 4], 20)]);
        buf.compact();
        assert_eq!(buf.net_count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_out_of_range() {
        let mut b = HyperGraphBuilder::new(2);
        b.add_net(&[0, 5], 1);
    }

    #[test]
    fn empty_hypergraph() {
        let hg = HyperGraph::empty();
        hg.validate().unwrap();
        assert_eq!(hg.num_vertices(), 0);
        assert_eq!(hg.num_nets(), 0);
    }
}
