//! The multilevel k-way partitioning driver.
//!
//! Pipeline (Karypis–Kumar multilevel scheme, the algorithm family METIS
//! implements):
//!
//! 1. **Coarsen** with randomized heavy-edge matching until the graph is
//!    small (or stops shrinking), capping coarse vertex weights so balance
//!    stays achievable.
//! 2. **Initial partition** of the coarsest graph by recursive bisection
//!    (greedy graph growing + FM).
//! 3. **Uncoarsen**: project the partition one level up and run greedy
//!    k-way boundary refinement (with a balance-enforcement pre-pass).
//!
//! Every phase is parallelized over a [`schism_par::Pool`] sized by
//! [`PartitionerConfig::threads`]: matching proposes partners over vertex
//! chunks, contraction builds coarse adjacency over coarse-vertex chunks,
//! refinement scans the boundary over vertex chunks, initial bisection
//! runs its seeded attempts concurrently, and the `ncuts` independent runs
//! execute side by side (the pool budget splits between the two levels).
//! Every component is deterministic for a fixed seed **independent of the
//! thread count** — labels and cut are bit-identical for `threads ∈ {1, 2,
//! 4, ...}` — so parallelism is purely a wall-clock knob.

use crate::coarsen::{contract, CoarseLevel};
use crate::csr::CsrGraph;
use crate::initial::recursive_bisection;
use crate::matching::{heavy_edge_matching_capped, matched_pairs};
use crate::metrics::{edge_cut, part_weights};
use crate::refine::{enforce_balance, kway_greedy_refine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use schism_par::Pool;

/// Tuning knobs for [`partition`]. `Default` gives METIS-like settings with
/// a 5% balance tolerance.
#[derive(Clone, Debug)]
pub struct PartitionerConfig {
    /// Number of partitions (`k >= 1`).
    pub k: u32,
    /// Allowed load imbalance: every partition weight must stay below
    /// `(1 + epsilon) * total / k`.
    pub epsilon: f64,
    /// RNG seed; the partitioner is fully deterministic given a seed,
    /// whatever `threads` is.
    pub seed: u64,
    /// Stop coarsening when at most this many vertices remain.
    /// `0` means auto (`max(128, 24 * k)`).
    pub coarsen_target: usize,
    /// Independent greedy-growing attempts per bisection.
    pub init_tries: usize,
    /// Maximum refinement passes per uncoarsening level.
    pub refine_passes: usize,
    /// Full independent partitioning runs; the best cut wins (METIS's
    /// `ncuts`). Multilevel partitioning has run-to-run variance on hub-
    /// heavy graphs; two runs cut the tail risk dramatically.
    pub ncuts: usize,
    /// Worker threads for all parallel phases. `0` = auto: the
    /// `SCHISM_THREADS` environment variable if set, otherwise all
    /// hardware threads (see [`schism_par::resolve_threads`]). The output
    /// is identical for every value; this only trades wall-clock.
    pub threads: usize,
}

impl Default for PartitionerConfig {
    fn default() -> Self {
        Self {
            k: 2,
            epsilon: 0.05,
            seed: 0,
            coarsen_target: 0,
            init_tries: 4,
            refine_passes: 6,
            ncuts: 2,
            threads: 0,
        }
    }
}

impl PartitionerConfig {
    /// Convenience constructor for `k` partitions with default tuning.
    pub fn with_k(k: u32) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }

    pub(crate) fn effective_coarsen_target(&self) -> usize {
        if self.coarsen_target > 0 {
            self.coarsen_target
        } else {
            (24 * self.k as usize).max(128)
        }
    }
}

/// The result of [`partition`].
#[derive(Clone, Debug)]
pub struct Partitioning {
    /// `assignment[v]` is the partition of vertex `v`, in `[0, k)`.
    pub assignment: Vec<u32>,
    /// Total weight of cut edges.
    pub edge_cut: u64,
    /// Vertex weight per partition.
    pub part_weights: Vec<u64>,
    /// Number of partitions requested.
    pub k: u32,
}

impl Partitioning {
    /// Load imbalance (`max * k / total`); 1.0 is perfect.
    pub fn imbalance(&self) -> f64 {
        crate::metrics::imbalance(&self.part_weights)
    }
}

/// Partitions `g` into `cfg.k` balanced parts minimizing edge cut.
///
/// Runs `cfg.ncuts` independent multilevel passes — concurrently when the
/// thread budget allows — and returns the best (lowest cut, then lowest
/// imbalance, then earliest run). Deterministic for a fixed
/// `(graph, config)` pair regardless of `cfg.threads`.
pub fn partition(g: &CsrGraph, cfg: &PartitionerConfig) -> Partitioning {
    let runs = cfg.ncuts.max(1);
    let pool = Pool::new(schism_par::resolve_threads(cfg.threads));
    // Split the budget: independent runs outside, phase parallelism inside.
    let (outer, inner) = pool.split(runs);

    let results: Vec<Partitioning> = outer.scope_chunks(runs, 1, |r| {
        let i = r.start;
        let run_cfg = PartitionerConfig {
            seed: cfg
                .seed
                .wrapping_add(i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ cfg.seed,
            ncuts: 1,
            ..cfg.clone()
        };
        partition_once(g, &run_cfg, &inner)
    });

    let mut best: Option<Partitioning> = None;
    for p in results {
        let better = match &best {
            None => true,
            Some(b) => {
                (p.edge_cut, p.imbalance().to_bits()) < (b.edge_cut, b.imbalance().to_bits())
            }
        };
        if better {
            best = Some(p);
        }
    }
    best.expect("at least one run")
}

/// Refines a partitioning starting from `initial` instead of running the
/// full multilevel pipeline — the warm-start entry point used by
/// incremental repartitioning (`schism-migrate`).
///
/// This is a V-cycle in the ParMETIS adaptive-repartitioning mold: the
/// graph is coarsened with *label-respecting* heavy-edge matching (matched
/// pairs never straddle the seed partitioning, so `initial` projects
/// exactly onto every level), the seed is rebalanced and refined on the
/// coarsest graph — where whole co-access clusters are single vertices and
/// moving one is a cheap, often positive-gain move — and refinement runs
/// again at each uncoarsening level. Plain fine-grained refinement cannot
/// do this: evicting one member of a clique is always negative-gain, so a
/// drifted workload would leave the seed stuck in its old shape.
///
/// Labels `>= k` are wrapped. Vertices keep their partition unless a
/// balance or cut-improving move evicts them, which is what bounds data
/// movement when the workload changed only incrementally. Parallelized
/// over `cfg.threads` like the cold path, with the same determinism
/// contract.
pub fn partition_warm(g: &CsrGraph, initial: &[u32], cfg: &PartitionerConfig) -> Partitioning {
    assert!(cfg.k >= 1, "k must be at least 1");
    assert_eq!(
        initial.len(),
        g.num_vertices(),
        "initial assignment must cover every vertex"
    );
    let k = cfg.k;
    let mut labels: Vec<u32> = initial.iter().map(|&p| p % k).collect();
    if k == 1 || g.num_vertices() == 0 {
        return finish(g, labels, k);
    }
    let pool = Pool::new(schism_par::resolve_threads(cfg.threads));
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x57A2_7ED0);
    // Two V-cycles: the first rebalances the drifted seed at cluster
    // granularity; the second re-coarsens along the *new* labels, letting
    // clusters the first round had to split re-merge and move as a unit
    // (METIS runs repeated V-cycles for the same reason).
    for _ in 0..2 {
        labels = warm_vcycle(g, labels, cfg, &mut rng, &pool);
    }
    finish(g, labels, k)
}

fn warm_vcycle(
    g: &CsrGraph,
    mut labels: Vec<u32>,
    cfg: &PartitionerConfig,
    rng: &mut StdRng,
    pool: &Pool,
) -> Vec<u32> {
    let k = cfg.k;
    let total = g.total_vertex_weight();
    let max_part = max_part_weight(total, k, cfg.epsilon);
    let max_pair = (max_part / 2).max(1);

    // --- Coarsening, restricted to the seed's label classes. ---
    // Unlike the cold path there is no vertex-count target: we coarsen
    // until label-respecting matching stalls, i.e. until every connected
    // intra-label cluster is (close to) a single vertex. That is the
    // granularity at which rebalancing a drifted seed is cheap — whole
    // clusters move without cutting their interior edges.
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut current: CsrGraph = g.clone();
    while current.num_vertices() > k as usize {
        let mate =
            crate::matching::heavy_edge_matching_labeled(&current, &labels, max_pair, rng, pool);
        let pairs = matched_pairs(&mate);
        if (pairs as f64) < 0.02 * current.num_vertices() as f64 {
            break;
        }
        let level = contract(&current, &mate, pool);
        // Project labels onto the coarse graph: both members of a matched
        // pair share a label by construction.
        let mut coarse_labels = vec![0u32; level.graph.num_vertices()];
        for (v, &cv) in level.map.iter().enumerate() {
            coarse_labels[cv as usize] = labels[v];
        }
        labels = coarse_labels;
        current = level.graph.clone();
        levels.push(level);
        if levels.len() > 64 {
            break;
        }
    }

    // --- Rebalance + refine the seed on the coarsest graph. ---
    let mut assignment = labels;
    enforce_balance(&current, &mut assignment, k, max_part, pool);
    kway_greedy_refine(
        &current,
        &mut assignment,
        k,
        max_part,
        cfg.refine_passes,
        pool,
    );

    // --- Uncoarsen with refinement, as in the cold path. ---
    for (idx, level) in levels.iter().enumerate().rev() {
        let fine_n = level.map.len();
        let mut fine_assignment = vec![0u32; fine_n];
        for v in 0..fine_n {
            fine_assignment[v] = assignment[level.map[v] as usize];
        }
        assignment = fine_assignment;
        let fine_graph: &CsrGraph = if idx == 0 { g } else { &levels[idx - 1].graph };
        enforce_balance(fine_graph, &mut assignment, k, max_part, pool);
        kway_greedy_refine(
            fine_graph,
            &mut assignment,
            k,
            max_part,
            cfg.refine_passes,
            pool,
        );
    }

    assignment
}

fn partition_once(g: &CsrGraph, cfg: &PartitionerConfig, pool: &Pool) -> Partitioning {
    assert!(cfg.k >= 1, "k must be at least 1");
    assert!(cfg.epsilon >= 0.0, "epsilon must be non-negative");
    let n = g.num_vertices();
    let k = cfg.k;

    if k == 1 || n == 0 {
        let assignment = vec![0u32; n];
        return finish(g, assignment, k);
    }
    if (k as usize) >= n {
        // One vertex per partition (extra partitions stay empty).
        let assignment: Vec<u32> = (0..n as u32).collect();
        return finish(g, assignment, k);
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let total = g.total_vertex_weight();
    let max_part = max_part_weight(total, k, cfg.epsilon);
    // Cap coarse vertices at half a partition's capacity so initial
    // partitioning always has room to balance.
    let max_pair = (max_part / 2).max(1);

    // --- Coarsening ---
    let coarsen_target = cfg.effective_coarsen_target();
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut current: CsrGraph = g.clone();
    while current.num_vertices() > coarsen_target {
        let mate = heavy_edge_matching_capped(&current, max_pair, &mut rng, pool);
        let pairs = matched_pairs(&mate);
        // Stop if the graph stops shrinking meaningfully (< 2% reduction).
        if (pairs as f64) < 0.02 * current.num_vertices() as f64 {
            break;
        }
        let level = contract(&current, &mate, pool);
        current = level.graph.clone();
        levels.push(level);
        if levels.len() > 64 {
            break; // safety net; cannot trigger with 5% shrink guarantee
        }
    }

    // --- Initial partitioning on the coarsest graph ---
    let mut assignment =
        recursive_bisection(&current, k, cfg.epsilon, cfg.init_tries, &mut rng, pool);
    enforce_balance(&current, &mut assignment, k, max_part, pool);
    kway_greedy_refine(
        &current,
        &mut assignment,
        k,
        max_part,
        cfg.refine_passes,
        pool,
    );

    // --- Uncoarsening with refinement ---
    for level in levels.iter().rev() {
        let fine_n = level.map.len();
        let mut fine_assignment = vec![0u32; fine_n];
        for v in 0..fine_n {
            fine_assignment[v] = assignment[level.map[v] as usize];
        }
        assignment = fine_assignment;
        let fine_graph: &CsrGraph = if std::ptr::eq(level, levels.first().expect("non-empty")) {
            g
        } else {
            // The fine graph of level i is the coarse graph of level i-1.
            let idx = levels
                .iter()
                .position(|l| std::ptr::eq(l, level))
                .expect("present");
            &levels[idx - 1].graph
        };
        enforce_balance(fine_graph, &mut assignment, k, max_part, pool);
        kway_greedy_refine(
            fine_graph,
            &mut assignment,
            k,
            max_part,
            cfg.refine_passes,
            pool,
        );
    }

    finish(g, assignment, k)
}

/// `(1 + epsilon) * total / k`, rounded up, with a floor of the heaviest
/// vertex (a partition must at least be able to hold one vertex).
fn max_part_weight(total: u64, k: u32, epsilon: f64) -> u64 {
    (((total as f64) * (1.0 + epsilon)) / k as f64).ceil() as u64
}

fn finish(g: &CsrGraph, assignment: Vec<u32>, k: u32) -> Partitioning {
    let edge_cut = edge_cut(g, &assignment);
    let part_weights = part_weights(g, &assignment, k);
    Partitioning {
        assignment,
        edge_cut,
        part_weights,
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn k1_is_trivial() {
        let g = gen::grid(5, 5);
        let p = partition(&g, &PartitionerConfig::with_k(1));
        assert_eq!(p.edge_cut, 0);
        assert!(p.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn empty_graph() {
        let g = crate::builder::GraphBuilder::new(0).build();
        let p = partition(&g, &PartitionerConfig::with_k(4));
        assert!(p.assignment.is_empty());
        assert_eq!(p.part_weights, vec![0, 0, 0, 0]);
    }

    #[test]
    fn k_exceeds_n() {
        let g = gen::path(3);
        let p = partition(&g, &PartitionerConfig::with_k(8));
        assert_eq!(p.assignment, vec![0, 1, 2]);
    }

    #[test]
    fn two_cliques_optimal() {
        let g = gen::two_cliques(32, 1);
        let p = partition(
            &g,
            &PartitionerConfig {
                k: 2,
                seed: 11,
                ..Default::default()
            },
        );
        assert_eq!(p.edge_cut, 1, "must cut only the bridge");
        assert_eq!(p.part_weights, vec![32, 32]);
    }

    #[test]
    fn planted_partition_recovered() {
        // 4 clusters of 200 vertices; intra-density dominates. A good
        // partitioner finds a cut close to the planted one.
        let g = gen::planted_partition(4, 200, 2000, 120, 5);
        let p = partition(
            &g,
            &PartitionerConfig {
                k: 4,
                seed: 3,
                ..Default::default()
            },
        );
        assert!(p.imbalance() <= 1.05 + 1e-9, "imbalance {}", p.imbalance());
        // The planted cut weight is at most the number of inter edges (120
        // draws, some duplicates). Allow slack but reject grossly bad cuts:
        // a random 4-way cut would cost ~3/4 of all ~2120 edges.
        assert!(p.edge_cut <= 150, "cut too large: {}", p.edge_cut);
    }

    #[test]
    fn grid_scaling_cut_is_reasonable() {
        let g = gen::grid(32, 32);
        let p = partition(
            &g,
            &PartitionerConfig {
                k: 4,
                seed: 1,
                ..Default::default()
            },
        );
        // Ideal 4-way cut of a 32x32 grid is 64 (two straight cuts);
        // multilevel should come close.
        assert!(
            p.edge_cut <= 110,
            "cut {} too far from optimal 64",
            p.edge_cut
        );
        assert!(p.imbalance() <= 1.05 + 1e-9);
    }

    #[test]
    fn determinism() {
        let g = gen::planted_partition(3, 100, 700, 60, 9);
        let cfg = PartitionerConfig {
            k: 3,
            seed: 42,
            ..Default::default()
        };
        let p1 = partition(&g, &cfg);
        let p2 = partition(&g, &cfg);
        assert_eq!(p1.assignment, p2.assignment);
        assert_eq!(p1.edge_cut, p2.edge_cut);
    }

    #[test]
    fn identical_across_thread_counts() {
        // The headline contract: labels and cut are bit-identical for
        // threads 1, 2, and 4, cold and warm.
        let g = gen::planted_partition(3, 120, 900, 80, 13);
        let run = |threads: usize| {
            partition(
                &g,
                &PartitionerConfig {
                    k: 3,
                    seed: 5,
                    threads,
                    ..Default::default()
                },
            )
        };
        let base = run(1);
        for t in [2, 4] {
            let p = run(t);
            assert_eq!(p.assignment, base.assignment, "threads {t} changed labels");
            assert_eq!(p.edge_cut, base.edge_cut, "threads {t} changed the cut");
        }
        let warm = |threads: usize| {
            partition_warm(
                &g,
                &base.assignment,
                &PartitionerConfig {
                    k: 3,
                    seed: 5,
                    threads,
                    ..Default::default()
                },
            )
        };
        let wbase = warm(1);
        for t in [2, 4] {
            let p = warm(t);
            assert_eq!(p.assignment, wbase.assignment, "warm threads {t} differs");
            assert_eq!(p.edge_cut, wbase.edge_cut);
        }
    }

    #[test]
    fn warm_start_preserves_good_assignment() {
        // Feed the planted cut itself: refinement must keep it (or improve
        // it), not scramble labels.
        let g = gen::two_cliques(32, 1);
        let initial: Vec<u32> = (0..64).map(|v| (v >= 32) as u32).collect();
        let p = partition_warm(&g, &initial, &PartitionerConfig::with_k(2));
        assert_eq!(p.edge_cut, 1);
        assert_eq!(p.assignment, initial, "optimal warm start must be stable");
    }

    #[test]
    fn warm_start_repairs_imbalance() {
        // Everything on partition 0: balance enforcement must spread it
        // under the documented cap `ceil((1 + eps) * total / k)`.
        let g = gen::grid(8, 8);
        let initial = vec![0u32; 64];
        let p = partition_warm(&g, &initial, &PartitionerConfig::with_k(4));
        let cap = ((g.total_vertex_weight() as f64) * 1.05 / 4.0).ceil() as u64;
        for (i, &w) in p.part_weights.iter().enumerate() {
            assert!(w <= cap, "part {i} overweight: {w} > {cap}");
        }
        assert!(p.assignment.iter().any(|&a| a != 0));
    }

    #[test]
    fn warm_start_wraps_out_of_range_labels() {
        let g = gen::path(6);
        let initial = vec![7u32, 8, 9, 10, 11, 12];
        let p = partition_warm(&g, &initial, &PartitionerConfig::with_k(2));
        assert!(p.assignment.iter().all(|&a| a < 2));
    }

    #[test]
    fn respects_balance_on_weighted_graph() {
        // Vertex weights vary; balance must still hold.
        let mut b = crate::builder::GraphBuilder::new(100);
        for i in 0..99u32 {
            b.add_edge(i, i + 1, 1);
        }
        for i in 0..100u32 {
            b.set_vertex_weight(i, 1 + (i % 7));
        }
        let g = b.build();
        let p = partition(
            &g,
            &PartitionerConfig {
                k: 5,
                seed: 2,
                epsilon: 0.08,
                ..Default::default()
            },
        );
        let cap = ((g.total_vertex_weight() as f64) * 1.08 / 5.0).ceil() as u64;
        for (i, &w) in p.part_weights.iter().enumerate() {
            assert!(w <= cap + 7, "part {i} overweight: {w} > {cap}");
        }
    }
}
