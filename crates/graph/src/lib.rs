//! # schism-graph
//!
//! A from-scratch multilevel k-way balanced min-cut graph partitioner — the
//! substrate the Schism paper obtains from METIS (Karypis & Kumar).
//!
//! The partitioner follows the classic multilevel recipe: randomized
//! heavy-edge-matching coarsening, recursive-bisection initial partitioning
//! (greedy graph growing + Fiduccia–Mattheyses refinement), and greedy
//! k-way boundary refinement during uncoarsening. It is deterministic for a
//! fixed seed and enforces a configurable balance constraint
//! `max_part <= (1 + epsilon) * total / k`.
//!
//! All phases run data-parallel over a [`schism_par::Pool`] sized by
//! [`PartitionerConfig::threads`] (default: `SCHISM_THREADS` or all
//! hardware threads), with a hard determinism contract: partition labels
//! and edge cut are **bit-identical for every thread count** — matching
//! uses propose/mutual-accept rounds with a sequential tie-break pass,
//! contraction stitches chunk-built adjacency in coarse-id order, and
//! refinement scans the boundary in parallel but serializes only the
//! conflict set of candidate moves.
//!
//! A hypergraph backend lives alongside the plain-graph path: a
//! [`HyperGraph`] stores one net (hyperedge) per transaction in dual-CSR
//! form, and [`hpartition()`] / [`hpartition_warm`] run the same multilevel
//! scheme — heavy-pin matching, contraction, scan/apply refinement — under
//! the (λ−1) connectivity metric, with the identical determinism contract.
//!
//! ```
//! use schism_graph::{gen, partition, PartitionerConfig};
//!
//! let g = gen::two_cliques(16, 1);
//! let p = partition(&g, &PartitionerConfig::with_k(2));
//! assert_eq!(p.edge_cut, 1); // only the bridge edge is cut
//! ```

pub mod builder;
pub mod coarsen;
pub mod components;
pub mod csr;
pub mod gen;
pub mod hpartition;
pub mod hypergraph;
pub mod initial;
pub mod matching;
pub mod metrics;
pub mod partition;
pub mod refine;

pub use builder::{EdgeBuffer, GraphBuilder};
pub use components::{connected_components, UnionFind};
pub use csr::{CsrGraph, NodeId};
pub use hpartition::{connectivity_cost, hpart_weights, hpartition, hpartition_warm};
pub use hypergraph::{HyperEdgeBuffer, HyperGraph, HyperGraphBuilder};
pub use metrics::{boundary_size, edge_cut, imbalance, part_weights};
pub use partition::{partition, partition_warm, PartitionerConfig, Partitioning};
