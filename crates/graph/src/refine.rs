//! Partition refinement.
//!
//! Two refiners live here:
//!
//! - [`fm_bisection`]: Fiduccia–Mattheyses refinement of a 2-way partition
//!   with hill-climbing (negative-gain moves are allowed, the best prefix of
//!   the move sequence is kept). Used on the coarsest graph where quality
//!   matters most; stays sequential (it runs on thousands of vertices).
//! - [`kway_greedy_refine`] + [`enforce_balance`]: the greedy boundary
//!   k-way refinement used at every uncoarsening step, as in k-way METIS.
//!
//! The k-way refiners are parallelized as **scan/apply passes**: the O(E)
//! boundary scan — finding movable vertices and their gains — runs over
//! vertex chunks against the frozen pass-start state (a pure function, so
//! chunking cannot change it), and only the *conflict set* (the candidate
//! moves, a small fraction of the graph) is serialized: candidates are
//! ordered by a deterministic key and re-validated one at a time against
//! the live assignment before applying. Results are therefore bit-identical
//! for every pool size.

use crate::csr::{CsrGraph, NodeId};
use crate::metrics::edge_cut;
use schism_par::{chunk_size, Pool};
use std::collections::BinaryHeap;

/// One FM pass moves each vertex at most once; hill-climbing stops after
/// this many consecutive non-improving moves.
const FM_STALL_LIMIT: usize = 64;

/// Internal/external connectivity of `v` under a bisection.
fn bisection_gain(g: &CsrGraph, side: &[u8], v: NodeId) -> i64 {
    let own = side[v as usize];
    let mut gain = 0i64;
    for (u, w) in g.edges(v) {
        if side[u as usize] == own {
            gain -= w as i64;
        } else {
            gain += w as i64;
        }
    }
    gain
}

/// FM refinement of a bisection. `target0` is the desired weight of side 0;
/// sides may exceed their target by a factor of `1 + epsilon`. Returns the
/// final edge cut.
///
/// The implementation uses a lazy-invalidating max-heap rather than the
/// classic gain buckets: on the coarse graphs where this runs (thousands of
/// vertices) the `O(E log E)` pass is indistinguishable from bucket FM.
pub fn fm_bisection(
    g: &CsrGraph,
    side: &mut [u8],
    target0: u64,
    epsilon: f64,
    max_passes: usize,
) -> u64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let total = g.total_vertex_weight();
    let target1 = total.saturating_sub(target0);
    let max0 = ((target0 as f64) * (1.0 + epsilon)).ceil() as u64;
    let max1 = ((target1 as f64) * (1.0 + epsilon)).ceil() as u64;
    let maxes = [max0.max(1), max1.max(1)];

    let mut weights = [0u64; 2];
    for v in 0..n {
        weights[side[v] as usize] += g.vertex_weight(v as NodeId) as u64;
    }
    let assign: Vec<u32> = side.iter().map(|&s| s as u32).collect();
    let mut cut = edge_cut(g, &assign);

    for _ in 0..max_passes {
        // One pass: tentatively move vertices by best gain, remember the best
        // prefix, then roll back past it.
        let mut gains: Vec<i64> = (0..n as NodeId)
            .map(|v| bisection_gain(g, side, v))
            .collect();
        let mut heap: BinaryHeap<(i64, NodeId)> =
            (0..n as NodeId).map(|v| (gains[v as usize], v)).collect();
        let mut moved = vec![false; n];
        let mut move_log: Vec<NodeId> = Vec::new();
        let mut best_cut = cut;
        let mut best_len = 0usize;
        let mut cur_cut = cut;
        let mut stall = 0usize;

        while let Some((gain, v)) = heap.pop() {
            let vi = v as usize;
            if moved[vi] || gains[vi] != gain {
                continue; // stale
            }
            let from = side[vi] as usize;
            let to = 1 - from;
            let vw = g.vertex_weight(v) as u64;
            // Feasible if the destination stays within its cap, or the move
            // strictly improves balance of an overweight source.
            let feasible = weights[to] + vw <= maxes[to]
                || (weights[from] > maxes[from] && weights[to] + vw < weights[from]);
            if !feasible {
                continue;
            }
            // Apply the move.
            moved[vi] = true;
            side[vi] = to as u8;
            weights[from] -= vw;
            weights[to] += vw;
            cur_cut = (cur_cut as i64 - gain) as u64;
            move_log.push(v);
            if cur_cut < best_cut {
                best_cut = cur_cut;
                best_len = move_log.len();
                stall = 0;
            } else {
                stall += 1;
                if stall > FM_STALL_LIMIT {
                    break;
                }
            }
            // Refresh neighbor gains.
            for (u, _) in g.edges(v) {
                let ui = u as usize;
                if !moved[ui] {
                    gains[ui] = bisection_gain(g, side, u);
                    heap.push((gains[ui], u));
                }
            }
        }

        // Roll back everything after the best prefix.
        for &v in move_log[best_len..].iter().rev() {
            let vi = v as usize;
            let from = side[vi] as usize;
            let to = 1 - from;
            let vw = g.vertex_weight(v) as u64;
            side[vi] = to as u8;
            weights[from] -= vw;
            weights[to] += vw;
        }
        if best_cut >= cut {
            break; // converged
        }
        cut = best_cut;
    }
    cut
}

/// A candidate move weighed against a (frozen or live) state: the gain and
/// destination of `v`'s best admissible move, or `None` for interior /
/// immovable vertices. `conn` is a zeroed k-sized scratch buffer that is
/// re-zeroed (via the touched list) before returning, so callers can reuse
/// it across vertices without O(k) resets.
fn weigh_move(
    g: &CsrGraph,
    assignment: &[u32],
    weights: &[u64],
    max_part_weight: u64,
    v: NodeId,
    conn: &mut [u64],
    touched: &mut Vec<u32>,
) -> Option<(i64, u32)> {
    let own = assignment[v as usize];
    touched.clear();
    for (u, w) in g.edges(v) {
        let p = assignment[u as usize];
        if conn[p as usize] == 0 {
            touched.push(p);
        }
        conn[p as usize] += w as u64;
    }
    let result = (|| {
        if touched.len() <= 1 && touched.first() == Some(&own) {
            return None; // interior vertex
        }
        let own_conn = conn[own as usize];
        let vw = g.vertex_weight(v) as u64;
        let mut best: Option<(i64, u32)> = None;
        for &p in touched.iter() {
            if p == own {
                continue;
            }
            let gain = conn[p as usize] as i64 - own_conn as i64;
            let fits = weights[p as usize] + vw <= max_part_weight;
            let rebalances = weights[own as usize] > max_part_weight
                && weights[p as usize] + vw < weights[own as usize];
            if !(fits || rebalances) {
                continue;
            }
            let improves_balance = weights[p as usize] + vw < weights[own as usize];
            let take = gain > 0 || (gain == 0 && improves_balance);
            if take {
                match best {
                    Some((bg, bp))
                        if bg > gain
                            || (bg == gain && weights[bp as usize] <= weights[p as usize]) => {}
                    _ => best = Some((gain, p)),
                }
            }
        }
        best
    })();
    for &p in touched.iter() {
        conn[p as usize] = 0;
    }
    result
}

/// Greedy k-way boundary refinement (the METIS "greedy refinement" variant),
/// parallelized as scan/apply passes over `pool`.
///
/// Each pass first scans every vertex **in parallel** against the frozen
/// pass-start state, collecting candidate moves with positive gain (or
/// zero gain that improves balance). The candidates — the conflict set —
/// are then ordered deterministically (largest frozen gain first, vertex id
/// as tie-break) and re-validated sequentially against the live assignment
/// before applying, so stale gains never corrupt the cut and the result is
/// independent of the pool size. Returns the number of moves performed.
pub fn kway_greedy_refine(
    g: &CsrGraph,
    assignment: &mut [u32],
    k: u32,
    max_part_weight: u64,
    passes: usize,
    pool: &Pool,
) -> usize {
    let n = g.num_vertices();
    let kk = k as usize;
    let mut weights = vec![0u64; kk];
    for v in 0..n {
        weights[assignment[v] as usize] += g.vertex_weight(v as NodeId) as u64;
    }

    let chunk = chunk_size(n, pool.threads());
    let mut total_moves = 0usize;

    for _pass in 0..passes {
        // --- Scan (parallel, frozen state): the boundary + its gains. ---
        let frozen_assignment: &[u32] = assignment;
        let frozen_weights: &[u64] = &weights;
        let candidates: Vec<Vec<(i64, NodeId)>> = pool.scope_chunks(n, chunk, |range| {
            let mut conn = vec![0u64; kk];
            let mut touched: Vec<u32> = Vec::with_capacity(16);
            range
                .filter_map(|v| {
                    weigh_move(
                        g,
                        frozen_assignment,
                        frozen_weights,
                        max_part_weight,
                        v as NodeId,
                        &mut conn,
                        &mut touched,
                    )
                    .map(|(gain, _)| (gain, v as NodeId))
                })
                .collect()
        });
        let mut cands: Vec<(i64, NodeId)> = candidates.into_iter().flatten().collect();
        if cands.is_empty() {
            break;
        }
        // Deterministic application order: best frozen gain first; vertex id
        // breaks ties into a total order.
        cands.sort_unstable_by_key(|&(gain, v)| (std::cmp::Reverse(gain), v));

        // --- Apply (sequential): re-validate each candidate live. ---
        let mut conn = vec![0u64; kk];
        let mut touched: Vec<u32> = Vec::with_capacity(16);
        let mut moves = 0usize;
        for (_, v) in cands {
            let Some((_, p)) = weigh_move(
                g,
                assignment,
                &weights,
                max_part_weight,
                v,
                &mut conn,
                &mut touched,
            ) else {
                continue;
            };
            let own = assignment[v as usize];
            let vw = g.vertex_weight(v) as u64;
            weights[own as usize] -= vw;
            weights[p as usize] += vw;
            assignment[v as usize] = p;
            moves += 1;
        }
        total_moves += moves;
        if moves == 0 {
            break;
        }
    }
    total_moves
}

/// Forces every partition under `max_part_weight` (if at all possible) by
/// evicting vertices from overweight partitions into feasible destinations,
/// **cheapest cut damage first**: each sweep scores every vertex of an
/// overweight partition by the cut delta of its best move
/// (`edges-to-own − edges-to-destination`) and evicts in ascending order.
/// An interior vertex of a co-access cluster is therefore never chosen
/// while a whole contracted cluster (delta 0) is available — which is what
/// keeps warm-started repartitioning from shredding cliques the refiner
/// can never reassemble. [`kway_greedy_refine`] runs afterwards to repair
/// what damage was unavoidable.
///
/// The scoring sweep — the O(E) part — runs in parallel over vertex
/// chunks; candidates come back in vertex order regardless of pool size,
/// and the eviction loop (sorted, re-validated per move) stays sequential.
pub fn enforce_balance(
    g: &CsrGraph,
    assignment: &mut [u32],
    k: u32,
    max_part_weight: u64,
    pool: &Pool,
) {
    let n = g.num_vertices();
    let kk = k as usize;
    let mut weights = vec![0u64; kk];
    for v in 0..n {
        weights[assignment[v] as usize] += g.vertex_weight(v as NodeId) as u64;
    }
    if !weights.iter().any(|&w| w > max_part_weight) {
        return;
    }
    let chunk = chunk_size(n, pool.threads());
    let mut conn = vec![0u64; kk];
    // Bounded sweeps: stale scores self-correct next sweep, and the bound
    // avoids thrashing on impossible instances (e.g. one vertex heavier
    // than the cap).
    for _ in 0..4 {
        if !weights.iter().any(|&w| w > max_part_weight) {
            break;
        }
        // Score every vertex of an overweight partition: (delta, v) with
        // delta = conn(own) - best conn among all other partitions. The
        // destination is re-chosen at move time against fresh weights.
        let frozen_assignment: &[u32] = assignment;
        let frozen_weights: &[u64] = &weights;
        let scored: Vec<Vec<(i64, NodeId)>> = pool.scope_chunks(n, chunk, |range| {
            let mut conn = vec![0u64; kk];
            range
                .filter_map(|v| {
                    let own = frozen_assignment[v] as usize;
                    if frozen_weights[own] <= max_part_weight {
                        return None;
                    }
                    conn.iter_mut().for_each(|c| *c = 0);
                    for (u, w) in g.edges(v as NodeId) {
                        conn[frozen_assignment[u as usize] as usize] += w as u64;
                    }
                    let best_other = conn
                        .iter()
                        .enumerate()
                        .filter(|&(p, _)| p != own)
                        .map(|(_, &c)| c)
                        .max()
                        .unwrap_or(0);
                    Some((conn[own] as i64 - best_other as i64, v as NodeId))
                })
                .collect()
        });
        let mut cands: Vec<(i64, NodeId)> = scored.into_iter().flatten().collect();
        if cands.is_empty() {
            break;
        }
        // Cheapest damage first; heavier vertex first on ties (fewer moves).
        cands.sort_unstable_by_key(|&(delta, v)| (delta, std::cmp::Reverse(g.vertex_weight(v)), v));
        let mut moved = false;
        for (_, v) in cands {
            let own = assignment[v as usize] as usize;
            if weights[own] <= max_part_weight {
                continue; // partition already fixed this sweep
            }
            let vw = g.vertex_weight(v) as u64;
            conn.iter_mut().for_each(|c| *c = 0);
            for (u, w) in g.edges(v) {
                conn[assignment[u as usize] as usize] += w as u64;
            }
            // Feasible destination with the most connectivity; break ties
            // toward the lightest load.
            if let Some((p, _)) = (0..kk)
                .filter(|&p| p != own && weights[p] + vw <= max_part_weight)
                .map(|p| (p, (conn[p], std::cmp::Reverse(weights[p]))))
                .max_by_key(|&(_, key)| key)
            {
                weights[own] -= vw;
                weights[p] += vw;
                assignment[v as usize] = p as u32;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::metrics::{edge_cut, imbalance, part_weights};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fm_fixes_a_bad_bisection() {
        // Two 6-cliques bridged by one edge; start from an interleaved
        // (worst-case) bisection and let FM untangle it.
        let g = gen::two_cliques(6, 1);
        let mut side: Vec<u8> = (0..12u32).map(|v| (v % 2) as u8).collect();
        let before = edge_cut(&g, &side.iter().map(|&s| s as u32).collect::<Vec<_>>());
        let cut = fm_bisection(&g, &mut side, 6, 0.05, 10);
        let assign: Vec<u32> = side.iter().map(|&s| s as u32).collect();
        assert_eq!(cut, edge_cut(&g, &assign), "returned cut must match actual");
        assert!(cut < before, "FM made no progress: {before} -> {cut}");
        assert_eq!(cut, 1, "optimal cut is the single bridge edge");
        let w = part_weights(&g, &assign, 2);
        assert_eq!(w, vec![6, 6]);
    }

    #[test]
    fn kway_refine_reduces_cut() {
        let g = gen::grid(12, 12);
        let mut rng = StdRng::seed_from_u64(9);
        // Random assignment into 4 parts.
        use rand::Rng;
        let mut assign: Vec<u32> = (0..g.num_vertices()).map(|_| rng.gen_range(0..4)).collect();
        let before = edge_cut(&g, &assign);
        let cap = (g.total_vertex_weight() as f64 * 1.05 / 4.0).ceil() as u64;
        kway_greedy_refine(&g, &mut assign, 4, cap, 10, &Pool::new(1));
        let after = edge_cut(&g, &assign);
        assert!(after < before, "refinement failed: {before} -> {after}");
        let w = part_weights(&g, &assign, 4);
        assert!(imbalance(&w) <= 1.25, "imbalance {:?}", w);
    }

    #[test]
    fn kway_refine_identical_across_pool_sizes() {
        let g = gen::grid(16, 16);
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(4);
        let start: Vec<u32> = (0..g.num_vertices()).map(|_| rng.gen_range(0..4)).collect();
        let cap = (g.total_vertex_weight() as f64 * 1.05 / 4.0).ceil() as u64;
        let run = |threads: usize| {
            let mut a = start.clone();
            kway_greedy_refine(&g, &mut a, 4, cap, 10, &Pool::new(threads));
            a
        };
        let base = run(1);
        for t in [2, 4] {
            assert_eq!(run(t), base, "pool size {t} changed refinement");
        }
    }

    #[test]
    fn enforce_balance_moves_overflow() {
        let g = gen::grid(8, 8); // 64 vertices
        let mut assign = vec![0u32; 64];
        let cap = 40;
        enforce_balance(&g, &mut assign, 2, cap, &Pool::new(1));
        let w = part_weights(&g, &assign, 2);
        assert!(w[0] <= cap && w[1] <= cap, "still overweight: {w:?}");
    }

    #[test]
    fn enforce_balance_identical_across_pool_sizes() {
        let g = gen::grid(10, 10);
        let cap = 60;
        let run = |threads: usize| {
            let mut a = vec![0u32; 100];
            enforce_balance(&g, &mut a, 3, cap, &Pool::new(threads));
            a
        };
        let base = run(1);
        let w = part_weights(&g, &base, 3);
        assert!(w.iter().all(|&x| x <= cap), "still overweight: {w:?}");
        for t in [2, 4] {
            assert_eq!(run(t), base, "pool size {t} changed balance enforcement");
        }
    }
}
