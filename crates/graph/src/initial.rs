//! Initial partitioning of the coarsest graph.
//!
//! Bisection = greedy graph growing (GGGP) from several random seeds,
//! keeping the best cut, followed by Fiduccia–Mattheyses (FM) boundary
//! refinement. k-way = recursive bisection with weight-proportional targets
//! so any `k` (not just powers of two) yields balanced parts.
//!
//! The independent growing attempts are embarrassingly parallel: each try
//! draws its RNG seed from the caller's stream **up front** (so the
//! caller's RNG advances identically whatever the pool size), runs
//! grow+FM on its own `StdRng`, and the winner is selected by scanning
//! results in try order with the same cut-then-balance rule the
//! sequential loop used — first-best wins, so the choice is independent
//! of which worker finished first.

use crate::csr::{CsrGraph, NodeId};
use crate::refine::fm_bisection;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use schism_par::Pool;

/// A bisection: `side[v] ∈ {0, 1}`.
pub type Side = Vec<u8>;

/// Grows partition 0 from a random seed until its weight reaches
/// `target0`, preferring the frontier vertex most strongly connected to the
/// grown region. Restarts from a fresh random vertex when the frontier
/// empties (disconnected graphs).
fn greedy_grow<R: Rng>(g: &CsrGraph, target0: u64, rng: &mut R) -> Side {
    let n = g.num_vertices();
    let mut side: Side = vec![1; n];
    if n == 0 || target0 == 0 {
        return side;
    }

    // conn[v] = weight of edges from v into the grown region; used as the
    // priority. A BinaryHeap with lazy invalidation keeps this O(E log E).
    let mut conn = vec![0u64; n];
    let mut heap: std::collections::BinaryHeap<(u64, NodeId)> = std::collections::BinaryHeap::new();
    let mut grown_weight = 0u64;

    let grow = |v: NodeId,
                side: &mut Side,
                conn: &mut Vec<u64>,
                heap: &mut std::collections::BinaryHeap<(u64, NodeId)>,
                grown_weight: &mut u64| {
        side[v as usize] = 0;
        *grown_weight += g.vertex_weight(v) as u64;
        for (u, w) in g.edges(v) {
            if side[u as usize] == 1 {
                conn[u as usize] += w as u64;
                heap.push((conn[u as usize], u));
            }
        }
    };

    let seed = rng.gen_range(0..n) as NodeId;
    grow(seed, &mut side, &mut conn, &mut heap, &mut grown_weight);

    while grown_weight < target0 {
        let next = loop {
            match heap.pop() {
                Some((pri, v)) => {
                    if side[v as usize] == 0 || conn[v as usize] != pri {
                        continue; // stale entry
                    }
                    break Some(v);
                }
                None => break None,
            }
        };
        let v = match next {
            Some(v) => v,
            None => {
                // Frontier exhausted (disconnected component fully grown):
                // jump to a random ungrown vertex.
                match (0..n)
                    .map(|i| ((i + seed as usize) % n) as NodeId)
                    .find(|&u| side[u as usize] == 1)
                {
                    Some(u) => u,
                    None => break,
                }
            }
        };
        grow(v, &mut side, &mut conn, &mut heap, &mut grown_weight);
    }
    side
}

/// Bisects `g` so that side 0 holds approximately `target0` of the total
/// vertex weight (side 1 gets the rest). Runs `tries` independent greedy
/// growths **concurrently over `pool`**, FM-refines each, and returns the
/// best (cut, then balance, then earliest try — the sequential loop's
/// first-best rule, preserved by reducing in try order).
pub fn bisect<R: Rng>(
    g: &CsrGraph,
    target0: u64,
    epsilon: f64,
    tries: usize,
    rng: &mut R,
    pool: &Pool,
) -> Side {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let total = g.total_vertex_weight();
    let target1 = total - target0;

    // Seeds are drawn sequentially from the caller's RNG so its state
    // advances the same way regardless of parallelism.
    let tries = tries.max(1);
    let seeds: Vec<u64> = (0..tries).map(|_| rng.gen()).collect();

    let attempts: Vec<(u64, u64, Side)> = pool
        .scope_chunks(tries, 1, |r| {
            let mut trng = StdRng::seed_from_u64(seeds[r.start]);
            let mut side = greedy_grow(g, target0, &mut trng);
            let cut = fm_bisection(g, &mut side, target0, epsilon, 8);
            let w0: u64 = (0..n)
                .filter(|&v| side[v] == 0)
                .map(|v| g.vertex_weight(v as NodeId) as u64)
                .sum();
            let err = w0.abs_diff(target0) + (total - w0).abs_diff(target1);
            (cut, err, side)
        })
        .into_iter()
        .collect();

    let mut best: Option<(u64, u64, Side)> = None; // (cut, balance_err, side)
    for (cut, err, side) in attempts {
        let better = match &best {
            None => true,
            Some((bc, be, _)) => cut < *bc || (cut == *bc && err < *be),
        };
        if better {
            best = Some((cut, err, side));
        }
    }
    best.expect("at least one try").2
}

/// Extracts the subgraph induced by the vertices with `side[v] == which`.
///
/// Returns the subgraph and the mapping `local -> original`.
pub fn induced_subgraph(g: &CsrGraph, side: &[u8], which: u8) -> (CsrGraph, Vec<NodeId>) {
    let n = g.num_vertices();
    let mut local_of = vec![NodeId::MAX; n];
    let mut orig_of: Vec<NodeId> = Vec::new();
    for v in 0..n {
        if side[v] == which {
            local_of[v] = orig_of.len() as NodeId;
            orig_of.push(v as NodeId);
        }
    }
    let ln = orig_of.len();
    let mut xadj = Vec::with_capacity(ln + 1);
    xadj.push(0u32);
    let mut adjncy = Vec::new();
    let mut adjwgt = Vec::new();
    let mut vwgt = Vec::with_capacity(ln);
    for &ov in &orig_of {
        for (u, w) in g.edges(ov) {
            if side[u as usize] == which {
                adjncy.push(local_of[u as usize]);
                adjwgt.push(w);
            }
        }
        xadj.push(adjncy.len() as u32);
        vwgt.push(g.vertex_weight(ov));
    }
    (CsrGraph::from_parts(xadj, adjncy, adjwgt, vwgt), orig_of)
}

/// Recursive-bisection k-way initial partitioning.
///
/// Targets are weight-proportional: splitting `k` into `k/2` and `k - k/2`
/// aims side 0 at `k/2 / k` of the weight, so odd `k` still balances.
pub fn recursive_bisection<R: Rng>(
    g: &CsrGraph,
    k: u32,
    epsilon: f64,
    tries: usize,
    rng: &mut R,
    pool: &Pool,
) -> Vec<u32> {
    let mut assignment = vec![0u32; g.num_vertices()];
    if k <= 1 {
        return assignment;
    }
    struct Frame {
        graph: CsrGraph,
        orig: Vec<NodeId>,
        k: u32,
        base: u32,
    }
    let identity: Vec<NodeId> = (0..g.num_vertices() as NodeId).collect();
    let mut stack = vec![Frame {
        graph: g.clone(),
        orig: identity,
        k,
        base: 0,
    }];
    while let Some(Frame {
        graph,
        orig,
        k,
        base,
    }) = stack.pop()
    {
        if k == 1 || graph.num_vertices() == 0 {
            for &ov in &orig {
                assignment[ov as usize] = base;
            }
            continue;
        }
        let k0 = k / 2;
        let k1 = k - k0;
        let target0 = g_mul_frac(graph.total_vertex_weight(), k0 as u64, k as u64);
        let side = bisect(&graph, target0, epsilon, tries, rng, pool);
        let (g0, o0) = induced_subgraph(&graph, &side, 0);
        let (g1, o1) = induced_subgraph(&graph, &side, 1);
        let orig0: Vec<NodeId> = o0.iter().map(|&l| orig[l as usize]).collect();
        let orig1: Vec<NodeId> = o1.iter().map(|&l| orig[l as usize]).collect();
        stack.push(Frame {
            graph: g0,
            orig: orig0,
            k: k0,
            base,
        });
        stack.push(Frame {
            graph: g1,
            orig: orig1,
            k: k1,
            base: base + k0,
        });
    }
    assignment
}

/// `total * num / den` without intermediate overflow for the magnitudes we
/// see (total < 2^63, den small).
fn g_mul_frac(total: u64, num: u64, den: u64) -> u64 {
    ((total as u128 * num as u128) / den as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::gen;
    use crate::metrics::{edge_cut, imbalance, part_weights};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bisect_two_cliques() {
        // Two 8-cliques joined by a single light edge: the bisection must
        // cut exactly that bridge.
        let g = gen::two_cliques(8, 1);
        let mut rng = StdRng::seed_from_u64(42);
        let side = bisect(
            &g,
            g.total_vertex_weight() / 2,
            0.05,
            4,
            &mut rng,
            &Pool::new(1),
        );
        let assign: Vec<u32> = side.iter().map(|&s| s as u32).collect();
        assert_eq!(edge_cut(&g, &assign), 1);
        let w = part_weights(&g, &assign, 2);
        assert_eq!(w, vec![8, 8]);
    }

    #[test]
    fn induced_subgraph_roundtrip() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 2);
        b.add_edge(2, 3, 3);
        b.add_edge(3, 4, 4);
        let g = b.build();
        let side = vec![0, 0, 0, 1, 1];
        let (sub, orig) = induced_subgraph(&g, &side, 0);
        sub.validate().unwrap();
        assert_eq!(orig, vec![0, 1, 2]);
        assert_eq!(sub.num_edges(), 2); // 0-1 and 1-2 survive, 2-3 is cut away
        let (sub1, orig1) = induced_subgraph(&g, &side, 1);
        assert_eq!(orig1, vec![3, 4]);
        assert_eq!(sub1.num_edges(), 1);
    }

    #[test]
    fn recursive_bisection_balances_odd_k() {
        let g = gen::grid(10, 9); // 90 unit-weight vertices
        let mut rng = StdRng::seed_from_u64(7);
        let assign = recursive_bisection(&g, 3, 0.05, 4, &mut rng, &Pool::new(1));
        let w = part_weights(&g, &assign, 3);
        assert!(
            imbalance(&w) < 1.15,
            "k=3 imbalance too high: {w:?} -> {}",
            imbalance(&w)
        );
        assert!(assign.iter().all(|&p| p < 3));
        // All three labels must actually be used.
        for p in 0..3 {
            assert!(assign.contains(&p), "partition {p} is empty");
        }
    }

    #[test]
    fn bisect_identical_across_pool_sizes() {
        let g = gen::grid(12, 12);
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(21);
            bisect(
                &g,
                g.total_vertex_weight() / 2,
                0.05,
                4,
                &mut rng,
                &Pool::new(threads),
            )
        };
        let base = run(1);
        for t in [2, 4] {
            assert_eq!(run(t), base, "pool size {t} changed the bisection");
        }
    }

    #[test]
    fn grow_handles_disconnected() {
        // Two disjoint triangles; ask for 50% of the weight.
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v, 1);
        }
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(3);
        let side = bisect(&g, 3, 0.05, 4, &mut rng, &Pool::new(1));
        let assign: Vec<u32> = side.iter().map(|&s| s as u32).collect();
        assert_eq!(
            edge_cut(&g, &assign),
            0,
            "cut should separate the triangles"
        );
    }
}
