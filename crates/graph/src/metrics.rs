//! Quality metrics for partitionings: edge cut, partition weights, imbalance.

use crate::csr::{CsrGraph, NodeId};

/// Total weight of edges whose endpoints lie in different partitions.
///
/// This is the objective the partitioner minimizes; in Schism's graph it
/// approximates the number of distributed transactions (§4.2).
pub fn edge_cut(g: &CsrGraph, assignment: &[u32]) -> u64 {
    debug_assert_eq!(assignment.len(), g.num_vertices());
    let mut cut = 0u64;
    for v in 0..g.num_vertices() as NodeId {
        let pv = assignment[v as usize];
        for (u, w) in g.edges(v) {
            if u > v && assignment[u as usize] != pv {
                cut += w as u64;
            }
        }
    }
    cut
}

/// Sum of vertex weights per partition.
pub fn part_weights(g: &CsrGraph, assignment: &[u32], k: u32) -> Vec<u64> {
    let mut w = vec![0u64; k as usize];
    for v in 0..g.num_vertices() {
        w[assignment[v] as usize] += g.vertex_weight(v as NodeId) as u64;
    }
    w
}

/// Load imbalance: `max(weights) * k / total`. A perfectly balanced
/// partitioning has imbalance 1.0; the partitioner targets
/// `imbalance <= 1 + epsilon`. Returns 1.0 for an empty graph.
pub fn imbalance(weights: &[u64]) -> f64 {
    let total: u64 = weights.iter().sum();
    if total == 0 || weights.is_empty() {
        return 1.0;
    }
    let max = *weights.iter().max().expect("non-empty") as f64;
    max * weights.len() as f64 / total as f64
}

/// Number of vertices with at least one neighbor in a different partition.
pub fn boundary_size(g: &CsrGraph, assignment: &[u32]) -> usize {
    (0..g.num_vertices() as NodeId)
        .filter(|&v| {
            g.neighbors(v)
                .iter()
                .any(|&u| assignment[u as usize] != assignment[v as usize])
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn square() -> CsrGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 3);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 3);
        b.add_edge(3, 0, 1);
        b.build()
    }

    #[test]
    fn cut_of_square() {
        let g = square();
        assert_eq!(edge_cut(&g, &[0, 0, 1, 1]), 2); // cuts 1-2 and 3-0
        assert_eq!(edge_cut(&g, &[0, 1, 1, 0]), 6); // cuts 0-1 and 2-3
        assert_eq!(edge_cut(&g, &[0, 0, 0, 0]), 0);
        assert_eq!(edge_cut(&g, &[0, 1, 2, 3]), 8);
    }

    #[test]
    fn weights_and_imbalance() {
        let g = square();
        let w = part_weights(&g, &[0, 0, 1, 1], 2);
        assert_eq!(w, vec![2, 2]);
        assert!((imbalance(&w) - 1.0).abs() < 1e-9);
        let w2 = part_weights(&g, &[0, 0, 0, 1], 2);
        assert!((imbalance(&w2) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn boundary_counts() {
        let g = square();
        assert_eq!(boundary_size(&g, &[0, 0, 1, 1]), 4);
        assert_eq!(boundary_size(&g, &[0, 0, 0, 0]), 0);
    }

    #[test]
    fn imbalance_empty() {
        assert_eq!(imbalance(&[]), 1.0);
        assert_eq!(imbalance(&[0, 0]), 1.0);
    }
}
