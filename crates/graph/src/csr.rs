//! Compressed sparse row (CSR) representation of an undirected weighted graph.
//!
//! This is the storage format consumed by the multilevel partitioner. Every
//! edge `{u, v}` is stored twice (once in each endpoint's adjacency list),
//! exactly like the METIS input format. Vertex and edge weights are `u32`;
//! aggregates use `u64` so coarsening billions of unit weights cannot
//! overflow.

/// A vertex identifier. Graphs are limited to `u32::MAX` vertices, which is
/// plenty for the tuple-level graphs Schism builds (the paper's largest graph
/// has 3M nodes).
pub type NodeId = u32;

/// An undirected weighted graph in CSR form.
///
/// Invariants (checked by [`CsrGraph::validate`]):
/// - `xadj.len() == n + 1`, `xadj[0] == 0`, `xadj` non-decreasing
/// - `adjncy.len() == adjwgt.len() == xadj[n]`
/// - adjacency is symmetric: `v ∈ adj(u)` with weight `w` iff `u ∈ adj(v)`
///   with weight `w`
/// - no self loops
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CsrGraph {
    xadj: Vec<u32>,
    adjncy: Vec<NodeId>,
    adjwgt: Vec<u32>,
    vwgt: Vec<u32>,
    total_vwgt: u64,
}

impl CsrGraph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are structurally inconsistent (lengths, monotone
    /// `xadj`). Symmetry is *not* checked here (it is O(E log E)); call
    /// [`CsrGraph::validate`] in tests.
    pub fn from_parts(
        xadj: Vec<u32>,
        adjncy: Vec<NodeId>,
        adjwgt: Vec<u32>,
        vwgt: Vec<u32>,
    ) -> Self {
        assert!(!xadj.is_empty(), "xadj must have at least one entry");
        let n = xadj.len() - 1;
        assert_eq!(vwgt.len(), n, "vwgt length must equal vertex count");
        assert_eq!(xadj[0], 0, "xadj must start at 0");
        assert!(
            xadj.windows(2).all(|w| w[0] <= w[1]),
            "xadj must be non-decreasing"
        );
        let m = *xadj.last().expect("non-empty") as usize;
        assert_eq!(adjncy.len(), m, "adjncy length must equal xadj[n]");
        assert_eq!(adjwgt.len(), m, "adjwgt length must equal xadj[n]");
        let total_vwgt = vwgt.iter().map(|&w| w as u64).sum();
        Self {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
            total_vwgt,
        }
    }

    /// An empty graph with zero vertices.
    pub fn empty() -> Self {
        Self {
            xadj: vec![0],
            adjncy: vec![],
            adjwgt: vec![],
            vwgt: vec![],
            total_vwgt: 0,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of undirected edges (each stored twice internally).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Weight of vertex `v`.
    #[inline]
    pub fn vertex_weight(&self, v: NodeId) -> u32 {
        self.vwgt[v as usize]
    }

    /// Sum of all vertex weights.
    #[inline]
    pub fn total_vertex_weight(&self) -> u64 {
        self.total_vwgt
    }

    /// All vertex weights.
    #[inline]
    pub fn vertex_weights(&self) -> &[u32] {
        &self.vwgt
    }

    /// Degree (number of incident edges) of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        (self.xadj[v + 1] - self.xadj[v]) as usize
    }

    /// Neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.adjncy[self.xadj[v] as usize..self.xadj[v + 1] as usize]
    }

    /// Edge weights aligned with [`CsrGraph::neighbors`].
    #[inline]
    pub fn edge_weights(&self, v: NodeId) -> &[u32] {
        let v = v as usize;
        &self.adjwgt[self.xadj[v] as usize..self.xadj[v + 1] as usize]
    }

    /// Iterates `(neighbor, edge_weight)` pairs of `v`.
    #[inline]
    pub fn edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.edge_weights(v).iter().copied())
    }

    /// Sum of the weights of all edges incident to `v`.
    pub fn weighted_degree(&self, v: NodeId) -> u64 {
        self.edge_weights(v).iter().map(|&w| w as u64).sum()
    }

    /// Total weight of all undirected edges.
    pub fn total_edge_weight(&self) -> u64 {
        self.adjwgt.iter().map(|&w| w as u64).sum::<u64>() / 2
    }

    /// Exhaustive structural validation; O(E log E). Intended for tests.
    ///
    /// Returns an error message describing the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices() as u32;
        for v in 0..n {
            for (u, w) in self.edges(v) {
                if u == v {
                    return Err(format!("self loop at vertex {v}"));
                }
                if u >= n {
                    return Err(format!("vertex {v} has out-of-range neighbor {u}"));
                }
                if w == 0 {
                    return Err(format!("zero-weight edge {v}-{u}"));
                }
                // Find the reverse edge.
                let back = self
                    .edges(u)
                    .find(|&(x, _)| x == v)
                    .ok_or_else(|| format!("edge {v}->{u} has no reverse"))?;
                if back.1 != w {
                    return Err(format!(
                        "asymmetric weights on edge {v}-{u}: {w} vs {}",
                        back.1
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.total_vertex_weight(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn triangle_accessors() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 5);
        b.add_edge(1, 2, 7);
        b.add_edge(0, 2, 1);
        let g = b.build();
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.weighted_degree(1), 12);
        assert_eq!(g.total_edge_weight(), 13);
        assert_eq!(g.total_vertex_weight(), 3); // default unit weights
        let mut nbrs: Vec<_> = g.edges(0).collect();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![(1, 5), (2, 1)]);
    }

    #[test]
    #[should_panic(expected = "xadj must start at 0")]
    fn from_parts_rejects_bad_xadj() {
        CsrGraph::from_parts(vec![1, 2], vec![0], vec![1], vec![1]);
    }

    #[test]
    fn validate_catches_asymmetry() {
        // 0 -> 1 exists but 1 -> 0 missing.
        let g = CsrGraph::from_parts(vec![0, 1, 1], vec![1], vec![1], vec![1, 1]);
        assert!(g.validate().is_err());
    }
}
