//! Union-find and connected components.
//!
//! Used by tests (a cut of 0 must separate components), and by Schism's
//! tuple-coalescing heuristic, which unions tuples that are always accessed
//! together (§5.1).

use crate::csr::{CsrGraph, NodeId};

/// Disjoint-set forest with path halving and union by size.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            // Path halving.
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }
}

/// Labels each vertex with a component id in `[0, count)`; ids are assigned
/// in order of first appearance.
pub fn connected_components(g: &CsrGraph) -> (usize, Vec<u32>) {
    let n = g.num_vertices();
    let mut comp = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut stack: Vec<NodeId> = Vec::new();
    for v in 0..n as NodeId {
        if comp[v as usize] != u32::MAX {
            continue;
        }
        comp[v as usize] = count;
        stack.push(v);
        while let Some(x) = stack.pop() {
            for &u in g.neighbors(x) {
                if comp[u as usize] == u32::MAX {
                    comp[u as usize] = count;
                    stack.push(u);
                }
            }
        }
        count += 1;
    }
    (count as usize, comp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
        assert_eq!(uf.num_sets(), 3);
        assert_eq!(uf.set_size(1), 3);
        assert_eq!(uf.set_size(4), 1);
    }

    #[test]
    fn components_of_forest() {
        let mut b = GraphBuilder::new(7);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(3, 4, 1);
        // 5, 6 isolated
        let g = b.build();
        let (count, comp) = connected_components(&g);
        assert_eq!(count, 4);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[5], comp[6]);
    }

    #[test]
    fn empty_graph_has_no_components() {
        let (count, comp) = connected_components(&GraphBuilder::new(0).build());
        assert_eq!(count, 0);
        assert!(comp.is_empty());
    }
}
