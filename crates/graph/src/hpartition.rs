//! Multilevel k-way hypergraph partitioning under the (λ−1) connectivity
//! metric.
//!
//! The pipeline mirrors the plain-graph driver ([`crate::partition()`]), with
//! each phase re-derived for nets instead of edges:
//!
//! 1. **Coarsen** with randomized **heavy-pin matching**: a vertex prefers
//!    the partner it co-occurs with in heavy, small nets (each net scores
//!    its pin pairs `w / (|e| − 1)`, so a 2-pin net counts like a full edge
//!    and a wide scan contributes little). Propose/mutual-accept rounds with
//!    a sequential cleanup, exactly as in [`crate::matching`].
//! 2. **Initial partition** of the coarsest hypergraph by clique-expanding
//!    it (cheap at coarsest size; wide nets expand as paths to stay linear)
//!    and reusing the existing recursive-bisection machinery.
//! 3. **Uncoarsen** with greedy (λ−1) boundary refinement: the gain of
//!    moving `v` from `a` to `b` is `Σ_e w(e)·[Λ(e,a)=1] − w(e)·[Λ(e,b)=0]`
//!    where `Λ(e,p)` counts `e`'s pins in part `p` — moving the last pin
//!    out of a part stops the net spanning it; moving into a part the net
//!    doesn't touch extends it.
//!
//! The objective `Σ_e w(e)·(λ(e) − 1)` is the number of *extra* partitions
//! each transaction spans — for a transactional workload, a direct count of
//! distributed transactions (weighted by frequency), where the clique
//! model's edge cut is only a quadratic proxy.
//!
//! Parallelism and determinism follow the same contract as the plain
//! partitioner: parallel phases are pure functions of frozen state over
//! [`schism_par::Pool`] chunks, conflict sets are serialized with
//! total-order tie-breaks, and labels + cost are **bit-identical for every
//! thread count**.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, NodeId};
use crate::hypergraph::HyperGraph;
use crate::initial::recursive_bisection;
use crate::matching::prio;
use crate::partition::{PartitionerConfig, Partitioning};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use schism_par::{chunk_size, Pool};

const UNMATCHED: NodeId = NodeId::MAX;
const NO_PROPOSAL: NodeId = NodeId::MAX;

/// Propose rounds before the sequential cleanup, as in [`crate::matching`].
const PROPOSE_ROUNDS: usize = 8;

/// Nets wider than this are skipped while *scoring* match candidates: a
/// wide net's per-pair weight `w / (|e| − 1)` is negligible, and skipping
/// keeps the scoring pass linear in pins rather than quadratic.
const SCORE_PIN_CAP: usize = 64;

/// Nets wider than this are treated as connectivity-neutral during
/// refinement gain evaluation: with hundreds of pins a net spans both the
/// source and destination of any single-vertex move with near certainty,
/// so its true gain contribution is ~0 and counting its pins per candidate
/// would make the boundary scan quadratic. The reported cost
/// ([`connectivity_cost`]) is always exact.
const GAIN_PIN_CAP: usize = 512;

/// Nets wider than this expand as paths (not cliques) when the coarsest
/// hypergraph is converted for initial partitioning.
const EXPAND_PIN_CAP: usize = 64;

/// Fixed-point scale for heavy-pin match scores (`w·SCALE / (|e| − 1)`).
const SCORE_SCALE: u64 = 256;

/// One coarsening level of the hypergraph hierarchy.
#[derive(Clone, Debug)]
pub struct HCoarseLevel {
    /// The contracted hypergraph.
    pub hg: HyperGraph,
    /// `map[v_fine] = v_coarse`.
    pub map: Vec<NodeId>,
}

/// The (λ−1) connectivity cost: `Σ_e w(e) · (parts_spanned(e) − 1)`.
/// Zero iff every net is internal to one partition.
pub fn connectivity_cost(hg: &HyperGraph, assignment: &[u32]) -> u64 {
    debug_assert_eq!(assignment.len(), hg.num_vertices());
    let mut seen: Vec<u32> = Vec::with_capacity(16);
    let mut cost = 0u64;
    for e in 0..hg.num_nets() as u32 {
        seen.clear();
        for &p in hg.pins(e) {
            let part = assignment[p as usize];
            if !seen.contains(&part) {
                seen.push(part);
            }
        }
        cost += hg.net_weight(e) as u64 * (seen.len() as u64 - 1);
    }
    cost
}

/// Vertex weight per partition under `assignment`.
pub fn hpart_weights(hg: &HyperGraph, assignment: &[u32], k: u32) -> Vec<u64> {
    let mut weights = vec![0u64; k as usize];
    for (v, &p) in assignment.iter().enumerate() {
        weights[p as usize] += hg.vertex_weight(v as NodeId) as u64;
    }
    weights
}

/// Per-worker scratch for heavy-pin match scoring: `score[u]` is valid when
/// `stamp[u]` equals the vertex currently being scored.
struct ScoreScratch {
    score: Vec<u64>,
    stamp: Vec<NodeId>,
    touched: Vec<NodeId>,
}

impl ScoreScratch {
    fn new(n: usize) -> Self {
        Self {
            score: vec![0; n],
            stamp: vec![UNMATCHED; n],
            touched: Vec::new(),
        }
    }
}

/// Heavy-pin matching: propose/mutual-accept rounds + sequential cleanup +
/// a bounded two-hop pass, structurally identical to [`crate::matching`]
/// but scoring partners by co-membership in heavy, small nets.
fn heavy_pin_matching<R: Rng>(
    hg: &HyperGraph,
    labels: Option<&[u32]>,
    max_pair_weight: u64,
    rng: &mut R,
    pool: &Pool,
) -> Vec<NodeId> {
    let n = hg.num_vertices();
    let mut mate = vec![UNMATCHED; n];
    // One seed draw and one shuffle: the rng advances by the same amount
    // whatever the pool size.
    let seed: u64 = rng.gen();
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.shuffle(rng);

    let eligible = |v: NodeId, u: NodeId, vw: u64, mate: &[NodeId]| -> bool {
        u != v
            && mate[u as usize] == UNMATCHED
            && vw + hg.vertex_weight(u) as u64 <= max_pair_weight
            && labels.is_none_or(|l| l[u as usize] == l[v as usize])
    };

    // Highest-scoring eligible partner; ties by seeded priority, then id —
    // a total order, so the proposal is unique.
    let best_partner = |v: NodeId, mate: &[NodeId], s: &mut ScoreScratch| -> NodeId {
        let vw = hg.vertex_weight(v) as u64;
        s.touched.clear();
        for &e in hg.nets(v) {
            let ps = hg.pins(e);
            if ps.len() > SCORE_PIN_CAP {
                continue;
            }
            let inc = hg.net_weight(e) as u64 * SCORE_SCALE / (ps.len() as u64 - 1);
            for &u in ps {
                if u == v {
                    continue;
                }
                if s.stamp[u as usize] != v {
                    s.stamp[u as usize] = v;
                    s.score[u as usize] = 0;
                    s.touched.push(u);
                }
                s.score[u as usize] += inc;
            }
        }
        let mut best: Option<(u64, u64, NodeId)> = None;
        for &u in &s.touched {
            if !eligible(v, u, vw, mate) {
                continue;
            }
            let key = (s.score[u as usize], prio(seed, u), u);
            if best.is_none_or(|b| key > b) {
                best = Some(key);
            }
        }
        best.map_or(NO_PROPOSAL, |(_, _, u)| u)
    };

    let chunk = chunk_size(n, pool.threads());
    for _ in 0..PROPOSE_ROUNDS {
        // Phase 1: propose against the frozen `mate` (parallel, pure).
        let proposals: Vec<Vec<NodeId>> = pool.scope_chunks_with(
            n,
            chunk,
            || ScoreScratch::new(n),
            |s, r| {
                r.map(|v| {
                    if mate[v] != UNMATCHED {
                        NO_PROPOSAL
                    } else {
                        best_partner(v as NodeId, &mate, s)
                    }
                })
                .collect()
            },
        );
        let prop: Vec<NodeId> = proposals.into_iter().flatten().collect();

        // Phase 2: deterministic conflict resolution — mutual proposals
        // match, everyone else retries next round.
        let mut matched = 0usize;
        for v in 0..n {
            let u = prop[v];
            if u == NO_PROPOSAL || (u as usize) <= v {
                continue;
            }
            if prop[u as usize] == v as NodeId {
                mate[v] = u;
                mate[u as usize] = v as NodeId;
                matched += 1;
            }
        }
        if matched == 0 {
            break;
        }
    }

    // Cleanup: greedy maximal matching over the remainder in the seeded
    // random visit order. Vertices with no eligible partner self-match.
    let mut scratch = ScoreScratch::new(n);
    for &v in &order {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        let u = best_partner(v, &mate, &mut scratch);
        if u == NO_PROPOSAL {
            mate[v as usize] = v;
        } else {
            mate[v as usize] = u;
            mate[u as usize] = v;
        }
    }

    // Two-hop pass: self-matched leftovers pair with another self-matched
    // vertex reachable through a shared pin — the hypergraph analog of the
    // METIS star fix (replication stars leave every replica's partner
    // taken). Bounded scans keep hubs from making this quadratic.
    for &v in &order {
        if mate[v as usize] != v {
            continue;
        }
        let vw = hg.vertex_weight(v) as u64;
        let mut scanned = 0usize;
        'outer: for &e in hg.nets(v) {
            for &u in hg.pins(e) {
                if u == v {
                    continue;
                }
                for &e2 in hg.nets(u).iter().take(8) {
                    for &w2 in hg.pins(e2).iter().take(32) {
                        if w2 != v
                            && mate[w2 as usize] == w2
                            && vw + hg.vertex_weight(w2) as u64 <= max_pair_weight
                            && labels.is_none_or(|l| l[w2 as usize] == l[v as usize])
                        {
                            mate[v as usize] = w2;
                            mate[w2 as usize] = v;
                            break 'outer;
                        }
                    }
                }
                scanned += 1;
                if scanned >= 16 {
                    break 'outer;
                }
            }
        }
    }
    mate
}

fn matched_pairs(mate: &[NodeId]) -> usize {
    mate.iter()
        .enumerate()
        .filter(|&(v, &m)| (m as usize) > v)
        .count()
}

/// Contracts `hg` according to `mate`: matched pairs become one coarse
/// vertex, pins are remapped and deduplicated per net, nets collapsing to a
/// single pin vanish, and identical coarse pin sets merge with summed
/// weights (the builder's canonical form makes the result independent of
/// chunk decomposition).
fn hcontract(hg: &HyperGraph, mate: &[NodeId], pool: &Pool) -> HCoarseLevel {
    let n = hg.num_vertices();
    debug_assert_eq!(mate.len(), n);

    // Coarse ids: the lower-numbered endpoint of each pair owns the id.
    let mut map = vec![NodeId::MAX; n];
    let mut next: NodeId = 0;
    for v in 0..n {
        let m = mate[v] as usize;
        if m >= v {
            map[v] = next;
            map[m] = next; // no-op when m == v
            next += 1;
        }
    }
    let cn = next as usize;

    let mut cvwgt = vec![0u64; cn];
    for v in 0..n {
        cvwgt[map[v] as usize] += hg.vertex_weight(v as NodeId) as u64;
    }

    // Remap pins over net chunks (parallel, pure), then stitch in chunk
    // order; the builder's final canonical sort makes the decomposition
    // invisible.
    struct ChunkNets {
        pins: Vec<NodeId>,
        nets: Vec<(u32, u32)>, // (len, weight)
    }
    let m = hg.num_nets();
    let chunk = chunk_size(m, pool.threads());
    let parts: Vec<ChunkNets> = pool.scope_chunks(m, chunk, |range| {
        let mut out = ChunkNets {
            pins: Vec::new(),
            nets: Vec::new(),
        };
        for e in range {
            let start = out.pins.len();
            out.pins
                .extend(hg.pins(e as u32).iter().map(|&p| map[p as usize]));
            let tail = &mut out.pins[start..];
            tail.sort_unstable();
            let mut write = 0usize;
            for read in 0..tail.len() {
                if read == 0 || tail[read] != tail[read - 1] {
                    tail[write] = tail[read];
                    write += 1;
                }
            }
            out.pins.truncate(start + write);
            if write < 2 {
                out.pins.truncate(start); // net collapsed into one vertex
            } else {
                out.nets.push((write as u32, hg.net_weight(e as u32)));
            }
        }
        out
    });

    let mut b = crate::hypergraph::HyperGraphBuilder::new(cn);
    for (cv, &w) in cvwgt.iter().enumerate() {
        b.set_vertex_weight(cv as NodeId, u32::try_from(w).unwrap_or(u32::MAX));
    }
    for part in &parts {
        let mut offset = 0usize;
        for &(len, w) in &part.nets {
            b.add_net(&part.pins[offset..offset + len as usize], w);
            offset += len as usize;
        }
    }
    HCoarseLevel { hg: b.build(), map }
}

/// Per-thread scratch for (λ−1) move evaluation, all `O(k)`.
struct MoveScratch {
    /// `credit[p]` = Σ weight of v's nets that already have a pin in `p`.
    credit: Vec<u64>,
    /// `cut_credit[p]` = Σ weight of v's nets spanning exactly
    /// `{own, p}` with `v` alone in `own` — moving `v` to `p` makes them
    /// entirely internal (un-cuts them).
    cut_credit: Vec<u64>,
    /// Parts with non-zero credit (excluding v's own part).
    touched: Vec<u32>,
    /// Per-net pin counts per part, reset after each net.
    net_cnt: Vec<u32>,
    net_parts: Vec<u32>,
}

impl MoveScratch {
    fn new(k: usize) -> Self {
        Self {
            credit: vec![0; k],
            cut_credit: vec![0; k],
            touched: Vec::with_capacity(16),
            net_cnt: vec![0; k],
            net_parts: Vec::with_capacity(16),
        }
    }
}

/// Accumulates, over `v`'s nets (up to [`GAIN_PIN_CAP`]), the ingredients
/// of every (λ−1) move gain: `base` (weight of nets where `v` is the last
/// pin in its own part — moving `v` anywhere un-spans them), `total`
/// (weight of all considered nets), and per-part `credit` (weight of nets
/// already spanning that part — moving there costs nothing for them). The
/// gain of `a → b` is then `base − (total − credit[b])`.
///
/// Alongside, it gathers the *cut-net* secondary objective — the number of
/// nets spanning more than one part, i.e. exactly the distributed
/// transactions a placement produces: `cut_credit[p]` (nets un-cut by
/// moving `v` to `p`) and the returned `interior` (weight of nets fully
/// inside `own` with more pins than `v` — any move newly cuts them).
fn accumulate_credits(
    hg: &HyperGraph,
    assignment: &[u32],
    v: NodeId,
    s: &mut MoveScratch,
) -> (i64, i64, i64) {
    let own = assignment[v as usize];
    s.touched.clear();
    let mut base = 0i64;
    let mut total = 0i64;
    let mut interior = 0i64;
    for &e in hg.nets(v) {
        let ps = hg.pins(e);
        if ps.len() > GAIN_PIN_CAP {
            continue;
        }
        let w = hg.net_weight(e) as i64;
        s.net_parts.clear();
        for &u in ps {
            let p = assignment[u as usize];
            if s.net_cnt[p as usize] == 0 {
                s.net_parts.push(p);
            }
            s.net_cnt[p as usize] += 1;
        }
        if s.net_cnt[own as usize] == 1 {
            base += w;
            if s.net_parts.len() == 2 {
                // Span is exactly {own, q}: landing on q un-cuts the net.
                let q = if s.net_parts[0] == own {
                    s.net_parts[1]
                } else {
                    s.net_parts[0]
                };
                s.cut_credit[q as usize] += w as u64;
            }
        } else if s.net_parts.len() == 1 {
            // Fully internal with other pins in `own`: any move cuts it.
            interior += w;
        }
        total += w;
        for &p in &s.net_parts {
            if p != own {
                if s.credit[p as usize] == 0 {
                    s.touched.push(p);
                }
                s.credit[p as usize] += w as u64;
            }
            s.net_cnt[p as usize] = 0;
        }
    }
    (base, total, interior)
}

/// The (λ−1) analog of the graph refiner's move weighing: gain and
/// destination of `v`'s best admissible move, or `None`. The (λ−1) gain is
/// primary; ties are broken by the cut-net gain (nets un-cut minus nets
/// newly cut — exactly the change in distributed transactions), so the
/// refiner keeps lowering the distributed fraction on (λ−1) plateaus.
/// `s.credit`/`s.cut_credit` are re-zeroed before returning so callers
/// reuse the scratch across vertices.
fn weigh_hmove(
    hg: &HyperGraph,
    assignment: &[u32],
    weights: &[u64],
    max_part_weight: u64,
    v: NodeId,
    s: &mut MoveScratch,
    cut_primary: bool,
) -> Option<(i64, u32)> {
    let own = assignment[v as usize];
    let (base, total, interior) = accumulate_credits(hg, assignment, v, s);
    let result = (|| {
        if s.touched.is_empty() {
            return None; // interior vertex: every net fully in `own`
        }
        let vw = hg.vertex_weight(v) as u64;
        let mut best: Option<(i64, i64, u32)> = None;
        for &p in &s.touched {
            let lam_gain = base - (total - s.credit[p as usize] as i64);
            let cut_gain = s.cut_credit[p as usize] as i64 - interior;
            // Primary/secondary objective per mode: (λ−1) first during
            // multilevel refinement, cut-nets first during the final polish.
            let (gain, tie) = if cut_primary {
                (cut_gain, lam_gain)
            } else {
                (lam_gain, cut_gain)
            };
            let fits = weights[p as usize] + vw <= max_part_weight;
            let rebalances = weights[own as usize] > max_part_weight
                && weights[p as usize] + vw < weights[own as usize];
            if !(fits || rebalances) {
                continue;
            }
            let improves_balance = weights[p as usize] + vw < weights[own as usize];
            // Zero-gain moves must not pay the secondary objective for
            // balance: balance is already capped by epsilon, the
            // objectives are not.
            let take = gain > 0 || (gain == 0 && (tie > 0 || (tie == 0 && improves_balance)));
            if take {
                let replace = match best {
                    None => true,
                    Some((bg, bc, bp)) => {
                        (gain, tie) > (bg, bc)
                            || ((gain, tie) == (bg, bc)
                                && weights[p as usize] < weights[bp as usize])
                    }
                };
                if replace {
                    best = Some((gain, tie, p));
                }
            }
        }
        best.map(|(gain, _, p)| (gain, p))
    })();
    for &p in &s.touched {
        s.credit[p as usize] = 0;
        s.cut_credit[p as usize] = 0;
    }
    result
}

/// Greedy k-way boundary refinement under the (λ−1) metric, parallelized as
/// scan/apply passes exactly like [`crate::refine::kway_greedy_refine`]:
/// the boundary scan runs over vertex chunks against the frozen pass-start
/// state, candidates are ordered `(Reverse(gain), v)` and re-validated
/// sequentially against the live assignment. Returns moves performed.
pub fn hkway_greedy_refine(
    hg: &HyperGraph,
    assignment: &mut [u32],
    k: u32,
    max_part_weight: u64,
    passes: usize,
    pool: &Pool,
) -> usize {
    hkway_refine_inner(hg, assignment, k, max_part_weight, passes, pool, false)
}

/// The final polish the partition drivers run on the flat hypergraph:
/// identical scan/apply structure, but with the **cut-net metric primary**
/// — the weight of nets spanning more than one part, i.e. exactly the
/// distributed transactions the placement produces (the paper's §6.1
/// metric). Minimizing Σ(λ−1) alone happily trades one 3-way transaction
/// for two 2-way ones; this pass undoes such trades when they don't pay,
/// accepting a (λ−1) regression only for a strict cut-net win.
pub fn hkway_cutnet_polish(
    hg: &HyperGraph,
    assignment: &mut [u32],
    k: u32,
    max_part_weight: u64,
    passes: usize,
    pool: &Pool,
) -> usize {
    hkway_refine_inner(hg, assignment, k, max_part_weight, passes, pool, true)
}

fn hkway_refine_inner(
    hg: &HyperGraph,
    assignment: &mut [u32],
    k: u32,
    max_part_weight: u64,
    passes: usize,
    pool: &Pool,
    cut_primary: bool,
) -> usize {
    let n = hg.num_vertices();
    let kk = k as usize;
    let mut weights = hpart_weights(hg, assignment, k);

    let chunk = chunk_size(n, pool.threads());
    let mut total_moves = 0usize;

    for _pass in 0..passes {
        let frozen_assignment: &[u32] = assignment;
        let frozen_weights: &[u64] = &weights;
        let candidates: Vec<Vec<(i64, NodeId)>> = pool.scope_chunks_with(
            n,
            chunk,
            || MoveScratch::new(kk),
            |s, range| {
                range
                    .filter_map(|v| {
                        weigh_hmove(
                            hg,
                            frozen_assignment,
                            frozen_weights,
                            max_part_weight,
                            v as NodeId,
                            s,
                            cut_primary,
                        )
                        .map(|(gain, _)| (gain, v as NodeId))
                    })
                    .collect()
            },
        );
        let mut cands: Vec<(i64, NodeId)> = candidates.into_iter().flatten().collect();
        if cands.is_empty() {
            break;
        }
        cands.sort_unstable_by_key(|&(gain, v)| (std::cmp::Reverse(gain), v));

        let mut s = MoveScratch::new(kk);
        let mut moves = 0usize;
        for (_, v) in cands {
            let Some((_, p)) = weigh_hmove(
                hg,
                assignment,
                &weights,
                max_part_weight,
                v,
                &mut s,
                cut_primary,
            ) else {
                continue;
            };
            let own = assignment[v as usize];
            let vw = hg.vertex_weight(v) as u64;
            weights[own as usize] -= vw;
            weights[p as usize] += vw;
            assignment[v as usize] = p;
            moves += 1;
        }
        total_moves += moves;
        if moves == 0 {
            break;
        }
    }
    total_moves
}

/// Forces every partition under `max_part_weight` by evicting vertices of
/// overweight partitions, cheapest (λ−1) damage first — the hypergraph
/// analog of [`crate::refine::enforce_balance`] with the same
/// parallel-score / sequential-evict structure and determinism contract.
pub fn henforce_balance(
    hg: &HyperGraph,
    assignment: &mut [u32],
    k: u32,
    max_part_weight: u64,
    pool: &Pool,
) {
    let n = hg.num_vertices();
    let kk = k as usize;
    let mut weights = hpart_weights(hg, assignment, k);
    if !weights.iter().any(|&w| w > max_part_weight) {
        return;
    }
    let chunk = chunk_size(n, pool.threads());
    for _ in 0..4 {
        if !weights.iter().any(|&w| w > max_part_weight) {
            break;
        }
        // Score every vertex of an overweight partition by the cost of its
        // best unconstrained move: delta = (total − base) − max credit.
        // The destination is re-chosen at move time against fresh weights.
        let frozen_assignment: &[u32] = assignment;
        let frozen_weights: &[u64] = &weights;
        let scored: Vec<Vec<(i64, NodeId)>> = pool.scope_chunks_with(
            n,
            chunk,
            || MoveScratch::new(kk),
            |s, range| {
                range
                    .filter_map(|v| {
                        let own = frozen_assignment[v] as usize;
                        if frozen_weights[own] <= max_part_weight {
                            return None;
                        }
                        let (base, total, _) =
                            accumulate_credits(hg, frozen_assignment, v as NodeId, s);
                        let max_credit = s
                            .touched
                            .iter()
                            .map(|&p| s.credit[p as usize])
                            .max()
                            .unwrap_or(0);
                        for &p in &s.touched {
                            s.credit[p as usize] = 0;
                            s.cut_credit[p as usize] = 0;
                        }
                        Some(((total - base) - max_credit as i64, v as NodeId))
                    })
                    .collect()
            },
        );
        let mut cands: Vec<(i64, NodeId)> = scored.into_iter().flatten().collect();
        if cands.is_empty() {
            break;
        }
        // Cheapest damage first; heavier vertex first on ties (fewer moves).
        cands
            .sort_unstable_by_key(|&(delta, v)| (delta, std::cmp::Reverse(hg.vertex_weight(v)), v));
        let mut s = MoveScratch::new(kk);
        let mut moved = false;
        for (_, v) in cands {
            let own = assignment[v as usize] as usize;
            if weights[own] <= max_part_weight {
                continue; // partition already fixed this sweep
            }
            let vw = hg.vertex_weight(v) as u64;
            accumulate_credits(hg, assignment, v, &mut s);
            // Feasible destination with the most connectivity credit; break
            // ties toward the lightest load.
            let dest = (0..kk)
                .filter(|&p| p != own && weights[p] + vw <= max_part_weight)
                .map(|p| (p, (s.credit[p], std::cmp::Reverse(weights[p]))))
                .max_by_key(|&(_, key)| key);
            for &p in &s.touched {
                s.credit[p as usize] = 0;
                s.cut_credit[p as usize] = 0;
            }
            if let Some((p, _)) = dest {
                weights[own] -= vw;
                weights[p] += vw;
                assignment[v as usize] = p as u32;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
}

/// Expands the (coarsest) hypergraph into a plain graph for initial
/// partitioning: small nets become cliques with per-pair weight
/// `2w/(|e|−1)` (floor 1, so a 2-pin net keeps its full weight), wide nets
/// become paths over their sorted pins — linear in pins, and enough to keep
/// their vertices attracted during bisection.
fn clique_expand(hg: &HyperGraph) -> CsrGraph {
    let n = hg.num_vertices();
    let mut b = GraphBuilder::new(n);
    for v in 0..n as NodeId {
        b.set_vertex_weight(v, hg.vertex_weight(v));
    }
    for e in 0..hg.num_nets() as u32 {
        let ps = hg.pins(e);
        let w = hg.net_weight(e) as u64;
        if ps.len() <= EXPAND_PIN_CAP {
            let ew = (2 * w / (ps.len() as u64 - 1)).clamp(1, u32::MAX as u64) as u32;
            for i in 0..ps.len() {
                for j in i + 1..ps.len() {
                    b.add_edge(ps[i], ps[j], ew);
                }
            }
        } else {
            let ew = w.clamp(1, u32::MAX as u64) as u32;
            for pair in ps.windows(2) {
                b.add_edge(pair[0], pair[1], ew);
            }
        }
    }
    b.build()
}

/// `(1 + epsilon) * total / k`, rounded up — same cap as the plain driver.
fn hmax_part_weight(total: u64, k: u32, epsilon: f64) -> u64 {
    (((total as f64) * (1.0 + epsilon)) / k as f64).ceil() as u64
}

fn hfinish(hg: &HyperGraph, assignment: Vec<u32>, k: u32) -> Partitioning {
    let cost = connectivity_cost(hg, &assignment);
    let part_weights = hpart_weights(hg, &assignment, k);
    Partitioning {
        assignment,
        edge_cut: cost,
        part_weights,
        k,
    }
}

/// Partitions `hg` into `cfg.k` balanced parts minimizing the (λ−1)
/// connectivity cost. The returned [`Partitioning`] stores that cost in its
/// `edge_cut` field.
///
/// Runs `cfg.ncuts` independent multilevel passes — concurrently when the
/// thread budget allows — and returns the best (lowest cost, then lowest
/// imbalance, then earliest run). Deterministic for a fixed
/// `(hypergraph, config)` pair regardless of `cfg.threads`.
pub fn hpartition(hg: &HyperGraph, cfg: &PartitionerConfig) -> Partitioning {
    let runs = cfg.ncuts.max(1);
    let pool = Pool::new(schism_par::resolve_threads(cfg.threads));
    let (outer, inner) = pool.split(runs);

    let results: Vec<Partitioning> = outer.scope_chunks(runs, 1, |r| {
        let i = r.start;
        let run_cfg = PartitionerConfig {
            seed: cfg
                .seed
                .wrapping_add(i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ cfg.seed,
            ncuts: 1,
            ..cfg.clone()
        };
        hpartition_once(hg, &run_cfg, &inner)
    });

    let mut best: Option<Partitioning> = None;
    for p in results {
        let better = match &best {
            None => true,
            Some(b) => {
                (p.edge_cut, p.imbalance().to_bits()) < (b.edge_cut, b.imbalance().to_bits())
            }
        };
        if better {
            best = Some(p);
        }
    }
    best.expect("at least one run")
}

fn hpartition_once(hg: &HyperGraph, cfg: &PartitionerConfig, pool: &Pool) -> Partitioning {
    assert!(cfg.k >= 1, "k must be at least 1");
    assert!(cfg.epsilon >= 0.0, "epsilon must be non-negative");
    let n = hg.num_vertices();
    let k = cfg.k;

    if k == 1 || n == 0 {
        return hfinish(hg, vec![0u32; n], k);
    }
    if (k as usize) >= n {
        return hfinish(hg, (0..n as u32).collect(), k);
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let total = hg.total_vertex_weight();
    let max_part = hmax_part_weight(total, k, cfg.epsilon);
    let max_pair = (max_part / 2).max(1);

    // --- Coarsening ---
    // The current (finest-so-far) hypergraph is always borrowed — `hg`
    // itself before any contraction, the last level's graph after — so the
    // coarsening chain holds each level exactly once. At --huge scale the
    // input CSR alone is hundreds of MiB; cloning it per level was the
    // partitioner's peak-RSS driver.
    let coarsen_target = cfg.effective_coarsen_target();
    let mut levels: Vec<HCoarseLevel> = Vec::new();
    loop {
        let current: &HyperGraph = levels.last().map_or(hg, |l| &l.hg);
        if current.num_vertices() <= coarsen_target {
            break;
        }
        let mate = heavy_pin_matching(current, None, max_pair, &mut rng, pool);
        let pairs = matched_pairs(&mate);
        if (pairs as f64) < 0.02 * current.num_vertices() as f64 {
            break;
        }
        let level = hcontract(current, &mate, pool);
        levels.push(level);
        if levels.len() > 64 {
            break;
        }
    }
    let coarsest: &HyperGraph = levels.last().map_or(hg, |l| &l.hg);

    // --- Initial partitioning: clique-expand the coarsest hypergraph and
    // reuse the plain-graph recursive bisection, then repair under the real
    // metric. ---
    let cg = clique_expand(coarsest);
    let mut assignment = recursive_bisection(&cg, k, cfg.epsilon, cfg.init_tries, &mut rng, pool);
    henforce_balance(coarsest, &mut assignment, k, max_part, pool);
    hkway_greedy_refine(
        coarsest,
        &mut assignment,
        k,
        max_part,
        cfg.refine_passes,
        pool,
    );

    // --- Uncoarsening with refinement ---
    for (idx, level) in levels.iter().enumerate().rev() {
        let fine_n = level.map.len();
        let mut fine_assignment = vec![0u32; fine_n];
        for v in 0..fine_n {
            fine_assignment[v] = assignment[level.map[v] as usize];
        }
        assignment = fine_assignment;
        let fine: &HyperGraph = if idx == 0 { hg } else { &levels[idx - 1].hg };
        henforce_balance(fine, &mut assignment, k, max_part, pool);
        hkway_greedy_refine(fine, &mut assignment, k, max_part, cfg.refine_passes, pool);
    }

    // --- V-cycle polish: re-coarsen within the labels just found and
    // refine again, so whole co-access clusters can change side as single
    // vertices — flat boundary moves alone leave the cold partition in a
    // slightly worse local minimum than the clique pipeline reaches. ---
    for _ in 0..2 {
        assignment = warm_hvcycle(hg, assignment, cfg, &mut rng, pool, false);
    }

    // Final stage under the metric that is the point (§6.1): the weight of
    // nets left spanning more than one part. One V-cycle so whole clusters
    // can switch side for a cut-net win, then a flat polish to convergence.
    assignment = warm_hvcycle(hg, assignment, cfg, &mut rng, pool, true);
    hkway_cutnet_polish(hg, &mut assignment, k, max_part, cfg.refine_passes, pool);

    hfinish(hg, assignment, k)
}

/// Refines a hypergraph partitioning starting from `initial` — the
/// warm-start entry point for incremental repartitioning, mirroring
/// [`crate::partition::partition_warm`]: label-respecting heavy-pin
/// coarsening projects the seed exactly onto every level, the coarsest
/// level is rebalanced and refined where whole co-access clusters move as
/// single vertices, and refinement repeats at each uncoarsening level.
/// Labels `>= k` are wrapped. Two V-cycles, same determinism contract.
pub fn hpartition_warm(hg: &HyperGraph, initial: &[u32], cfg: &PartitionerConfig) -> Partitioning {
    assert!(cfg.k >= 1, "k must be at least 1");
    assert_eq!(
        initial.len(),
        hg.num_vertices(),
        "initial assignment must cover every vertex"
    );
    let k = cfg.k;
    let mut labels: Vec<u32> = initial.iter().map(|&p| p % k).collect();
    if k == 1 || hg.num_vertices() == 0 {
        return hfinish(hg, labels, k);
    }
    let pool = Pool::new(schism_par::resolve_threads(cfg.threads));
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x57A2_7ED0);
    for _ in 0..2 {
        labels = warm_hvcycle(hg, labels, cfg, &mut rng, &pool, false);
    }
    labels = warm_hvcycle(hg, labels, cfg, &mut rng, &pool, true);
    let max_part = hmax_part_weight(hg.total_vertex_weight(), k, cfg.epsilon);
    hkway_cutnet_polish(hg, &mut labels, k, max_part, cfg.refine_passes, &pool);
    hfinish(hg, labels, k)
}

fn warm_hvcycle(
    hg: &HyperGraph,
    mut labels: Vec<u32>,
    cfg: &PartitionerConfig,
    rng: &mut StdRng,
    pool: &Pool,
    cut_primary: bool,
) -> Vec<u32> {
    let k = cfg.k;
    let total = hg.total_vertex_weight();
    let max_part = hmax_part_weight(total, k, cfg.epsilon);
    let max_pair = (max_part / 2).max(1);

    // Coarsen within label classes until matching stalls. As in the cold
    // driver, the finest-so-far hypergraph is borrowed, never cloned.
    let mut levels: Vec<HCoarseLevel> = Vec::new();
    loop {
        let current: &HyperGraph = levels.last().map_or(hg, |l| &l.hg);
        if current.num_vertices() <= k as usize {
            break;
        }
        let mate = heavy_pin_matching(current, Some(&labels), max_pair, rng, pool);
        let pairs = matched_pairs(&mate);
        if (pairs as f64) < 0.02 * current.num_vertices() as f64 {
            break;
        }
        let level = hcontract(current, &mate, pool);
        let mut coarse_labels = vec![0u32; level.hg.num_vertices()];
        for (v, &cv) in level.map.iter().enumerate() {
            coarse_labels[cv as usize] = labels[v];
        }
        labels = coarse_labels;
        levels.push(level);
        if levels.len() > 64 {
            break;
        }
    }
    let coarsest: &HyperGraph = levels.last().map_or(hg, |l| &l.hg);

    // Rebalance + refine the seed on the coarsest hypergraph.
    let mut assignment = labels;
    henforce_balance(coarsest, &mut assignment, k, max_part, pool);
    hkway_refine_inner(
        coarsest,
        &mut assignment,
        k,
        max_part,
        cfg.refine_passes,
        pool,
        cut_primary,
    );

    // Uncoarsen with refinement.
    for (idx, level) in levels.iter().enumerate().rev() {
        let fine_n = level.map.len();
        let mut fine_assignment = vec![0u32; fine_n];
        for v in 0..fine_n {
            fine_assignment[v] = assignment[level.map[v] as usize];
        }
        assignment = fine_assignment;
        let fine: &HyperGraph = if idx == 0 { hg } else { &levels[idx - 1].hg };
        henforce_balance(fine, &mut assignment, k, max_part, pool);
        hkway_refine_inner(
            fine,
            &mut assignment,
            k,
            max_part,
            cfg.refine_passes,
            pool,
            cut_primary,
        );
    }

    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::HyperGraphBuilder;

    /// Two clusters of `size` vertices each: every consecutive triple inside
    /// a cluster is a net of weight 5, plus one 2-pin bridge net of weight 1.
    fn two_hyper_clusters(size: usize) -> HyperGraph {
        let mut b = HyperGraphBuilder::new(2 * size);
        for base in [0, size] {
            for i in 0..size - 2 {
                let v = (base + i) as NodeId;
                b.add_net(&[v, v + 1, v + 2], 5);
            }
        }
        b.add_net(&[(size - 1) as NodeId, size as NodeId], 1);
        b.build()
    }

    #[test]
    fn k1_is_trivial() {
        let hg = two_hyper_clusters(10);
        let p = hpartition(&hg, &PartitionerConfig::with_k(1));
        assert_eq!(p.edge_cut, 0);
        assert!(p.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn empty_hypergraph() {
        let hg = HyperGraph::empty();
        let p = hpartition(&hg, &PartitionerConfig::with_k(4));
        assert!(p.assignment.is_empty());
        assert_eq!(p.part_weights, vec![0, 0, 0, 0]);
    }

    #[test]
    fn k_exceeds_n() {
        let mut b = HyperGraphBuilder::new(3);
        b.add_net(&[0, 1, 2], 1);
        let hg = b.build();
        let p = hpartition(&hg, &PartitionerConfig::with_k(8));
        assert_eq!(p.assignment, vec![0, 1, 2]);
    }

    #[test]
    fn two_clusters_optimal() {
        let hg = two_hyper_clusters(24);
        let p = hpartition(
            &hg,
            &PartitionerConfig {
                k: 2,
                seed: 11,
                ..Default::default()
            },
        );
        assert_eq!(p.edge_cut, 1, "must cut only the bridge net");
        assert_eq!(p.part_weights, vec![24, 24]);
    }

    #[test]
    fn connectivity_metric_counts_extra_parts() {
        let mut b = HyperGraphBuilder::new(6);
        b.add_net(&[0, 1, 2], 2); // spans parts {0} under the assignment below
        b.add_net(&[2, 3, 4], 3); // spans {0, 1}
        b.add_net(&[0, 3, 5], 1); // spans {0, 1, 2}
        let hg = b.build();
        let assignment = vec![0, 0, 0, 1, 1, 2];
        // Per net: weight * (spanned parts - 1) = 2*0 + 3*1 + 1*2.
        assert_eq!(connectivity_cost(&hg, &assignment), 5);
    }

    #[test]
    fn determinism() {
        let hg = two_hyper_clusters(40);
        let cfg = PartitionerConfig {
            k: 2,
            seed: 42,
            ..Default::default()
        };
        let p1 = hpartition(&hg, &cfg);
        let p2 = hpartition(&hg, &cfg);
        assert_eq!(p1.assignment, p2.assignment);
        assert_eq!(p1.edge_cut, p2.edge_cut);
    }

    #[test]
    fn identical_across_thread_counts() {
        // Random-ish hypergraph, cold and warm, at threads 1/2/4.
        let mut b = HyperGraphBuilder::new(300);
        let mut state = 5u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..400 {
            let len = 2 + (next() % 5) as usize;
            let pins: Vec<NodeId> = (0..len).map(|_| (next() % 300) as NodeId).collect();
            b.add_net(&pins, 1 + (next() % 7) as u32);
        }
        let hg = b.build();
        hg.validate().unwrap();
        let run = |threads: usize| {
            hpartition(
                &hg,
                &PartitionerConfig {
                    k: 3,
                    seed: 5,
                    threads,
                    ..Default::default()
                },
            )
        };
        let base = run(1);
        for t in [2, 4] {
            let p = run(t);
            assert_eq!(p.assignment, base.assignment, "threads {t} changed labels");
            assert_eq!(p.edge_cut, base.edge_cut, "threads {t} changed the cost");
        }
        let warm = |threads: usize| {
            hpartition_warm(
                &hg,
                &base.assignment,
                &PartitionerConfig {
                    k: 3,
                    seed: 5,
                    threads,
                    ..Default::default()
                },
            )
        };
        let wbase = warm(1);
        for t in [2, 4] {
            let p = warm(t);
            assert_eq!(p.assignment, wbase.assignment, "warm threads {t} differs");
            assert_eq!(p.edge_cut, wbase.edge_cut);
        }
    }

    #[test]
    fn warm_start_preserves_good_assignment() {
        let hg = two_hyper_clusters(24);
        let initial: Vec<u32> = (0..48).map(|v| (v >= 24) as u32).collect();
        let p = hpartition_warm(&hg, &initial, &PartitionerConfig::with_k(2));
        assert_eq!(p.edge_cut, 1);
        assert_eq!(p.assignment, initial, "optimal warm start must be stable");
    }

    #[test]
    fn warm_start_repairs_imbalance() {
        let hg = two_hyper_clusters(20);
        let initial = vec![0u32; 40];
        let p = hpartition_warm(&hg, &initial, &PartitionerConfig::with_k(4));
        let cap = ((hg.total_vertex_weight() as f64) * 1.05 / 4.0).ceil() as u64;
        for (i, &w) in p.part_weights.iter().enumerate() {
            assert!(w <= cap, "part {i} overweight: {w} > {cap}");
        }
        assert!(p.assignment.iter().any(|&a| a != 0));
    }

    #[test]
    fn warm_start_wraps_out_of_range_labels() {
        let mut b = HyperGraphBuilder::new(6);
        for v in 0..5u32 {
            b.add_net(&[v, v + 1], 1);
        }
        let hg = b.build();
        let initial = vec![7u32, 8, 9, 10, 11, 12];
        let p = hpartition_warm(&hg, &initial, &PartitionerConfig::with_k(2));
        assert!(p.assignment.iter().all(|&a| a < 2));
    }

    #[test]
    fn respects_balance_on_weighted_hypergraph() {
        let mut b = HyperGraphBuilder::new(100);
        for i in 0..98u32 {
            b.add_net(&[i, i + 1, i + 2], 1);
        }
        for i in 0..100u32 {
            b.set_vertex_weight(i, 1 + (i % 7));
        }
        let hg = b.build();
        let p = hpartition(
            &hg,
            &PartitionerConfig {
                k: 5,
                seed: 2,
                epsilon: 0.08,
                ..Default::default()
            },
        );
        let cap = ((hg.total_vertex_weight() as f64) * 1.08 / 5.0).ceil() as u64;
        for (i, &w) in p.part_weights.iter().enumerate() {
            assert!(w <= cap + 7, "part {i} overweight: {w} > {cap}");
        }
    }

    #[test]
    fn refiner_reduces_connectivity() {
        // Interleaved start on two clusters: refinement must untangle it.
        let hg = two_hyper_clusters(16);
        let mut assignment: Vec<u32> = (0..32).map(|v| v % 2).collect();
        let before = connectivity_cost(&hg, &assignment);
        let cap = ((hg.total_vertex_weight() as f64) * 1.05 / 2.0).ceil() as u64;
        hkway_greedy_refine(&hg, &mut assignment, 2, cap, 10, &Pool::new(1));
        let after = connectivity_cost(&hg, &assignment);
        assert!(after < before, "refinement failed: {before} -> {after}");
    }

    #[test]
    fn enforce_balance_moves_overflow() {
        let hg = two_hyper_clusters(16);
        let mut assignment = vec![0u32; 32];
        let cap = 20;
        henforce_balance(&hg, &mut assignment, 2, cap, &Pool::new(1));
        let w = hpart_weights(&hg, &assignment, 2);
        assert!(w[0] <= cap && w[1] <= cap, "still overweight: {w:?}");
    }
}
