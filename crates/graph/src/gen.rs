//! Synthetic graph generators for tests and benchmarks.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Path graph `0 - 1 - ... - (n-1)` with unit weights.
pub fn path(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge((i - 1) as NodeId, i as NodeId, 1);
    }
    b.build()
}

/// Cycle graph on `n >= 3` vertices.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i as NodeId, ((i + 1) % n) as NodeId, 1);
    }
    b.build()
}

/// `w x h` grid with 4-neighborhood and unit weights.
pub fn grid(w: usize, h: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(w * h);
    let id = |x: usize, y: usize| (y * w + x) as NodeId;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_edge(id(x, y), id(x + 1, y), 1);
            }
            if y + 1 < h {
                b.add_edge(id(x, y), id(x, y + 1), 1);
            }
        }
    }
    b.build()
}

/// Complete graph on `n` vertices with unit edge weights.
pub fn complete(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in i + 1..n {
            b.add_edge(i as NodeId, j as NodeId, 1);
        }
    }
    b.build()
}

/// Two `size`-cliques connected by a single edge of weight `bridge_w`.
/// The optimal bisection cuts exactly the bridge.
pub fn two_cliques(size: usize, bridge_w: u32) -> CsrGraph {
    let mut b = GraphBuilder::new(2 * size);
    for c in 0..2 {
        let base = c * size;
        for i in 0..size {
            for j in i + 1..size {
                b.add_edge((base + i) as NodeId, (base + j) as NodeId, 1);
            }
        }
    }
    b.add_edge(0, size as NodeId, bridge_w);
    b.build()
}

/// Planted-partition graph: `groups` clusters of `per_group` vertices;
/// `intra` random edges inside each cluster and `inter` random edges between
/// clusters, all unit weight. With `intra >> inter` the planted clustering
/// is the (near-)optimal k-way partition — the structure Schism exploits in
/// the Epinions experiment.
pub fn planted_partition(
    groups: usize,
    per_group: usize,
    intra: usize,
    inter: usize,
    seed: u64,
) -> CsrGraph {
    let n = groups * per_group;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for g in 0..groups {
        let base = g * per_group;
        for _ in 0..intra {
            let u = base + rng.gen_range(0..per_group);
            let v = base + rng.gen_range(0..per_group);
            b.add_edge(u as NodeId, v as NodeId, 1);
        }
    }
    for _ in 0..inter {
        let gu = rng.gen_range(0..groups);
        let gv = (gu + rng.gen_range(1..groups.max(2))) % groups;
        let u = gu * per_group + rng.gen_range(0..per_group);
        let v = gv * per_group + rng.gen_range(0..per_group);
        b.add_edge(u as NodeId, v as NodeId, 1);
    }
    b.build()
}

/// Erdős–Rényi-style random graph with `m` edge draws.
pub fn random_graph(n: usize, m: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_edge_capacity(n, m);
    for _ in 0..m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        b.add_edge(u as NodeId, v as NodeId, 1);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;

    #[test]
    fn generator_shapes() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(grid(3, 4).num_edges(), 3 * 4 * 2 - 3 - 4);
        assert_eq!(complete(6).num_edges(), 15);
        let tc = two_cliques(4, 7);
        assert_eq!(tc.num_edges(), 2 * 6 + 1);
        tc.validate().unwrap();
    }

    #[test]
    fn planted_partition_is_clustered() {
        let g = planted_partition(4, 50, 300, 10, 1);
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 200);
        // Heavily intra-connected: each cluster should be one component at
        // this density (300 draws over 50 vertices).
        let (count, _) = connected_components(&g);
        assert!(count <= 4, "clusters unexpectedly fragmented: {count}");
    }

    #[test]
    fn random_graph_is_valid() {
        let g = random_graph(100, 400, 3);
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 100);
    }
}
