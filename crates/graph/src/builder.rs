//! Incremental construction of [`CsrGraph`]s from unordered edge lists.
//!
//! Workload graphs are produced by streaming over a transaction trace, which
//! yields edges in arbitrary order with many duplicates (two tuples
//! co-accessed by many transactions). The builder buffers `(u, v, w)`
//! triples, then sorts and merges duplicates so that parallel edges end up as
//! a single edge whose weight is the sum — exactly the accumulation the
//! paper's edge weights require ("edge weights account for the number of
//! transactions that co-access a pair of tuples").

use crate::csr::{CsrGraph, NodeId};

/// Accumulates edges and vertex weights, then produces a [`CsrGraph`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    /// Canonicalized (min, max, w) triples, possibly with duplicates.
    edges: Vec<(NodeId, NodeId, u32)>,
    vwgt: Vec<u32>,
}

impl GraphBuilder {
    /// A builder for a graph with `n` vertices, all with unit weight.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "too many vertices for u32 ids");
        Self {
            n,
            edges: Vec::new(),
            vwgt: vec![1; n],
        }
    }

    /// Pre-allocates capacity for `m` edge insertions.
    pub fn with_edge_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Adds an undirected edge. Self loops are ignored (the partitioner
    /// derives nothing from them). Duplicate edges are merged at build time
    /// with their weights summed (saturating).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: u32) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge endpoint out of range"
        );
        if u == v || w == 0 {
            return;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b, w));
    }

    /// Sets the weight of vertex `v` (default is 1).
    pub fn set_vertex_weight(&mut self, v: NodeId, w: u32) {
        self.vwgt[v as usize] = w;
    }

    /// Adds `w` to the weight of vertex `v` (saturating).
    pub fn add_vertex_weight(&mut self, v: NodeId, w: u32) {
        let cur = &mut self.vwgt[v as usize];
        *cur = cur.saturating_add(w);
    }

    /// Number of buffered (pre-merge) edge insertions.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Eagerly merges buffered duplicate edges in place. Long streaming
    /// builds (Schism's transaction cliques repeat hot tuple pairs
    /// constantly) call this periodically to bound peak memory; `build`
    /// performs the same merge at the end regardless.
    pub fn compact(&mut self) {
        self.edges.sort_unstable_by_key(|&(a, b, _)| (a, b));
        self.edges.dedup_by(|cur, acc| {
            if acc.0 == cur.0 && acc.1 == cur.1 {
                acc.2 = acc.2.saturating_add(cur.2);
                true
            } else {
                false
            }
        });
    }

    /// Sorts, merges duplicates, and emits the CSR graph.
    pub fn build(mut self) -> CsrGraph {
        // Merge duplicates: sort by endpoints, then sum runs.
        self.edges.sort_unstable_by_key(|&(a, b, _)| (a, b));
        let mut merged: Vec<(NodeId, NodeId, u32)> = Vec::with_capacity(self.edges.len());
        for (a, b, w) in self.edges.drain(..) {
            match merged.last_mut() {
                Some(last) if last.0 == a && last.1 == b => last.2 = last.2.saturating_add(w),
                _ => merged.push((a, b, w)),
            }
        }

        // Counting pass for xadj.
        let n = self.n;
        let mut deg = vec![0u32; n];
        for &(a, b, _) in &merged {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        let mut xadj = Vec::with_capacity(n + 1);
        xadj.push(0u32);
        let mut acc = 0u32;
        for &d in &deg {
            acc = acc
                .checked_add(d)
                .expect("edge count overflows u32 adjacency index");
            xadj.push(acc);
        }

        // Scatter pass.
        let m2 = acc as usize;
        let mut adjncy = vec![0 as NodeId; m2];
        let mut adjwgt = vec![0u32; m2];
        let mut cursor: Vec<u32> = xadj[..n].to_vec();
        for &(a, b, w) in &merged {
            let ca = cursor[a as usize] as usize;
            adjncy[ca] = b;
            adjwgt[ca] = w;
            cursor[a as usize] += 1;
            let cb = cursor[b as usize] as usize;
            adjncy[cb] = a;
            adjwgt[cb] = w;
            cursor[b as usize] += 1;
        }

        CsrGraph::from_parts(xadj, adjncy, adjwgt, self.vwgt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_duplicate_edges() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 0, 2); // reversed orientation merges too
        b.add_edge(0, 1, 3);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edges(0).next(), Some((1, 6)));
        g.validate().unwrap();
    }

    #[test]
    fn ignores_self_loops_and_zero_weight() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(1, 1, 10);
        b.add_edge(0, 2, 0);
        let g = b.build();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn vertex_weights_roundtrip() {
        let mut b = GraphBuilder::new(3);
        b.set_vertex_weight(0, 7);
        b.add_vertex_weight(0, 3);
        b.add_vertex_weight(2, 4);
        let g = b.build();
        assert_eq!(g.vertex_weight(0), 10);
        assert_eq!(g.vertex_weight(1), 1);
        assert_eq!(g.vertex_weight(2), 5);
        assert_eq!(g.total_vertex_weight(), 16);
    }

    #[test]
    fn saturating_edge_merge() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, u32::MAX);
        b.add_edge(0, 1, 100);
        let g = b.build();
        assert_eq!(g.edges(0).next(), Some((1, u32::MAX)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5, 1);
    }
}
