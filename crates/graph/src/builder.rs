//! Incremental construction of [`CsrGraph`]s from unordered edge lists.
//!
//! Workload graphs are produced by streaming over a transaction trace, which
//! yields edges in arbitrary order with many duplicates (two tuples
//! co-accessed by many transactions). The builder buffers `(u, v, w)`
//! triples, then sorts and merges duplicates so that parallel edges end up as
//! a single edge whose weight is the sum — exactly the accumulation the
//! paper's edge weights require ("edge weights account for the number of
//! transactions that co-access a pair of tuples").
//!
//! Sharded builds (the parallel graph builder in `schism-core`) accumulate
//! edges per chunk in standalone [`EdgeBuffer`]s, then stitch them into one
//! [`GraphBuilder`] in chunk order via [`GraphBuilder::append_edges`]. The
//! final sort-and-merge is insensitive to buffer concatenation order
//! (duplicate weights are summed, and saturating u32 sums are
//! order-independent), which is what makes the sharded build bit-identical
//! to a sequential one.

use crate::csr::{CsrGraph, NodeId};

/// Accumulates edges and vertex weights, then produces a [`CsrGraph`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    /// Canonicalized (min, max, w) triples, possibly with duplicates.
    edges: Vec<(NodeId, NodeId, u32)>,
    vwgt: Vec<u32>,
}

impl GraphBuilder {
    /// A builder for a graph with `n` vertices, all with unit weight.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "too many vertices for u32 ids");
        Self {
            n,
            edges: Vec::new(),
            vwgt: vec![1; n],
        }
    }

    /// Pre-allocates capacity for `m` edge insertions.
    pub fn with_edge_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Adds an undirected edge. Self loops are ignored (the partitioner
    /// derives nothing from them). Duplicate edges are merged at build time
    /// with their weights summed (saturating).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: u32) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge endpoint out of range"
        );
        if u == v || w == 0 {
            return;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b, w));
    }

    /// Sets the weight of vertex `v` (default is 1).
    pub fn set_vertex_weight(&mut self, v: NodeId, w: u32) {
        self.vwgt[v as usize] = w;
    }

    /// Adds `w` to the weight of vertex `v` (saturating).
    pub fn add_vertex_weight(&mut self, v: NodeId, w: u32) {
        let cur = &mut self.vwgt[v as usize];
        *cur = cur.saturating_add(w);
    }

    /// Number of buffered (pre-merge) edge insertions.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Eagerly merges buffered duplicate edges in place. Long streaming
    /// builds (Schism's transaction cliques repeat hot tuple pairs
    /// constantly) call this periodically to bound peak memory; `build`
    /// performs the same merge at the end regardless.
    pub fn compact(&mut self) {
        compact_triples(&mut self.edges);
    }

    /// Appends a batch of undirected edges — the stitch half of a sharded
    /// build. Each edge goes through the same canonicalization as
    /// [`GraphBuilder::add_edge`] (self loops and zero weights dropped,
    /// endpoints ordered), so a sequence of `append_edges` calls followed by
    /// [`GraphBuilder::build`] yields exactly the graph the equivalent
    /// `add_edge` stream would.
    pub fn append_edges(&mut self, edges: impl IntoIterator<Item = (NodeId, NodeId, u32)>) {
        for (u, v, w) in edges {
            self.add_edge(u, v, w);
        }
    }

    /// Sorts, merges duplicates, and emits the CSR graph.
    pub fn build(mut self) -> CsrGraph {
        // Merge duplicates: sort by endpoints, then sum runs.
        self.edges.sort_unstable_by_key(|&(a, b, _)| (a, b));
        let mut merged: Vec<(NodeId, NodeId, u32)> = Vec::with_capacity(self.edges.len());
        for (a, b, w) in self.edges.drain(..) {
            match merged.last_mut() {
                Some(last) if last.0 == a && last.1 == b => last.2 = last.2.saturating_add(w),
                _ => merged.push((a, b, w)),
            }
        }

        // Counting pass for xadj.
        let n = self.n;
        let mut deg = vec![0u32; n];
        for &(a, b, _) in &merged {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        let mut xadj = Vec::with_capacity(n + 1);
        xadj.push(0u32);
        let mut acc = 0u32;
        for &d in &deg {
            acc = acc
                .checked_add(d)
                .expect("edge count overflows u32 adjacency index");
            xadj.push(acc);
        }

        // Scatter pass.
        let m2 = acc as usize;
        let mut adjncy = vec![0 as NodeId; m2];
        let mut adjwgt = vec![0u32; m2];
        let mut cursor: Vec<u32> = xadj[..n].to_vec();
        for &(a, b, w) in &merged {
            let ca = cursor[a as usize] as usize;
            adjncy[ca] = b;
            adjwgt[ca] = w;
            cursor[a as usize] += 1;
            let cb = cursor[b as usize] as usize;
            adjncy[cb] = a;
            adjwgt[cb] = w;
            cursor[b as usize] += 1;
        }

        CsrGraph::from_parts(xadj, adjncy, adjwgt, self.vwgt)
    }
}

/// Sorts `(u, v, w)` triples by endpoint pair and merges duplicate pairs by
/// (saturating) weight sum.
fn compact_triples(edges: &mut Vec<(NodeId, NodeId, u32)>) {
    edges.sort_unstable_by_key(|&(a, b, _)| (a, b));
    edges.dedup_by(|cur, acc| {
        if acc.0 == cur.0 && acc.1 == cur.1 {
            acc.2 = acc.2.saturating_add(cur.2);
            true
        } else {
            false
        }
    });
}

/// A standalone edge-accumulation buffer for the chunk half of a sharded
/// graph build.
///
/// Worker chunks push edges here (canonicalized, self loops and zero
/// weights dropped — the same normalization as [`GraphBuilder::add_edge`]),
/// periodically [`EdgeBuffer::compact`]ing to bound memory, and the
/// stitching pass drains the buffers into a [`GraphBuilder`] in chunk
/// order. Unlike the builder there is **no vertex-range check**: chunk
/// buffers may hold caller-encoded ids (e.g. chunk-local replica indices)
/// that are remapped to real node ids during the stitch.
#[derive(Clone, Debug, Default)]
pub struct EdgeBuffer {
    edges: Vec<(NodeId, NodeId, u32)>,
}

impl EdgeBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes an undirected edge; self loops and zero weights are dropped,
    /// endpoints are stored `(min, max)`.
    pub fn push(&mut self, u: NodeId, v: NodeId, w: u32) {
        if u == v || w == 0 {
            return;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b, w));
    }

    /// Number of buffered (pre-merge) insertions.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Merges duplicate endpoint pairs in place (weights summed,
    /// saturating). Safe to call at any time: compaction never changes the
    /// graph the buffered edges describe.
    pub fn compact(&mut self) {
        compact_triples(&mut self.edges);
    }

    /// Consumes the buffer, returning the canonicalized triples.
    pub fn into_edges(self) -> Vec<(NodeId, NodeId, u32)> {
        self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_duplicate_edges() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 0, 2); // reversed orientation merges too
        b.add_edge(0, 1, 3);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edges(0).next(), Some((1, 6)));
        g.validate().unwrap();
    }

    #[test]
    fn ignores_self_loops_and_zero_weight() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(1, 1, 10);
        b.add_edge(0, 2, 0);
        let g = b.build();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn vertex_weights_roundtrip() {
        let mut b = GraphBuilder::new(3);
        b.set_vertex_weight(0, 7);
        b.add_vertex_weight(0, 3);
        b.add_vertex_weight(2, 4);
        let g = b.build();
        assert_eq!(g.vertex_weight(0), 10);
        assert_eq!(g.vertex_weight(1), 1);
        assert_eq!(g.vertex_weight(2), 5);
        assert_eq!(g.total_vertex_weight(), 16);
    }

    #[test]
    fn saturating_edge_merge() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, u32::MAX);
        b.add_edge(0, 1, 100);
        let g = b.build();
        assert_eq!(g.edges(0).next(), Some((1, u32::MAX)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5, 1);
    }

    #[test]
    fn edge_buffer_normalizes_like_the_builder() {
        let mut buf = EdgeBuffer::new();
        buf.push(1, 0, 2);
        buf.push(0, 1, 3);
        buf.push(2, 2, 9); // self loop dropped
        buf.push(0, 2, 0); // zero weight dropped
        assert_eq!(buf.len(), 2);
        buf.compact();
        assert_eq!(buf.len(), 1);
        let edges = buf.into_edges();
        assert_eq!(edges, vec![(0, 1, 5)]);
    }

    #[test]
    fn append_edges_matches_add_edge_stream() {
        let build = |chunked: bool| {
            let mut b = GraphBuilder::new(4);
            let edges = [(0u32, 1u32, 2u32), (1, 0, 1), (2, 3, 4), (1, 2, 1)];
            if chunked {
                let mut first = EdgeBuffer::new();
                let mut second = EdgeBuffer::new();
                for &(u, v, w) in &edges[..2] {
                    first.push(u, v, w);
                }
                for &(u, v, w) in &edges[2..] {
                    second.push(u, v, w);
                }
                first.compact();
                b.append_edges(first.into_edges());
                b.append_edges(second.into_edges());
            } else {
                for (u, v, w) in edges {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        };
        let a = build(false);
        let b = build(true);
        assert_eq!(a, b, "sharded build must equal the sequential one");
    }
}
