//! # schism
//!
//! Umbrella crate for the Schism reproduction (Curino, Jones, Zhang,
//! Madden: *Schism: a Workload-Driven Approach to Database Replication and
//! Partitioning*, VLDB 2010): re-exports the whole workspace behind one
//! dependency and hosts the runnable examples and cross-crate integration
//! tests.
//!
//! ```
//! use schism::core::{Schism, SchismConfig};
//! use schism::workload::ycsb::{self, YcsbConfig};
//!
//! let w = ycsb::generate(&YcsbConfig { records: 500, num_txns: 500, ..YcsbConfig::workload_a() });
//! let rec = Schism::new(SchismConfig::new(2)).run(&w);
//! assert_eq!(rec.chosen(), "hashing");
//! ```

pub use schism_core as core;
pub use schism_graph as graph;
pub use schism_migrate as migrate;
pub use schism_ml as ml;
pub use schism_par as par;
pub use schism_router as router;
pub use schism_serve as serve;
pub use schism_sim as sim;
pub use schism_sql as sql;
pub use schism_store as store;
pub use schism_workload as workload;

pub use schism_core::{Recommendation, Schism, SchismConfig};
