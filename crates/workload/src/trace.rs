//! Workload traces: schema + transactions + tuple-value access, with
//! train/test splitting and chunked streaming via [`TraceSource`].

use crate::tuple::{TupleId, TupleValues};
use crate::txn::Transaction;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use schism_sql::{AttributeStats, Schema, TableId};
use std::ops::Range;
use std::sync::Arc;

/// A source of transactions consumed in contiguous index chunks, so large
/// traces never have to be materialized as one `Vec<Transaction>`.
///
/// This is the ingestion abstraction of the streaming graph builder: pass 1
/// and pass 2 each walk the source in transaction chunks (possibly from
/// several worker threads at once, hence the `Sync` bound), and generators
/// can produce each chunk on demand instead of holding the whole trace in
/// memory.
///
/// # Contract
///
/// A source is an immutable, indexable sequence of [`Transaction`]s:
///
/// - [`TraceSource::for_chunk`] must visit exactly the transactions with
///   global indices in `range`, in ascending order, and the transaction
///   yielded for index `i` must be identical on every call — regardless of
///   how the full range `0..len()` is cut into chunks and regardless of
///   which thread asks. Chunked and whole-trace ingestion are therefore
///   indistinguishable to a consumer, which is what lets the graph builder
///   promise bit-identical output for both.
/// - `len()` is the fixed number of transactions; out-of-range chunks are a
///   caller bug (implementations may panic).
///
/// The in-memory [`Trace`] implements it by slicing; the drifting, YCSB and
/// TPC-C generators implement it by regenerating transactions per index
/// (see `drifting::stream`, `ycsb::stream`, `tpcc::stream`).
pub trait TraceSource: Sync {
    /// Total number of transactions in the source.
    fn len(&self) -> usize;

    /// Whether the source has no transactions.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits the transactions with indices in `range`, in ascending index
    /// order, passing each transaction's global index alongside it.
    fn for_chunk(&self, range: Range<usize>, visit: &mut dyn FnMut(usize, &Transaction));

    /// Materializes the whole source into an in-memory [`Trace`] (the
    /// whole-trace path; tests use it to pin chunked == whole).
    fn materialize(&self) -> Trace {
        let mut transactions = Vec::with_capacity(self.len());
        self.for_chunk(0..self.len(), &mut |_, t| transactions.push(t.clone()));
        Trace { transactions }
    }
}

/// splitmix64 of `seed ^ f(idx)`: one independent RNG seed per transaction
/// index. Shared by the streaming generator paths (`drifting::stream`,
/// `ycsb::stream`) so any chunk regenerates its transactions in isolation.
pub(crate) fn txn_stream_seed(seed: u64, idx: usize) -> u64 {
    let mut x = seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl TraceSource for Trace {
    fn len(&self) -> usize {
        self.transactions.len()
    }

    fn for_chunk(&self, range: Range<usize>, visit: &mut dyn FnMut(usize, &Transaction)) {
        let start = range.start;
        for (i, t) in self.transactions[range].iter().enumerate() {
            visit(start + i, t);
        }
    }

    fn materialize(&self) -> Trace {
        self.clone()
    }
}

/// A transaction trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    pub transactions: Vec<Transaction>,
}

impl Trace {
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Randomized split into `(train, test)` with `train_frac` of the
    /// transactions in the training trace. Deterministic per seed; relative
    /// order is preserved within each half.
    pub fn split(&self, train_frac: f64, seed: u64) -> (Trace, Trace) {
        assert!((0.0..=1.0).contains(&train_frac), "fraction out of range");
        let n = self.transactions.len();
        let n_train = ((n as f64) * train_frac).round() as usize;
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let mut train_mask = vec![false; n];
        for &i in &idx[..n_train.min(n)] {
            train_mask[i] = true;
        }
        let mut train = Vec::with_capacity(n_train);
        let mut test = Vec::with_capacity(n - n_train);
        for (i, t) in self.transactions.iter().enumerate() {
            if train_mask[i] {
                train.push(t.clone());
            } else {
                test.push(t.clone());
            }
        }
        (
            Trace {
                transactions: train,
            },
            Trace { transactions: test },
        )
    }

    /// Distinct tuples accessed anywhere in the trace.
    pub fn distinct_tuples(&self) -> Vec<TupleId> {
        let mut all: Vec<TupleId> = self
            .transactions
            .iter()
            .flat_map(|t| t.accessed())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }
}

/// A complete workload: schema, trace, tuple-value oracle, table sizes, and
/// WHERE-clause statistics — everything the Schism pipeline consumes.
#[derive(Clone)]
pub struct Workload {
    /// Human-readable name (e.g. `"tpcc-2w"`).
    pub name: String,
    pub schema: Arc<Schema>,
    pub trace: Trace,
    /// Attribute-value oracle for the tuples in the trace.
    pub db: Arc<dyn TupleValues>,
    /// Row count per table (dense row-id space), indexed by `TableId`.
    pub table_rows: Vec<u64>,
    /// WHERE-clause usage statistics, accumulated during generation so that
    /// traces do not need to retain statements.
    pub attr_stats: AttributeStats,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("tables", &self.schema.num_tables())
            .field("transactions", &self.trace.len())
            .field("table_rows", &self.table_rows)
            .finish()
    }
}

impl Workload {
    /// Total tuples across all tables.
    pub fn total_tuples(&self) -> u64 {
        self.table_rows.iter().sum()
    }

    /// Rows in one table.
    pub fn rows(&self, table: TableId) -> u64 {
        self.table_rows[table as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::TxnBuilder;

    fn txn(rows: &[u64]) -> Transaction {
        let mut b = TxnBuilder::new(false);
        for &r in rows {
            b.read(TupleId::new(0, r));
        }
        b.finish()
    }

    #[test]
    fn split_is_exhaustive_and_deterministic() {
        let trace = Trace {
            transactions: (0..100).map(|i| txn(&[i])).collect(),
        };
        let (tr1, te1) = trace.split(0.8, 42);
        let (tr2, te2) = trace.split(0.8, 42);
        assert_eq!(tr1.len(), 80);
        assert_eq!(te1.len(), 20);
        assert_eq!(tr1.len() + te1.len(), trace.len());
        // Determinism.
        let ids =
            |t: &Trace| -> Vec<u64> { t.transactions.iter().map(|x| x.reads[0].row).collect() };
        assert_eq!(ids(&tr1), ids(&tr2));
        assert_eq!(ids(&te1), ids(&te2));
        // Disjoint cover.
        let mut all = ids(&tr1);
        all.extend(ids(&te1));
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_edges() {
        let trace = Trace {
            transactions: (0..10).map(|i| txn(&[i])).collect(),
        };
        let (tr, te) = trace.split(1.0, 0);
        assert_eq!((tr.len(), te.len()), (10, 0));
        let (tr, te) = trace.split(0.0, 0);
        assert_eq!((tr.len(), te.len()), (0, 10));
    }

    #[test]
    fn distinct_tuples_dedup_across_txns() {
        let trace = Trace {
            transactions: vec![txn(&[1, 2]), txn(&[2, 3])],
        };
        let d = trace.distinct_tuples();
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn trace_source_chunks_cover_in_order() {
        let trace = Trace {
            transactions: (0..10).map(|i| txn(&[i])).collect(),
        };
        // Any chunking yields the same (index, row) sequence as the whole.
        let collect = |chunks: Vec<Range<usize>>| -> Vec<(usize, u64)> {
            let mut out = Vec::new();
            for c in chunks {
                trace.for_chunk(c, &mut |i, t| out.push((i, t.reads[0].row)));
            }
            out
        };
        let mut whole = Vec::new();
        trace.for_chunk(0..10, &mut |i, t| whole.push((i, t.reads[0].row)));
        assert_eq!(whole, (0..10).map(|i| (i as usize, i)).collect::<Vec<_>>());
        assert_eq!(collect(vec![0..3, 3..7, 7..10]), whole);
        assert_eq!(TraceSource::len(&trace), 10);
        assert!(!TraceSource::is_empty(&trace));
    }

    #[test]
    fn trace_source_materialize_roundtrips() {
        let trace = Trace {
            transactions: (0..5).map(|i| txn(&[i, i + 1])).collect(),
        };
        let m = trace.materialize();
        assert_eq!(m.len(), trace.len());
        for (a, b) in m.transactions.iter().zip(&trace.transactions) {
            assert_eq!(a.reads, b.reads);
        }
    }
}
