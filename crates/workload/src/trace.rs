//! Workload traces: schema + transactions + tuple-value access, with
//! train/test splitting.

use crate::tuple::{TupleId, TupleValues};
use crate::txn::Transaction;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use schism_sql::{AttributeStats, Schema, TableId};
use std::sync::Arc;

/// A transaction trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    pub transactions: Vec<Transaction>,
}

impl Trace {
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Randomized split into `(train, test)` with `train_frac` of the
    /// transactions in the training trace. Deterministic per seed; relative
    /// order is preserved within each half.
    pub fn split(&self, train_frac: f64, seed: u64) -> (Trace, Trace) {
        assert!((0.0..=1.0).contains(&train_frac), "fraction out of range");
        let n = self.transactions.len();
        let n_train = ((n as f64) * train_frac).round() as usize;
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let mut train_mask = vec![false; n];
        for &i in &idx[..n_train.min(n)] {
            train_mask[i] = true;
        }
        let mut train = Vec::with_capacity(n_train);
        let mut test = Vec::with_capacity(n - n_train);
        for (i, t) in self.transactions.iter().enumerate() {
            if train_mask[i] {
                train.push(t.clone());
            } else {
                test.push(t.clone());
            }
        }
        (
            Trace {
                transactions: train,
            },
            Trace { transactions: test },
        )
    }

    /// Distinct tuples accessed anywhere in the trace.
    pub fn distinct_tuples(&self) -> Vec<TupleId> {
        let mut all: Vec<TupleId> = self
            .transactions
            .iter()
            .flat_map(|t| t.accessed())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }
}

/// A complete workload: schema, trace, tuple-value oracle, table sizes, and
/// WHERE-clause statistics — everything the Schism pipeline consumes.
#[derive(Clone)]
pub struct Workload {
    /// Human-readable name (e.g. `"tpcc-2w"`).
    pub name: String,
    pub schema: Arc<Schema>,
    pub trace: Trace,
    /// Attribute-value oracle for the tuples in the trace.
    pub db: Arc<dyn TupleValues>,
    /// Row count per table (dense row-id space), indexed by `TableId`.
    pub table_rows: Vec<u64>,
    /// WHERE-clause usage statistics, accumulated during generation so that
    /// traces do not need to retain statements.
    pub attr_stats: AttributeStats,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("tables", &self.schema.num_tables())
            .field("transactions", &self.trace.len())
            .field("table_rows", &self.table_rows)
            .finish()
    }
}

impl Workload {
    /// Total tuples across all tables.
    pub fn total_tuples(&self) -> u64 {
        self.table_rows.iter().sum()
    }

    /// Rows in one table.
    pub fn rows(&self, table: TableId) -> u64 {
        self.table_rows[table as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::TxnBuilder;

    fn txn(rows: &[u64]) -> Transaction {
        let mut b = TxnBuilder::new(false);
        for &r in rows {
            b.read(TupleId::new(0, r));
        }
        b.finish()
    }

    #[test]
    fn split_is_exhaustive_and_deterministic() {
        let trace = Trace {
            transactions: (0..100).map(|i| txn(&[i])).collect(),
        };
        let (tr1, te1) = trace.split(0.8, 42);
        let (tr2, te2) = trace.split(0.8, 42);
        assert_eq!(tr1.len(), 80);
        assert_eq!(te1.len(), 20);
        assert_eq!(tr1.len() + te1.len(), trace.len());
        // Determinism.
        let ids =
            |t: &Trace| -> Vec<u64> { t.transactions.iter().map(|x| x.reads[0].row).collect() };
        assert_eq!(ids(&tr1), ids(&tr2));
        assert_eq!(ids(&te1), ids(&te2));
        // Disjoint cover.
        let mut all = ids(&tr1);
        all.extend(ids(&te1));
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_edges() {
        let trace = Trace {
            transactions: (0..10).map(|i| txn(&[i])).collect(),
        };
        let (tr, te) = trace.split(1.0, 0);
        assert_eq!((tr.len(), te.len()), (10, 0));
        let (tr, te) = trace.split(0.0, 0);
        assert_eq!((tr.len(), te.len()), (0, 10));
    }

    #[test]
    fn distinct_tuples_dedup_across_txns() {
        let trace = Trace {
            transactions: vec![txn(&[1, 2]), txn(&[2, 3])],
        };
        let d = trace.distinct_tuples();
        assert_eq!(d.len(), 3);
    }
}
