//! TPC-C order-processing workload (§6.1, Appendix D.2).
//!
//! 9 tables, 5 transaction types with the standard mix (new-order 45%,
//! payment 43%, order-status 4%, delivery 4%, stock-level 4%), and the two
//! sources of multi-warehouse transactions the paper leans on: ~1% of
//! new-order lines are supplied by a remote warehouse and 15% of payments
//! are for a remote customer — together ≈10.7% of transactions touch more
//! than one warehouse, which lower-bounds any warehouse-partitioned scheme.
//!
//! Row ids are dense functions of the TPC-C keys, so tuple attribute values
//! are *derived* rather than stored ([`TpccDb`]), and 25M-tuple databases
//! (TPC-C 50W) cost no memory. Order contents (line count, items, remote
//! flags, owning customer) are deterministic hashes of the order row id so
//! the generator and the value oracle always agree.
//!
//! Deliberate simplifications (documented in DESIGN.md): customer selection
//! is by id (no last-name index), the history table keeps one row per
//! customer, and the 1% "bad item" rollback of new-order is omitted.

use crate::trace::{Trace, TraceSource, Workload};
use crate::tuple::{TupleId, TupleValues};
use crate::txn::{Transaction, TxnBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use schism_sql::{AttributeStats, ColumnType, Predicate, Schema, Statement, Value};
use std::ops::Range;
use std::sync::Arc;

/// Table ids, in [`schema`] order.
pub const T_WAREHOUSE: u16 = 0;
pub const T_DISTRICT: u16 = 1;
pub const T_CUSTOMER: u16 = 2;
pub const T_HISTORY: u16 = 3;
pub const T_NEW_ORDER: u16 = 4;
pub const T_ORDERS: u16 = 5;
pub const T_ORDER_LINE: u16 = 6;
pub const T_ITEM: u16 = 7;
pub const T_STOCK: u16 = 8;

/// Maximum order lines per order (TPC-C: 5–15).
pub const MAX_LINES: u64 = 15;

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct TpccConfig {
    pub warehouses: u32,
    pub districts_per_warehouse: u64,
    pub customers_per_district: u64,
    pub items: u64,
    pub init_orders_per_district: u64,
    pub num_txns: usize,
    pub seed: u64,
    pub keep_statements: bool,
}

impl TpccConfig {
    /// Full TPC-C scale for `w` warehouses (10 districts, 3000 customers
    /// per district, 100k items, 3000 initial orders per district).
    pub fn full(w: u32) -> Self {
        Self {
            warehouses: w,
            districts_per_warehouse: 10,
            customers_per_district: 3_000,
            items: 100_000,
            init_orders_per_district: 3_000,
            num_txns: 100_000,
            seed: 0,
            keep_statements: false,
        }
    }

    /// Reduced scale for fast tests.
    pub fn small(w: u32) -> Self {
        Self {
            warehouses: w,
            districts_per_warehouse: 4,
            customers_per_district: 30,
            items: 200,
            init_orders_per_district: 30,
            num_txns: 2_000,
            seed: 0,
            keep_statements: false,
        }
    }

    fn districts(&self) -> u64 {
        self.warehouses as u64 * self.districts_per_warehouse
    }

    /// Row-id capacity per district in the orders table: initial orders plus
    /// headroom for new orders (4x the uniform expectation, which no
    /// district exceeds in practice).
    fn order_capacity(&self) -> u64 {
        let expected_new = (self.num_txns as u64) / self.districts().max(1);
        self.init_orders_per_district + 4 * expected_new + 64
    }
}

/// splitmix64-style deterministic mixing for order contents.
fn mix(a: u64, b: u64) -> u64 {
    let mut h = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Derivable order facts shared by the generator and [`TpccDb`].
#[derive(Clone, Copy, Debug)]
pub struct OrderFacts {
    /// Number of order lines (5..=15).
    pub lines: u64,
    /// 0-based customer index within the district.
    pub customer: u64,
}

impl TpccConfig {
    /// Facts derived from an orders-table row id.
    pub fn order_facts(&self, order_row: u64) -> OrderFacts {
        OrderFacts {
            lines: 5 + mix(order_row, 0xA) % (MAX_LINES - 5 + 1),
            customer: mix(order_row, 0xC) % self.customers_per_district,
        }
    }

    /// 0-based item of order line `ol` of `order_row`.
    pub fn line_item(&self, order_row: u64, ol: u64) -> u64 {
        mix(order_row, 0x1000 + ol) % self.items
    }

    /// Whether line `ol` is supplied by a remote warehouse (1% per line, as
    /// in the TPC-C spec), and which warehouse (0-based) supplies it.
    pub fn line_supply(&self, order_row: u64, ol: u64, home_w: u64) -> u64 {
        let w = self.warehouses as u64;
        if w <= 1 || !mix(order_row, 0x2000 + ol).is_multiple_of(100) {
            return home_w;
        }
        (home_w + 1 + mix(order_row, 0x3000 + ol) % (w - 1)) % w
    }
}

/// Formula-backed attribute oracle: inverts the dense row-id layout.
pub struct TpccDb {
    cfg: TpccConfig,
}

impl TupleValues for TpccDb {
    fn value(&self, t: TupleId, col: schism_sql::ColId) -> Option<i64> {
        let c = &self.cfg;
        let dpw = c.districts_per_warehouse;
        let cpd = c.customers_per_district;
        let ocap = c.order_capacity();
        let r = t.row;
        let v: i64 = match (t.table, col) {
            (T_WAREHOUSE, 0) => r as i64 + 1,
            (T_DISTRICT, 0) => (r / dpw) as i64 + 1,
            (T_DISTRICT, 1) => (r % dpw) as i64 + 1,
            (T_CUSTOMER, 0) | (T_HISTORY, 0) => (r / (dpw * cpd)) as i64 + 1,
            (T_CUSTOMER, 1) | (T_HISTORY, 1) => ((r / cpd) % dpw) as i64 + 1,
            (T_CUSTOMER, 2) | (T_HISTORY, 2) => (r % cpd) as i64 + 1,
            (T_NEW_ORDER, 0) | (T_ORDERS, 0) => (r / (dpw * ocap)) as i64 + 1,
            (T_NEW_ORDER, 1) | (T_ORDERS, 1) => ((r / ocap) % dpw) as i64 + 1,
            (T_NEW_ORDER, 2) | (T_ORDERS, 2) => (r % ocap) as i64 + 1,
            (T_ORDERS, 3) => c.order_facts(r).customer as i64 + 1,
            (T_ORDER_LINE, 0) => ((r / MAX_LINES) / (dpw * ocap)) as i64 + 1,
            (T_ORDER_LINE, 1) => (((r / MAX_LINES) / ocap) % dpw) as i64 + 1,
            (T_ORDER_LINE, 2) => ((r / MAX_LINES) % ocap) as i64 + 1,
            (T_ORDER_LINE, 3) => (r % MAX_LINES) as i64 + 1,
            (T_ORDER_LINE, 4) => c.line_item(r / MAX_LINES, r % MAX_LINES) as i64 + 1,
            (T_ITEM, 0) => r as i64 + 1,
            (T_STOCK, 0) => (r / c.items) as i64 + 1,
            (T_STOCK, 1) => (r % c.items) as i64 + 1,
            _ => return None,
        };
        Some(v)
    }

    fn tuple_bytes(&self, table: schism_sql::TableId) -> u32 {
        match table {
            T_WAREHOUSE => 96,
            T_DISTRICT => 112,
            T_CUSTOMER => 680,
            T_HISTORY => 52,
            T_NEW_ORDER => 12,
            T_ORDERS => 36,
            T_ORDER_LINE => 56,
            T_ITEM => 88,
            T_STOCK => 320,
            _ => 64,
        }
    }
}

/// The 9-table TPC-C schema (key columns; payload columns elided).
pub fn schema() -> Schema {
    use ColumnType::Int;
    let mut s = Schema::new();
    s.add_table("warehouse", &[("w_id", Int), ("w_ytd", Int)], &["w_id"]);
    s.add_table(
        "district",
        &[
            ("d_w_id", Int),
            ("d_id", Int),
            ("d_next_o_id", Int),
            ("d_ytd", Int),
        ],
        &["d_w_id", "d_id"],
    );
    s.add_table(
        "customer",
        &[
            ("c_w_id", Int),
            ("c_d_id", Int),
            ("c_id", Int),
            ("c_balance", Int),
        ],
        &["c_w_id", "c_d_id", "c_id"],
    );
    s.add_table(
        "history",
        &[
            ("h_w_id", Int),
            ("h_d_id", Int),
            ("h_c_id", Int),
            ("h_amount", Int),
        ],
        &["h_w_id", "h_d_id", "h_c_id"],
    );
    s.add_table(
        "new_order",
        &[("no_w_id", Int), ("no_d_id", Int), ("no_o_id", Int)],
        &["no_w_id", "no_d_id", "no_o_id"],
    );
    s.add_table(
        "orders",
        &[
            ("o_w_id", Int),
            ("o_d_id", Int),
            ("o_id", Int),
            ("o_c_id", Int),
        ],
        &["o_w_id", "o_d_id", "o_id"],
    );
    s.add_table(
        "order_line",
        &[
            ("ol_w_id", Int),
            ("ol_d_id", Int),
            ("ol_o_id", Int),
            ("ol_number", Int),
            ("ol_i_id", Int),
        ],
        &["ol_w_id", "ol_d_id", "ol_o_id", "ol_number"],
    );
    s.add_table("item", &[("i_id", Int), ("i_price", Int)], &["i_id"]);
    s.add_table(
        "stock",
        &[("s_w_id", Int), ("s_i_id", Int), ("s_quantity", Int)],
        &["s_w_id", "s_i_id"],
    );
    s
}

/// A compact, replayable description of one transaction: everything the
/// random draws and per-district counters decided, with the actual tuple
/// sets left to be derived on demand.
///
/// Scripts are what makes the TPC-C generator streamable: the sequential
/// state (RNG stream, `next_o` / `deliver_cursor` counters) is consumed
/// once up front into a few words per transaction, and the heavyweight
/// read/write/scan sets (a new-order materializes ~35 tuple ids; a
/// stock-level scan several hundred) are reconstructed per chunk by pure
/// functions of `(config, script)`.
#[derive(Clone, Debug)]
enum Script {
    NewOrder {
        w: u64,
        d: u64,
        o: u64,
    },
    Payment {
        w: u64,
        d: u64,
        cw: u64,
        cd: u64,
        cu: u64,
    },
    OrderStatus {
        w: u64,
        d: u64,
        cu: u64,
        o: u64,
    },
    /// `(district, order)` pairs actually delivered (districts with no
    /// undelivered order are skipped at script time).
    Delivery {
        w: u64,
        orders: Vec<(u64, u64)>,
    },
    StockLevel {
        w: u64,
        d: u64,
        hi: u64,
    },
}

/// Draws-only pass: consumes the RNG and the per-district counters exactly
/// like the original monolithic generator did, emitting one [`Script`] per
/// transaction.
struct ScriptGen<'a> {
    cfg: &'a TpccConfig,
    rng: StdRng,
    /// Next order index (0-based) per district.
    next_o: Vec<u64>,
    /// Next order to deliver per district.
    deliver_cursor: Vec<u64>,
    ocap: u64,
}

impl<'a> ScriptGen<'a> {
    fn new(cfg: &'a TpccConfig) -> Self {
        Self {
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            next_o: vec![cfg.init_orders_per_district; cfg.districts() as usize],
            deliver_cursor: vec![0; cfg.districts() as usize],
            ocap: cfg.order_capacity(),
        }
    }

    fn district_row(&self, w: u64, d: u64) -> u64 {
        w * self.cfg.districts_per_warehouse + d
    }

    fn next(&mut self) -> Script {
        let cfg = self.cfg;
        let roll = self.rng.gen_range(0..100u32);
        match roll {
            0..=44 => {
                let w = self.rng.gen_range(0..cfg.warehouses as u64);
                let d = self.rng.gen_range(0..cfg.districts_per_warehouse);
                let dr = self.district_row(w, d) as usize;
                let o = self.next_o[dr].min(self.ocap - 1);
                self.next_o[dr] = (o + 1).min(self.ocap - 1);
                Script::NewOrder { w, d, o }
            }
            45..=87 => {
                let w = self.rng.gen_range(0..cfg.warehouses as u64);
                let d = self.rng.gen_range(0..cfg.districts_per_warehouse);
                // 15% remote customer (the TPC-C spec's multi-warehouse
                // payment).
                let (cw, cd) = if cfg.warehouses > 1 && self.rng.gen_bool(0.15) {
                    let other = (w + 1 + self.rng.gen_range(0..cfg.warehouses as u64 - 1))
                        % cfg.warehouses as u64;
                    (other, self.rng.gen_range(0..cfg.districts_per_warehouse))
                } else {
                    (w, d)
                };
                let cu = self.rng.gen_range(0..cfg.customers_per_district);
                Script::Payment { w, d, cw, cd, cu }
            }
            88..=91 => {
                let w = self.rng.gen_range(0..cfg.warehouses as u64);
                let d = self.rng.gen_range(0..cfg.districts_per_warehouse);
                let dr = self.district_row(w, d) as usize;
                let cu = self.rng.gen_range(0..cfg.customers_per_district);
                let o = self.rng.gen_range(0..self.next_o[dr]);
                Script::OrderStatus { w, d, cu, o }
            }
            92..=95 => {
                let w = self.rng.gen_range(0..cfg.warehouses as u64);
                let mut orders = Vec::new();
                for d in 0..cfg.districts_per_warehouse {
                    let dr = self.district_row(w, d) as usize;
                    let cursor = self.deliver_cursor[dr];
                    if cursor >= self.next_o[dr] {
                        continue; // no undelivered order in this district
                    }
                    self.deliver_cursor[dr] += 1;
                    orders.push((d, cursor));
                }
                Script::Delivery { w, orders }
            }
            _ => {
                let w = self.rng.gen_range(0..cfg.warehouses as u64);
                let d = self.rng.gen_range(0..cfg.districts_per_warehouse);
                let dr = self.district_row(w, d) as usize;
                Script::StockLevel {
                    w,
                    d,
                    hi: self.next_o[dr],
                }
            }
        }
    }
}

/// Replays a [`Script`] into a transaction — a pure function of
/// `(cfg, script)`, no RNG, no counters. `stats` is `Some` on the batch
/// path (which also retains statements when configured) and `None` on the
/// streaming path.
fn apply_script(
    cfg: &TpccConfig,
    ocap: u64,
    script: &Script,
    tb: &mut TxnBuilder,
    mut stats: Option<&mut AttributeStats>,
) {
    let district_row = |w: u64, d: u64| w * cfg.districts_per_warehouse + d;
    let customer_row =
        |w: u64, d: u64, cu: u64| district_row(w, d) * cfg.customers_per_district + cu;
    let order_row = |w: u64, d: u64, o: u64| district_row(w, d) * ocap + o;

    macro_rules! observe {
        ($table:expr, $cols:expr, $tb:expr, $stmt:expr) => {
            if let Some(s) = stats.as_deref_mut() {
                s.observe_shape($table, $cols);
            }
            $tb.stmt(|| $stmt);
        };
    }

    match *script {
        Script::NewOrder { w, d, o } => {
            let dr = district_row(w, d);
            let or = order_row(w, d, o);
            let facts = cfg.order_facts(or);
            let cu = facts.customer;

            tb.read(TupleId::new(T_WAREHOUSE, w));
            observe!(
                T_WAREHOUSE,
                &[0],
                tb,
                Statement::select(T_WAREHOUSE, eq1(0, w + 1))
            );
            tb.write(TupleId::new(T_DISTRICT, dr));
            observe!(
                T_DISTRICT,
                &[0, 1],
                tb,
                Statement::update(T_DISTRICT, eq2(0, w + 1, 1, d + 1))
            );
            tb.read(TupleId::new(T_CUSTOMER, customer_row(w, d, cu)));
            observe!(
                T_CUSTOMER,
                &[0, 1, 2],
                tb,
                Statement::select(T_CUSTOMER, eq3(0, w + 1, 1, d + 1, 2, cu + 1))
            );
            tb.write(TupleId::new(T_ORDERS, or));
            observe!(
                T_ORDERS,
                &[0, 1, 2],
                tb,
                Statement::insert(
                    T_ORDERS,
                    vec![
                        (0, Value::Int(w as i64 + 1)),
                        (1, Value::Int(d as i64 + 1)),
                        (2, Value::Int(o as i64 + 1)),
                        (3, Value::Int(cu as i64 + 1)),
                    ],
                )
            );
            tb.write(TupleId::new(T_NEW_ORDER, or));
            observe!(
                T_NEW_ORDER,
                &[0, 1, 2],
                tb,
                Statement::insert(
                    T_NEW_ORDER,
                    vec![
                        (0, Value::Int(w as i64 + 1)),
                        (1, Value::Int(d as i64 + 1)),
                        (2, Value::Int(o as i64 + 1)),
                    ],
                )
            );

            for ol in 0..facts.lines {
                let item = cfg.line_item(or, ol);
                let supply_w = cfg.line_supply(or, ol, w);
                tb.read(TupleId::new(T_ITEM, item));
                observe!(
                    T_ITEM,
                    &[0],
                    tb,
                    Statement::select(T_ITEM, eq1(0, item + 1))
                );
                tb.write(TupleId::new(T_STOCK, supply_w * cfg.items + item));
                observe!(
                    T_STOCK,
                    &[0, 1],
                    tb,
                    Statement::update(T_STOCK, eq2(0, supply_w + 1, 1, item + 1))
                );
                tb.write(TupleId::new(T_ORDER_LINE, or * MAX_LINES + ol));
                observe!(
                    T_ORDER_LINE,
                    &[0, 1, 2, 3],
                    tb,
                    Statement::insert(
                        T_ORDER_LINE,
                        vec![
                            (0, Value::Int(w as i64 + 1)),
                            (1, Value::Int(d as i64 + 1)),
                            (2, Value::Int(o as i64 + 1)),
                            (3, Value::Int(ol as i64 + 1)),
                            (4, Value::Int(item as i64 + 1)),
                        ],
                    )
                );
            }
        }
        Script::Payment { w, d, cw, cd, cu } => {
            tb.write(TupleId::new(T_WAREHOUSE, w));
            observe!(
                T_WAREHOUSE,
                &[0],
                tb,
                Statement::update(T_WAREHOUSE, eq1(0, w + 1))
            );
            tb.write(TupleId::new(T_DISTRICT, district_row(w, d)));
            observe!(
                T_DISTRICT,
                &[0, 1],
                tb,
                Statement::update(T_DISTRICT, eq2(0, w + 1, 1, d + 1))
            );
            let crow = customer_row(cw, cd, cu);
            tb.write(TupleId::new(T_CUSTOMER, crow));
            observe!(
                T_CUSTOMER,
                &[0, 1, 2],
                tb,
                Statement::update(T_CUSTOMER, eq3(0, cw + 1, 1, cd + 1, 2, cu + 1))
            );
            tb.write(TupleId::new(T_HISTORY, crow));
            observe!(
                T_HISTORY,
                &[0, 1, 2],
                tb,
                Statement::insert(
                    T_HISTORY,
                    vec![
                        (0, Value::Int(cw as i64 + 1)),
                        (1, Value::Int(cd as i64 + 1)),
                        (2, Value::Int(cu as i64 + 1)),
                    ],
                )
            );
        }
        Script::OrderStatus { w, d, cu, o } => {
            tb.read(TupleId::new(T_CUSTOMER, customer_row(w, d, cu)));
            observe!(
                T_CUSTOMER,
                &[0, 1, 2],
                tb,
                Statement::select(T_CUSTOMER, eq3(0, w + 1, 1, d + 1, 2, cu + 1))
            );
            let or = order_row(w, d, o);
            tb.read(TupleId::new(T_ORDERS, or));
            observe!(
                T_ORDERS,
                &[0, 1, 2],
                tb,
                Statement::select(T_ORDERS, eq3(0, w + 1, 1, d + 1, 2, o + 1))
            );
            let lines = cfg.order_facts(or).lines;
            let group: Vec<TupleId> = (0..lines)
                .map(|ol| TupleId::new(T_ORDER_LINE, or * MAX_LINES + ol))
                .collect();
            tb.scan(group);
            observe!(
                T_ORDER_LINE,
                &[0, 1, 2],
                tb,
                Statement::select(T_ORDER_LINE, eq3(0, w + 1, 1, d + 1, 2, o + 1))
            );
        }
        Script::Delivery { w, ref orders } => {
            for &(d, cursor) in orders {
                let or = order_row(w, d, cursor);
                let facts = cfg.order_facts(or);
                tb.write(TupleId::new(T_NEW_ORDER, or));
                observe!(
                    T_NEW_ORDER,
                    &[0, 1, 2],
                    tb,
                    Statement::delete(T_NEW_ORDER, eq3(0, w + 1, 1, d + 1, 2, cursor + 1))
                );
                tb.write(TupleId::new(T_ORDERS, or));
                observe!(
                    T_ORDERS,
                    &[0, 1, 2],
                    tb,
                    Statement::update(T_ORDERS, eq3(0, w + 1, 1, d + 1, 2, cursor + 1))
                );
                for ol in 0..facts.lines {
                    tb.write(TupleId::new(T_ORDER_LINE, or * MAX_LINES + ol));
                }
                observe!(
                    T_ORDER_LINE,
                    &[0, 1, 2],
                    tb,
                    Statement::update(T_ORDER_LINE, eq3(0, w + 1, 1, d + 1, 2, cursor + 1))
                );
                tb.write(TupleId::new(T_CUSTOMER, customer_row(w, d, facts.customer)));
                observe!(
                    T_CUSTOMER,
                    &[0, 1, 2],
                    tb,
                    Statement::update(T_CUSTOMER, eq3(0, w + 1, 1, d + 1, 2, facts.customer + 1))
                );
            }
        }
        Script::StockLevel { w, d, hi } => {
            let dr = district_row(w, d);
            tb.read(TupleId::new(T_DISTRICT, dr));
            observe!(
                T_DISTRICT,
                &[0, 1],
                tb,
                Statement::select(T_DISTRICT, eq2(0, w + 1, 1, d + 1))
            );
            // Items of the district's last 20 orders and their stock rows —
            // the one large scan statement in TPC-C (a blanket-filter
            // candidate).
            let lo = hi.saturating_sub(20);
            let mut ol_group = Vec::new();
            let mut stock_group = Vec::new();
            for o in lo..hi {
                let or = order_row(w, d, o);
                let facts = cfg.order_facts(or);
                for ol in 0..facts.lines {
                    ol_group.push(TupleId::new(T_ORDER_LINE, or * MAX_LINES + ol));
                    stock_group.push(TupleId::new(T_STOCK, w * cfg.items + cfg.line_item(or, ol)));
                }
            }
            stock_group.sort_unstable();
            stock_group.dedup();
            tb.scan(ol_group);
            observe!(
                T_ORDER_LINE,
                &[0, 1, 2],
                tb,
                Statement::select(
                    T_ORDER_LINE,
                    Predicate::and(vec![
                        eq2(0, w + 1, 1, d + 1),
                        Predicate::Between(2, Value::Int(lo as i64 + 1), Value::Int(hi as i64)),
                    ]),
                )
            );
            tb.scan(stock_group);
            observe!(
                T_STOCK,
                &[0, 1],
                tb,
                Statement::select(T_STOCK, eq1(0, w + 1))
            );
        }
    }
}

fn eq1(c: u16, v: u64) -> Predicate {
    Predicate::Eq(c, Value::Int(v as i64))
}

fn eq2(c1: u16, v1: u64, c2: u16, v2: u64) -> Predicate {
    Predicate::and(vec![eq1(c1, v1), eq1(c2, v2)])
}

fn eq3(c1: u16, v1: u64, c2: u16, v2: u64, c3: u16, v3: u64) -> Predicate {
    Predicate::and(vec![eq1(c1, v1), eq1(c2, v2), eq1(c3, v3)])
}

/// Generates the workload (batch path: the full trace materialized, with
/// attribute statistics and optional statement retention).
pub fn generate(cfg: &TpccConfig) -> Workload {
    assert!(cfg.warehouses >= 1);
    let schema = Arc::new(schema());
    let ocap = cfg.order_capacity();
    let districts = cfg.districts();
    let mut g = ScriptGen::new(cfg);
    let mut stats = AttributeStats::default();

    let mut txns = Vec::with_capacity(cfg.num_txns);
    for _ in 0..cfg.num_txns {
        let script = g.next();
        let mut tb = TxnBuilder::new(cfg.keep_statements);
        apply_script(cfg, ocap, &script, &mut tb, Some(&mut stats));
        txns.push(tb.finish());
    }

    let table_rows = vec![
        cfg.warehouses as u64,
        districts,
        districts * cfg.customers_per_district,
        districts * cfg.customers_per_district, // history: one row per customer
        districts * ocap,
        districts * ocap,
        districts * ocap * MAX_LINES,
        cfg.items,
        cfg.warehouses as u64 * cfg.items,
    ];

    Workload {
        name: format!("tpcc-{}w", cfg.warehouses),
        schema,
        trace: Trace { transactions: txns },
        db: Arc::new(TpccDb { cfg: cfg.clone() }),
        table_rows,
        attr_stats: stats,
    }
}

/// Streaming counterpart of [`generate`]: a [`TraceSource`] holding one
/// small `Script` per transaction instead of the materialized tuple sets,
/// and replaying scripts into transactions chunk by chunk.
///
/// Because TPC-C generation is inherently sequential (the RNG stream and
/// the per-district order counters), the scripts are produced by the same
/// draws-only pass the batch generator runs — so for a given config the
/// streamed trace is **identical** to `generate(cfg).trace` (modulo
/// retained statements, which the streaming path never builds). What the
/// source saves is memory and allocation: a script is a few words where a
/// materialized new-order holds ~35 tuple ids and a stock-level scan
/// several hundred.
pub struct TpccSource {
    cfg: TpccConfig,
    ocap: u64,
    scripts: Vec<Script>,
}

/// Builds the streaming source (runs the draws-only script pass).
pub fn stream(cfg: &TpccConfig) -> TpccSource {
    assert!(cfg.warehouses >= 1);
    let mut g = ScriptGen::new(cfg);
    let scripts = (0..cfg.num_txns).map(|_| g.next()).collect();
    TpccSource {
        ocap: cfg.order_capacity(),
        scripts,
        cfg: cfg.clone(),
    }
}

impl TraceSource for TpccSource {
    fn len(&self) -> usize {
        self.scripts.len()
    }

    fn for_chunk(&self, range: Range<usize>, visit: &mut dyn FnMut(usize, &Transaction)) {
        for idx in range {
            let mut tb = TxnBuilder::new(false);
            apply_script(&self.cfg, self.ocap, &self.scripts[idx], &mut tb, None);
            let t = tb.finish();
            visit(idx, &t);
        }
    }
}

/// The warehouse (0-based) a tuple belongs to, or `None` for the shared
/// `item` table. This is the ground truth behind manual partitioning and is
/// used by tests and the fig4 manual baseline.
pub fn warehouse_of(cfg: &TpccConfig, t: TupleId) -> Option<u64> {
    let dpw = cfg.districts_per_warehouse;
    let cpd = cfg.customers_per_district;
    let ocap = cfg.order_capacity();
    match t.table {
        T_WAREHOUSE => Some(t.row),
        T_DISTRICT => Some(t.row / dpw),
        T_CUSTOMER | T_HISTORY => Some(t.row / (dpw * cpd)),
        T_NEW_ORDER | T_ORDERS => Some(t.row / (dpw * ocap)),
        T_ORDER_LINE => Some(t.row / MAX_LINES / (dpw * ocap)),
        T_STOCK => Some(t.row / cfg.items),
        _ => None, // item
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_warehouse_fraction_near_paper() {
        // ~10.7% of transactions touch more than one warehouse (§6.1).
        let cfg = TpccConfig {
            num_txns: 20_000,
            ..TpccConfig::small(4)
        };
        let w = generate(&cfg);
        let mut multi = 0usize;
        for t in &w.trace.transactions {
            let mut ws: Vec<u64> = t
                .accessed()
                .filter_map(|tp| warehouse_of(&cfg, tp))
                .collect();
            ws.sort_unstable();
            ws.dedup();
            if ws.len() > 1 {
                multi += 1;
            }
        }
        let frac = multi as f64 / w.trace.len() as f64;
        assert!(
            (0.06..=0.16).contains(&frac),
            "multi-warehouse fraction {frac:.3} not near 10.7%"
        );
    }

    #[test]
    fn db_formulas_invert_row_ids() {
        let cfg = TpccConfig::small(3);
        let w = generate(&cfg);
        let db = &w.db;
        // stock(w=2, i=5): row = 1*items + 4 for 0-based (w=1,i=4).
        let row = cfg.items + 4;
        assert_eq!(db.value(TupleId::new(T_STOCK, row), 0), Some(2));
        assert_eq!(db.value(TupleId::new(T_STOCK, row), 1), Some(5));
        // customer row roundtrip.
        let crow = (2 * cfg.districts_per_warehouse + 3) * cfg.customers_per_district + 7;
        assert_eq!(db.value(TupleId::new(T_CUSTOMER, crow), 0), Some(3));
        assert_eq!(db.value(TupleId::new(T_CUSTOMER, crow), 1), Some(4));
        assert_eq!(db.value(TupleId::new(T_CUSTOMER, crow), 2), Some(8));
    }

    #[test]
    fn order_line_items_agree_between_oracle_and_generator() {
        let cfg = TpccConfig::small(2);
        let db = TpccDb { cfg: cfg.clone() };
        for or in [0u64, 17, 999] {
            for ol in 0..cfg.order_facts(or).lines {
                let row = or * MAX_LINES + ol;
                let from_db = db.value(TupleId::new(T_ORDER_LINE, row), 4).unwrap();
                assert_eq!(from_db, cfg.line_item(or, ol) as i64 + 1);
            }
        }
    }

    #[test]
    fn transaction_mix_shape() {
        let cfg = TpccConfig {
            num_txns: 10_000,
            ..TpccConfig::small(2)
        };
        let w = generate(&cfg);
        // new_order transactions write order lines; payments write history.
        let with_ol = w
            .trace
            .transactions
            .iter()
            .filter(|t| t.writes.iter().any(|x| x.table == T_ORDER_LINE))
            .count();
        let with_hist = w
            .trace
            .transactions
            .iter()
            .filter(|t| t.writes.iter().any(|x| x.table == T_HISTORY))
            .count();
        let no_frac = with_ol as f64 / 10_000.0;
        let pay_frac = with_hist as f64 / 10_000.0;
        // new_order 45% + delivery 4% carry order_line writes.
        assert!(
            (0.42..=0.56).contains(&no_frac),
            "order-line writers {no_frac}"
        );
        assert!(
            (0.39..=0.48).contains(&pay_frac),
            "payment fraction {pay_frac}"
        );
    }

    #[test]
    fn stock_level_scans_stay_home() {
        let cfg = TpccConfig {
            num_txns: 5_000,
            ..TpccConfig::small(4)
        };
        let w = generate(&cfg);
        for t in &w.trace.transactions {
            for scan in &t.scans {
                let mut ws: Vec<u64> = scan
                    .iter()
                    .filter_map(|&tp| warehouse_of(&cfg, tp))
                    .collect();
                ws.sort_unstable();
                ws.dedup();
                assert!(ws.len() <= 1, "scan crossed warehouses");
            }
        }
    }

    #[test]
    fn frequent_attributes_include_warehouse_ids() {
        let cfg = TpccConfig {
            num_txns: 5_000,
            ..TpccConfig::small(2)
        };
        let w = generate(&cfg);
        // Every stock statement constrains s_w_id and s_i_id.
        let freq = w.attr_stats.frequent_attributes(T_STOCK, 0.9);
        assert!(freq.contains(&0) && freq.contains(&1), "{freq:?}");
        // Every customer statement constrains the full key.
        let freq = w.attr_stats.frequent_attributes(T_CUSTOMER, 0.9);
        assert_eq!(freq.len(), 3);
    }

    #[test]
    fn stream_reproduces_generate_exactly() {
        let cfg = TpccConfig {
            num_txns: 1_500,
            ..TpccConfig::small(3)
        };
        let batch = generate(&cfg);
        let src = stream(&cfg);
        assert_eq!(TraceSource::len(&src), batch.trace.len());
        // Whole-pass equality…
        let streamed = src.materialize();
        for (a, b) in streamed.transactions.iter().zip(&batch.trace.transactions) {
            assert_eq!(a.reads, b.reads);
            assert_eq!(a.writes, b.writes);
            assert_eq!(a.scans, b.scans);
        }
        // …and chunked re-streaming agrees with the whole pass.
        src.for_chunk(700..900, &mut |i, t| {
            assert_eq!(t.reads, batch.trace.transactions[i].reads);
            assert_eq!(t.writes, batch.trace.transactions[i].writes);
            assert_eq!(t.scans, batch.trace.transactions[i].scans);
        });
    }

    #[test]
    fn table_rows_match_scale() {
        let cfg = TpccConfig::full(50);
        // 25M+ tuples at 50 warehouses (Table 1 of the paper).
        let total: u64 = generate(&TpccConfig {
            num_txns: 10,
            ..cfg.clone()
        })
        .table_rows
        .iter()
        .sum();
        assert!(total > 25_000_000, "total {total}");
    }
}
