//! # schism-workload
//!
//! The benchmark suite of the Schism evaluation (§6, Appendix D), rebuilt as
//! trace generators:
//!
//! | module | paper experiment |
//! |--------|------------------|
//! | [`simplecount`] | §3 "The Price of Distribution" (Figure 1) |
//! | [`ycsb`] | YCSB-A / YCSB-E (Figure 4) |
//! | [`tpcc`] | TPC-C 2W / 50W (Figures 4, 6; Table 1) |
//! | [`tpce`] | TPC-E, 1000 customers (Figure 4; Table 1) |
//! | [`epinions`] | Epinions.com social workload (Figure 4; Table 1) |
//! | [`random`] | the "impossible" Random workload (Figure 4) |
//! | [`drifting`] | hot-key drift across windows (incremental repartitioning) |
//!
//! Every generator returns a [`Workload`]: schema, transaction [`Trace`]
//! (read/write sets, optional SQL statements), a [`TupleValues`] oracle for
//! tuple attribute values, per-table row counts, and WHERE-clause attribute
//! statistics. Generators are deterministic for a fixed seed.
//!
//! Traces can also be consumed without materializing them: [`TraceSource`]
//! is the chunked-iteration abstraction the streaming graph builder
//! ingests, implemented by the in-memory [`Trace`] and by the streaming
//! generator paths (`drifting::stream`, `ycsb::stream`, `tpcc::stream`).

pub mod dist;
pub mod drifting;
pub mod epinions;
pub mod random;
pub mod simplecount;
pub mod sqllog;
pub mod tpcc;
pub mod tpce;
pub mod trace;
pub mod tuple;
pub mod txn;
pub mod ycsb;

pub use dist::{ScrambledZipfian, Zipfian};
pub use sqllog::{render_log, SqlLogError, SqlLogOptions, SqlLogSource, SqlLogStats};
pub use trace::{Trace, TraceSource, Workload};
pub use tuple::{MaterializedDb, TupleId, TupleValues};
pub use txn::{Transaction, TxnBuilder};
