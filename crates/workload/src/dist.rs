//! Key-selection distributions: uniform and YCSB-style Zipfian.

use rand::Rng;

/// Zipfian distribution over `0..n` with parameter `theta` (YCSB uses
/// 0.99). Implementation follows the classic Gray et al. rejection-free
/// formula used by YCSB's `ZipfianGenerator`.
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Builds a Zipfian over `0..n`. `theta` in `(0, 1)`; YCSB default 0.99.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty domain");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    /// YCSB-default skew.
    pub fn ycsb(n: u64) -> Self {
        Self::new(n, 0.99)
    }

    /// Draws a key in `0..n`; key 0 is the most popular.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let spread = (self.eta * u - self.eta + 1.0).powf(self.alpha);
        ((self.n as f64) * spread) as u64 % self.n
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The `zeta(2, theta)` constant (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Direct sum; domains here are <= a few million and construction happens
    // once per workload.
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

/// Scrambled Zipfian: Zipfian popularity ranks spread over the key space by
/// a hash, so hot keys are not clustered in contiguous ranges. YCSB applies
/// this for workloads where locality would be unrealistic.
#[derive(Clone, Debug)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

impl ScrambledZipfian {
    pub fn new(n: u64, theta: f64) -> Self {
        Self {
            inner: Zipfian::new(n, theta),
        }
    }

    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let rank = self.inner.sample(rng);
        fnv1a(rank) % self.inner.n()
    }
}

fn fnv1a(x: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let z = Zipfian::ycsb(1000);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 1000];
        for _ in 0..50_000 {
            let k = z.sample(&mut rng) as usize;
            assert!(k < 1000);
            counts[k] += 1;
        }
        // Head heavier than tail: top-10 keys should take >> 1% of mass.
        let head: u32 = counts[..10].iter().sum();
        assert!(head > 5_000, "head mass too small: {head}");
        let tail: u32 = counts[900..].iter().sum();
        assert!(head > tail * 3, "not skewed: head {head} tail {tail}");
    }

    #[test]
    fn zipfian_theta_zero_is_uniformish() {
        let z = Zipfian::new(100, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max < min * 2,
            "theta=0 should be near-uniform: {min}..{max}"
        );
    }

    #[test]
    fn scrambled_spreads_hot_keys() {
        let s = ScrambledZipfian::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = std::collections::HashSet::new();
        for _ in 0..1000 {
            hits.insert(s.sample(&mut rng));
        }
        // Hot ranks map to scattered keys; samples must not concentrate in
        // the low range the way plain Zipfian does.
        let low = hits.iter().filter(|&&k| k < 100).count();
        assert!(
            low < hits.len() / 2,
            "hot keys not scrambled: {low}/{}",
            hits.len()
        );
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zipfian_rejects_empty() {
        Zipfian::ycsb(0);
    }
}
