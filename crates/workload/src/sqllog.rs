//! Streaming SQL-statement-log ingestion: a [`TraceSource`] over raw SQL
//! text, feeding the chunked graph builder without ever materializing a
//! [`Trace`](crate::Trace).
//!
//! This is the paper's §5.3 trace extractor as a streaming adapter: DBMSs
//! log executed statements, and Schism consumes `(tuple, transaction)`
//! pairs. [`SqlLogSource`] bridges the two — it indexes a statement log
//! once (O(transactions) offsets, O(1) statement text in memory), then
//! re-parses each transaction block on demand as the builder's workers ask
//! for chunks.
//!
//! # Log format
//!
//! One statement per line, optional trailing `;`. Blank lines and `--`
//! comments are skipped. A `BEGIN` (or `START TRANSACTION`) … `COMMIT`
//! (or `END`) pair groups statements into one transaction; a statement
//! outside such a block is its own single-statement transaction. Keywords
//! are case-insensitive. A block left open at end of log is an error
//! (truncated logs should fail loudly, not silently drop the tail).
//!
//! # Row resolution
//!
//! Read/write sets need *row ids*, but a log line only carries predicate
//! values. Each table resolves through one integer **key column** — by
//! default the table's primary key when it is a single column (composite
//! keys have no log-recoverable mapping to dense row ids; see
//! [`SqlLogOptions::key_cols`]). A statement whose predicate pins that
//! column to a finite value set ([`schism_sql::Predicate::pinned_values`]:
//! equalities,
//! IN-lists, small BETWEEN ranges — also under conjunctions) contributes
//! those rows; writes go to the write set, multi-row reads become one scan
//! group (so blanket-statement filtering still sees them as one
//! statement). Anything else — range scans, unpinned predicates, non-key
//! tables — is *skipped and counted* in [`SqlLogStats::skipped_statements`];
//! the source never guesses.
//!
//! # Determinism
//!
//! Parsing is validated up front, so `for_chunk` is a pure function of the
//! indexed byte ranges: the transaction yielded for index `i` is identical
//! for every chunking and every thread, as the [`TraceSource`] contract
//! requires.

use crate::trace::TraceSource;
use crate::tuple::TupleId;
use crate::txn::{Transaction, TxnBuilder};
use schism_sql::{parse_statement, ColId, Schema, Statement, StatementKind};
use std::fmt;
use std::io::{BufRead, Read, Seek, SeekFrom};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// How the log resolves statements into tuple accesses.
#[derive(Clone, Debug)]
pub struct SqlLogOptions {
    /// Per-table key column (indexed by `TableId`): the integer column
    /// whose pinned predicate values are the row ids. `None` marks a table
    /// as unresolvable — its statements are counted skipped.
    pub key_cols: Vec<Option<ColId>>,
    /// Retain the parsed [`Statement`]s on each yielded transaction
    /// (off by default: the graph builder only needs read/write sets).
    pub keep_statements: bool,
}

impl SqlLogOptions {
    /// Defaults for `schema`: each table's key column is its primary key
    /// when that is a single column, unresolvable otherwise.
    pub fn for_schema(schema: &Schema) -> Self {
        Self {
            key_cols: schema
                .tables()
                .map(|(_, t)| match t.primary_key.as_slice() {
                    [pk] => Some(*pk),
                    _ => None,
                })
                .collect(),
            keep_statements: false,
        }
    }
}

/// What the index pass saw (fixed at construction).
#[derive(Clone, Copy, Debug, Default)]
pub struct SqlLogStats {
    /// Parsed statements across all transactions.
    pub statements: usize,
    /// Statements that resolved to no rows (unpinned key, range predicate,
    /// non-integer values, or a table without a key column).
    pub skipped_statements: usize,
    /// Total resolved tuple accesses.
    pub accesses: u64,
}

/// Indexing/validation failure: the offending line and why.
#[derive(Clone, Debug)]
pub struct SqlLogError {
    /// 1-based line number in the log.
    pub line: usize,
    pub message: String,
}

impl fmt::Display for SqlLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sql log line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SqlLogError {}

enum Backing {
    Text(String),
    /// Re-read per chunk under a lock; each `for_chunk` call does one
    /// contiguous seek+read covering its whole range.
    File(Mutex<std::fs::File>, PathBuf),
}

/// A SQL statement log as a chunked [`TraceSource`].
pub struct SqlLogSource {
    schema: Arc<Schema>,
    opts: SqlLogOptions,
    backing: Backing,
    /// Byte range of each transaction block (single statement line, or
    /// `BEGIN` through `COMMIT` inclusive).
    blocks: Vec<(u64, u64)>,
    stats: SqlLogStats,
}

impl fmt::Debug for SqlLogSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SqlLogSource")
            .field(
                "backing",
                match &self.backing {
                    Backing::Text(_) => &"text",
                    Backing::File(_, _) => &"file",
                },
            )
            .field("transactions", &self.blocks.len())
            .field("stats", &self.stats)
            .finish()
    }
}

fn keyword(line: &str, kws: &[&str]) -> bool {
    let bare = line.trim().trim_end_matches(';').trim();
    kws.iter().any(|k| bare.eq_ignore_ascii_case(k))
}

fn is_noise(line: &str) -> bool {
    let t = line.trim();
    t.is_empty() || t.starts_with("--")
}

impl SqlLogSource {
    /// Indexes and validates an in-memory log with per-schema defaults.
    pub fn from_string(schema: Arc<Schema>, log: impl Into<String>) -> Result<Self, SqlLogError> {
        let opts = SqlLogOptions::for_schema(&schema);
        Self::from_string_with(schema, log, opts)
    }

    /// Indexes and validates an in-memory log.
    pub fn from_string_with(
        schema: Arc<Schema>,
        log: impl Into<String>,
        opts: SqlLogOptions,
    ) -> Result<Self, SqlLogError> {
        let log = log.into();
        let mut s = Self {
            schema,
            opts,
            backing: Backing::Text(String::new()),
            blocks: Vec::new(),
            stats: SqlLogStats::default(),
        };
        s.index(&mut log.as_bytes())?;
        s.backing = Backing::Text(log);
        Ok(s)
    }

    /// Indexes and validates a log file with per-schema defaults. The file
    /// is scanned once now (O(1) memory) and re-read in chunk-sized pieces
    /// during builds.
    pub fn open(schema: Arc<Schema>, path: impl AsRef<Path>) -> Result<Self, SqlLogError> {
        let opts = SqlLogOptions::for_schema(&schema);
        Self::open_with(schema, path, opts)
    }

    /// Indexes and validates a log file.
    pub fn open_with(
        schema: Arc<Schema>,
        path: impl AsRef<Path>,
        opts: SqlLogOptions,
    ) -> Result<Self, SqlLogError> {
        let path = path.as_ref().to_path_buf();
        let io_err = |e: std::io::Error| SqlLogError {
            line: 0,
            message: format!("{}: {e}", path.display()),
        };
        let file = std::fs::File::open(&path).map_err(io_err)?;
        let mut s = Self {
            schema,
            opts,
            backing: Backing::Text(String::new()),
            blocks: Vec::new(),
            stats: SqlLogStats::default(),
        };
        s.index(&mut std::io::BufReader::new(&file))?;
        s.backing = Backing::File(Mutex::new(file), path);
        Ok(s)
    }

    /// What the validation pass counted.
    pub fn stats(&self) -> &SqlLogStats {
        &self.stats
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// One pass over the log: record each transaction block's byte range,
    /// parse + resolve every statement once to validate and count.
    fn index(&mut self, reader: &mut dyn BufRead) -> Result<(), SqlLogError> {
        let mut line = String::new();
        let mut offset = 0u64;
        let mut lineno = 0usize;
        // Open BEGIN block: (start offset, start line number).
        let mut open: Option<(u64, usize)> = None;
        loop {
            line.clear();
            let n = reader.read_line(&mut line).map_err(|e| SqlLogError {
                line: lineno + 1,
                message: e.to_string(),
            })?;
            if n == 0 {
                break;
            }
            lineno += 1;
            let start = offset;
            offset += n as u64;
            if is_noise(&line) {
                continue;
            }
            if keyword(&line, &["BEGIN", "START TRANSACTION"]) {
                if open.is_some() {
                    return Err(SqlLogError {
                        line: lineno,
                        message: "nested BEGIN".into(),
                    });
                }
                open = Some((start, lineno));
            } else if keyword(&line, &["COMMIT", "END"]) {
                let (s, _) = open.take().ok_or(SqlLogError {
                    line: lineno,
                    message: "COMMIT without BEGIN".into(),
                })?;
                self.blocks.push((s, offset));
            } else {
                let stmt = parse_statement(&self.schema, line.trim().trim_end_matches(';'))
                    .map_err(|e| SqlLogError {
                        line: lineno,
                        message: e.to_string(),
                    })?;
                let rows = self.resolve(&stmt);
                self.stats.statements += 1;
                match rows {
                    Some(tuples) => self.stats.accesses += tuples.len() as u64,
                    None => self.stats.skipped_statements += 1,
                }
                if open.is_none() {
                    self.blocks.push((start, offset));
                }
            }
        }
        if let Some((_, l)) = open {
            return Err(SqlLogError {
                line: l,
                message: "BEGIN without COMMIT (truncated log?)".into(),
            });
        }
        Ok(())
    }

    /// Rows a statement accesses, via the table's key column. `None` =
    /// unresolvable (see module docs).
    fn resolve(&self, stmt: &Statement) -> Option<Vec<TupleId>> {
        let key = (*self.opts.key_cols.get(stmt.table as usize)?)?;
        let vals = stmt.predicate.pinned_values(key)?;
        let tuples: Vec<TupleId> = vals
            .iter()
            .filter_map(|v| v.as_int())
            .filter(|&i| i >= 0)
            .map(|i| TupleId::new(stmt.table, i as u64))
            .collect();
        if tuples.is_empty() {
            None
        } else {
            Some(tuples)
        }
    }

    /// Reads the contiguous byte range `[start, end)` of the log.
    fn read_span(&self, start: u64, end: u64) -> String {
        match &self.backing {
            Backing::Text(t) => t[start as usize..end as usize].to_owned(),
            Backing::File(file, path) => {
                let mut buf = vec![0u8; (end - start) as usize];
                {
                    let mut f = file.lock().expect("log file lock");
                    f.seek(SeekFrom::Start(start))
                        .and_then(|_| f.read_exact(&mut buf))
                        .unwrap_or_else(|e| panic!("re-reading {}: {e}", path.display()));
                }
                String::from_utf8(buf).expect("log validated as UTF-8 at index time")
            }
        }
    }

    /// Parses one indexed block back into a transaction. Infallible after
    /// validation: the index pass parsed these exact lines.
    fn parse_block(&self, block: &str) -> Transaction {
        let mut b = TxnBuilder::new(self.opts.keep_statements);
        for line in block.lines() {
            if is_noise(line) || keyword(line, &["BEGIN", "START TRANSACTION", "COMMIT", "END"]) {
                continue;
            }
            let stmt = parse_statement(&self.schema, line.trim().trim_end_matches(';'))
                .expect("statement validated at index time");
            if let Some(tuples) = self.resolve(&stmt) {
                if stmt.kind.is_write() {
                    for t in tuples {
                        b.write(t);
                    }
                } else {
                    b.scan(tuples);
                }
            }
            b.stmt(|| stmt);
        }
        b.finish()
    }
}

impl TraceSource for SqlLogSource {
    fn len(&self) -> usize {
        self.blocks.len()
    }

    fn for_chunk(&self, range: Range<usize>, visit: &mut dyn FnMut(usize, &Transaction)) {
        if range.is_empty() {
            return;
        }
        let span_start = self.blocks[range.start].0;
        let span_end = self.blocks[range.end - 1].1;
        let buf = self.read_span(span_start, span_end);
        for i in range {
            let (s, e) = self.blocks[i];
            let txn = self.parse_block(&buf[(s - span_start) as usize..(e - span_start) as usize]);
            visit(i, &txn);
        }
    }
}

/// Renders a statement-retaining trace back into the log format
/// [`SqlLogSource`] ingests (round-trip tooling and tests). Transactions
/// with one statement become a bare line; larger ones get `BEGIN`/`COMMIT`.
///
/// Updates built without `SET` tracking render a placeholder assignment
/// (`<col0> = 0`) so the line stays parseable — the extractor only consumes
/// the WHERE clause, so round-tripped access sets are unaffected.
///
/// # Panics
/// Panics if any transaction carries no statements (the trace must be
/// generated with `keep_statements`).
pub fn render_log(schema: &Schema, trace: &crate::Trace) -> String {
    let mut out = String::new();
    for (i, txn) in trace.transactions.iter().enumerate() {
        assert!(
            !txn.statements.is_empty(),
            "transaction {i} has no statements: generate the trace with keep_statements"
        );
        let render = |s: &Statement| -> String {
            if s.kind == StatementKind::Update && s.set.is_empty() {
                let t = schema.table(s.table);
                format!(
                    "UPDATE {} SET {} = 0 WHERE {}",
                    t.name,
                    t.columns[0].name,
                    // to_sql's WHERE rendering, reused via a SELECT shim.
                    Statement::select(s.table, s.predicate.clone())
                        .to_sql(schema)
                        .split_once(" WHERE ")
                        .map(|(_, w)| w.to_owned())
                        .unwrap_or_else(|| "1 = 1".to_owned()),
                )
            } else {
                s.to_sql(schema)
            }
        };
        if txn.statements.len() == 1 {
            out.push_str(&render(&txn.statements[0]));
            out.push_str(";\n");
        } else {
            out.push_str("BEGIN;\n");
            for s in &txn.statements {
                out.push_str(&render(s));
                out.push_str(";\n");
            }
            out.push_str("COMMIT;\n");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drifting::{self, DriftingConfig};
    use schism_sql::ColumnType;

    fn schema() -> Arc<Schema> {
        let mut s = Schema::new();
        s.add_table(
            "users",
            &[("id", ColumnType::Int), ("name", ColumnType::Str)],
            &["id"],
        );
        s.add_table(
            "orders",
            &[
                ("oid", ColumnType::Int),
                ("user_id", ColumnType::Int),
                ("qty", ColumnType::Int),
            ],
            &["oid"],
        );
        Arc::new(s)
    }

    const LOG: &str = "\
-- point read, its own transaction
SELECT * FROM users WHERE id = 7;

BEGIN;
SELECT * FROM users WHERE id IN (1, 2, 3);
UPDATE orders SET qty = 5 WHERE oid = 42;
-- a comment inside the block
INSERT INTO orders (oid, user_id, qty) VALUES (43, 7, 1);
COMMIT;

-- unresolvable: range over the key column
SELECT * FROM orders WHERE oid > 100;
";

    #[test]
    fn indexes_blocks_and_resolves_accesses() {
        let src = SqlLogSource::from_string(schema(), LOG).unwrap();
        assert_eq!(src.len(), 3);
        assert_eq!(src.stats().statements, 5);
        assert_eq!(src.stats().skipped_statements, 1);
        assert_eq!(src.stats().accesses, 1 + 3 + 1 + 1);
        let trace = src.materialize();
        assert_eq!(trace.transactions[0].reads, vec![TupleId::new(0, 7)]);
        let t1 = &trace.transactions[1];
        assert_eq!(
            t1.scans,
            vec![vec![
                TupleId::new(0, 1),
                TupleId::new(0, 2),
                TupleId::new(0, 3),
            ]]
        );
        assert_eq!(t1.writes, vec![TupleId::new(1, 42), TupleId::new(1, 43)]);
        // The unresolvable range scan leaves an empty transaction.
        assert!(trace.transactions[2].accessed().next().is_none());
    }

    #[test]
    fn chunked_equals_whole() {
        let src = SqlLogSource::from_string(schema(), LOG).unwrap();
        let whole = src.materialize();
        // (the trailing empty chunk must be a no-op)
        for cuts in [vec![0..1, 1..3], vec![0..2, 2..3], vec![0..3, 3..3]] {
            let mut seen = Vec::new();
            for c in cuts {
                src.for_chunk(c, &mut |i, t| seen.push((i, t.clone())));
            }
            assert_eq!(seen.len(), whole.len());
            for (i, t) in seen {
                assert_eq!(t.reads, whole.transactions[i].reads);
                assert_eq!(t.writes, whole.transactions[i].writes);
                assert_eq!(t.scans, whole.transactions[i].scans);
            }
        }
    }

    #[test]
    fn file_backing_matches_text_backing() {
        let dir = std::env::temp_dir().join("schism-sqllog-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.sql");
        std::fs::write(&path, LOG).unwrap();
        let from_file = SqlLogSource::open(schema(), &path).unwrap();
        let from_text = SqlLogSource::from_string(schema(), LOG).unwrap();
        assert_eq!(from_file.len(), from_text.len());
        let (a, b) = (from_file.materialize(), from_text.materialize());
        for (x, y) in a.transactions.iter().zip(&b.transactions) {
            assert_eq!(x.reads, y.reads);
            assert_eq!(x.writes, y.writes);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_block_fails_loudly() {
        let err = SqlLogSource::from_string(schema(), "BEGIN;\nSELECT * FROM users WHERE id = 1;")
            .unwrap_err();
        assert!(err.message.contains("BEGIN without COMMIT"), "{err}");
        let err =
            SqlLogSource::from_string(schema(), "SELECT * FROM nowhere WHERE id = 1;").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn drifting_round_trip_preserves_access_sets() {
        let w = drifting::generate(&DriftingConfig {
            num_txns: 300,
            keep_statements: true,
            ..Default::default()
        });
        let log = render_log(&w.schema, &w.trace);
        let src = SqlLogSource::from_string(Arc::clone(&w.schema), log).unwrap();
        assert_eq!(src.len(), w.trace.len());
        assert_eq!(src.stats().skipped_statements, 0);
        let rt = src.materialize();
        for (i, (a, b)) in rt
            .transactions
            .iter()
            .zip(&w.trace.transactions)
            .enumerate()
        {
            assert_eq!(a.reads, b.reads, "txn {i} reads");
            assert_eq!(a.writes, b.writes, "txn {i} writes");
            assert_eq!(a.scans, b.scans, "txn {i} scans");
        }
    }
}
