//! YCSB workloads A and E (Cooper et al., SoCC 2010), as used in §6.1.
//!
//! - **Workload A**: 50/50 single-tuple reads and updates, Zipfian keys.
//!   Every transaction touches one tuple, so any non-replicated scheme has
//!   zero distributed transactions — the experiment exists to show the
//!   validation phase picking plain hash partitioning.
//! - **Workload E**: 95% short scans (uniform length), 5% single-tuple
//!   updates. Scans defeat hash partitioning and reward ranges.

use crate::dist::Zipfian;
use crate::trace::{txn_stream_seed, Trace, TraceSource, Workload};
use crate::tuple::{TupleId, TupleValues};
use crate::txn::{Transaction, TxnBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use schism_sql::{AttributeStats, ColumnType, Predicate, Schema, Statement, Value};
use std::ops::Range;
use std::sync::Arc;

/// Which core YCSB workload to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum YcsbWorkload {
    /// 50% read / 50% update, one tuple per transaction.
    A,
    /// 95% scan (length uniform in `0..=scan_max`) / 5% update.
    E,
}

/// Generator configuration. Paper parameters: 100k-tuple table, 10k
/// transactions, Zipfian with YCSB's default skew, scan length 0–10 (§6.1).
#[derive(Clone, Debug)]
pub struct YcsbConfig {
    pub workload: YcsbWorkload,
    pub records: u64,
    pub num_txns: usize,
    /// Maximum scan length for workload E.
    pub scan_max: u64,
    /// Zipfian skew parameter.
    pub theta: f64,
    pub seed: u64,
    pub keep_statements: bool,
}

impl YcsbConfig {
    pub fn workload_a() -> Self {
        Self {
            workload: YcsbWorkload::A,
            records: 100_000,
            num_txns: 10_000,
            scan_max: 10,
            theta: 0.99,
            seed: 0,
            keep_statements: false,
        }
    }

    pub fn workload_e() -> Self {
        Self {
            workload: YcsbWorkload::E,
            ..Self::workload_a()
        }
    }
}

struct YcsbDb;

impl TupleValues for YcsbDb {
    fn value(&self, t: TupleId, col: schism_sql::ColId) -> Option<i64> {
        match (t.table, col) {
            (0, 0) => Some(t.row as i64),
            _ => None,
        }
    }

    fn tuple_bytes(&self, _table: schism_sql::TableId) -> u32 {
        1_000 // YCSB's 10 x 100-byte fields
    }
}

/// `usertable(ycsb_key, field0)`.
pub fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_table(
        "usertable",
        &[("ycsb_key", ColumnType::Int), ("field0", ColumnType::Str)],
        &["ycsb_key"],
    );
    s
}

/// Generates the workload.
pub fn generate(cfg: &YcsbConfig) -> Workload {
    let schema = Arc::new(schema());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let zipf = Zipfian::new(cfg.records, cfg.theta);
    let mut stats = AttributeStats::default();
    let mut txns = Vec::with_capacity(cfg.num_txns);

    for _ in 0..cfg.num_txns {
        let mut tb = TxnBuilder::new(cfg.keep_statements);
        match cfg.workload {
            YcsbWorkload::A => {
                let key = zipf.sample(&mut rng);
                let is_read = rng.gen_bool(0.5);
                let stmt = if is_read {
                    tb.read(TupleId::new(0, key));
                    Statement::select(0, Predicate::Eq(0, Value::Int(key as i64)))
                } else {
                    tb.write(TupleId::new(0, key));
                    Statement::update(0, Predicate::Eq(0, Value::Int(key as i64)))
                };
                stats.observe(&stmt);
                tb.stmt(move || stmt.clone());
            }
            YcsbWorkload::E => {
                if rng.gen_bool(0.95) {
                    let start = zipf.sample(&mut rng);
                    let len = rng.gen_range(0..=cfg.scan_max);
                    let end = (start + len).min(cfg.records - 1);
                    let tuples: Vec<TupleId> = (start..=end).map(|r| TupleId::new(0, r)).collect();
                    tb.scan(tuples);
                    let stmt = Statement::select(
                        0,
                        Predicate::Between(0, Value::Int(start as i64), Value::Int(end as i64)),
                    );
                    stats.observe(&stmt);
                    tb.stmt(move || stmt.clone());
                } else {
                    let key = zipf.sample(&mut rng);
                    tb.write(TupleId::new(0, key));
                    let stmt = Statement::update(0, Predicate::Eq(0, Value::Int(key as i64)));
                    stats.observe(&stmt);
                    tb.stmt(move || stmt.clone());
                }
            }
        }
        txns.push(tb.finish());
    }

    Workload {
        name: match cfg.workload {
            YcsbWorkload::A => "ycsb-a".to_owned(),
            YcsbWorkload::E => "ycsb-e".to_owned(),
        },
        schema,
        trace: Trace { transactions: txns },
        db: Arc::new(YcsbDb),
        table_rows: vec![cfg.records],
        attr_stats: stats,
    }
}

/// Streaming counterpart of [`generate`]: a [`TraceSource`] producing each
/// transaction from an independent per-index RNG stream, so chunks can be
/// generated on demand (and concurrently) without materializing the trace.
///
/// Same distributions as [`generate`] (Zipfian keys, the A/E operation
/// mixes, uniform scan lengths) but a different sample — the batch
/// generator draws from one sequential stream. No statements or attribute
/// stats: the streaming path feeds graph building, which consumes only
/// read/write sets.
pub struct YcsbSource {
    cfg: YcsbConfig,
    zipf: Zipfian,
}

/// Builds the streaming source.
pub fn stream(cfg: &YcsbConfig) -> YcsbSource {
    YcsbSource {
        zipf: Zipfian::new(cfg.records, cfg.theta),
        cfg: cfg.clone(),
    }
}

impl YcsbSource {
    fn txn(&self, idx: usize) -> Transaction {
        let cfg = &self.cfg;
        let mut rng = StdRng::seed_from_u64(txn_stream_seed(cfg.seed, idx));
        let mut tb = TxnBuilder::new(false);
        match cfg.workload {
            YcsbWorkload::A => {
                let key = self.zipf.sample(&mut rng);
                if rng.gen_bool(0.5) {
                    tb.read(TupleId::new(0, key));
                } else {
                    tb.write(TupleId::new(0, key));
                }
            }
            YcsbWorkload::E => {
                if rng.gen_bool(0.95) {
                    let start = self.zipf.sample(&mut rng);
                    let len = rng.gen_range(0..=cfg.scan_max);
                    let end = (start + len).min(cfg.records - 1);
                    tb.scan((start..=end).map(|r| TupleId::new(0, r)).collect());
                } else {
                    tb.write(TupleId::new(0, self.zipf.sample(&mut rng)));
                }
            }
        }
        tb.finish()
    }
}

impl TraceSource for YcsbSource {
    fn len(&self) -> usize {
        self.cfg.num_txns
    }

    fn for_chunk(&self, range: Range<usize>, visit: &mut dyn FnMut(usize, &Transaction)) {
        for idx in range {
            let t = self.txn(idx);
            visit(idx, &t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_a_is_single_tuple() {
        let cfg = YcsbConfig {
            records: 1000,
            num_txns: 2000,
            ..YcsbConfig::workload_a()
        };
        let w = generate(&cfg);
        let mut reads = 0usize;
        let mut writes = 0usize;
        for t in &w.trace.transactions {
            assert_eq!(t.num_accesses(), 1);
            reads += t.reads.len();
            writes += t.writes.len();
        }
        // Roughly 50/50.
        assert!((800..=1200).contains(&reads), "reads {reads}");
        assert!((800..=1200).contains(&writes), "writes {writes}");
    }

    #[test]
    fn workload_e_scans_are_contiguous() {
        let cfg = YcsbConfig {
            records: 1000,
            num_txns: 2000,
            ..YcsbConfig::workload_e()
        };
        let w = generate(&cfg);
        let mut scan_txns = 0usize;
        for t in &w.trace.transactions {
            for s in &t.scans {
                scan_txns += 1;
                for win in s.windows(2) {
                    assert_eq!(win[1].row, win[0].row + 1, "scan must be contiguous");
                }
                assert!(s.len() <= 11);
            }
            assert!(t.writes.len() <= 1);
        }
        assert!(scan_txns > 1200, "too few scans: {scan_txns}");
    }

    #[test]
    fn zipfian_head_is_hot() {
        let cfg = YcsbConfig {
            records: 10_000,
            num_txns: 5000,
            ..YcsbConfig::workload_a()
        };
        let w = generate(&cfg);
        let hot = w
            .trace
            .transactions
            .iter()
            .flat_map(|t| t.accessed())
            .filter(|t| t.row < 100)
            .count();
        assert!(hot > 1000, "zipfian head too cold: {hot}");
    }

    #[test]
    fn stream_matches_distributions_and_rechunks_identically() {
        let cfg = YcsbConfig {
            records: 1_000,
            num_txns: 1_000,
            ..YcsbConfig::workload_e()
        };
        let src = stream(&cfg);
        let whole = src.materialize();
        assert_eq!(whole.len(), 1_000);
        // Chunked re-streaming is byte-identical to the whole pass.
        src.for_chunk(250..500, &mut |i, t| {
            assert_eq!(t.reads, whole.transactions[i].reads);
            assert_eq!(t.writes, whole.transactions[i].writes);
            assert_eq!(t.scans, whole.transactions[i].scans);
        });
        // E-mix shape: mostly scans, a few single-tuple updates.
        let scans: usize = whole.transactions.iter().map(|t| t.scans.len()).sum();
        let writers = whole
            .transactions
            .iter()
            .filter(|t| !t.writes.is_empty())
            .count();
        assert!(scans > 0);
        assert!((10..=150).contains(&writers), "writers {writers}");
        for t in &whole.transactions {
            for s in &t.scans {
                for win in s.windows(2) {
                    assert_eq!(win[1].row, win[0].row + 1, "scan must be contiguous");
                }
            }
        }
    }

    #[test]
    fn stats_name_the_key_column() {
        let cfg = YcsbConfig {
            records: 100,
            num_txns: 100,
            ..YcsbConfig::workload_e()
        };
        let w = generate(&cfg);
        assert_eq!(w.attr_stats.frequent_attributes(0, 0.9), vec![0]);
        assert_eq!(w.name, "ycsb-e");
    }
}
